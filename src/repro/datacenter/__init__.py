"""Datacenter substrate: the Parasol container's IT side.

Models the 64 half-U Atom servers, their organization into pods (sets of
spatially close servers that behave alike thermally — Section 3), the
air temperature and humidity sensors, disk power-cycle accounting, and
energy/PUE bookkeeping.
"""

from repro.datacenter.server import PowerState, Server
from repro.datacenter.pod import Pod
from repro.datacenter.sensors import HumiditySensor, TemperatureSensor
from repro.datacenter.disks import DiskFleet
from repro.datacenter.power import EnergyAccountant
from repro.datacenter.layout import DatacenterLayout, parasol_layout

__all__ = [
    "PowerState",
    "Server",
    "Pod",
    "TemperatureSensor",
    "HumiditySensor",
    "DiskFleet",
    "EnergyAccountant",
    "DatacenterLayout",
    "parasol_layout",
]
