"""Disk fleet accounting: power cycles and temperature exposure.

The paper's motivation is disk reliability: disks are the components most
sensitive to absolute temperature and temperature variation.  The Compute
Configurer's power-state churn also power-cycles disks, so Section 4.2
budgets against load/unload ratings: modern disks survive >= 300,000 cycles,
i.e. 8.5 cycles/hour over a 4-year lifetime; the paper's workloads stay
under 2.2 cycles/hour.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import constants
from repro.datacenter.server import Server
from repro.errors import ConfigError
from repro.physics.thermal import DiskThermalModel


class DiskFleet:
    """Tracks disk temperatures and power-cycle budgets for all servers."""

    def __init__(self, servers: List[Server], num_pods: int) -> None:
        if not servers:
            raise ConfigError("DiskFleet needs at least one server")
        self.servers = servers
        self.thermal = DiskThermalModel(num_pods)
        self._elapsed_s = 0.0

    def step(
        self, pod_inlet_temp_c: np.ndarray, disk_utilization: float, dt_s: float
    ) -> np.ndarray:
        """Advance disk temperatures one step.

        Power-state cycling is counted by Server.activate() itself, so this
        is purely the thermal update.
        """
        self._elapsed_s += dt_s
        return self.thermal.step(pod_inlet_temp_c, disk_utilization, dt_s)

    def reset_thermal(self) -> None:
        """Re-initialize the thermal model (day-boundary state).

        Cycle budgets are deliberately preserved: they are lifetime
        accounting, not per-day simulation state.
        """
        self.thermal.reset()

    @property
    def disk_temps_c(self) -> np.ndarray:
        """Current per-pod representative disk temperatures."""
        return self.thermal.temps_c

    def power_cycles_per_hour(self) -> float:
        """Average disk power cycles per hour per server so far."""
        hours = self._elapsed_s / 3600.0
        if hours <= 0:
            return 0.0
        total = sum(server.power_cycles for server in self.servers)
        return total / len(self.servers) / hours

    def within_cycle_budget(self) -> bool:
        """True when average cycling stays under the lifetime budget."""
        return self.power_cycles_per_hour() <= constants.MAX_AVG_POWER_CYCLES_PER_HOUR
