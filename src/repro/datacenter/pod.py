"""Pods: sets of spatially close servers that behave alike thermally.

CoolAir assumes the datacenter is organized into pods with one inlet air
temperature sensor per pod (Section 3).  Each pod carries a heat
recirculation potential, which the Cooling Modeler ranks by observing inlet
temperature changes when load is scheduled on the pod (Section 3.3).
"""

from __future__ import annotations

from typing import List

from repro.datacenter.server import PowerState, Server
from repro.errors import ConfigError


class Pod:
    """A group of servers sharing an inlet temperature sensor."""

    def __init__(self, pod_id: int, servers: List[Server], recirculation: float) -> None:
        if not servers:
            raise ConfigError(f"pod {pod_id} must contain at least one server")
        if not 0.0 <= recirculation < 1.0:
            raise ConfigError(f"recirculation {recirculation} out of [0, 1)")
        for server in servers:
            if server.pod_id != pod_id:
                raise ConfigError(
                    f"server {server.server_id} belongs to pod {server.pod_id}, "
                    f"not {pod_id}"
                )
        self.pod_id = pod_id
        self.servers = servers
        self.recirculation = recirculation

    def __len__(self) -> int:
        return len(self.servers)

    def it_power_w(self) -> float:
        """Total IT power currently dissipated in the pod."""
        total = 0.0
        for s in self.servers:
            if s.state is PowerState.SLEEP:
                total += s.sleep_power_w
            else:
                total += (
                    s.idle_power_w
                    + (s.peak_power_w - s.idle_power_w) * s.utilization
                )
        return total

    def active_servers(self) -> List[Server]:
        return [s for s in self.servers if s.state is PowerState.ACTIVE]

    def awake_servers(self) -> List[Server]:
        """Servers that are powered on (active or decommissioned)."""
        return [s for s in self.servers if s.is_on]

    def num_active(self) -> int:
        count = 0
        for s in self.servers:
            if s.state is PowerState.ACTIVE:
                count += 1
        return count

    def utilization(self) -> float:
        """Mean CPU utilization across all servers in the pod."""
        return sum(s.utilization for s in self.servers) / len(self.servers)
