"""Server model with the three CoolAir power states (Section 4.2).

* ``ACTIVE`` — running, draws idle..peak power with utilization.
* ``DECOMMISSIONED`` — no new tasks start, but the server stays powered
  because it still stores (temporary) data needed by running jobs.
* ``SLEEP`` — ACPI S3; draws a trickle, disk spun down.
"""

from __future__ import annotations

import enum

from repro import constants
from repro.errors import ConfigError


class PowerState(enum.Enum):
    ACTIVE = "active"
    DECOMMISSIONED = "decommissioned"
    SLEEP = "sleep"


class Server:
    """One Parasol half-U server (2-core Atom, 250GB HDD, 64GB SSD)."""

    def __init__(
        self,
        server_id: int,
        pod_id: int,
        idle_power_w: float = constants.SERVER_IDLE_W,
        peak_power_w: float = constants.SERVER_PEAK_W,
        sleep_power_w: float = constants.SERVER_SLEEP_W,
    ) -> None:
        if peak_power_w < idle_power_w:
            raise ConfigError("peak power must be >= idle power")
        self.server_id = server_id
        self.pod_id = pod_id
        self.idle_power_w = idle_power_w
        self.peak_power_w = peak_power_w
        self.sleep_power_w = sleep_power_w
        self.state = PowerState.ACTIVE
        self.utilization = 0.0
        # Set for servers in the Covering Subset, which must stay active to
        # keep a full copy of the dataset available (Section 4.2).
        self.in_covering_subset = False
        # Set while the server stores temporary data a running job needs;
        # such a server can be decommissioned but not slept.
        self.holds_job_data = False
        self.power_cycles = 0

    def set_utilization(self, utilization: float) -> None:
        """Set CPU utilization; only meaningful for powered-on servers."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigError(f"utilization {utilization} out of [0, 1]")
        self.utilization = utilization if self.state is not PowerState.SLEEP else 0.0

    @property
    def is_on(self) -> bool:
        return self.state is not PowerState.SLEEP

    @property
    def can_run_new_tasks(self) -> bool:
        return self.state is PowerState.ACTIVE

    def power_w(self) -> float:
        """Instantaneous power draw."""
        if self.state is PowerState.SLEEP:
            return self.sleep_power_w
        return self.idle_power_w + (self.peak_power_w - self.idle_power_w) * self.utilization

    # -- power state transitions --------------------------------------------

    def activate(self) -> None:
        """Wake or re-commission the server."""
        if self.state is PowerState.SLEEP:
            self.power_cycles += 1
        self.state = PowerState.ACTIVE

    def decommission(self) -> None:
        """Stop accepting new tasks; stay powered for stored data."""
        if self.state is PowerState.SLEEP:
            raise ConfigError(
                f"server {self.server_id}: cannot decommission a sleeping server"
            )
        self.state = PowerState.DECOMMISSIONED

    def sleep(self) -> None:
        """Enter ACPI S3.  Refused for covering-subset members and servers
        still holding live job data (the Compute Configurer's invariants)."""
        if self.in_covering_subset:
            raise ConfigError(
                f"server {self.server_id} is in the covering subset; must stay active"
            )
        if self.holds_job_data:
            raise ConfigError(
                f"server {self.server_id} still holds job data; decommission first"
            )
        if self.state is not PowerState.SLEEP:
            self.state = PowerState.SLEEP
            self.utilization = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Server(id={self.server_id}, pod={self.pod_id}, "
            f"state={self.state.value}, util={self.utilization:.2f})"
        )
