"""Energy accounting and PUE computation.

PUE = (IT energy + cooling energy + delivery losses) / IT energy.  The
paper reports PUEs "including 0.08 for power delivery" (Figure 10), i.e.
delivery losses contribute a constant 0.08 to the PUE.
"""

from __future__ import annotations

from repro import constants
from repro.errors import ConfigError


class EnergyAccountant:
    """Accumulates IT and cooling energy over a simulation run."""

    def __init__(
        self, delivery_pue_overhead: float = constants.POWER_DELIVERY_PUE_OVERHEAD
    ) -> None:
        if delivery_pue_overhead < 0:
            raise ConfigError("delivery overhead must be non-negative")
        self.delivery_pue_overhead = delivery_pue_overhead
        self.it_energy_j = 0.0
        self.cooling_energy_j = 0.0
        self.elapsed_s = 0.0

    def record(self, it_power_w: float, cooling_power_w: float, dt_s: float) -> None:
        """Accumulate one interval of power draw."""
        if dt_s <= 0:
            raise ConfigError("dt_s must be positive")
        if it_power_w < 0 or cooling_power_w < 0:
            raise ConfigError("power draws must be non-negative")
        self.it_energy_j += it_power_w * dt_s
        self.cooling_energy_j += cooling_power_w * dt_s
        self.elapsed_s += dt_s

    @property
    def it_energy_kwh(self) -> float:
        return self.it_energy_j / 3.6e6

    @property
    def cooling_energy_kwh(self) -> float:
        return self.cooling_energy_j / 3.6e6

    def pue(self) -> float:
        """Power Usage Effectiveness including delivery losses."""
        if self.it_energy_j <= 0:
            raise ConfigError("PUE undefined with zero IT energy")
        return (
            1.0
            + self.cooling_energy_j / self.it_energy_j
            + self.delivery_pue_overhead
        )

    def merge(self, other: "EnergyAccountant") -> None:
        """Fold another accountant's totals into this one."""
        self.it_energy_j += other.it_energy_j
        self.cooling_energy_j += other.cooling_energy_j
        self.elapsed_s += other.elapsed_s
