"""Datacenter layout: pods, servers, sensors, and recirculation geometry.

``parasol_layout`` builds the container the paper evaluates: 64 half-U
servers in two racks, organized into 4 pods of 16, with per-pod inlet
temperature sensors, one humidity sensor per aisle, and an outside
temperature + humidity sensor pair (the CoolAir sensor requirements of
Section 3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro import constants
from repro.datacenter.disks import DiskFleet
from repro.datacenter.pod import Pod
from repro.datacenter.sensors import HumiditySensor, TemperatureSensor
from repro.datacenter.server import PowerState, Server
from repro.errors import ConfigError


class DatacenterLayout:
    """The IT-side topology CoolAir manages."""

    def __init__(self, pods: List[Pod]) -> None:
        if not pods:
            raise ConfigError("layout needs at least one pod")
        ids = [pod.pod_id for pod in pods]
        if ids != list(range(len(pods))):
            raise ConfigError("pods must be numbered 0..n-1 in order")
        self.pods = pods
        self.inlet_sensors = [
            TemperatureSensor(f"inlet_pod{pod.pod_id}") for pod in pods
        ]
        self.cold_aisle_humidity = HumiditySensor("cold_aisle_rh")
        self.hot_aisle_humidity = HumiditySensor("hot_aisle_rh")
        self.outside_temp = TemperatureSensor("outside_temp")
        self.outside_humidity = HumiditySensor("outside_rh")
        self.disks = DiskFleet(self.all_servers(), len(pods))

    # -- topology ------------------------------------------------------------

    @property
    def num_pods(self) -> int:
        return len(self.pods)

    @property
    def num_servers(self) -> int:
        return sum(len(pod) for pod in self.pods)

    def all_servers(self) -> List[Server]:
        return [server for pod in self.pods for server in pod.servers]

    def server_by_id(self, server_id: int) -> Server:
        for pod in self.pods:
            for server in pod.servers:
                if server.server_id == server_id:
                    return server
        raise ConfigError(f"no server with id {server_id}")

    def recirculation_ranking(self, high_first: bool = True) -> List[Pod]:
        """Pods ordered by heat-recirculation potential.

        ``high_first=True`` is CoolAir's variation-aware placement; False is
        the energy-aware placement of prior work (Section 3.3, Figure 11).
        """
        return sorted(
            self.pods, key=lambda pod: pod.recirculation, reverse=high_first
        )

    # -- aggregate state -----------------------------------------------------

    def pod_it_power_w(self) -> List[float]:
        return [pod.it_power_w() for pod in self.pods]

    def total_it_power_w(self) -> float:
        return sum(self.pod_it_power_w())

    def utilization(self) -> float:
        """Fraction of servers that are active (the paper's "utilization")."""
        active = 0
        for pod in self.pods:
            active += pod.num_active()
        return active / self.num_servers

    def observe(
        self,
        pod_inlet_temp_c: Sequence[float],
        cold_aisle_rh_pct: float,
        outside_temp_c: float,
        outside_rh_pct: float,
        hot_aisle_rh_pct: float = None,
    ) -> Dict[str, float]:
        """Push plant truth through all sensors; returns the readings."""
        if len(pod_inlet_temp_c) != self.num_pods:
            raise ConfigError(
                f"expected {self.num_pods} inlet temperatures, "
                f"got {len(pod_inlet_temp_c)}"
            )
        readings: Dict[str, float] = {}
        for sensor, temp in zip(self.inlet_sensors, pod_inlet_temp_c):
            readings[sensor.name] = sensor.observe(float(temp))
        readings[self.cold_aisle_humidity.name] = self.cold_aisle_humidity.observe(
            cold_aisle_rh_pct
        )
        if hot_aisle_rh_pct is None:
            hot_aisle_rh_pct = cold_aisle_rh_pct
        readings[self.hot_aisle_humidity.name] = self.hot_aisle_humidity.observe(
            hot_aisle_rh_pct
        )
        readings[self.outside_temp.name] = self.outside_temp.observe(outside_temp_c)
        readings[self.outside_humidity.name] = self.outside_humidity.observe(
            outside_rh_pct
        )
        return readings

    def inlet_readings(self) -> np.ndarray:
        """Latest per-pod inlet sensor readings."""
        return np.array([sensor.read() for sensor in self.inlet_sensors])


def parasol_layout(
    num_servers: int = constants.NUM_SERVERS,
    num_pods: int = 4,
    recirculation: Sequence[float] = (0.08, 0.16, 0.26, 0.38),
) -> DatacenterLayout:
    """Build the Parasol container layout.

    Servers are dealt into pods contiguously (racks are split into pods of
    spatially adjacent servers).  The recirculation fractions match the
    default :class:`~repro.physics.thermal.ThermalPlantConfig` so the
    layout and the plant describe the same container.
    """
    if num_servers % num_pods != 0:
        raise ConfigError(
            f"{num_servers} servers do not divide evenly into {num_pods} pods"
        )
    if len(recirculation) != num_pods:
        raise ConfigError("need one recirculation fraction per pod")
    per_pod = num_servers // num_pods
    pods: List[Pod] = []
    for pod_id in range(num_pods):
        servers = [
            Server(server_id=pod_id * per_pod + i, pod_id=pod_id)
            for i in range(per_pod)
        ]
        pods.append(Pod(pod_id, servers, recirculation[pod_id]))
    return DatacenterLayout(pods)
