"""Air temperature and humidity sensors.

Parasol's sensors are accurate to within 0.5C (Section 5.1); readings here
are quantized to that resolution so the learned models see realistic data.
CoolAir requires at least one outside temperature + humidity sensor, one
inlet temperature sensor per pod, and one cold-aisle humidity sensor
(Section 3).

Quantization rounds halves *up* (``floor(x/res + 0.5) * res``): a 25.25C
reading at 0.5C resolution becomes 25.5C and 25.75C becomes 26.0C.
Python's ``round`` would round half to even, quantizing those two the
inconsistent way (25.0 and 26.0); the lane engine's vectorized
quantization mirrors the same half-up rule elementwise.

Sensors also expose the fault-injection seam (``docs/ROBUSTNESS.md``):
``inject`` is an optional hook installed by
:class:`~repro.faults.FaultInjector` that may corrupt a reading or
declare the sensor dead, and ``healthy`` reports whether the last
observation came from a working sensor.  A dead sensor holds its last
reading (consumers never crash mid-control-loop) but reports unhealthy
so the manager can degrade gracefully.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

from repro import constants
from repro.errors import SensorError

# The fault-injection hook: reading -> (faulted reading or None if the
# sensor is dead, healthy flag).
InjectHook = Callable[[float], Tuple[Optional[float], bool]]


def quantize_half_up(value: float, resolution: float) -> float:
    """Quantize with halves rounding up (toward +infinity)."""
    return math.floor(value / resolution + 0.5) * resolution


class TemperatureSensor:
    """A quantizing air temperature sensor."""

    def __init__(
        self, name: str, resolution_c: float = constants.SENSOR_ACCURACY_C
    ) -> None:
        if resolution_c <= 0:
            raise SensorError(f"sensor {name}: resolution must be positive")
        self.name = name
        self.resolution_c = resolution_c
        self.inject: Optional[InjectHook] = None
        self._reading: Optional[float] = None
        self._healthy = True

    def observe(self, true_temp_c: float) -> float:
        """Record a new reading, quantized to the sensor resolution."""
        quantized = quantize_half_up(true_temp_c, self.resolution_c)
        if self.inject is not None:
            faulted, healthy = self.inject(quantized)
            self._healthy = healthy
            if faulted is None:
                if self._reading is None:
                    self._reading = quantized
                return self._reading
            quantized = float(faulted)
        else:
            self._healthy = True
        self._reading = quantized
        return quantized

    def read(self) -> float:
        """The most recent reading."""
        if self._reading is None:
            raise SensorError(f"sensor {self.name} has no reading yet")
        return self._reading

    @property
    def has_reading(self) -> bool:
        return self._reading is not None

    @property
    def healthy(self) -> bool:
        """Whether the last observation came from a working sensor."""
        return self._healthy


class HumiditySensor:
    """A relative humidity sensor, quantized to 1%."""

    def __init__(self, name: str, resolution_pct: float = 1.0) -> None:
        if resolution_pct <= 0:
            raise SensorError(f"sensor {name}: resolution must be positive")
        self.name = name
        self.resolution_pct = resolution_pct
        self.inject: Optional[InjectHook] = None
        self._reading: Optional[float] = None
        self._healthy = True

    def observe(self, true_rh_pct: float) -> float:
        clamped = max(0.0, min(100.0, true_rh_pct))
        quantized = quantize_half_up(clamped, self.resolution_pct)
        if self.inject is not None:
            faulted, healthy = self.inject(quantized)
            self._healthy = healthy
            if faulted is None:
                if self._reading is None:
                    self._reading = quantized
                return self._reading
            quantized = float(faulted)
        else:
            self._healthy = True
        self._reading = quantized
        return quantized

    def read(self) -> float:
        if self._reading is None:
            raise SensorError(f"sensor {self.name} has no reading yet")
        return self._reading

    @property
    def has_reading(self) -> bool:
        return self._reading is not None

    @property
    def healthy(self) -> bool:
        """Whether the last observation came from a working sensor."""
        return self._healthy
