"""Air temperature and humidity sensors.

Parasol's sensors are accurate to within 0.5C (Section 5.1); readings here
are quantized to that resolution so the learned models see realistic data.
CoolAir requires at least one outside temperature + humidity sensor, one
inlet temperature sensor per pod, and one cold-aisle humidity sensor
(Section 3).
"""

from __future__ import annotations

from typing import Optional

from repro import constants
from repro.errors import SensorError


class TemperatureSensor:
    """A quantizing air temperature sensor."""

    def __init__(
        self, name: str, resolution_c: float = constants.SENSOR_ACCURACY_C
    ) -> None:
        if resolution_c <= 0:
            raise SensorError(f"sensor {name}: resolution must be positive")
        self.name = name
        self.resolution_c = resolution_c
        self._reading: Optional[float] = None

    def observe(self, true_temp_c: float) -> float:
        """Record a new reading, quantized to the sensor resolution."""
        quantized = round(true_temp_c / self.resolution_c) * self.resolution_c
        self._reading = quantized
        return quantized

    def read(self) -> float:
        """The most recent reading."""
        if self._reading is None:
            raise SensorError(f"sensor {self.name} has no reading yet")
        return self._reading

    @property
    def has_reading(self) -> bool:
        return self._reading is not None


class HumiditySensor:
    """A relative humidity sensor, quantized to 1%."""

    def __init__(self, name: str, resolution_pct: float = 1.0) -> None:
        if resolution_pct <= 0:
            raise SensorError(f"sensor {name}: resolution must be positive")
        self.name = name
        self.resolution_pct = resolution_pct
        self._reading: Optional[float] = None

    def observe(self, true_rh_pct: float) -> float:
        clamped = max(0.0, min(100.0, true_rh_pct))
        quantized = round(clamped / self.resolution_pct) * self.resolution_pct
        self._reading = quantized
        return quantized

    def read(self) -> float:
        if self._reading is None:
            raise SensorError(f"sensor {self.name} has no reading yet")
        return self._reading

    @property
    def has_reading(self) -> bool:
        return self._reading is not None
