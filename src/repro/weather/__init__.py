"""Weather substrate: synthetic typical-meteorological-year (TMY) data.

The paper drives its year-long simulations with US DOE TMY temperature and
humidity series for 5 named locations and 1520 world-wide locations.  Those
files are not redistributable here, so this package generates deterministic
synthetic TMY series from per-location climate parameters that reproduce
the *structure* the experiments depend on: seasonal cycle, diurnal cycle,
synoptic (multi-day) variability, and humidity regimes.
"""

from repro.weather.climate import Climate
from repro.weather.forecast import DailyForecast, ForecastService
from repro.weather.locations import (
    CHAD,
    ICELAND,
    NEWARK,
    SANTIAGO,
    SINGAPORE,
    NAMED_LOCATIONS,
    world_grid,
)
from repro.weather.tmy import TMYSeries, generate_tmy

__all__ = [
    "Climate",
    "DailyForecast",
    "ForecastService",
    "TMYSeries",
    "generate_tmy",
    "NEWARK",
    "CHAD",
    "SANTIAGO",
    "ICELAND",
    "SINGAPORE",
    "NAMED_LOCATIONS",
    "world_grid",
]
