"""The five named evaluation locations plus the 1520-point world grid.

The named climates approximate the TMY statistics of the paper's five
sites (Section 1): Iceland (cold year-round), Chad (hot year-round),
Santiago de Chile (mild, southern hemisphere), Singapore (hot and humid),
and Newark (hot summers, cold winters — the closest TMY site to Parasol).

The world grid substitutes for the paper's 1520 TMY locations with a
deterministic latitude/continentality climate model: mean temperature
falls with |latitude|, seasonal amplitude grows with |latitude| and with a
continentality factor derived (deterministically) from the coordinates,
and humidity regimes range from arid to maritime.
"""

from __future__ import annotations

import math
from typing import List

from repro.weather.climate import Climate

NEWARK = Climate(
    name="Newark",
    latitude=40.7,
    longitude=-74.2,
    mean_temp_c=12.5,
    seasonal_amplitude_c=12.0,
    diurnal_amplitude_c=4.5,
    synoptic_std_c=4.0,
    mean_rh_pct=64.0,
)

CHAD = Climate(
    name="Chad",
    latitude=12.1,
    longitude=15.0,
    mean_temp_c=28.0,
    seasonal_amplitude_c=4.5,
    diurnal_amplitude_c=6.5,
    synoptic_std_c=1.5,
    mean_rh_pct=32.0,
    diurnal_rh_amplitude_pct=10.0,
)

SANTIAGO = Climate(
    name="Santiago",
    latitude=-33.4,
    longitude=-70.7,
    mean_temp_c=14.5,
    seasonal_amplitude_c=6.5,
    diurnal_amplitude_c=6.0,
    synoptic_std_c=2.5,
    mean_rh_pct=58.0,
)

ICELAND = Climate(
    name="Iceland",
    latitude=64.1,
    longitude=-21.9,
    mean_temp_c=5.0,
    seasonal_amplitude_c=5.5,
    diurnal_amplitude_c=1.8,
    synoptic_std_c=3.0,
    mean_rh_pct=77.0,
    diurnal_rh_amplitude_pct=6.0,
)

SINGAPORE = Climate(
    name="Singapore",
    latitude=1.35,
    longitude=103.8,
    mean_temp_c=27.5,
    seasonal_amplitude_c=1.0,
    diurnal_amplitude_c=2.8,
    synoptic_std_c=0.8,
    mean_rh_pct=84.0,
    diurnal_rh_amplitude_pct=8.0,
)

NAMED_LOCATIONS = {
    climate.name: climate
    for climate in (NEWARK, CHAD, SANTIAGO, ICELAND, SINGAPORE)
}


def _pseudo_uniform(latitude: float, longitude: float, salt: int) -> float:
    """Deterministic pseudo-random value in [0, 1) from coordinates."""
    x = math.sin(latitude * 12.9898 + longitude * 78.233 + salt * 37.719) * 43_758.5453
    return x - math.floor(x)


def climate_for_coordinates(latitude: float, longitude: float) -> Climate:
    """Synthesize a plausible climate for arbitrary coordinates.

    Not geographically exact — it needs only to span the same climate *space*
    (polar to equatorial, maritime to continental, arid to humid) that the
    paper's 1520 TMY sites span.
    """
    continentality = 0.5 + _pseudo_uniform(latitude, longitude, 1)  # [0.5, 1.5)
    aridity = _pseudo_uniform(latitude, longitude, 2)  # [0, 1)
    elevation_cooling = 4.0 * _pseudo_uniform(latitude, longitude, 3) ** 2

    abs_lat = abs(latitude)
    mean_temp = 27.5 - 0.42 * abs_lat - elevation_cooling
    seasonal = min(18.0, (1.0 + 0.24 * abs_lat) * continentality)
    diurnal = 2.0 + 5.0 * aridity * min(1.0, continentality)
    synoptic = 0.8 + 0.05 * abs_lat * continentality
    rh = max(20.0, min(90.0, 85.0 - 55.0 * aridity + 5.0 * (1.5 - continentality)))

    return Climate(
        name=f"grid_{latitude:+.1f}_{longitude:+.1f}",
        latitude=latitude,
        longitude=longitude,
        mean_temp_c=mean_temp,
        seasonal_amplitude_c=seasonal,
        diurnal_amplitude_c=diurnal,
        synoptic_std_c=min(synoptic, 5.0),
        mean_rh_pct=rh,
    )


def world_grid(n_points: int = 1520) -> List[Climate]:
    """A deterministic world-wide grid of climates.

    The default reproduces the paper's 1520 locations as a 40 (longitude) by
    38 (latitude) grid spanning the inhabited latitudes.  Other counts —
    down to a handful, up to 100k+ for planetary-scale screened sweeps —
    lay out the same grid pattern at a different density, so results
    remain comparable across sizes.  Grid-cell names encode the
    coordinates, so every density produces its own cache keys.
    """
    if n_points < 1:
        raise ValueError("n_points must be >= 1")
    # Choose a near-square grid with cols ~ 40/38 aspect.
    cols = max(1, int(round(math.sqrt(n_points * 40.0 / 38.0))))
    rows = max(1, math.ceil(n_points / cols))
    climates: List[Climate] = []
    for row in range(rows):
        # Latitudes from 68N down to 56S — the band where datacenters live.
        latitude = 68.0 - (124.0 * row / max(1, rows - 1) if rows > 1 else 0.0)
        for col in range(cols):
            if len(climates) >= n_points:
                break
            longitude = -180.0 + 360.0 * (col + 0.5) / cols
            climates.append(climate_for_coordinates(latitude, longitude))
    return climates
