"""Per-location climate parameterization.

A :class:`Climate` captures the handful of statistics that shape a typical
meteorological year at a site: annual mean temperature, seasonal and diurnal
amplitudes, synoptic (multi-day weather system) variability, and the
humidity regime.  The southern hemisphere's season phase is derived from
the latitude sign.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError

DAYS_PER_YEAR = 365
SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600


@dataclasses.dataclass(frozen=True)
class Climate:
    """Climate statistics for one geographical location."""

    name: str
    latitude: float
    longitude: float
    # Annual mean of the outside air temperature, C.
    mean_temp_c: float
    # Half peak-to-trough amplitude of the seasonal cycle, C.
    seasonal_amplitude_c: float
    # Half peak-to-trough amplitude of the diurnal cycle, C.
    diurnal_amplitude_c: float
    # Standard deviation of day-to-day (synoptic) temperature anomalies, C.
    synoptic_std_c: float = 3.0
    # Mean relative humidity, percent, and its diurnal swing.
    mean_rh_pct: float = 60.0
    diurnal_rh_amplitude_pct: float = 12.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ConfigError(f"latitude {self.latitude} out of [-90, 90]")
        if not -180.0 <= self.longitude <= 180.0:
            raise ConfigError(f"longitude {self.longitude} out of [-180, 180]")
        if self.seasonal_amplitude_c < 0 or self.diurnal_amplitude_c < 0:
            raise ConfigError("amplitudes must be non-negative")
        if not 2.0 <= self.mean_rh_pct <= 98.0:
            raise ConfigError(f"mean_rh_pct {self.mean_rh_pct} out of [2, 98]")

    @property
    def southern_hemisphere(self) -> bool:
        return self.latitude < 0.0

    @property
    def warmest_day_of_year(self) -> int:
        """Day of year when the seasonal cycle peaks (lags solstice ~1 month)."""
        return 200 if not self.southern_hemisphere else 17

    def seed(self) -> int:
        """Deterministic RNG seed derived from the coordinates.

        The same location always produces the same synthetic TMY, which is
        what makes year-long experiments repeatable and comparable across
        management systems (the paper's motivation for simulation in the
        first place: "the same weather conditions never repeat exactly").
        """
        lat_key = int(round((self.latitude + 90.0) * 100))
        lon_key = int(round((self.longitude + 180.0) * 100))
        return (lat_key * 100_003 + lon_key * 7 + 12_345) % (2**31 - 1)
