"""Weather forecast service.

CoolAir queries "a Web-based weather forecast service" for the hourly
outside temperature predictions for the rest of the day (Section 3.2), and
uses the daily average to place its temperature band.  Here the service is
backed by the synthetic TMY series; configurable bias and noise reproduce
the paper's forecast-accuracy experiment (consistent +-5C bias changed max
ranges by <1C and PUE by <0.01).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import WeatherError
from repro.weather.climate import DAYS_PER_YEAR
from repro.weather.tmy import TMYSeries


@dataclasses.dataclass(frozen=True)
class DailyForecast:
    """Hourly outside temperature forecast for (the rest of) one day."""

    day_of_year: int
    # Hour the forecast was issued; hours before it are not included.
    issued_hour: int
    # Predicted temperature for each hour from ``issued_hour`` to 23.
    hourly_temps_c: np.ndarray

    @property
    def average_temp_c(self) -> float:
        """Average predicted temperature across the forecast hours."""
        return float(np.mean(self.hourly_temps_c))

    @property
    def min_temp_c(self) -> float:
        return float(np.min(self.hourly_temps_c))

    @property
    def max_temp_c(self) -> float:
        return float(np.max(self.hourly_temps_c))

    def temp_at_hour(self, hour: int) -> float:
        """Predicted temperature at an absolute hour of the day."""
        if not self.issued_hour <= hour <= 23:
            raise WeatherError(
                f"hour {hour} outside forecast window "
                f"[{self.issued_hour}, 23] for day {self.day_of_year}"
            )
        return float(self.hourly_temps_c[hour - self.issued_hour])


class ForecastService:
    """Hourly forecasts derived from a TMY series, with error injection.

    ``bias_c`` shifts every prediction by a constant (the paper studies +5
    and -5); ``noise_std_c`` adds per-hour Gaussian noise, seeded so that
    repeated queries for the same day return the same forecast — like a real
    forecast service queried twice in one day.
    """

    def __init__(
        self,
        tmy: TMYSeries,
        bias_c: float = 0.0,
        noise_std_c: float = 0.0,
        seed: int = 7,
    ) -> None:
        self._tmy = tmy
        self.bias_c = bias_c
        self.noise_std_c = noise_std_c
        self._seed = seed

    def forecast_for_day(self, day_of_year: int, issued_hour: int = 0) -> DailyForecast:
        """Forecast for the remaining hours of ``day_of_year``.

        ``day_of_year`` values of 365 and beyond wrap into the following
        (typical) year on purpose: year simulations index days past a
        year boundary and the TMY series repeats.  Negative days have no
        such meaning and are rejected — silently wrapping -1 to day 364
        would hand a December forecast to a caller with an off-by-one.
        """
        if day_of_year < 0:
            raise WeatherError(
                f"day_of_year must be non-negative, got {day_of_year}"
            )
        if not 0 <= issued_hour <= 23:
            raise WeatherError(f"issued_hour {issued_hour} out of [0, 23]")
        day = day_of_year % DAYS_PER_YEAR
        truth = self._tmy.hourly_temps_for_day(day)[issued_hour:]
        predicted = truth + self.bias_c
        if self.noise_std_c > 0.0:
            rng = np.random.default_rng(self._seed * 1_000_003 + day)
            noise = rng.normal(0.0, self.noise_std_c, truth.shape[0] + issued_hour)
            predicted = predicted + noise[issued_hour:]
        return DailyForecast(
            day_of_year=day, issued_hour=issued_hour, hourly_temps_c=predicted
        )

    def average_for_day(self, day_of_year: int) -> float:
        """Predicted daily average outside temperature."""
        return self.forecast_for_day(day_of_year).average_temp_c
