"""Synthetic typical-meteorological-year (TMY) series generation.

A :class:`TMYSeries` holds one year of hourly outside temperature and
humidity for a location and interpolates to arbitrary times.  The series is
a deterministic function of the :class:`~repro.weather.climate.Climate`, so
two simulations of the same location see identical weather.

Construction: seasonal cosine + diurnal cosine (peaking mid-afternoon) +
an AR(1) chain of daily synoptic anomalies.  Relative humidity is generated
in anti-phase with the diurnal temperature cycle (nights are more humid)
and converted to a mixing ratio at the concurrent temperature.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.errors import WeatherError
from repro.physics.psychrometrics import relative_to_absolute_humidity_array
from repro.weather.climate import (
    Climate,
    DAYS_PER_YEAR,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
)

HOURS_PER_YEAR = DAYS_PER_YEAR * 24


class TMYSeries:
    """One year of hourly weather for a single location."""

    def __init__(
        self,
        climate: Climate,
        temps_c: np.ndarray,
        mixing_ratios: np.ndarray,
        rh_pct: np.ndarray,
    ) -> None:
        if temps_c.shape != (HOURS_PER_YEAR,):
            raise WeatherError(
                f"expected {HOURS_PER_YEAR} hourly temperatures, got {temps_c.shape}"
            )
        self.climate = climate
        self._temps_c = temps_c
        self._mixing_ratios = mixing_ratios
        self._rh_pct = rh_pct
        self._sampled: dict = {}

    # -- point queries -------------------------------------------------------

    def _interp(self, series: np.ndarray, time_s: float) -> float:
        hour = (time_s % (DAYS_PER_YEAR * SECONDS_PER_DAY)) / SECONDS_PER_HOUR
        i0 = int(hour) % HOURS_PER_YEAR
        i1 = (i0 + 1) % HOURS_PER_YEAR
        frac = hour - int(hour)
        return float(series[i0] * (1.0 - frac) + series[i1] * frac)

    def temperature_c(self, time_s: float) -> float:
        """Outside air temperature at ``time_s`` seconds into the year."""
        return self._interp(self._temps_c, time_s)

    def mixing_ratio(self, time_s: float) -> float:
        """Outside absolute humidity (kg/kg) at ``time_s``."""
        return self._interp(self._mixing_ratios, time_s)

    def relative_humidity_pct(self, time_s: float) -> float:
        """Outside relative humidity (percent) at ``time_s``."""
        return self._interp(self._rh_pct, time_s)

    def sampled(self, step_s: float) -> "SampledWeather":
        """The year presampled on a fixed ``step_s`` grid (cached).

        Point queries on the returned object are array reads for on-grid
        times (the simulation engines' hot path) instead of per-step
        interpolation, and fall back to interpolation off-grid.  Values are
        bit-identical to :meth:`temperature_c` and friends.
        """
        key = float(step_s)
        grid = self._sampled.get(key)
        if grid is None:
            grid = SampledWeather(self, key)
            self._sampled[key] = grid
        return grid

    # -- day-level queries ---------------------------------------------------

    def hourly_temps_for_day(self, day_of_year: int) -> np.ndarray:
        """The 24 hourly temperatures of a given day (0-indexed)."""
        day = day_of_year % DAYS_PER_YEAR
        return self._temps_c[day * 24 : (day + 1) * 24].copy()

    def daily_mean_temp_c(self, day_of_year: int) -> float:
        return float(np.mean(self.hourly_temps_for_day(day_of_year)))

    def daily_range_c(self, day_of_year: int) -> float:
        """Max minus min outside temperature over one day."""
        temps = self.hourly_temps_for_day(day_of_year)
        return float(np.max(temps) - np.min(temps))

    @property
    def hourly_temps(self) -> np.ndarray:
        """The full year of hourly temperatures (read-only view)."""
        view = self._temps_c.view()
        view.flags.writeable = False
        return view

    def yearly_stats(self) -> Tuple[float, float, float]:
        """(mean, min, max) outside temperature over the year."""
        return (
            float(np.mean(self._temps_c)),
            float(np.min(self._temps_c)),
            float(np.max(self._temps_c)),
        )


class SampledWeather:
    """One year of weather precomputed on a fixed model-step grid.

    Sampling the hourly series once into contiguous arrays turns the
    per-step weather queries of a simulation into plain indexed reads.
    The grid is computed with exactly the interpolation arithmetic of
    :meth:`TMYSeries._interp`, element for element, so on-grid queries are
    bit-identical to the interpolated ones; off-grid times transparently
    fall back to interpolation.
    """

    def __init__(self, series: TMYSeries, step_s: float) -> None:
        if step_s <= 0:
            raise WeatherError(f"step_s must be positive, got {step_s}")
        year_s = DAYS_PER_YEAR * SECONDS_PER_DAY
        steps = int(round(year_s / step_s))
        if steps < 1 or steps * step_s != year_s:
            raise WeatherError(
                f"step_s {step_s} does not divide the {year_s}s year evenly"
            )
        self._series = series
        self.step_s = step_s
        self.num_steps = steps

        times = np.arange(steps, dtype=float) * step_s
        # Mirror _interp exactly: hour-of-year, truncated index, fraction.
        hours = (times % year_s) / SECONDS_PER_HOUR
        trunc = hours.astype(np.int64)
        frac = hours - trunc
        i0 = trunc % HOURS_PER_YEAR
        i1 = (i0 + 1) % HOURS_PER_YEAR
        weight0 = 1.0 - frac
        self.temps_c = series._temps_c[i0] * weight0 + series._temps_c[i1] * frac
        self.mixing_ratios = (
            series._mixing_ratios[i0] * weight0 + series._mixing_ratios[i1] * frac
        )
        self.rh_pct = series._rh_pct[i0] * weight0 + series._rh_pct[i1] * frac

    def _index(self, time_s: float) -> int:
        """Grid index for an on-grid time, or -1 when off-grid."""
        steps = time_s / self.step_s
        if steps.is_integer():
            return int(steps) % self.num_steps
        return -1

    def temperature_c(self, time_s: float) -> float:
        idx = self._index(time_s)
        if idx < 0:
            return self._series.temperature_c(time_s)
        return float(self.temps_c[idx])

    def mixing_ratio(self, time_s: float) -> float:
        idx = self._index(time_s)
        if idx < 0:
            return self._series.mixing_ratio(time_s)
        return float(self.mixing_ratios[idx])

    def relative_humidity_pct(self, time_s: float) -> float:
        idx = self._index(time_s)
        if idx < 0:
            return self._series.relative_humidity_pct(time_s)
        return float(self.rh_pct[idx])


class LaneWeather:
    """Per-climate TMY tables stacked into ``(lanes, hours)`` arrays.

    The lane-batched simulation engine advances every lane on the same
    absolute-time step grid, so one fancy-indexed gather per day yields the
    whole batch's boundary conditions.  Values are computed with exactly
    the :class:`SampledWeather` grid arithmetic (itself the mirror of
    :meth:`TMYSeries._interp`), element for element, so each lane's series
    is bit-identical to what a scalar :class:`DayRunner` reads for that
    climate.  Lanes may repeat a climate (several systems share weather).
    """

    def __init__(self, series_list: Sequence[TMYSeries], step_s: float) -> None:
        if not series_list:
            raise WeatherError("LaneWeather needs at least one lane")
        if step_s <= 0:
            raise WeatherError(f"step_s must be positive, got {step_s}")
        year_s = DAYS_PER_YEAR * SECONDS_PER_DAY
        steps = int(round(year_s / step_s))
        if steps < 1 or steps * step_s != year_s:
            raise WeatherError(
                f"step_s {step_s} does not divide the {year_s}s year evenly"
            )
        self.step_s = step_s
        self.num_steps = steps
        self.num_lanes = len(series_list)
        self._temps = np.stack([s._temps_c for s in series_list])
        self._mixing = np.stack([s._mixing_ratios for s in series_list])
        self._rh = np.stack([s._rh_pct for s in series_list])

    def day_grid(
        self, day_of_year, first_step: int, num_steps: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(temps, mixing ratios, RH) as ``(lanes, num_steps)`` arrays.

        Covers model steps ``first_step .. first_step + num_steps - 1`` of
        the given day (negative steps reach into warmup, wrapping around
        the year exactly like the scalar weather queries do).

        ``day_of_year`` is a single day shared by all lanes, or a per-lane
        sequence of ``num_lanes`` days (the day-unfolded mode, where each
        lane simulates a different day of the same year).  The per-lane
        path runs the identical elementwise grid arithmetic on a 2-D index
        grid, so each lane's row is bit-identical to the shared-day call
        for that lane's day.
        """
        year_s = DAYS_PER_YEAR * SECONDS_PER_DAY
        steps_per_day = int(round(SECONDS_PER_DAY / self.step_s))
        offsets = first_step + np.arange(num_steps)
        if np.ndim(day_of_year) == 0:
            idx = (int(day_of_year) * steps_per_day + offsets) % self.num_steps
            rows = slice(None)
        else:
            days = np.asarray(day_of_year, dtype=np.int64)
            if days.shape != (self.num_lanes,):
                raise WeatherError(
                    f"need one day per lane ({self.num_lanes}), got "
                    f"shape {days.shape}"
                )
            idx = (
                days[:, None] * steps_per_day + offsets[None, :]
            ) % self.num_steps
            rows = np.arange(self.num_lanes)[:, None]
        # Mirror SampledWeather's grid construction on just these indices:
        # times, hour-of-year, truncated index, fraction.
        times = idx.astype(float) * self.step_s
        hours = (times % year_s) / SECONDS_PER_HOUR
        trunc = hours.astype(np.int64)
        frac = hours - trunc
        i0 = trunc % HOURS_PER_YEAR
        i1 = (i0 + 1) % HOURS_PER_YEAR
        weight0 = 1.0 - frac
        temps = self._temps[rows, i0] * weight0 + self._temps[rows, i1] * frac
        mixing = self._mixing[rows, i0] * weight0 + self._mixing[rows, i1] * frac
        rh = self._rh[rows, i0] * weight0 + self._rh[rows, i1] * frac
        return temps, mixing, rh


def generate_tmy(climate: Climate) -> TMYSeries:
    """Build the deterministic synthetic TMY series for a climate."""
    rng = np.random.default_rng(climate.seed())

    # AR(1) daily synoptic anomalies: weather systems persist a few days.
    persistence = 0.72
    innovation_std = climate.synoptic_std_c * math.sqrt(1.0 - persistence**2)
    anomalies = np.empty(DAYS_PER_YEAR)
    anomalies[0] = rng.normal(0.0, climate.synoptic_std_c)
    shocks = rng.normal(0.0, innovation_std, DAYS_PER_YEAR)
    for day in range(1, DAYS_PER_YEAR):
        anomalies[day] = persistence * anomalies[day - 1] + shocks[day]

    hours = np.arange(HOURS_PER_YEAR, dtype=float)
    day_of_year = hours / 24.0
    hour_of_day = hours % 24.0

    seasonal = climate.seasonal_amplitude_c * np.cos(
        2.0 * math.pi * (day_of_year - climate.warmest_day_of_year) / DAYS_PER_YEAR
    )
    # Diurnal cycle peaks around 15:00 local time.
    diurnal = climate.diurnal_amplitude_c * np.cos(
        2.0 * math.pi * (hour_of_day - 15.0) / 24.0
    )
    synoptic = np.repeat(anomalies, 24)
    temps = climate.mean_temp_c + seasonal + diurnal + synoptic

    # Relative humidity: anti-phase with the diurnal cycle, plus noise, with
    # synoptically wet/dry days following the inverted temperature anomaly.
    rh = (
        climate.mean_rh_pct
        - climate.diurnal_rh_amplitude_pct
        * np.cos(2.0 * math.pi * (hour_of_day - 15.0) / 24.0)
        - 1.2 * synoptic
        + rng.normal(0.0, 2.0, HOURS_PER_YEAR)
    )
    rh = np.clip(rh, 5.0, 98.0)

    mixing = relative_to_absolute_humidity_array(rh, temps)
    return TMYSeries(climate, temps, mixing, rh)
