"""Analysis: the metrics and tables of the paper's evaluation section."""

from repro.analysis.ascii_plot import regime_ribbon, render_day, sparkline
from repro.analysis.costs import energy_cost_per_degree, management_costs
from repro.analysis.experiments import (
    five_location_matrix,
    world_sweep,
    year_result,
)
from repro.analysis.report import format_table
from repro.analysis.runner import (
    TaskFailure,
    YearTask,
    resolve_workers,
    run_year_tasks,
)
from repro.analysis.worldmap import WorldSummary, bucket_counts, summarize_world

__all__ = [
    "energy_cost_per_degree",
    "management_costs",
    "format_table",
    "WorldSummary",
    "bucket_counts",
    "summarize_world",
    "sparkline",
    "regime_ribbon",
    "render_day",
    "year_result",
    "five_location_matrix",
    "world_sweep",
    "TaskFailure",
    "YearTask",
    "resolve_workers",
    "run_year_tasks",
]
