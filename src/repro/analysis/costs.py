"""Energy cost of managing temperature and variation (Section 5.2).

The paper quantifies, per location, the yearly cooling energy needed to
lower absolute temperature by 1C versus to shrink the maximum daily range
by 1C — finding that absolute temperature costs more in warm climates and
less in cold ones.

* The **temperature** cost compares the Energy version (max 30C) with the
  Temperature version (lower setpoint): extra kWh per degree of setpoint
  reduction.
* The **variation** cost compares the Energy version (no variation
  management) with the Variation/All-ND version: extra kWh per degree of
  maximum-daily-range reduction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.errors import SimulationError
from repro.sim.yearsim import YearResult


def energy_cost_per_degree(
    cheaper: YearResult, costlier: YearResult, degrees_improved: float
) -> float:
    """Extra yearly cooling kWh per degree of improvement.

    Clamped at zero: a system that improves a metric *and* saves energy has
    zero marginal cost.
    """
    if degrees_improved <= 0:
        raise SimulationError(
            f"degrees_improved must be positive, got {degrees_improved}"
        )
    return max(0.0, (costlier.cooling_kwh - cheaper.cooling_kwh) / degrees_improved)


@dataclasses.dataclass(frozen=True)
class ManagementCosts:
    """The two Section 5.2 cost figures for one location."""

    location: str
    temperature_kwh_per_c: float
    variation_kwh_per_c: float

    @property
    def temperature_costs_more(self) -> bool:
        return self.temperature_kwh_per_c > self.variation_kwh_per_c


def management_costs(
    location: str,
    energy_result: YearResult,
    temperature_result: YearResult,
    variation_result: YearResult,
    temperature_setpoint_delta_c: float = 1.0,
) -> ManagementCosts:
    """Derive both costs from three year runs at one location.

    ``temperature_setpoint_delta_c`` is the setpoint gap between the
    Energy and Temperature versions (30C vs 29C by default).
    """
    temp_cost = energy_cost_per_degree(
        energy_result, temperature_result, temperature_setpoint_delta_c
    )
    range_reduction = energy_result.max_range_c - variation_result.max_range_c
    if range_reduction <= 0.05:
        # Variation management achieved no measurable reduction here; report
        # the raw energy delta against a nominal degree.
        range_reduction = 1.0
    var_cost = energy_cost_per_degree(energy_result, variation_result, range_reduction)
    return ManagementCosts(
        location=location,
        temperature_kwh_per_c=temp_cost,
        variation_kwh_per_c=var_cost,
    )
