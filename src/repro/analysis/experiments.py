"""Shared experiment runner for the benchmark harness.

Figures 8, 9, and 10 all read from the same 5-locations x N-systems year
matrix, and several Section 5.2 studies reuse subsets of it, so this module
runs each (system, location, workload) combination once and caches the
:class:`~repro.sim.yearsim.YearResult` both in memory and on disk (JSON
under ``.cache/`` at the repository root).  Delete the cache directory to
force fresh runs.

Environment knobs (for CI-speed vs fidelity trade-offs):

* ``REPRO_SAMPLE_DAYS`` — stride between simulated days (default 14; set
  to 7 for the paper's exact first-day-of-each-week sampling; larger =
  faster).
* ``REPRO_TRACE_JOBS`` — number of jobs in the generated Facebook trace
  (default 1200; the paper's full 5500 changes utilization little because
  traces are rescaled to the same average utilization).
* ``REPRO_WORLD_LOCATIONS`` — world-grid size for Figures 12/13
  (default 24; the paper uses 1520 — set it for a full run).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import CoolAirConfig
from repro.core.versions import ALL_VERSIONS
from repro.sim.campaign import trained_cooling_model
from repro.sim.yearsim import YearResult, run_year
from repro.weather.climate import Climate
from repro.weather.locations import NAMED_LOCATIONS
from repro.workload.traces import FacebookTraceGenerator, NutchTraceGenerator, Trace

CACHE_DIR = pathlib.Path(__file__).resolve().parents[3] / ".cache"

DEFAULT_SAMPLE_DAYS = int(os.environ.get("REPRO_SAMPLE_DAYS", "14"))
DEFAULT_TRACE_JOBS = int(os.environ.get("REPRO_TRACE_JOBS", "1200"))
DEFAULT_WORLD_LOCATIONS = int(os.environ.get("REPRO_WORLD_LOCATIONS", "24"))

_memory_cache: Dict[str, YearResult] = {}
_trace_cache: Dict[str, Trace] = {}


def facebook_trace(deferrable: bool = False) -> Trace:
    """The (cached) day-long Facebook workload trace."""
    key = f"facebook-{deferrable}-{DEFAULT_TRACE_JOBS}"
    if key not in _trace_cache:
        _trace_cache[key] = FacebookTraceGenerator(
            num_jobs=DEFAULT_TRACE_JOBS
        ).generate(deferrable=deferrable)
    return _trace_cache[key]


def nutch_trace(deferrable: bool = False) -> Trace:
    """The (cached) day-long Nutch workload trace."""
    key = f"nutch-{deferrable}"
    if key not in _trace_cache:
        _trace_cache[key] = NutchTraceGenerator().generate(deferrable=deferrable)
    return _trace_cache[key]


def _result_to_json(result: YearResult) -> dict:
    return {
        "label": result.label,
        "climate_name": result.climate_name,
        "sampled_days": result.sampled_days,
        "daily_worst_range_c": result.daily_worst_range_c,
        "daily_outside_range_c": result.daily_outside_range_c,
        "daily_avg_violation_c": result.daily_avg_violation_c,
        "daily_max_rate_c_per_hour": result.daily_max_rate_c_per_hour,
        "cooling_kwh": result.cooling_kwh,
        "it_kwh": result.it_kwh,
        "delivery_overhead": result.delivery_overhead,
    }


def _result_from_json(payload: dict) -> YearResult:
    return YearResult(**payload)


def year_result(
    system: Union[str, CoolAirConfig],
    climate: Climate,
    workload: str = "facebook",
    deferrable: bool = False,
    sample_every_days: Optional[int] = None,
    forecast_bias_c: float = 0.0,
    use_disk_cache: bool = True,
) -> YearResult:
    """One cached year run.

    ``system`` is ``"baseline"``, a version name from Table 1 (e.g.
    ``"All-ND"``), or an explicit :class:`CoolAirConfig`.
    """
    sample = sample_every_days or DEFAULT_SAMPLE_DAYS
    if isinstance(system, str) and system != "baseline":
        system = ALL_VERSIONS[system]()
    label = system if isinstance(system, str) else system.name
    key = (
        f"{label}-{climate.name}-{workload}-def{deferrable}-s{sample}"
        f"-b{forecast_bias_c:+.1f}-j{DEFAULT_TRACE_JOBS}"
    )
    if key in _memory_cache:
        return _memory_cache[key]

    cache_file = CACHE_DIR / f"{key}.json"
    if use_disk_cache and cache_file.exists():
        with open(cache_file) as handle:
            result = _result_from_json(json.load(handle))
        _memory_cache[key] = result
        return result

    trace = (
        facebook_trace(deferrable) if workload == "facebook" else nutch_trace(deferrable)
    )
    model = None if isinstance(system, str) else trained_cooling_model()
    result = run_year(
        system,
        climate,
        trace,
        model=model,
        sample_every_days=sample,
        forecast_bias_c=forecast_bias_c,
    )
    _memory_cache[key] = result
    if use_disk_cache:
        CACHE_DIR.mkdir(exist_ok=True)
        with open(cache_file, "w") as handle:
            json.dump(_result_to_json(result), handle)
    return result


def five_location_matrix(
    systems: Tuple[str, ...] = (
        "baseline",
        "Temperature",
        "Energy",
        "Variation",
        "All-ND",
    ),
    workload: str = "facebook",
) -> Dict[str, Dict[str, YearResult]]:
    """The Figures 8-10 matrix: {system: {location: YearResult}}."""
    matrix: Dict[str, Dict[str, YearResult]] = {}
    for system in systems:
        matrix[system] = {}
        for name, climate in NAMED_LOCATIONS.items():
            deferrable = system in ("All-DEF", "Energy-DEF")
            matrix[system][name] = year_result(
                system, climate, workload=workload, deferrable=deferrable
            )
    return matrix
