"""Shared experiment runner for the benchmark harness.

Figures 8, 9, and 10 all read from the same 5-locations x N-systems year
matrix, and several Section 5.2 studies reuse subsets of it, so this module
runs each (system, location, workload) combination once and caches the
:class:`~repro.sim.yearsim.YearResult` both in memory and on disk (JSON
under ``.cache/`` at the repository root).  Delete the cache directory to
force fresh runs.

Cache contract (see ``docs/EXPERIMENTS.md`` for the full write-up):

* Entries are keyed by a *versioned* cache key: the system's config
  fingerprint (name + a hash of every :class:`CoolAirConfig` field), the
  climate, the workload settings, and ``CACHE_SCHEMA_VERSION``.  Changing
  a version's configuration or bumping the schema version silently starts
  a fresh cache generation instead of serving stale results.
* Writes are atomic (temp file + ``os.replace``) so concurrent workers —
  see :mod:`repro.analysis.runner` — never expose half-written entries.
* Corrupt or mismatched entries are treated as misses and recomputed,
  never crashed on.

Environment knobs (for CI-speed vs fidelity trade-offs):

* ``REPRO_SAMPLE_DAYS`` — stride between simulated days (default 14; set
  to 7 for the paper's exact first-day-of-each-week sampling; larger =
  faster).
* ``REPRO_TRACE_JOBS`` — number of jobs in the generated Facebook trace
  (default 1200; the paper's full 5500 changes utilization little because
  traces are rescaled to the same average utilization).
* ``REPRO_WORLD_LOCATIONS`` — world-grid size for Figures 12/13
  (default 24; the paper uses 1520 — set it for a full run).
* ``REPRO_WORKERS`` — worker processes for the campaign runner
  (default ``os.cpu_count()``; 1 forces serial execution).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro import artifacts
from repro.core.config import CoolAirConfig
from repro.errors import ConfigError
from repro.core.versions import ALL_VERSIONS
from repro.sim.campaign import trained_cooling_model
from repro.sim.yearsim import YearResult, run_year
from repro.weather.climate import Climate
from repro.weather.locations import NAMED_LOCATIONS, world_grid
from repro.workload.traces import FacebookTraceGenerator, NutchTraceGenerator, Trace

# ``REPRO_CACHE_DIR`` relocates the result cache (spawned workers and
# subprocess benchmarks inherit it through the environment, unlike a
# monkeypatched module attribute).
CACHE_DIR = pathlib.Path(
    os.environ.get("REPRO_CACHE_DIR")
    or pathlib.Path(__file__).resolve().parents[3] / ".cache"
)

# Bump whenever the simulator or the YearResult payload changes meaning:
# entries written under a different schema version are recomputed.
# v3: half-up sensor quantization + daily_degraded_fraction payload field.
# v4: day boundaries reset actuator/latch/disk state, making sampled days
#     independent (the invariant behind day-unfolded lane scheduling).
CACHE_SCHEMA_VERSION = 4

DEFAULT_SAMPLE_DAYS = int(os.environ.get("REPRO_SAMPLE_DAYS", "14"))
DEFAULT_TRACE_JOBS = int(os.environ.get("REPRO_TRACE_JOBS", "1200"))
DEFAULT_WORLD_LOCATIONS = int(os.environ.get("REPRO_WORLD_LOCATIONS", "24"))

# Which numeric path computes year runs: the lane-batched engine
# (``repro.sim.lanes``, the default) or the scalar reference
# (``repro.sim.yearsim``).  The two are maintained bit-identical (see
# ``tests/test_lane_equivalence.py``), but the cache key still records the
# engine so results can never be served across numeric paths whose
# equivalence has not been proven for that configuration.
DEFAULT_SIM_ENGINE = os.environ.get("REPRO_SIM_ENGINE", "lanes")
SIM_ENGINES = ("lanes", "scalar")

# How many scenarios each lane-batched chunk steps in lockstep (see
# ``run_year_lanes``); composes with worker processes as workers x lanes.
DEFAULT_LANES = int(os.environ.get("REPRO_LANES", "8"))


def resolve_day_lanes(
    day_lanes: Optional[int] = None, lanes: Optional[int] = None
) -> int:
    """The day-unfold width a run should use (1 = stay day-sequential).

    An explicit ``day_lanes`` argument always wins.  Otherwise
    ``REPRO_DAY_UNFOLD`` decides: unset/``0`` keeps the day-sequential
    path, ``1`` unfolds to the run's lane width (``lanes`` if given, else
    ``REPRO_LANES``), and any other integer is an explicit width.  Read
    per call so spawned workers inherit it through the environment.
    """
    if day_lanes is not None:
        if day_lanes < 1:
            raise ConfigError(f"day_lanes must be >= 1, got {day_lanes}")
        return int(day_lanes)
    raw = os.environ.get("REPRO_DAY_UNFOLD", "0").strip()
    if raw in ("", "0"):
        return 1
    if raw == "1":
        return lanes if lanes is not None else DEFAULT_LANES
    try:
        width = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_DAY_UNFOLD must be a non-negative integer, got {raw!r}"
        )
    if width < 1:
        raise ConfigError(f"REPRO_DAY_UNFOLD must be >= 0, got {raw!r}")
    return width

_memory_cache: Dict[str, YearResult] = {}
_trace_cache: Dict[str, Trace] = {}


def facebook_trace(deferrable: bool = False) -> Trace:
    """The (cached) day-long Facebook workload trace.

    Served from the artifact store when enabled — generated once per
    (params, deferrable) key on a machine, materialized from the columnar
    entry everywhere else — and memoized per process either way.
    """
    key = f"facebook-{deferrable}-{DEFAULT_TRACE_JOBS}"
    if key not in _trace_cache:
        generator = FacebookTraceGenerator(num_jobs=DEFAULT_TRACE_JOBS)
        _trace_cache[key] = artifacts.materialize_trace(
            "facebook",
            {
                "num_jobs": generator.num_jobs,
                "seed": generator.seed,
                "target_utilization": generator.target_utilization,
                "num_servers": generator.num_servers,
                "slots_per_server": generator.slots_per_server,
                "deferrable": deferrable,
            },
            lambda: generator.generate(deferrable=deferrable),
        )
    return _trace_cache[key]


def nutch_trace(deferrable: bool = False) -> Trace:
    """The (cached) day-long Nutch workload trace."""
    key = f"nutch-{deferrable}"
    if key not in _trace_cache:
        generator = NutchTraceGenerator()
        _trace_cache[key] = artifacts.materialize_trace(
            "nutch",
            {
                "num_jobs": generator.num_jobs,
                "mean_interarrival_s": generator.mean_interarrival_s,
                "seed": generator.seed,
                "target_utilization": generator.target_utilization,
                "num_servers": generator.num_servers,
                "slots_per_server": generator.slots_per_server,
                "deferrable": deferrable,
            },
            lambda: generator.generate(deferrable=deferrable),
        )
    return _trace_cache[key]


# -- cache schema --------------------------------------------------------------


def _result_to_json(result: YearResult) -> dict:
    payload = {
        "label": result.label,
        "climate_name": result.climate_name,
        "sampled_days": result.sampled_days,
        "daily_worst_range_c": result.daily_worst_range_c,
        "daily_outside_range_c": result.daily_outside_range_c,
        "daily_avg_violation_c": result.daily_avg_violation_c,
        "daily_max_rate_c_per_hour": result.daily_max_rate_c_per_hour,
        "cooling_kwh": result.cooling_kwh,
        "it_kwh": result.it_kwh,
        "delivery_overhead": result.delivery_overhead,
        "water_l": result.water_l,
        "daily_degraded_fraction": result.daily_degraded_fraction,
    }
    # Regime occupancy only appears for runs that had any (the hybrid
    # plant), keeping every other payload byte-identical to before the
    # fields existed; absent keys load as the 0.0 defaults.
    if result.tower_mech_hours or result.chiller_mech_hours:
        payload["tower_mech_hours"] = result.tower_mech_hours
        payload["chiller_mech_hours"] = result.chiller_mech_hours
    return payload


def _result_from_json(payload: dict) -> YearResult:
    return YearResult(**payload)


def config_fingerprint(system: Union[str, CoolAirConfig]) -> str:
    """A cache-key component that changes whenever the config changes.

    ``"baseline"`` fingerprints as itself; a :class:`CoolAirConfig` as its
    name plus a hash over every field, so two configs that share a name
    but differ in any setting never collide, and editing a version's
    defaults invalidates its old cache entries.
    """
    if isinstance(system, str):
        return system
    blob = json.dumps(
        dataclasses.asdict(system), sort_keys=True, default=str
    )
    digest = hashlib.sha1(blob.encode()).hexdigest()[:10]
    return f"{system.name}-{digest}"


def effective_engine(
    system: Union[str, CoolAirConfig],
    engine: Optional[str] = None,
    plant: str = "parasol",
) -> str:
    """The simulation engine a run of ``system`` would actually use.

    Thin wrapper over :func:`repro.sim.eligibility.decide_engine` (the
    single statement of the rules) that resolves the requested engine
    from ``REPRO_SIM_ENGINE``.  A config with exotic timing or a
    non-empty :class:`~repro.faults.FaultSchedule` falls back to the
    scalar reference path (and is fingerprinted as such, so the cache
    stays honest about which numeric path produced each entry); every
    cooling plant rides the lane engine.
    """
    from repro.sim.eligibility import decide_engine

    return decide_engine(
        system, engine or DEFAULT_SIM_ENGINE, plant=plant
    ).engine


def _resolve_system(
    system: Union[str, CoolAirConfig]
) -> Tuple[Union[str, CoolAirConfig], str]:
    """Named Table 1 versions become configs; returns (system, label)."""
    if isinstance(system, str) and system != "baseline":
        system = ALL_VERSIONS[system]()
    label = system if isinstance(system, str) else system.name
    return system, label


def day_unfold_eligible(
    system: Union[str, CoolAirConfig],
    deferrable: bool = False,
    engine: Optional[str] = None,
    plant: str = "parasol",
) -> bool:
    """Whether a cell's sampled days may be unfolded into lanes.

    Day-unfolding simulates a year's sampled days side by side, which is
    only valid when every day is provably independent of the days before
    it.  Three things break that today and route to the day-sequential
    path instead:

    * the scalar engine (faulted cells and exotic timing already fall
      back there via :func:`effective_engine` — fault schedules are
      day-granular state the unfold cannot replay);
    * deferrable workloads (their traces exist to be temporally
      rescheduled); and
    * any temporal-scheduling policy other than ``NONE`` (the scheduler
      mutates job start times across days — All-DEF and Energy-DEF).

    Thin wrapper over :func:`repro.sim.eligibility.decide_engine`, which
    states those rules once for every caller.
    """
    from repro.sim.eligibility import decide_engine

    system, _ = _resolve_system(system)
    return decide_engine(
        system,
        engine or DEFAULT_SIM_ENGINE,
        plant=plant,
        deferrable=deferrable,
    ).day_unfold


def cache_key(
    system: Union[str, CoolAirConfig],
    climate: Climate,
    workload: str = "facebook",
    deferrable: bool = False,
    sample_every_days: Optional[int] = None,
    forecast_bias_c: float = 0.0,
    engine: Optional[str] = None,
    plant: str = "parasol",
) -> str:
    """The versioned cache key for one (system, location, workload) run.

    Besides the config fingerprint, the key pins every numeric-path switch
    that could change bits: the simulation engine (lane-batched vs the
    scalar reference) joins the schema version here, so flipping
    ``REPRO_SIM_ENGINE`` starts a separate cache generation instead of
    serving results computed by a different code path.  The cooling plant
    adds a ``-p{plant}`` token only when it is not the default
    ``parasol``, keeping every pre-backend key byte-identical.
    """
    system, _ = _resolve_system(system)
    sample = sample_every_days or DEFAULT_SAMPLE_DAYS
    engine = effective_engine(system, engine, plant)
    plant_token = "" if plant == "parasol" else f"-p{plant}"
    return (
        f"{config_fingerprint(system)}-{climate.name}-{workload}"
        f"-def{deferrable}-s{sample}"
        f"-b{forecast_bias_c:+.1f}-j{DEFAULT_TRACE_JOBS}"
        f"-e{engine}{plant_token}-v{CACHE_SCHEMA_VERSION}"
    )


def cache_path(key: str) -> pathlib.Path:
    return CACHE_DIR / f"{key}.json"


def _load_disk_entry(key: str) -> Optional[YearResult]:
    """Read one cache entry; any corruption or mismatch is a miss."""
    path = cache_path(key)
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("key") != key:
            return None
        return _result_from_json(payload["result"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


def _write_disk_entry(key: str, result: YearResult) -> None:
    """Atomically persist one entry (safe under concurrent writers)."""
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": CACHE_SCHEMA_VERSION,
        "key": key,
        "result": _result_to_json(result),
    }
    path = cache_path(key)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def load_cached(
    key: str, use_disk_cache: bool = True, cache_memory: bool = True
) -> Optional[YearResult]:
    """Memory-then-disk lookup; returns None on a miss.

    ``cache_memory=False`` skips seeding the in-process memory cache on a
    disk hit — the streaming world sweep folds each result into compact
    summary columns instead of pinning the whole matrix in the parent.
    """
    if key in _memory_cache:
        return _memory_cache[key]
    if not use_disk_cache:
        return None
    result = _load_disk_entry(key)
    if result is not None and cache_memory:
        _memory_cache[key] = result
    return result


def store_result(
    key: str, result: YearResult, use_disk_cache: bool = True
) -> None:
    _memory_cache[key] = result
    if use_disk_cache:
        _write_disk_entry(key, result)


# -- the single-run entry point ------------------------------------------------


def year_result(
    system: Union[str, CoolAirConfig],
    climate: Climate,
    workload: str = "facebook",
    deferrable: bool = False,
    sample_every_days: Optional[int] = None,
    forecast_bias_c: float = 0.0,
    use_disk_cache: bool = True,
    engine: Optional[str] = None,
    day_lanes: Optional[int] = None,
    plant: Optional[str] = None,
) -> YearResult:
    """One cached year run.

    ``system`` is ``"baseline"``, a version name from Table 1 (e.g.
    ``"All-ND"``), or an explicit :class:`CoolAirConfig`.  ``engine``
    selects the numeric path (default ``REPRO_SIM_ENGINE``); a single
    task runs as a one-lane batch under the lane engine, bit-identical to
    the scalar reference.  ``day_lanes`` > 1 (default
    ``REPRO_DAY_UNFOLD``) unfolds an eligible cell's sampled days into
    that many lanes stepped in lockstep — bit-identical again, so the
    cache key does not record it.  ``plant`` selects the cooling backend
    (default ``REPRO_PLANT`` or ``parasol``); every backend rides the
    lane engine through its lane-vectorized units.
    """
    from repro.cooling.backends import resolve_plant

    plant = resolve_plant(plant)
    sample = sample_every_days or DEFAULT_SAMPLE_DAYS
    system, _ = _resolve_system(system)
    engine = effective_engine(system, engine, plant)
    key = cache_key(
        system,
        climate,
        workload,
        deferrable,
        sample,
        forecast_bias_c,
        engine,
        plant,
    )
    cached = load_cached(key, use_disk_cache)
    if cached is not None:
        return cached

    trace = (
        facebook_trace(deferrable) if workload == "facebook" else nutch_trace(deferrable)
    )
    if isinstance(system, str):
        model = None
    else:
        gaps = system.faults.log_gaps if system.faults is not None else ()
        model = trained_cooling_model(log_gaps=gaps)
    if engine == "lanes":
        from repro.sim.lanes import (
            LaneScenario,
            run_year_lanes,
            run_year_unfolded,
        )

        scenario = LaneScenario(
            system=system,
            climate=climate,
            trace=trace,
            forecast_bias_c=forecast_bias_c,
            plant=plant,
        )
        width = resolve_day_lanes(day_lanes)
        if width > 1 and day_unfold_eligible(system, deferrable, engine, plant):
            result = run_year_unfolded(
                scenario, width, model=model, sample_every_days=sample
            )
        else:
            (result,) = run_year_lanes(
                [scenario], model=model, sample_every_days=sample
            )
    else:
        result = run_year(
            system,
            climate,
            trace,
            model=model,
            sample_every_days=sample,
            forecast_bias_c=forecast_bias_c,
            plant=plant,
        )
    store_result(key, result, use_disk_cache)
    return result


# -- campaign matrices ---------------------------------------------------------

FIVE_LOCATION_SYSTEMS: Tuple[str, ...] = (
    "baseline",
    "Temperature",
    "Energy",
    "Variation",
    "All-ND",
)


def five_location_matrix(
    systems: Tuple[str, ...] = FIVE_LOCATION_SYSTEMS,
    workload: str = "facebook",
    sample_every_days: Optional[int] = None,
    workers: Optional[int] = None,
    lanes: Optional[int] = None,
    day_lanes: Optional[int] = None,
    progress=None,
    task_retries: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    failures: Optional[list] = None,
    plant: Optional[str] = None,
) -> Dict[str, Dict[str, YearResult]]:
    """The Figures 8-10 matrix: {system: {location: YearResult}}.

    ``workers`` fans uncached cells out over worker processes (see
    :mod:`repro.analysis.runner`) and ``lanes`` batches cells into
    lockstep lane groups within each worker (workers x lanes cells in
    flight); ``None`` resolves ``REPRO_WORKERS`` / CPU count and
    ``REPRO_LANES``.  Results are identical any way the work is split.

    ``task_retries`` / ``task_timeout_s`` tune the runner's failure
    handling, and passing a ``failures`` list collects failed cells
    (as :class:`~repro.analysis.runner.TaskFailure`) instead of raising
    on the first one; failed cells are omitted from the matrix.
    """
    from repro.analysis.runner import YearTask, run_year_tasks
    from repro.cooling.backends import resolve_plant

    plant = resolve_plant(plant)
    tasks = []
    cells = []
    for system in systems:
        for name, climate in NAMED_LOCATIONS.items():
            deferrable = system in ("All-DEF", "Energy-DEF")
            tasks.append(YearTask(
                system=system,
                climate=climate,
                workload=workload,
                deferrable=deferrable,
                sample_every_days=sample_every_days,
                plant=plant,
            ))
            cells.append((system, name))
    results = run_year_tasks(
        tasks,
        workers=workers,
        lanes=lanes,
        day_lanes=day_lanes,
        progress=progress,
        task_retries=task_retries,
        task_timeout_s=task_timeout_s,
        failures=failures,
    )
    matrix: Dict[str, Dict[str, YearResult]] = {}
    for (system, name), result in zip(cells, results):
        if result is not None:
            matrix.setdefault(system, {})[name] = result
    return matrix


def resolve_stream(stream: Optional[bool] = None) -> bool:
    """Whether the world sweep streams (``REPRO_STREAM_WORLD``, on by
    default); an explicit argument always wins."""
    if stream is not None:
        return stream
    return os.environ.get("REPRO_STREAM_WORLD", "1") != "0"


def world_sweep(
    num_locations: Optional[int] = None,
    coolair_system: str = "All-ND",
    sample_every_days: Optional[int] = None,
    workers: Optional[int] = None,
    lanes: Optional[int] = None,
    day_lanes: Optional[int] = None,
    progress=None,
    task_retries: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    failures: Optional[list] = None,
    stream: Optional[bool] = None,
    screen: Optional[str] = None,
    screen_policy=None,
    screen_stats: Optional[dict] = None,
    plant: Optional[str] = None,
):
    """The Figures 12/13 worldwide study as a :class:`WorldSummary`.

    Runs ``baseline`` and ``coolair_system`` for every grid climate
    (``num_locations`` defaults to ``REPRO_WORLD_LOCATIONS``), fanning
    uncached cells out over ``workers`` processes with ``lanes`` cells
    stepped in lockstep per worker.  With a ``failures`` list, failed
    cells are collected instead of raising; a climate missing either of
    its (baseline, coolair) results is dropped from the summary.

    ``stream`` (default ``REPRO_STREAM_WORLD``, on) folds each completed
    cell into compact summary columns as it lands instead of holding the
    full result list in the parent — bit-identical output, parent memory
    bounded by the grid size (see
    :class:`~repro.analysis.worldmap.StreamingWorldAccumulator`).

    ``screen`` (default ``REPRO_SCREEN``, off) selects the screening
    pipeline for planetary-scale grids: ``"on"`` fully simulates only
    climate-cluster representatives plus surrogate-uncertain cells and
    serves the rest with bounded corrections and provenance tags (see
    :mod:`repro.analysis.screening`; ``screen_policy`` tunes it).
    ``"off"`` is the exhaustive path, bit-identical to previous
    releases.  Passing a ``screen_stats`` dict collects the run's
    provenance counters, cluster stats, and cost-model snapshot.
    """
    from repro.analysis.runner import YearTask, run_year_tasks
    from repro.analysis.screening import resolve_screen
    from repro.analysis.worldmap import summarize_world
    from repro.cooling.backends import resolve_plant

    plant = resolve_plant(plant)
    mode = resolve_screen(screen)
    climates = world_grid(num_locations or DEFAULT_WORLD_LOCATIONS)
    if mode == "on":
        return _screened_world_sweep(
            climates,
            coolair_system,
            sample_every_days=sample_every_days,
            workers=workers,
            lanes=lanes,
            day_lanes=day_lanes,
            progress=progress,
            task_retries=task_retries,
            task_timeout_s=task_timeout_s,
            failures=failures,
            policy=screen_policy,
            screen_stats=screen_stats,
            plant=plant,
        )
    tasks = []
    for climate in climates:
        for system in ("baseline", coolair_system):
            tasks.append(YearTask(
                system=system,
                climate=climate,
                sample_every_days=sample_every_days,
                plant=plant,
            ))
    if resolve_stream(stream):
        from repro.analysis.worldmap import StreamingWorldAccumulator

        accumulator = StreamingWorldAccumulator(climates, coolair_system)
        run_year_tasks(
            tasks,
            workers=workers,
            lanes=lanes,
            day_lanes=day_lanes,
            progress=progress,
            task_retries=task_retries,
            task_timeout_s=task_timeout_s,
            failures=failures,
            consume=accumulator.consume,
            keep_results=False,
        )
        return accumulator.summary()
    results = run_year_tasks(
        tasks,
        workers=workers,
        lanes=lanes,
        day_lanes=day_lanes,
        progress=progress,
        task_retries=task_retries,
        task_timeout_s=task_timeout_s,
        failures=failures,
    )
    # Pair each climate's (baseline, coolair) results by task identity —
    # positional 2*i indexing silently mispairs if the task layout above
    # ever changes (and did not survive reordering or filtering).
    by_task: Dict[Tuple[str, str], YearResult] = {}
    for task, result in zip(tasks, results):
        if result is None:
            continue
        name = (
            task.system if isinstance(task.system, str) else task.system.name
        )
        by_task[(task.climate.name, name)] = result
    pairs = []
    coordinates = []
    for c in climates:
        baseline = by_task.get((c.name, "baseline"))
        coolair = by_task.get((c.name, coolair_system))
        if baseline is None or coolair is None:
            continue
        pairs.append((baseline, coolair))
        coordinates.append((c.latitude, c.longitude))
    return summarize_world(pairs, coordinates)


def _screened_world_sweep(
    climates,
    coolair_system: str,
    sample_every_days: Optional[int] = None,
    workers: Optional[int] = None,
    lanes: Optional[int] = None,
    day_lanes: Optional[int] = None,
    progress=None,
    task_retries: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    failures: Optional[list] = None,
    policy=None,
    screen_stats: Optional[dict] = None,
    plant: str = "parasol",
):
    """The screened world sweep: simulate representatives + uncertain
    cells, serve the rest (see :mod:`repro.analysis.screening`).

    Always streams (the whole point is grids too large to hold results
    for).  Phase 1 simulates one representative per climate cluster,
    phase 2 promotes the cells the surrogate is uncertain about, phase 3
    prices everything else from cluster representatives or the surrogate
    and tags provenance.  The cost model observes both simulation phases
    and sizes phase 2's lane batches when ``lanes`` is not forced.
    """
    from repro.analysis.runner import run_year_tasks
    from repro.analysis.screening import ScreeningSession
    from repro.analysis.worldmap import StreamingWorldAccumulator

    session = ScreeningSession(
        climates,
        coolair_system=coolair_system,
        policy=policy,
        sample_every_days=sample_every_days,
        plant=plant,
    )
    accumulator = StreamingWorldAccumulator(climates, coolair_system)
    common = dict(
        workers=workers,
        day_lanes=day_lanes,
        progress=progress,
        task_retries=task_retries,
        task_timeout_s=task_timeout_s,
        failures=failures,
        consume=accumulator.consume,
        keep_results=False,
        cost_model=session.cost_model,
    )
    run_year_tasks(session.representative_tasks(), lanes=lanes, **common)
    uncertain = session.uncertain_tasks(accumulator)
    if uncertain:
        run_year_tasks(uncertain, lanes=lanes, **common)
    counters = session.serve(accumulator)
    if screen_stats is not None:
        screen_stats.update(
            {
                "counters": counters.to_json(),
                "grid_points": len(session.climates),
                "clusters": len(session.clusters),
                "cluster_tol": session.effective_tol,
                "simulated_locations": session.simulated_locations,
                "promoted_locations": session.promoted_locations,
                "cells_simulated": 2 * session.simulated_locations,
                "cost_model": session.cost_model.snapshot(),
            }
        )
    return accumulator.summary(partial=True)
