"""World-wide aggregation (Figures 12 and 13).

The paper maps, for 1520 locations, CoolAir's reduction in maximum daily
temperature range and in yearly PUE relative to the baseline.  This module
buckets per-location results into the figures' legend bins and computes
the headline averages (paper: max range 18.6 -> 12.1C on average, PUE 1.08
-> 1.09).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.yearsim import YearResult

# Figure 12 legend bins for max-range reduction, in degrees C.
RANGE_BINS: Tuple[Tuple[float, float], ...] = (
    (-1.0, 0.0),
    (0.0, 2.0),
    (2.0, 4.0),
    (4.0, 6.0),
    (6.0, 8.0),
    (8.0, 10.0),
    (10.0, 14.0),
    (14.0, float("inf")),
)

# Figure 13 legend bins for PUE reduction.
PUE_BINS: Tuple[Tuple[float, float], ...] = (
    (-0.04, -0.02),
    (-0.02, -0.01),
    (-0.01, 0.0),
    (0.0, 0.01),
    (0.01, 0.02),
    (0.02, 0.03),
)


@dataclasses.dataclass(frozen=True)
class LocationComparison:
    """Baseline-vs-CoolAir deltas at one location."""

    name: str
    latitude: float
    longitude: float
    baseline_max_range_c: float
    coolair_max_range_c: float
    baseline_pue: float
    coolair_pue: float

    @property
    def range_reduction_c(self) -> float:
        return self.baseline_max_range_c - self.coolair_max_range_c

    @property
    def pue_reduction(self) -> float:
        return self.baseline_pue - self.coolair_pue


@dataclasses.dataclass(frozen=True)
class WorldSummary:
    """Aggregates over all compared locations."""

    comparisons: Tuple[LocationComparison, ...]

    @property
    def avg_baseline_max_range_c(self) -> float:
        return float(np.mean([c.baseline_max_range_c for c in self.comparisons]))

    @property
    def avg_coolair_max_range_c(self) -> float:
        return float(np.mean([c.coolair_max_range_c for c in self.comparisons]))

    @property
    def avg_baseline_pue(self) -> float:
        return float(np.mean([c.baseline_pue for c in self.comparisons]))

    @property
    def avg_coolair_pue(self) -> float:
        return float(np.mean([c.coolair_pue for c in self.comparisons]))

    @property
    def fraction_range_worsened(self) -> float:
        """Locations where CoolAir *increased* the max range (paper: <2%,
        always by less than 1C)."""
        return float(
            np.mean([c.range_reduction_c < 0 for c in self.comparisons])
        )

    @property
    def worst_range_increase_c(self) -> float:
        increases = [-c.range_reduction_c for c in self.comparisons]
        return float(max(increases)) if increases else 0.0

    # -- reporting helpers ---------------------------------------------------

    def range_bucket_counts(self) -> Dict[str, int]:
        """Figure 12's legend histogram of max-range reductions."""
        return bucket_counts(
            [c.range_reduction_c for c in self.comparisons], RANGE_BINS
        )

    def pue_bucket_counts(self) -> Dict[str, int]:
        """Figure 13's legend histogram of PUE reductions."""
        return bucket_counts(
            [c.pue_reduction for c in self.comparisons], PUE_BINS
        )

    def headline(self) -> str:
        """The paper's headline sentence for Figures 12/13."""
        return (
            f"avg max range: baseline {self.avg_baseline_max_range_c:.1f}C -> "
            f"CoolAir {self.avg_coolair_max_range_c:.1f}C;  "
            f"avg PUE: {self.avg_baseline_pue:.2f} -> {self.avg_coolair_pue:.2f}"
        )


def summarize_world(
    pairs: Sequence[Tuple[YearResult, YearResult]],
    coordinates: Sequence[Tuple[float, float]],
) -> WorldSummary:
    """Build a :class:`WorldSummary` from (baseline, coolair) result pairs."""
    if len(pairs) != len(coordinates):
        raise SimulationError("need one coordinate pair per result pair")
    if not pairs:
        raise SimulationError("no locations to summarize")
    comparisons = []
    for (baseline, coolair), (lat, lon) in zip(pairs, coordinates):
        comparisons.append(
            LocationComparison(
                name=baseline.climate_name,
                latitude=lat,
                longitude=lon,
                baseline_max_range_c=baseline.max_range_c,
                coolair_max_range_c=coolair.max_range_c,
                baseline_pue=baseline.pue,
                coolair_pue=coolair.pue,
            )
        )
    return WorldSummary(comparisons=tuple(comparisons))


class StreamingWorldAccumulator:
    """Folds world-sweep cells into compact per-location columns.

    The in-memory sweep keeps every :class:`YearResult` — daily series
    included — alive in the parent until the last cell lands.  This
    accumulator is the streaming alternative: the runner's ``consume``
    hook folds each completed cell into a ``(4, n)`` metrics array (the
    four floats Figures 12/13 actually plot) and the full result is
    dropped, so parent memory is bounded by the grid size, not by
    grid x sampled-days.  ``summary()`` yields the same
    :class:`WorldSummary` as the in-memory path, bit-identical and in
    grid order; a climate missing either of its (baseline, coolair)
    results is dropped, matching the in-memory pairing rules.
    """

    # Metric rows: baseline/coolair max range, baseline/coolair PUE.
    _ROWS = 4

    def __init__(self, climates: Sequence, coolair_system: str) -> None:
        self._climates = tuple(climates)
        self._coolair = coolair_system
        self._slots = {c.name: i for i, c in enumerate(self._climates)}
        n = len(self._climates)
        self._metrics = np.full((self._ROWS, n), np.nan)
        self._seen = np.zeros((2, n), dtype=bool)

    def consume(self, index: int, task, result) -> None:
        """Runner ``consume`` hook: fold one completed cell."""
        if result is None:
            return
        slot = self._slots.get(task.climate.name)
        if slot is None:
            return
        name = (
            task.system if isinstance(task.system, str) else task.system.name
        )
        if name == "baseline":
            self._metrics[0, slot] = result.max_range_c
            self._metrics[2, slot] = result.pue
            self._seen[0, slot] = True
        elif name == self._coolair:
            self._metrics[1, slot] = result.max_range_c
            self._metrics[3, slot] = result.pue
            self._seen[1, slot] = True

    def summary(self) -> WorldSummary:
        comparisons: List[LocationComparison] = []
        for i, climate in enumerate(self._climates):
            if not (self._seen[0, i] and self._seen[1, i]):
                continue
            comparisons.append(
                LocationComparison(
                    name=climate.name,
                    latitude=climate.latitude,
                    longitude=climate.longitude,
                    baseline_max_range_c=float(self._metrics[0, i]),
                    coolair_max_range_c=float(self._metrics[1, i]),
                    baseline_pue=float(self._metrics[2, i]),
                    coolair_pue=float(self._metrics[3, i]),
                )
            )
        if not comparisons:
            raise SimulationError("no locations to summarize")
        return WorldSummary(comparisons=tuple(comparisons))


def bucket_counts(
    values: Sequence[float], bins: Sequence[Tuple[float, float]]
) -> Dict[str, int]:
    """Histogram of values into legend bins; keys are "lo..hi" labels."""
    counts: Dict[str, int] = {}
    for lo, hi in bins:
        label = f"{lo:g}..{hi:g}" if hi != float("inf") else f">={lo:g}"
        counts[label] = sum(1 for v in values if lo <= v < hi)
    return counts
