"""World-wide aggregation (Figures 12 and 13).

The paper maps, for 1520 locations, CoolAir's reduction in maximum daily
temperature range and in yearly PUE relative to the baseline.  This module
buckets per-location results into the figures' legend bins and computes
the headline averages (paper: max range 18.6 -> 12.1C on average, PUE 1.08
-> 1.09).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.sim.yearsim import YearResult

# Figure 12 legend bins for max-range reduction, in degrees C.
RANGE_BINS: Tuple[Tuple[float, float], ...] = (
    (-1.0, 0.0),
    (0.0, 2.0),
    (2.0, 4.0),
    (4.0, 6.0),
    (6.0, 8.0),
    (8.0, 10.0),
    (10.0, 14.0),
    (14.0, float("inf")),
)

# Figure 13 legend bins for PUE reduction.
PUE_BINS: Tuple[Tuple[float, float], ...] = (
    (-0.04, -0.02),
    (-0.02, -0.01),
    (-0.01, 0.0),
    (0.0, 0.01),
    (0.01, 0.02),
    (0.02, 0.03),
)


@dataclasses.dataclass(frozen=True)
class LocationComparison:
    """Baseline-vs-CoolAir deltas at one location.

    ``provenance`` records how the metrics were produced: ``simulated``
    (full year runs), ``served_from_cluster`` (copied from a climate
    cluster representative with a bounded correction), or
    ``surrogate_only`` (priced by the screening surrogate) — see
    :mod:`repro.analysis.screening`.  Exhaustive sweeps are always
    ``simulated``.
    """

    name: str
    latitude: float
    longitude: float
    baseline_max_range_c: float
    coolair_max_range_c: float
    baseline_pue: float
    coolair_pue: float
    # WUE (L/kWh): zero for air-cooled plants and pre-water results.
    baseline_wue: float = 0.0
    coolair_wue: float = 0.0
    provenance: str = "simulated"

    @property
    def range_reduction_c(self) -> float:
        return self.baseline_max_range_c - self.coolair_max_range_c

    @property
    def pue_reduction(self) -> float:
        return self.baseline_pue - self.coolair_pue

    @property
    def wue_reduction(self) -> float:
        return self.baseline_wue - self.coolair_wue


@dataclasses.dataclass(frozen=True)
class WorldSummary:
    """Aggregates over all compared locations.

    Safe on an empty comparison set (partial summaries mid-stream):
    averages are NaN, fractions and bucket counts are zero, and
    :meth:`headline` says so instead of raising.
    """

    comparisons: Tuple[LocationComparison, ...]

    @staticmethod
    def _mean(values) -> float:
        values = list(values)
        return float(np.mean(values)) if values else float("nan")

    @property
    def avg_baseline_max_range_c(self) -> float:
        return self._mean(c.baseline_max_range_c for c in self.comparisons)

    @property
    def avg_coolair_max_range_c(self) -> float:
        return self._mean(c.coolair_max_range_c for c in self.comparisons)

    @property
    def avg_baseline_pue(self) -> float:
        return self._mean(c.baseline_pue for c in self.comparisons)

    @property
    def avg_coolair_pue(self) -> float:
        return self._mean(c.coolair_pue for c in self.comparisons)

    @property
    def avg_baseline_wue(self) -> float:
        return self._mean(c.baseline_wue for c in self.comparisons)

    @property
    def avg_coolair_wue(self) -> float:
        return self._mean(c.coolair_wue for c in self.comparisons)

    @property
    def fraction_range_worsened(self) -> float:
        """Locations where CoolAir *increased* the max range (paper: <2%,
        always by less than 1C)."""
        if not self.comparisons:
            return 0.0
        return float(
            np.mean([c.range_reduction_c < 0 for c in self.comparisons])
        )

    @property
    def worst_range_increase_c(self) -> float:
        increases = [-c.range_reduction_c for c in self.comparisons]
        return float(max(increases)) if increases else 0.0

    # -- reporting helpers ---------------------------------------------------

    def range_bucket_counts(self) -> Dict[str, int]:
        """Figure 12's legend histogram of max-range reductions."""
        return bucket_counts(
            [c.range_reduction_c for c in self.comparisons], RANGE_BINS
        )

    def pue_bucket_counts(self) -> Dict[str, int]:
        """Figure 13's legend histogram of PUE reductions."""
        return bucket_counts(
            [c.pue_reduction for c in self.comparisons], PUE_BINS
        )

    def provenance_counts(self) -> Dict[str, int]:
        """How each compared location's metrics were produced."""
        counts: Dict[str, int] = {}
        for c in self.comparisons:
            counts[c.provenance] = counts.get(c.provenance, 0) + 1
        return counts

    def headline(self) -> str:
        """The paper's headline sentence for Figures 12/13."""
        if not self.comparisons:
            return "no locations compared yet"
        # WUE only shows for water-drawing plants, keeping the default
        # (air-cooled) headline byte-identical to previous releases.
        wue = ""
        if any(c.baseline_wue or c.coolair_wue for c in self.comparisons):
            wue = (
                f";  avg WUE: {self.avg_baseline_wue:.2f} -> "
                f"{self.avg_coolair_wue:.2f} L/kWh"
            )
        return (
            f"avg max range: baseline {self.avg_baseline_max_range_c:.1f}C -> "
            f"CoolAir {self.avg_coolair_max_range_c:.1f}C;  "
            f"avg PUE: {self.avg_baseline_pue:.2f} -> {self.avg_coolair_pue:.2f}"
            f"{wue}"
        )


def summarize_world(
    pairs: Sequence[Tuple[YearResult, YearResult]],
    coordinates: Sequence[Tuple[float, float]],
) -> WorldSummary:
    """Build a :class:`WorldSummary` from (baseline, coolair) result pairs."""
    if len(pairs) != len(coordinates):
        raise SimulationError("need one coordinate pair per result pair")
    if not pairs:
        raise SimulationError("no locations to summarize")
    comparisons = []
    for (baseline, coolair), (lat, lon) in zip(pairs, coordinates):
        comparisons.append(
            LocationComparison(
                name=baseline.climate_name,
                latitude=lat,
                longitude=lon,
                baseline_max_range_c=baseline.max_range_c,
                coolair_max_range_c=coolair.max_range_c,
                baseline_pue=baseline.pue,
                coolair_pue=coolair.pue,
                baseline_wue=baseline.wue,
                coolair_wue=coolair.wue,
            )
        )
    return WorldSummary(comparisons=tuple(comparisons))


class StreamingWorldAccumulator:
    """Folds world-sweep cells into compact per-location columns.

    The in-memory sweep keeps every :class:`YearResult` — daily series
    included — alive in the parent until the last cell lands.  This
    accumulator is the streaming alternative: the runner's ``consume``
    hook folds each completed cell into a ``(6, n)`` metrics array (the
    floats Figures 12/13 plot, plus the WUE pair) and the full result is
    dropped, so parent memory is bounded by the grid size, not by
    grid x sampled-days.  ``summary()`` yields the same
    :class:`WorldSummary` as the in-memory path, bit-identical and in
    grid order; a climate missing either of its (baseline, coolair)
    results is dropped, matching the in-memory pairing rules.
    """

    # Metric rows: baseline/coolair max range, baseline/coolair PUE,
    # baseline/coolair WUE (order pinned by screening.METRIC_NAMES).
    _ROWS = 6

    def __init__(self, climates: Sequence, coolair_system: str) -> None:
        self._climates = tuple(climates)
        self._coolair = coolair_system
        self._slots = {c.name: i for i, c in enumerate(self._climates)}
        n = len(self._climates)
        self._metrics = np.full((self._ROWS, n), np.nan)
        self._seen = np.zeros((2, n), dtype=bool)
        self._provenance: List[str] = ["simulated"] * n

    @property
    def grid_size(self) -> int:
        return len(self._climates)

    def consume(self, index: int, task, result) -> None:
        """Runner ``consume`` hook: fold one completed cell."""
        if result is None:
            return
        slot = self._slots.get(task.climate.name)
        if slot is None:
            return
        name = (
            task.system if isinstance(task.system, str) else task.system.name
        )
        if name == "baseline":
            self._metrics[0, slot] = result.max_range_c
            self._metrics[2, slot] = result.pue
            self._metrics[4, slot] = result.wue
            self._seen[0, slot] = True
        elif name == self._coolair:
            self._metrics[1, slot] = result.max_range_c
            self._metrics[3, slot] = result.pue
            self._metrics[5, slot] = result.wue
            self._seen[1, slot] = True
        self._provenance[slot] = "simulated"

    def serve(
        self, name: str, metrics: Sequence[float], provenance: str
    ) -> None:
        """Fill one *unsimulated* location from the screening pipeline.

        ``metrics`` is the full metric-row vector (baseline/coolair max
        range, PUE, and WUE); ``provenance`` tags how it was
        produced (``served_from_cluster`` or ``surrogate_only``).  A slot
        that already holds simulated results is never overwritten —
        screening only fills gaps, it cannot change simulation output.
        """
        slot = self._slots.get(name)
        if slot is None:
            raise SimulationError(f"unknown world location {name!r}")
        if self._seen[0, slot] or self._seen[1, slot]:
            return
        if len(metrics) != self._ROWS:
            raise SimulationError(
                f"served metrics need {self._ROWS} values, got {len(metrics)}"
            )
        self._metrics[:, slot] = [float(v) for v in metrics]
        self._seen[:, slot] = True
        self._provenance[slot] = provenance

    def location_metrics(self, name: str):
        """The metric rows of one fully-resolved location, or None."""
        slot = self._slots.get(name)
        if slot is None or not (self._seen[0, slot] and self._seen[1, slot]):
            return None
        return [float(self._metrics[row, slot]) for row in range(self._ROWS)]

    def resolved_locations(self) -> int:
        """How many locations have both their metric columns filled."""
        return int(np.count_nonzero(self._seen[0] & self._seen[1]))

    def provenance_counts(self) -> Dict[str, int]:
        """Provenance histogram over fully-resolved locations."""
        counts: Dict[str, int] = {}
        both = self._seen[0] & self._seen[1]
        for slot in np.flatnonzero(both):
            tag = self._provenance[slot]
            counts[tag] = counts.get(tag, 0) + 1
        return counts

    def summary(self, partial: bool = False) -> WorldSummary:
        """The :class:`WorldSummary` over resolved locations.

        With ``partial=True`` the summary may cover any subset of the
        grid — including none of it — for mid-stream progress reporting;
        the default still raises :class:`SimulationError` when nothing
        resolved, matching the in-memory pairing path.
        """
        comparisons: List[LocationComparison] = []
        for i, climate in enumerate(self._climates):
            if not (self._seen[0, i] and self._seen[1, i]):
                continue
            comparisons.append(
                LocationComparison(
                    name=climate.name,
                    latitude=climate.latitude,
                    longitude=climate.longitude,
                    baseline_max_range_c=float(self._metrics[0, i]),
                    coolair_max_range_c=float(self._metrics[1, i]),
                    baseline_pue=float(self._metrics[2, i]),
                    coolair_pue=float(self._metrics[3, i]),
                    baseline_wue=float(self._metrics[4, i]),
                    coolair_wue=float(self._metrics[5, i]),
                    provenance=self._provenance[i],
                )
            )
        if not comparisons and not partial:
            raise SimulationError("no locations to summarize")
        return WorldSummary(comparisons=tuple(comparisons))


def bucket_counts(
    values: Sequence[float], bins: Sequence[Tuple[float, float]]
) -> Dict[str, int]:
    """Histogram of values into legend bins; keys are "lo..hi" labels."""
    counts: Dict[str, int] = {}
    for lo, hi in bins:
        label = f"{lo:g}..{hi:g}" if hi != float("inf") else f">={lo:g}"
        counts[label] = sum(1 for v in values if lo <= v < hi)
    return counts


# -- ASCII world map -----------------------------------------------------------

# Glyph ramp for the map raster, low to high metric value.
MAP_GLYPHS = " .:-=+*#%@"

# The latitude band world_grid spans (68N..56S) and the full longitude
# range; locations outside are clamped to the border rows/columns.
_MAP_LAT_MAX = 68.0
_MAP_LAT_MIN = -56.0


def render_world_map(
    summary: WorldSummary,
    metric: str = "range",
    width: int = 72,
    height: int = 20,
) -> str:
    """The summary as a fixed-size ASCII world map.

    Each character cell covers a latitude/longitude tile; locations
    landing in the same tile are averaged, so the output stays exactly
    ``width x height`` characters whether the sweep covered 24 points or
    100k+ — dense grids simply downsample harder.  ``metric`` picks what
    the glyph ramp encodes: ``"range"`` (max-range reduction in C, the
    Figure 12 view), ``"pue"`` (PUE reduction, Figure 13), or ``"wue"``
    (water-usage-effectiveness reduction in L/kWh).  Empty tiles (ocean,
    unresolved cells) render as spaces.
    """
    if metric not in ("range", "pue", "wue"):
        raise ConfigError(
            f"unknown map metric {metric!r}; choices: range, pue, wue"
        )
    if width < 8 or height < 4:
        raise SimulationError("map raster must be at least 8x4")
    sums = np.zeros((height, width))
    counts = np.zeros((height, width), dtype=int)
    for c in summary.comparisons:
        row = int(
            (_MAP_LAT_MAX - c.latitude)
            / (_MAP_LAT_MAX - _MAP_LAT_MIN)
            * (height - 1)
        )
        col = int((c.longitude + 180.0) / 360.0 * (width - 1))
        row = min(max(row, 0), height - 1)
        col = min(max(col, 0), width - 1)
        if metric == "range":
            value = c.range_reduction_c
        elif metric == "pue":
            value = c.pue_reduction
        else:
            value = c.wue_reduction
        sums[row, col] += value
        counts[row, col] += 1
    # Scale the glyph ramp over the observed value range so small and
    # large sweeps both use the full ramp.
    filled = counts > 0
    lines = []
    if filled.any():
        averages = np.where(filled, sums / np.maximum(counts, 1), 0.0)
        lo = float(averages[filled].min())
        hi = float(averages[filled].max())
        span = (hi - lo) or 1.0
        for row in range(height):
            chars = []
            for col in range(width):
                if not filled[row, col]:
                    chars.append(" ")
                    continue
                level = (averages[row, col] - lo) / span
                index = int(level * (len(MAP_GLYPHS) - 1))
                # Occupied tiles never render as the empty glyph.
                chars.append(MAP_GLYPHS[max(1, index)])
            lines.append("".join(chars))
        unit = {"range": "C", "pue": "", "wue": "L/kWh"}[metric]
        label = {"range": "max-range", "pue": "PUE", "wue": "WUE"}[metric]
        legend = (
            f"{MAP_GLYPHS[1]} = {lo:.2f}{unit} .. "
            f"{MAP_GLYPHS[-1]} = {hi:.2f}{unit} "
            f"({label} reduction, "
            f"{len(summary.comparisons)} locations)"
        )
    else:
        lines = [" " * width for _ in range(height)]
        legend = "no locations to map"
    border = "+" + "-" * width + "+"
    body = "\n".join(f"|{line}|" for line in lines)
    return f"{border}\n{body}\n{border}\n{legend}"
