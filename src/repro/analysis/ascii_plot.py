"""Terminal-friendly timeline rendering for day traces.

The paper's Figures 6 and 7 are day-long timelines of outside/inlet
temperatures with the active cooling regime shaded underneath.  This
module renders the same information as text so the benchmark harness and
examples can show *what the controller did*, not just summary numbers.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cooling.regimes import CoolingMode
from repro.errors import SimulationError
from repro.sim.trace import DayTrace

MODE_GLYPHS = {
    CoolingMode.CLOSED: ".",
    CoolingMode.FREE_COOLING: "F",
    CoolingMode.AC_FAN: "a",
    CoolingMode.AC_ON: "A",
}


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a series as a one-line unicode sparkline."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise SimulationError("cannot sparkline an empty series")
    ticks = "▁▂▃▄▅▆▇█"
    resampled = _resample(values, width)
    lo, hi = float(resampled.min()), float(resampled.max())
    if hi - lo < 1e-12:
        return ticks[0] * len(resampled)
    scaled = (resampled - lo) / (hi - lo) * (len(ticks) - 1)
    return "".join(ticks[int(round(v))] for v in scaled)


def _resample(values: np.ndarray, width: int) -> np.ndarray:
    if width < 1:
        raise SimulationError("width must be >= 1")
    if values.size <= width:
        return values
    edges = np.linspace(0, values.size, width + 1).astype(int)
    return np.array(
        [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
    )


def regime_ribbon(trace: DayTrace, width: int = 72) -> str:
    """One character per time slot showing the active cooling regime.

    ``.`` closed, ``F`` free cooling, ``a`` AC fan-only, ``A`` compressor.
    """
    modes = trace.modes()
    if not modes:
        raise SimulationError("cannot render an empty trace")
    edges = np.linspace(0, len(modes), width + 1).astype(int)
    chars: List[str] = []
    for a, b in zip(edges[:-1], edges[1:]):
        window = modes[a:b] or [modes[min(a, len(modes) - 1)]]
        # Dominant mode in the window.
        dominant = max(set(window), key=window.count)
        chars.append(MODE_GLYPHS[dominant])
    return "".join(chars)


def render_day(trace: DayTrace, width: int = 72) -> str:
    """A Figure 6/7-style text panel for one simulated day."""
    temps = trace.sensor_temps()
    outside = trace.outside_temps()
    inlet_hi = temps.max(axis=1)
    lines = [
        f"{trace.label or 'day'} — day {trace.day_of_year}"
        f"  (max {trace.max_sensor_temp_c():.1f}C, "
        f"range {trace.worst_sensor_range_c():.1f}C, PUE {trace.pue():.2f})",
        f"outside [{outside.min():5.1f}..{outside.max():5.1f}C] "
        + sparkline(outside, width),
        f"inlet   [{inlet_hi.min():5.1f}..{inlet_hi.max():5.1f}C] "
        + sparkline(inlet_hi, width),
        "regime  " + " " * 16 + regime_ribbon(trace, width),
        "        " + " " * 16 + "(. closed  F free-cooling  a AC fan  A compressor)",
    ]
    return "\n".join(lines)
