"""Parallel campaign runner for the experiment harness.

The paper's evaluation is an embarrassingly-parallel sweep: a 5-locations
x N-systems x 2-workloads year matrix (Figures 8-10, Section 5.2) and a
1520-location worldwide grid (Figures 12/13).  Every cell is an
independent deterministic year simulation, so this module fans them out
over a :class:`concurrent.futures.ProcessPoolExecutor`:

* worker count comes from the ``workers`` argument, the ``REPRO_WORKERS``
  environment variable, or ``os.cpu_count()``, in that order;
* ``workers=1`` (or a single pending task) falls back to plain in-process
  execution — no pool, no pickling;
* results come back in task order regardless of completion order, and the
  simulations are deterministic, so serial and parallel runs produce
  identical results;
* cells already present in the memory or disk cache are served in the
  parent without spawning anything, and workers persist fresh results
  through the same atomic, schema-versioned disk cache
  (:mod:`repro.analysis.experiments`), so a re-run is free.

Workers return the JSON cache payload rather than the live
:class:`YearResult` so the parallel path goes through exactly the same
serialization as a disk-cache hit.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, List, Optional, Sequence, Union

from repro.core.config import CoolAirConfig
from repro.errors import ReproError
from repro.sim.yearsim import YearResult
from repro.weather.climate import Climate

# Called after each finished cell with (done_count, total, task).
ProgressCallback = Callable[[int, int, "YearTask"], None]


@dataclasses.dataclass(frozen=True)
class YearTask:
    """One (system, location, workload) cell of a campaign.

    Mirrors :func:`repro.analysis.experiments.year_result`'s signature and
    must stay picklable (plain data only) so it can cross to workers.
    """

    system: Union[str, CoolAirConfig]
    climate: Climate
    workload: str = "facebook"
    deferrable: bool = False
    sample_every_days: Optional[int] = None
    forecast_bias_c: float = 0.0

    def label(self) -> str:
        name = self.system if isinstance(self.system, str) else self.system.name
        return f"{name} @ {self.climate.name} ({self.workload})"


def resolve_workers(requested: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > CPU count."""
    if requested is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            try:
                requested = int(env)
            except ValueError:
                raise ReproError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                )
        else:
            requested = os.cpu_count() or 1
    if requested < 1:
        raise ReproError(f"worker count must be >= 1, got {requested}")
    return requested


def _run_task(task: YearTask, use_disk_cache: bool = True) -> YearResult:
    from repro.analysis import experiments

    return experiments.year_result(
        task.system,
        task.climate,
        workload=task.workload,
        deferrable=task.deferrable,
        sample_every_days=task.sample_every_days,
        forecast_bias_c=task.forecast_bias_c,
        use_disk_cache=use_disk_cache,
    )


def _execute_task_payload(task: YearTask, use_disk_cache: bool) -> dict:
    """Worker entry point: run one cell, return its JSON payload."""
    from repro.analysis import experiments

    result = _run_task(task, use_disk_cache)
    return experiments._result_to_json(result)


def _warm_shared_state(tasks: Sequence[YearTask]) -> None:
    """Materialize traces and the cooling model before forking workers.

    With the default ``fork`` start method every worker inherits these,
    so the expensive learning campaign runs once instead of per worker
    (``spawn`` platforms pay once per worker instead — still correct).
    """
    from repro.analysis import experiments
    from repro.sim.campaign import trained_cooling_model

    for task in tasks:
        if task.workload == "facebook":
            experiments.facebook_trace(task.deferrable)
        else:
            experiments.nutch_trace(task.deferrable)
    if any(
        not (isinstance(t.system, str) and t.system == "baseline")
        for t in tasks
    ):
        trained_cooling_model()


def run_year_tasks(
    tasks: Sequence[YearTask],
    workers: Optional[int] = None,
    use_disk_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> List[YearResult]:
    """Run a batch of campaign cells, in parallel where possible.

    Returns one :class:`YearResult` per task, in task order.  Cached
    cells never reach the pool; with ``workers=1`` everything runs
    in-process.
    """
    from repro.analysis import experiments

    workers = resolve_workers(workers)
    results: List[Optional[YearResult]] = [None] * len(tasks)
    done = 0

    def tick(task: YearTask) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, len(tasks), task)

    pending: List[int] = []
    for index, task in enumerate(tasks):
        key = experiments.cache_key(
            task.system,
            task.climate,
            task.workload,
            task.deferrable,
            task.sample_every_days,
            task.forecast_bias_c,
        )
        cached = experiments.load_cached(key, use_disk_cache)
        if cached is not None:
            results[index] = cached
            tick(task)
        else:
            pending.append(index)

    if workers == 1 or len(pending) <= 1:
        for index in pending:
            results[index] = _run_task(tasks[index], use_disk_cache)
            tick(tasks[index])
        return results  # type: ignore[return-value]

    _warm_shared_state([tasks[i] for i in pending])
    with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
        futures = {
            pool.submit(_execute_task_payload, tasks[i], use_disk_cache): i
            for i in pending
        }
        for future in as_completed(futures):
            index = futures[future]
            task = tasks[index]
            result = experiments._result_from_json(future.result())
            # Workers already wrote the disk entry; seed this process's
            # memory cache so later lookups hit.
            key = experiments.cache_key(
                task.system,
                task.climate,
                task.workload,
                task.deferrable,
                task.sample_every_days,
                task.forecast_bias_c,
            )
            experiments.store_result(key, result, use_disk_cache=False)
            results[index] = result
            tick(task)
    return results  # type: ignore[return-value]
