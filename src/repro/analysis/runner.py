"""Parallel campaign runner for the experiment harness.

The paper's evaluation is an embarrassingly-parallel sweep: a 5-locations
x N-systems x 2-workloads year matrix (Figures 8-10, Section 5.2) and a
1520-location worldwide grid (Figures 12/13).  Every cell is an
independent deterministic year simulation, so this module fans them out
over a :class:`concurrent.futures.ProcessPoolExecutor`:

* worker count comes from the ``workers`` argument, the ``REPRO_WORKERS``
  environment variable, or ``os.cpu_count()``, in that order;
* ``workers=1`` (or a single pending task) falls back to plain in-process
  execution — no pool, no pickling;
* results come back in task order regardless of completion order, and the
  simulations are deterministic, so serial and parallel runs produce
  identical results;
* cells already present in the memory or disk cache are served in the
  parent without spawning anything, and workers persist fresh results
  through the same atomic, schema-versioned disk cache
  (:mod:`repro.analysis.experiments`), so a re-run is free.

Failure handling (docs/ROBUSTNESS.md):

* every worker exception is wrapped in
  :class:`~repro.errors.TaskExecutionError`, which carries the failing
  (system, climate, workload, bias) cell's label across the process
  boundary;
* failed cells are retried with exponential backoff — ``task_retries``
  / ``REPRO_TASK_RETRIES`` attempts (default 1 retry) — and a failed
  lane chunk is re-run cell by cell so one bad lane cannot poison its
  chunk-mates;
* a crashed worker (``BrokenProcessPool``) or a pool that makes no
  progress for ``task_timeout_s`` / ``REPRO_TASK_TIMEOUT_S`` seconds
  abandons the pool and re-runs only the unfinished cells serially in
  the parent, checking the cache first so a cell the dead worker already
  persisted is never recomputed or re-written;
* with a ``failures`` list the run completes and reports failed cells
  (:class:`TaskFailure`) instead of dying on the first one.

Workers return the JSON cache payload rather than the live
:class:`YearResult` so the parallel path goes through exactly the same
serialization as a disk-cache hit.

Public contract (the campaign service, :mod:`repro.service`, builds on
exactly these guarantees — keep them):

* **Pool-safe worker entry points.**  :func:`_execute_task_payload`,
  :func:`_execute_lane_chunk_payload`, and
  :func:`_execute_day_chunk_payload` are the only functions shipped to
  worker processes.  They take plain picklable data (:class:`YearTask`),
  return plain JSON payloads, read every ``REPRO_*`` artifact/cache knob
  from the environment per call, and persist results through the atomic
  disk cache — so any number of pools, in any number of parent
  processes, may run them concurrently against the same cache directory.
  (Day chunks are the one exception to worker-side persistence: they
  return per-day fragments, and the parent folding them into a whole
  cell is the writer.)
* **Pool lifetime is the caller's.**  :class:`WorkerPool` owns a
  persistent ``ProcessPoolExecutor`` that survives across
  :func:`run_year_tasks` calls (pass it as ``pool=``); without one the
  function creates and tears down a private pool per call, as before.
  A broken shared pool is reset (old processes discarded, a fresh
  executor created lazily), never left poisoned.
* **Env knobs read per call** (safe to change between calls in one
  process): ``REPRO_WORKERS``, ``REPRO_TASK_RETRIES``,
  ``REPRO_TASK_TIMEOUT_S``, ``REPRO_MP_CONTEXT``, and — inside workers —
  the artifact-store knobs (``REPRO_ARTIFACTS``, ``REPRO_ARTIFACTS_DIR``,
  ``REPRO_CACHE_DIR``).  ``REPRO_LANES`` / ``REPRO_SIM_ENGINE`` /
  ``REPRO_SAMPLE_DAYS`` are read at import of
  :mod:`repro.analysis.experiments` and are fixed per process.
* **Warm state is optional.**  :func:`_warm_shared_state` only moves
  work earlier (train/generate once, persist to the artifact store);
  skipping it costs time in the first worker to need each artifact,
  never correctness.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import CoolAirConfig
from repro.errors import ReproError, TaskExecutionError
from repro.sim.yearsim import YearResult, sampled_days
from repro.weather.climate import Climate

logger = logging.getLogger("repro.analysis.runner")

# Called after each finished cell with (done_count, total, task).
ProgressCallback = Callable[[int, int, "YearTask"], None]

# Streaming consumer: called with (task_index, task, result) as each cell
# completes, before (and regardless of whether) the result is retained.
ConsumeCallback = Callable[[int, "YearTask", "YearResult"], None]

# First-retry backoff; doubles per subsequent retry of the same cell.
RETRY_BACKOFF_S = 0.5


@dataclasses.dataclass(frozen=True)
class YearTask:
    """One (system, location, workload) cell of a campaign.

    Mirrors :func:`repro.analysis.experiments.year_result`'s signature and
    must stay picklable (plain data only) so it can cross to workers.
    """

    system: Union[str, CoolAirConfig]
    climate: Climate
    workload: str = "facebook"
    deferrable: bool = False
    sample_every_days: Optional[int] = None
    forecast_bias_c: float = 0.0
    # Day-unfold width for in-worker execution (see
    # ``experiments.year_result``): > 1 steps an eligible cell's sampled
    # days as lockstep lanes inside the worker.  Bit-identical to the
    # day-sequential run, so cache keys ignore it (and cross-request
    # dedupe in the service is unaffected).
    day_lanes: Optional[int] = None
    # Cooling plant backend (see repro.cooling.backends); non-parasol
    # plants carry their own cache keys and ride the lane engine through
    # their lane-vectorized units.
    plant: str = "parasol"

    def label(self) -> str:
        name = self.system if isinstance(self.system, str) else self.system.name
        return (
            f"{name} @ {self.climate.name} ({self.workload}"
            f"{', deferrable' if self.deferrable else ''}"
            f"{f', bias {self.forecast_bias_c:+.1f}C' if self.forecast_bias_c else ''}"
            f"{f', plant {self.plant}' if self.plant != 'parasol' else ''})"
        )


@dataclasses.dataclass
class TaskFailure:
    """One cell that exhausted its retries; collected via ``failures``."""

    task: YearTask
    error: str
    attempts: int

    def label(self) -> str:
        return self.task.label()


def resolve_workers(requested: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > CPU count."""
    if requested is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            try:
                requested = int(env)
            except ValueError:
                raise ReproError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                )
        else:
            requested = os.cpu_count() or 1
    if requested < 1:
        raise ReproError(f"worker count must be >= 1, got {requested}")
    return requested


def resolve_lanes(requested: Optional[int] = None) -> int:
    """Lanes per lockstep batch: explicit argument > ``REPRO_LANES``."""
    from repro.analysis import experiments

    if requested is None:
        requested = experiments.DEFAULT_LANES
    if requested < 1:
        raise ReproError(f"lane count must be >= 1, got {requested}")
    return requested


def resolve_mp_context(requested: Optional[str] = None) -> Optional[str]:
    """Pool start method: argument > ``REPRO_MP_CONTEXT`` > platform default.

    ``fork`` workers inherit the parent's warmed traces/models as shared
    pages; ``spawn`` workers start from fresh interpreters and rebuild
    their state from the artifact store (:mod:`repro.artifacts`) instead
    — which is exactly what the data-plane benchmark measures.  ``None``
    keeps the platform default.
    """
    if requested is None:
        requested = os.environ.get("REPRO_MP_CONTEXT") or None
    if requested is None:
        return None
    valid = multiprocessing.get_all_start_methods()
    if requested not in valid:
        raise ReproError(
            f"mp context must be one of {valid}, got {requested!r}"
        )
    return requested


def resolve_task_retries(requested: Optional[int] = None) -> int:
    """Retries per failing cell: argument > ``REPRO_TASK_RETRIES`` > 1."""
    if requested is None:
        env = os.environ.get("REPRO_TASK_RETRIES")
        if env is not None:
            try:
                requested = int(env)
            except ValueError:
                raise ReproError(
                    f"REPRO_TASK_RETRIES must be an integer, got {env!r}"
                )
        else:
            requested = 1
    if requested < 0:
        raise ReproError(f"task retries must be >= 0, got {requested}")
    return requested


def resolve_task_timeout(requested: Optional[float] = None) -> Optional[float]:
    """Progress timeout in seconds: argument > ``REPRO_TASK_TIMEOUT_S``.

    ``None`` (the default) or a non-positive value disables the timeout.
    The timeout bounds the wait for *any* cell to complete, so a hung
    worker cannot stall a campaign forever.
    """
    if requested is None:
        env = os.environ.get("REPRO_TASK_TIMEOUT_S")
        if env is not None:
            try:
                requested = float(env)
            except ValueError:
                raise ReproError(
                    f"REPRO_TASK_TIMEOUT_S must be a number, got {env!r}"
                )
    if requested is not None and requested <= 0:
        return None
    return requested


class WorkerPool:
    """A process pool whose lifetime outlives a single campaign call.

    ``run_year_tasks`` historically created and destroyed one
    ``ProcessPoolExecutor`` per invocation — fine for a one-shot CLI
    command, wasteful for a long-running service that runs many
    campaigns against the same workers.  A ``WorkerPool`` decouples the
    two: create it once, pass it to any number of ``run_year_tasks``
    calls (``pool=``) or submit the module's worker entry points to it
    directly (the campaign service does), and shut it down when the
    owning process exits.

    The underlying executor is created lazily on first use and recreated
    lazily after :meth:`reset`, so a crashed or hung worker generation
    never poisons the pool object itself.  Thread-safety: creation and
    reset are lock-guarded; ``submit`` may be called from any thread
    (``ProcessPoolExecutor.submit`` is itself thread-safe).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self._ctx_name = resolve_mp_context(mp_context)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._generation = 0

    @property
    def generation(self) -> int:
        """Bumped on every :meth:`reset`; lets callers detect restarts."""
        return self._generation

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on demand."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=(
                        multiprocessing.get_context(self._ctx_name)
                        if self._ctx_name
                        else None
                    ),
                )
            return self._executor

    def submit(self, fn, /, *args, **kwargs):
        """Submit work; raises ``BrokenProcessPool`` if the pool just died."""
        return self.executor().submit(fn, *args, **kwargs)

    def reset(self) -> None:
        """Discard a broken/hung worker generation without waiting on it.

        Outstanding futures are cancelled where possible; already-running
        cells in dead workers surface ``BrokenProcessPool`` to their
        waiters, who re-check the cache and resubmit.  The next
        :meth:`submit` starts a fresh executor.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            self._generation += 1
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _wrap_error(label: str, err: BaseException) -> TaskExecutionError:
    if isinstance(err, TaskExecutionError):
        return err
    return TaskExecutionError(label, f"{type(err).__name__}: {err}")


def _run_task(task: YearTask, use_disk_cache: bool = True) -> YearResult:
    from repro.analysis import experiments

    return experiments.year_result(
        task.system,
        task.climate,
        workload=task.workload,
        deferrable=task.deferrable,
        sample_every_days=task.sample_every_days,
        forecast_bias_c=task.forecast_bias_c,
        use_disk_cache=use_disk_cache,
        day_lanes=task.day_lanes,
        plant=task.plant,
    )


def _execute_task_payload(task: YearTask, use_disk_cache: bool) -> dict:
    """Worker entry point: run one cell, return its JSON payload.

    Any exception is re-raised as a :class:`TaskExecutionError` carrying
    the cell's identity, so the parent never sees an anonymous traceback.
    """
    from repro.analysis import experiments

    try:
        result = _run_task(task, use_disk_cache)
    except Exception as err:
        raise _wrap_error(task.label(), err) from err
    return experiments._result_to_json(result)


def _run_lane_chunk(
    chunk: Sequence[YearTask], use_disk_cache: bool
) -> List[YearResult]:
    """Run a chunk of cells as one lockstep lane batch.

    All tasks in a chunk must share (and do, by construction in
    :func:`run_year_tasks`) the same day-sampling stride; systems,
    climates, workloads, and forecast biases mix freely across lanes.
    Each lane's result is bit-identical to its scalar run and is stored
    under its own cache key.
    """
    from repro.analysis import experiments
    from repro.sim.campaign import trained_cooling_model
    from repro.sim.lanes import LaneScenario, run_year_lanes

    sample = chunk[0].sample_every_days or experiments.DEFAULT_SAMPLE_DAYS
    scenarios = []
    needs_model = False
    for task in chunk:
        system, _ = experiments._resolve_system(task.system)
        if not isinstance(system, str):
            needs_model = True
        trace = (
            experiments.facebook_trace(task.deferrable)
            if task.workload == "facebook"
            else experiments.nutch_trace(task.deferrable)
        )
        scenarios.append(
            LaneScenario(
                system=system,
                climate=task.climate,
                trace=trace,
                forecast_bias_c=task.forecast_bias_c,
                plant=task.plant,
            )
        )
    model = trained_cooling_model() if needs_model else None
    results = run_year_lanes(scenarios, model=model, sample_every_days=sample)
    for task, result in zip(chunk, results):
        key = experiments.cache_key(
            task.system,
            task.climate,
            task.workload,
            task.deferrable,
            task.sample_every_days,
            task.forecast_bias_c,
            "lanes",
            plant=task.plant,
        )
        experiments.store_result(key, result, use_disk_cache)
    return results


def _execute_lane_chunk_payload(
    chunk: Sequence[YearTask], use_disk_cache: bool
) -> List[dict]:
    """Worker entry point: run a lane chunk, return JSON payloads."""
    from repro.analysis import experiments

    try:
        results = _run_lane_chunk(chunk, use_disk_cache)
    except Exception as err:
        labels = "; ".join(task.label() for task in chunk)
        raise _wrap_error(f"lane chunk [{labels}]", err) from err
    return [experiments._result_to_json(result) for result in results]


# The scalar reference's violation threshold (``run_year``'s default);
# day-chunk workers compute per-day violations at it so temperature
# arrays never cross the process boundary.
_VIOLATION_THRESHOLD_C = 30.0


def _run_day_chunk(
    items: Sequence[Tuple[YearTask, int]], use_disk_cache: bool
) -> List[dict]:
    """Run a chunk of ``(cell, day)`` work items as one lockstep batch.

    Each item occupies one lane: its cell's scenario replicated at that
    item's sampled day.  Items may mix cells (and strides) freely — every
    lane carries its own day — and sibling items of one cell share the
    cell's trace and trained model, so the lane-combo plan cache hits
    across them.  Returns one compact per-day metrics dict per item; the
    parent folds them back into :class:`YearResult`s in day order
    (``use_disk_cache`` is unused here — only whole cells are cached, by
    the parent, after the fold).
    """
    from repro.analysis import experiments
    from repro.sim.campaign import trained_cooling_model
    from repro.sim.lanes import LaneRunner, LaneScenario
    from repro.sim.trace import avg_violation_from

    scenarios = []
    days = []
    needs_model = False
    for task, day in items:
        system, _ = experiments._resolve_system(task.system)
        if not isinstance(system, str):
            needs_model = True
        trace = (
            experiments.facebook_trace(task.deferrable)
            if task.workload == "facebook"
            else experiments.nutch_trace(task.deferrable)
        )
        scenarios.append(
            LaneScenario(
                system=system,
                climate=task.climate,
                trace=trace,
                forecast_bias_c=task.forecast_bias_c,
                plant=task.plant,
            )
        )
        days.append(int(day))
    model = trained_cooling_model() if needs_model else None
    runner = LaneRunner(scenarios, model=model)
    metrics, _ = runner.run_day(days)
    return [
        {
            "worst_range_c": day_metrics["worst_range_c"],
            "outside_range_c": day_metrics["outside_range_c"],
            "avg_violation_c": avg_violation_from(
                day_metrics["temps"], _VIOLATION_THRESHOLD_C
            ),
            "max_rate_c_per_hour": day_metrics["max_rate_c_per_hour"],
            "cooling_kwh": day_metrics["cooling_kwh"],
            "it_kwh": day_metrics["it_kwh"],
            "water_l": day_metrics["water_l"],
            "tower_mech_hours": day_metrics["tower_mech_hours"],
            "chiller_mech_hours": day_metrics["chiller_mech_hours"],
        }
        for day_metrics in metrics
    ]


def _execute_day_chunk_payload(
    items: Sequence[Tuple[YearTask, int]], use_disk_cache: bool
) -> List[dict]:
    """Worker entry point: run a ``(cell, day)`` chunk, return day dicts."""
    try:
        return _run_day_chunk(items, use_disk_cache)
    except Exception as err:
        labels = "; ".join(
            f"{task.label()} day {day}" for task, day in items
        )
        raise _wrap_error(f"day chunk [{labels}]", err) from err


def _warm_shared_state(tasks: Sequence[YearTask]) -> None:
    """Materialize traces and every needed cooling model before the pool.

    With the default ``fork`` start method workers inherit these as
    shared pages, so each expensive learning campaign runs once in the
    parent instead of once per worker.  Every *distinct* model
    requirement across the task list is warmed: a config whose fault
    schedule punches log gaps trains a different (degraded) model than
    the default, and such cells used to silently retrain it inside every
    worker that drew one.  Under ``spawn`` the warm pass still pays off —
    it persists each model to the artifact store, which freshly spawned
    workers load instead of retraining.
    """
    from repro.analysis import experiments
    from repro.sim.campaign import trained_cooling_model

    gap_keys = set()
    model_needs = []
    for task in tasks:
        if task.workload == "facebook":
            experiments.facebook_trace(task.deferrable)
        else:
            experiments.nutch_trace(task.deferrable)
        system, _ = experiments._resolve_system(task.system)
        if isinstance(system, str):
            continue
        # Mirrors how ``experiments.year_result`` derives each cell's
        # model, so exactly the keys the workers will ask for get warmed.
        gaps = (
            tuple(system.faults.log_gaps) if system.faults is not None else ()
        )
        if gaps not in gap_keys:
            gap_keys.add(gaps)
            model_needs.append(gaps)
    for gaps in model_needs:
        trained_cooling_model(log_gaps=gaps)


def _note_retry(
    retried: Optional[List[str]], task: YearTask, attempt: int, err: BaseException
) -> None:
    logger.warning(
        "retrying %s (attempt %d) after: %s", task.label(), attempt + 1, err
    )
    if retried is not None:
        retried.append(task.label())


def _run_task_with_retries(
    task: YearTask,
    use_disk_cache: bool,
    retries: int,
    backoff_s: float,
    retried: Optional[List[str]],
    attempts_used: int = 0,
) -> YearResult:
    """In-process execution with retry/backoff; raises TaskExecutionError."""
    attempt = attempts_used
    while True:
        try:
            return _run_task(task, use_disk_cache)
        except Exception as err:  # noqa: BLE001 - converted to typed error
            attempt += 1
            if attempt > retries:
                raise _wrap_error(task.label(), err) from err
            _note_retry(retried, task, attempt, err)
            if backoff_s > 0:
                time.sleep(backoff_s * (2 ** (attempt - 1)))


def run_year_tasks(
    tasks: Sequence[YearTask],
    workers: Optional[int] = None,
    use_disk_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
    lanes: Optional[int] = None,
    day_lanes: Optional[int] = None,
    task_retries: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    backoff_s: float = RETRY_BACKOFF_S,
    failures: Optional[List[TaskFailure]] = None,
    retried: Optional[List[str]] = None,
    consume: Optional[ConsumeCallback] = None,
    keep_results: bool = True,
    mp_context: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    cost_model=None,
) -> List[Optional[YearResult]]:
    """Run a batch of campaign cells, in parallel where possible.

    Returns one :class:`YearResult` per task, in task order.  Cached
    cells never reach the pool; with ``workers=1`` everything runs
    in-process.  ``lanes`` (default ``REPRO_LANES``) batches uncached
    cells into lockstep lane groups for the lane-batched engine —
    composing with the process pool as workers x lanes — and ``lanes=1``
    (or ``REPRO_SIM_ENGINE=scalar``) restores strictly per-cell runs.
    Results are bit-identical however the work is split.

    ``day_lanes`` (default ``REPRO_DAY_UNFOLD``) unfolds each eligible
    cell's sampled days into ``(cell, day)`` work items: consecutive runs
    of up to ``day_lanes`` items — sibling days of one cell, or a mix of
    cells — become one lockstep lane batch per chunk, and the per-day
    metrics are folded back into each cell's :class:`YearResult` in day
    order, bit-identical to the day-sequential run.  Cells whose days are
    not provably independent (faulted, deferrable, temporal scheduling —
    see :func:`repro.analysis.experiments.day_unfold_eligible`) keep the
    day-sequential path, and serial/fallback execution of an unfolded
    cell uses the in-worker unfold (``experiments.year_result`` with
    ``day_lanes``) so every path computes the same bits.

    Streaming: ``consume`` is called with ``(index, task, result)`` as
    each cell completes (cache hits included), in completion order, and
    ``keep_results=False`` then drops the full result instead of
    retaining it — the returned list holds ``None`` in every slot and
    the parent's memory cache is not seeded, so memory stays bounded for
    arbitrarily large sweeps.  Failed cells never reach ``consume``.

    ``mp_context`` (default ``REPRO_MP_CONTEXT``) picks the pool start
    method — ``fork`` shares the parent's warmed state by inheritance,
    ``spawn`` rebuilds workers from the artifact store.

    ``pool`` runs the fan-out on a caller-owned persistent
    :class:`WorkerPool` instead of a private per-call executor: worker
    processes survive across calls (the caller shuts the pool down), its
    ``workers`` count wins when ``workers`` is not given, and a broken
    pool is :meth:`WorkerPool.reset` rather than abandoned so the next
    call starts clean.

    ``task_retries`` retries each failing cell (with exponential
    ``backoff_s`` doubling), ``task_timeout_s`` bounds the wait for any
    cell to complete before the pool is declared stuck, and a crashed
    worker triggers serial in-parent recovery of only the unfinished
    cells (cache-checked first, so nothing is recomputed or re-written).
    Without a ``failures`` list the first exhausted cell raises
    :class:`~repro.errors.TaskExecutionError`; with one, failed cells are
    appended as :class:`TaskFailure` and their slots stay ``None``.

    ``cost_model`` (a :class:`repro.analysis.screening.CostModel`) closes
    the calibration loop: when ``lanes`` is not given explicitly and the
    model has already observed real cells, its suggested lane width is
    used, and after the run the model observes (executed cells, elapsed
    seconds) for this batch — cache hits excluded, so the estimate always
    reflects actual simulation cost.
    """
    from repro.analysis import experiments

    if pool is not None and workers is None:
        workers = pool.workers
    workers = resolve_workers(workers)
    if (
        lanes is None
        and cost_model is not None
        and getattr(cost_model, "calibrated", False)
    ):
        lanes = cost_model.suggested_lanes()
    lanes = resolve_lanes(lanes)
    day_width = experiments.resolve_day_lanes(day_lanes, lanes)
    retries = resolve_task_retries(task_retries)
    timeout_s = resolve_task_timeout(task_timeout_s)
    ctx_name = resolve_mp_context(mp_context)
    results: List[Optional[YearResult]] = [None] * len(tasks)
    # Completion is tracked separately from ``results`` slots: with
    # ``keep_results=False`` a finished cell's slot stays ``None``, so
    # recovery logic keys off these flags, never off the slots.
    completed = [False] * len(tasks)
    # Cells that exhausted retries (reported via ``failures``): recovery
    # must not resurrect them — unlike singles/lane chunks, a day-unfolded
    # cell's days span several futures, so a failed cell can still appear
    # in an outstanding future when the pool breaks.
    failed_perm: set = set()
    done = 0

    def tick(task: YearTask) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, len(tasks), task)

    def record(index: int, result: YearResult) -> None:
        """One cell finished: stream it, retain it if asked, tick."""
        completed[index] = True
        if keep_results:
            results[index] = result
        if consume is not None:
            consume(index, tasks[index], result)
        tick(tasks[index])

    def fail(index: int, err: BaseException, attempts: int) -> None:
        failed_perm.add(index)
        error = _wrap_error(tasks[index].label(), err)
        if failures is None:
            raise error
        logger.error("cell failed permanently: %s", error)
        failures.append(
            TaskFailure(task=tasks[index], error=str(error), attempts=attempts)
        )
        tick(tasks[index])

    def task_key(index: int) -> str:
        task = tasks[index]
        return experiments.cache_key(
            task.system,
            task.climate,
            task.workload,
            task.deferrable,
            task.sample_every_days,
            task.forecast_bias_c,
            plant=task.plant,
        )

    pending: List[int] = []
    for index, task in enumerate(tasks):
        cached = experiments.load_cached(
            task_key(index), use_disk_cache, cache_memory=keep_results
        )
        if cached is not None:
            record(index, cached)
        else:
            pending.append(index)

    # Day-unfolding: ``etasks`` are the *execution* tasks — an eligible
    # cell gets its unfold width stamped on, so every execution path that
    # runs a whole cell (serial, single resubmit, broken-pool recovery)
    # still unfolds in-worker via ``experiments.year_result``.  Reporting
    # (record/fail/consume/progress/cache keys) always uses the original
    # ``tasks``; the two differ only in ``day_lanes``, which cache keys
    # and labels ignore.
    etasks: List[YearTask] = list(tasks)
    day_cells: List[int] = []
    if day_width > 1:
        for index in pending:
            task = tasks[index]
            if experiments.day_unfold_eligible(
                task.system, task.deferrable, plant=task.plant
            ):
                width = (
                    task.day_lanes if task.day_lanes is not None else day_width
                )
                if width > 1:
                    etasks[index] = dataclasses.replace(
                        task, day_lanes=width
                    )
                    day_cells.append(index)

    exec_start = time.perf_counter()

    def observe_cost() -> None:
        """Feed (executed cells, elapsed s) to the calibrated cost model."""
        if cost_model is None:
            return
        executed = sum(1 for index in pending if completed[index])
        if executed:
            cost_model.observe(executed, time.perf_counter() - exec_start)

    def run_serial_cell(index: int, attempts_used: int = 0) -> None:
        """One cell in-process, with retries; records result or failure."""
        try:
            result = _run_task_with_retries(
                etasks[index],
                use_disk_cache,
                retries,
                backoff_s,
                retried,
                attempts_used=attempts_used,
            )
            record(index, result)
        except TaskExecutionError as err:
            fail(index, err, attempts=retries + 1)

    # Partition the uncached cells: day-unfolded cells expand into
    # (cell, day) work items; other lane-engine-compatible cells group by
    # sampling stride (a lane batch steps all lanes over the same days);
    # everything else — exotic-timing or faulted configs, the scalar
    # engine, lanes=1 — runs one cell at a time.
    unfolded = set(day_cells)
    singles: List[int] = []
    lane_groups: dict = {}
    if lanes > 1:
        for index in pending:
            if index in unfolded:
                continue
            system, _ = experiments._resolve_system(tasks[index].system)
            if (
                experiments.effective_engine(system, plant=tasks[index].plant)
                == "lanes"
            ):
                sample = (
                    tasks[index].sample_every_days
                    or experiments.DEFAULT_SAMPLE_DAYS
                )
                lane_groups.setdefault(sample, []).append(index)
            else:
                singles.append(index)
    else:
        singles = [i for i in pending if i not in unfolded]

    chunks: List[List[int]] = []
    for indices in lane_groups.values():
        # Spread each group across the workers before filling lanes, so a
        # single over-full batch never starves process parallelism.
        size = max(1, min(lanes, -(-len(indices) // workers)))
        for i in range(0, len(indices), size):
            chunks.append(indices[i : i + size])

    # (cell index, day position, day) work items for the unfolded cells,
    # in cell-then-day order, sliced into lockstep chunks of up to
    # ``day_width`` lanes.  Chunks may straddle cells — every lane carries
    # its own day — and the per-cell ``day_state`` fold reassembles each
    # cell's payloads in day position regardless of completion order.
    day_items: List[Tuple[int, int, int]] = []
    day_state: Dict[int, dict] = {}
    for index in day_cells:
        days = sampled_days(
            tasks[index].sample_every_days or experiments.DEFAULT_SAMPLE_DAYS
        )
        day_state[index] = {
            "days": days,
            "payloads": [None] * len(days),
            "filled": 0,
            "failed": False,
        }
        for pos, day in enumerate(days):
            day_items.append((index, pos, day))

    day_chunks: List[List[Tuple[int, int, int]]] = []
    if day_items:
        # Spread across workers before filling lanes, like lane chunks.
        size = max(1, min(day_width, -(-len(day_items) // workers)))
        for i in range(0, len(day_items), size):
            day_chunks.append(day_items[i : i + size])

    if workers == 1 or (len(singles) + len(chunks) + len(day_cells)) <= 1:
        for chunk in chunks:
            try:
                chunk_results = _run_lane_chunk(
                    [tasks[i] for i in chunk], use_disk_cache
                )
            except Exception as err:  # noqa: BLE001 - isolate per cell
                # One bad lane poisons its whole chunk; re-run the
                # chunk's cells one at a time so the rest still finish.
                logger.warning(
                    "lane chunk failed (%s); re-running its %d cells "
                    "individually",
                    err,
                    len(chunk),
                )
                for index in chunk:
                    run_serial_cell(index, attempts_used=1)
                continue
            for index, result in zip(chunk, chunk_results):
                record(index, result)
        # Unfolded cells run whole-cell in-process: the stamped etask
        # routes ``year_result`` through ``run_year_unfolded``, which
        # computes the same lockstep batches a pooled run would.
        for index in day_cells:
            run_serial_cell(index)
        for index in singles:
            run_serial_cell(index)
        observe_cost()
        return results

    _warm_shared_state([tasks[i] for i in pending])

    # index targets are ints (single cells), lists of ints (lane chunks),
    # or ("days", items) tuples (day-unfolded chunks).
    futures: dict = {}
    attempts: Dict[Tuple[int, ...], int] = {}
    lost: List[int] = []
    broken = False
    owned = pool is None
    if owned:
        executor = ProcessPoolExecutor(
            max_workers=min(
                workers, len(singles) + len(chunks) + len(day_chunks)
            ),
            mp_context=(
                multiprocessing.get_context(ctx_name) if ctx_name else None
            ),
        )
    else:
        executor = pool.executor()

    not_done: set = set()

    def submit_chunk(chunk: List[int]) -> None:
        nonlocal broken
        try:
            future = executor.submit(
                _execute_lane_chunk_payload,
                [tasks[i] for i in chunk],
                use_disk_cache,
            )
        except BrokenProcessPool:
            broken = True
            lost.extend(chunk)
            return
        except RuntimeError:
            lost.extend(chunk)
            return
        futures[future] = chunk
        not_done.add(future)

    def submit_single(index: int) -> None:
        nonlocal broken
        try:
            future = executor.submit(
                _execute_task_payload, etasks[index], use_disk_cache
            )
        except BrokenProcessPool:
            broken = True
            lost.append(index)
            return
        except RuntimeError:
            lost.append(index)
            return
        futures[future] = index
        not_done.add(future)

    def submit_day_chunk(items: List[Tuple[int, int, int]]) -> None:
        nonlocal broken
        cells = sorted({i for i, _, _ in items})
        try:
            future = executor.submit(
                _execute_day_chunk_payload,
                [(tasks[i], day) for i, _, day in items],
                use_disk_cache,
            )
        except BrokenProcessPool:
            broken = True
            lost.extend(cells)
            return
        except RuntimeError:
            lost.extend(cells)
            return
        futures[future] = ("days", items)
        not_done.add(future)

    def fold_day_cell(index: int) -> None:
        """All of a cell's day payloads arrived: fold them in day order.

        Appends and energy accumulation visit the days in sampled order —
        the same float additions in the same order as the scalar
        ``run_year`` — so the folded result is bit-identical to the
        day-sequential cell.  The parent is the cache writer for day
        chunks (workers only ever see fragments of the cell).
        """
        task = tasks[index]
        state = day_state.pop(index)
        payloads = state["payloads"]
        system, _ = experiments._resolve_system(task.system)
        result = YearResult(
            label="Baseline" if isinstance(system, str) else system.name,
            climate_name=task.climate.name,
            sampled_days=state["days"],
            daily_worst_range_c=[p["worst_range_c"] for p in payloads],
            daily_outside_range_c=[p["outside_range_c"] for p in payloads],
            daily_avg_violation_c=[p["avg_violation_c"] for p in payloads],
            daily_max_rate_c_per_hour=[
                p["max_rate_c_per_hour"] for p in payloads
            ],
            cooling_kwh=0.0,
            it_kwh=0.0,
            # Unfold-eligible cells never run faulted, so no step
            # degrades; 0.0 matches the scalar mean-of-no-flags exactly.
            daily_degraded_fraction=[0.0] * len(payloads),
        )
        for payload in payloads:
            result.cooling_kwh += payload["cooling_kwh"]
            result.it_kwh += payload["it_kwh"]
            result.water_l += payload.get("water_l", 0.0)
            result.tower_mech_hours += payload.get("tower_mech_hours", 0.0)
            result.chiller_mech_hours += payload.get(
                "chiller_mech_hours", 0.0
            )
        key = task_key(index)
        if use_disk_cache:
            experiments._write_disk_entry(key, result)
        if keep_results:
            experiments.store_result(key, result, use_disk_cache=False)
        record(index, result)

    def day_cell_failed(index: int, err: BaseException) -> None:
        """A chunk carrying one of this cell's days failed.

        The whole cell falls back to a single-cell resubmission (which
        still unfolds in-worker via its stamped etask), inheriting the
        attempt count; sibling day payloads still in flight are ignored
        once the cell is marked failed.
        """
        state = day_state.get(index)
        if state is None or state["failed"]:
            return
        state["failed"] = True
        key = (index,)
        attempts[key] = attempts.get(key, 0) + 1
        used = attempts[key]
        if used > retries:
            fail(index, err, attempts=used)
            return
        _note_retry(retried, tasks[index], used, err)
        if backoff_s > 0:
            time.sleep(backoff_s * (2 ** (used - 1)))
        submit_single(index)

    try:
        for items in day_chunks:
            submit_day_chunk(items)
        for chunk in chunks:
            submit_chunk(chunk)
        for index in singles:
            submit_single(index)
        while not_done and not broken:
            finished, _ = wait(
                not_done, timeout=timeout_s, return_when=FIRST_COMPLETED
            )
            not_done.difference_update(finished)
            if not finished:
                logger.warning(
                    "no cell completed within %.0fs; abandoning the pool "
                    "and recovering outstanding cells serially",
                    timeout_s,
                )
                broken = True
                break
            for future in finished:
                target = futures.pop(future)
                if isinstance(target, tuple):
                    items = target[1]
                    cells = sorted({i for i, _, _ in items})
                    try:
                        day_payloads = future.result()
                    except BrokenProcessPool:
                        broken = True
                        lost.extend(i for i in cells if not completed[i])
                        continue
                    except Exception as err:  # noqa: BLE001 - typed + retried
                        for index in cells:
                            day_cell_failed(index, err)
                        continue
                    for (index, pos, _day), payload in zip(
                        items, day_payloads
                    ):
                        state = day_state.get(index)
                        if state is None or state["failed"]:
                            continue
                        state["payloads"][pos] = payload
                        state["filled"] += 1
                        if state["filled"] == len(state["payloads"]):
                            fold_day_cell(index)
                    continue
                indices = target if isinstance(target, list) else [target]
                try:
                    payloads = future.result()
                    if not isinstance(target, list):
                        payloads = [payloads]
                except BrokenProcessPool:
                    broken = True
                    lost.extend(
                        i for i in indices if not completed[i]
                    )
                    continue
                except Exception as err:  # noqa: BLE001 - typed + retried
                    key = tuple(indices)
                    attempts[key] = attempts.get(key, 0) + 1
                    used = attempts[key]
                    if used > retries:
                        for index in indices:
                            fail(index, err, attempts=used)
                        continue
                    for index in indices:
                        _note_retry(retried, tasks[index], used, err)
                    if backoff_s > 0:
                        time.sleep(backoff_s * (2 ** (used - 1)))
                    # Resubmit — chunk failures come back as singles,
                    # inheriting the attempt count, so one bad lane
                    # cannot keep poisoning its chunk-mates.
                    for index in indices:
                        attempts[(index,)] = max(
                            attempts.get((index,), 0), used
                        )
                        submit_single(index)
                    continue
                for index, payload in zip(indices, payloads):
                    result = experiments._result_from_json(payload)
                    if keep_results:
                        # Workers already wrote the disk entry; seed this
                        # process's memory cache so later lookups hit.
                        experiments.store_result(
                            task_key(index), result, use_disk_cache=False
                        )
                    record(index, result)
    finally:
        if owned:
            if broken:
                # Dead or hung workers: do not wait for them.  (A hung
                # worker survives as an orphan until it finishes or is
                # killed.)
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                # Normal exit has nothing queued; on an error exit (first
                # failure raising) this stops queued cells from running.
                executor.shutdown(cancel_futures=True)
        else:
            # A shared pool outlives this call: cancel whatever this call
            # still has queued, and swap in a fresh worker generation if
            # this one died so the next call starts clean.
            for future in list(futures):
                future.cancel()
            if broken:
                pool.reset()

    if broken or lost:
        for future, target in list(futures.items()):
            future.cancel()
            if isinstance(target, tuple):
                indices = sorted({i for i, _, _ in target[1]})
            else:
                indices = target if isinstance(target, list) else [target]
            lost.extend(i for i in indices if not completed[i])
        recover = sorted(
            set(i for i in lost if not completed[i] and i not in failed_perm)
        )
        if recover:
            logger.warning(
                "recovering %d unfinished cell(s) serially in the parent",
                len(recover),
            )
        for index in recover:
            # The dead worker may have persisted this cell before dying;
            # a cache hit here avoids recomputing (and re-writing) it.
            cached = experiments.load_cached(
                task_key(index), use_disk_cache, cache_memory=keep_results
            )
            if cached is not None:
                record(index, cached)
                continue
            run_serial_cell(
                index, attempts_used=attempts.get((index,), 0)
            )
    observe_cost()
    return results
