"""Parallel campaign runner for the experiment harness.

The paper's evaluation is an embarrassingly-parallel sweep: a 5-locations
x N-systems x 2-workloads year matrix (Figures 8-10, Section 5.2) and a
1520-location worldwide grid (Figures 12/13).  Every cell is an
independent deterministic year simulation, so this module fans them out
over a :class:`concurrent.futures.ProcessPoolExecutor`:

* worker count comes from the ``workers`` argument, the ``REPRO_WORKERS``
  environment variable, or ``os.cpu_count()``, in that order;
* ``workers=1`` (or a single pending task) falls back to plain in-process
  execution — no pool, no pickling;
* results come back in task order regardless of completion order, and the
  simulations are deterministic, so serial and parallel runs produce
  identical results;
* cells already present in the memory or disk cache are served in the
  parent without spawning anything, and workers persist fresh results
  through the same atomic, schema-versioned disk cache
  (:mod:`repro.analysis.experiments`), so a re-run is free.

Workers return the JSON cache payload rather than the live
:class:`YearResult` so the parallel path goes through exactly the same
serialization as a disk-cache hit.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, List, Optional, Sequence, Union

from repro.core.config import CoolAirConfig
from repro.errors import ReproError
from repro.sim.yearsim import YearResult
from repro.weather.climate import Climate

# Called after each finished cell with (done_count, total, task).
ProgressCallback = Callable[[int, int, "YearTask"], None]


@dataclasses.dataclass(frozen=True)
class YearTask:
    """One (system, location, workload) cell of a campaign.

    Mirrors :func:`repro.analysis.experiments.year_result`'s signature and
    must stay picklable (plain data only) so it can cross to workers.
    """

    system: Union[str, CoolAirConfig]
    climate: Climate
    workload: str = "facebook"
    deferrable: bool = False
    sample_every_days: Optional[int] = None
    forecast_bias_c: float = 0.0

    def label(self) -> str:
        name = self.system if isinstance(self.system, str) else self.system.name
        return f"{name} @ {self.climate.name} ({self.workload})"


def resolve_workers(requested: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > CPU count."""
    if requested is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            try:
                requested = int(env)
            except ValueError:
                raise ReproError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                )
        else:
            requested = os.cpu_count() or 1
    if requested < 1:
        raise ReproError(f"worker count must be >= 1, got {requested}")
    return requested


def resolve_lanes(requested: Optional[int] = None) -> int:
    """Lanes per lockstep batch: explicit argument > ``REPRO_LANES``."""
    from repro.analysis import experiments

    if requested is None:
        requested = experiments.DEFAULT_LANES
    if requested < 1:
        raise ReproError(f"lane count must be >= 1, got {requested}")
    return requested


def _run_task(task: YearTask, use_disk_cache: bool = True) -> YearResult:
    from repro.analysis import experiments

    return experiments.year_result(
        task.system,
        task.climate,
        workload=task.workload,
        deferrable=task.deferrable,
        sample_every_days=task.sample_every_days,
        forecast_bias_c=task.forecast_bias_c,
        use_disk_cache=use_disk_cache,
    )


def _execute_task_payload(task: YearTask, use_disk_cache: bool) -> dict:
    """Worker entry point: run one cell, return its JSON payload."""
    from repro.analysis import experiments

    result = _run_task(task, use_disk_cache)
    return experiments._result_to_json(result)


def _run_lane_chunk(
    chunk: Sequence[YearTask], use_disk_cache: bool
) -> List[YearResult]:
    """Run a chunk of cells as one lockstep lane batch.

    All tasks in a chunk must share (and do, by construction in
    :func:`run_year_tasks`) the same day-sampling stride; systems,
    climates, workloads, and forecast biases mix freely across lanes.
    Each lane's result is bit-identical to its scalar run and is stored
    under its own cache key.
    """
    from repro.analysis import experiments
    from repro.sim.campaign import trained_cooling_model
    from repro.sim.lanes import LaneScenario, run_year_lanes

    sample = chunk[0].sample_every_days or experiments.DEFAULT_SAMPLE_DAYS
    scenarios = []
    needs_model = False
    for task in chunk:
        system, _ = experiments._resolve_system(task.system)
        if not isinstance(system, str):
            needs_model = True
        trace = (
            experiments.facebook_trace(task.deferrable)
            if task.workload == "facebook"
            else experiments.nutch_trace(task.deferrable)
        )
        scenarios.append(
            LaneScenario(
                system=system,
                climate=task.climate,
                trace=trace,
                forecast_bias_c=task.forecast_bias_c,
            )
        )
    model = trained_cooling_model() if needs_model else None
    results = run_year_lanes(scenarios, model=model, sample_every_days=sample)
    for task, result in zip(chunk, results):
        key = experiments.cache_key(
            task.system,
            task.climate,
            task.workload,
            task.deferrable,
            task.sample_every_days,
            task.forecast_bias_c,
            "lanes",
        )
        experiments.store_result(key, result, use_disk_cache)
    return results


def _execute_lane_chunk_payload(
    chunk: Sequence[YearTask], use_disk_cache: bool
) -> List[dict]:
    """Worker entry point: run a lane chunk, return JSON payloads."""
    from repro.analysis import experiments

    return [
        experiments._result_to_json(result)
        for result in _run_lane_chunk(chunk, use_disk_cache)
    ]


def _warm_shared_state(tasks: Sequence[YearTask]) -> None:
    """Materialize traces and the cooling model before forking workers.

    With the default ``fork`` start method every worker inherits these,
    so the expensive learning campaign runs once instead of per worker
    (``spawn`` platforms pay once per worker instead — still correct).
    """
    from repro.analysis import experiments
    from repro.sim.campaign import trained_cooling_model

    for task in tasks:
        if task.workload == "facebook":
            experiments.facebook_trace(task.deferrable)
        else:
            experiments.nutch_trace(task.deferrable)
    if any(
        not (isinstance(t.system, str) and t.system == "baseline")
        for t in tasks
    ):
        trained_cooling_model()


def run_year_tasks(
    tasks: Sequence[YearTask],
    workers: Optional[int] = None,
    use_disk_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
    lanes: Optional[int] = None,
) -> List[YearResult]:
    """Run a batch of campaign cells, in parallel where possible.

    Returns one :class:`YearResult` per task, in task order.  Cached
    cells never reach the pool; with ``workers=1`` everything runs
    in-process.  ``lanes`` (default ``REPRO_LANES``) batches uncached
    cells into lockstep lane groups for the lane-batched engine —
    composing with the process pool as workers x lanes — and ``lanes=1``
    (or ``REPRO_SIM_ENGINE=scalar``) restores strictly per-cell runs.
    Results are bit-identical however the work is split.
    """
    from repro.analysis import experiments

    workers = resolve_workers(workers)
    lanes = resolve_lanes(lanes)
    results: List[Optional[YearResult]] = [None] * len(tasks)
    done = 0

    def tick(task: YearTask) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, len(tasks), task)

    pending: List[int] = []
    for index, task in enumerate(tasks):
        key = experiments.cache_key(
            task.system,
            task.climate,
            task.workload,
            task.deferrable,
            task.sample_every_days,
            task.forecast_bias_c,
        )
        cached = experiments.load_cached(key, use_disk_cache)
        if cached is not None:
            results[index] = cached
            tick(task)
        else:
            pending.append(index)

    # Partition the uncached cells: lane-engine-compatible cells group by
    # sampling stride (a lane batch steps all lanes over the same days);
    # everything else — exotic-timing configs, the scalar engine, lanes=1
    # — runs one cell at a time.
    singles: List[int] = []
    lane_groups: dict = {}
    if lanes > 1:
        for index in pending:
            system, _ = experiments._resolve_system(tasks[index].system)
            if experiments.effective_engine(system) == "lanes":
                sample = (
                    tasks[index].sample_every_days
                    or experiments.DEFAULT_SAMPLE_DAYS
                )
                lane_groups.setdefault(sample, []).append(index)
            else:
                singles.append(index)
    else:
        singles = list(pending)

    chunks: List[List[int]] = []
    for indices in lane_groups.values():
        # Spread each group across the workers before filling lanes, so a
        # single over-full batch never starves process parallelism.
        size = max(1, min(lanes, -(-len(indices) // workers)))
        for i in range(0, len(indices), size):
            chunks.append(indices[i : i + size])

    if workers == 1 or (len(singles) + len(chunks)) <= 1:
        for chunk in chunks:
            chunk_results = _run_lane_chunk(
                [tasks[i] for i in chunk], use_disk_cache
            )
            for index, result in zip(chunk, chunk_results):
                results[index] = result
                tick(tasks[index])
        for index in singles:
            results[index] = _run_task(tasks[index], use_disk_cache)
            tick(tasks[index])
        return results  # type: ignore[return-value]

    _warm_shared_state([tasks[i] for i in pending])
    max_workers = min(workers, len(singles) + len(chunks))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures: dict = {}
        for chunk in chunks:
            future = pool.submit(
                _execute_lane_chunk_payload,
                [tasks[i] for i in chunk],
                use_disk_cache,
            )
            futures[future] = chunk
        for index in singles:
            future = pool.submit(
                _execute_task_payload, tasks[index], use_disk_cache
            )
            futures[future] = index
        for future in as_completed(futures):
            target = futures[future]
            indices = target if isinstance(target, list) else [target]
            payloads = (
                future.result()
                if isinstance(target, list)
                else [future.result()]
            )
            for index, payload in zip(indices, payloads):
                task = tasks[index]
                result = experiments._result_from_json(payload)
                # Workers already wrote the disk entry; seed this
                # process's memory cache so later lookups hit.
                key = experiments.cache_key(
                    task.system,
                    task.climate,
                    task.workload,
                    task.deferrable,
                    task.sample_every_days,
                    task.forecast_bias_c,
                )
                experiments.store_result(key, result, use_disk_cache=False)
                results[index] = result
                tick(task)
    return results  # type: ignore[return-value]
