"""Plain-text tables for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table (the bench harness prints these)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
