"""Microbenchmark harness for the simulation core (``python -m repro bench``).

Times the three hot layers of a CoolAir simulation:

* **plant step** — raw :class:`~repro.physics.thermal.ThermalPlant`
  integration throughput (model steps per second);
* **optimizer decision** — the 10-minute control decision: candidate
  enumeration, predictor rollouts, and utility scoring;
* **end to end** — one full simulated day, and a year-style sample of
  seasonally spread days, under the All-ND CoolAir version on smooth
  hardware at Newark (the configuration the paper's Figures 8-10 sweep
  runs thousands of times);
* **lane batches** — ``world_chunk`` and ``matrix``: worker-sized groups
  of (climate, system) year runs stepped in lockstep by the lane engine
  (:mod:`repro.sim.lanes`), measured against a recorded baseline that ran
  the identical scenarios through the scalar path one at a time.

Medians over repeated runs land in ``BENCH_sim_core.json`` next to the
recorded pre-PR baseline (``benchmarks/perf/baseline_sim_core.json``), so
speedups and regressions are visible across PRs; every run also appends a
line (git revision, label, medians) to ``benchmarks/perf/history.jsonl``.
``--profile`` wraps the day simulation in cProfile and prints the top
functions by cumulative time — the map for finding the next hot spot.

See ``docs/PERFORMANCE.md`` for the workflow.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import statistics
import subprocess
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.coolair import CoolAir
from repro.core.modeler import CoolingModel
from repro.core.predictor import PredictorState
from repro.core.versions import ALL_VERSIONS
from repro.cooling.regimes import CoolingMode
from repro.physics.thermal import PlantInputs, ThermalPlant
from repro.sim.campaign import trained_cooling_model
from repro.sim.engine import CoolAirAdapter, DayRunner, ProfileWorkload, make_smoothsim
from repro.weather.locations import NAMED_LOCATIONS, world_grid
from repro.workload.traces import FacebookTraceGenerator

SCHEMA_VERSION = 1

# Repo-root artifacts: the tracked benchmark trajectory and the recorded
# pre-PR baseline it is compared against.
DEFAULT_OUTPUT = "BENCH_sim_core.json"
DEFAULT_BASELINE = Path("benchmarks") / "perf" / "baseline_sim_core.json"
DEFAULT_HISTORY = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "perf"
    / "history.jsonl"
)

BENCH_LOCATION = "Newark"
BENCH_SYSTEM = "All-ND"
BENCH_DAY = 182
YEAR_SAMPLE_DAYS = (30, 120, 210, 300)

# Lane-engine benchmark scenarios (see bench_world_chunk / bench_matrix):
# sampled seasonally spread days of mixed (system, climate) year runs, the
# unit of work the campaign runner hands each worker.
CHUNK_SAMPLE_EVERY_DAYS = 180
CHUNK_TRACE_JOBS = 400
CHUNK_WORLD_GRID = 24
CHUNK_WORLD_STRIDE = 6
MATRIX_LOCATIONS = ("Newark", "Chad")


def _median_time(func: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``repeats`` calls to ``func``."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


# -- individual benchmarks ----------------------------------------------------


def bench_plant_step(steps: int = 2000, repeats: int = 3) -> Dict[str, float]:
    """Raw thermal-plant integration throughput."""
    inputs = PlantInputs(
        fc_fan_speed=0.5,
        pod_it_power_w=(400.0, 400.0, 400.0, 400.0),
        outside_temp_c=18.0,
        outside_mixing_ratio=0.008,
    )

    def run() -> None:
        plant = ThermalPlant()
        for _ in range(steps):
            plant.step(inputs, 120.0)

    median_s = _median_time(run, repeats)
    return {
        "median_s": median_s,
        "steps": steps,
        "steps_per_s": steps / median_s,
    }


def _decision_states(model: CoolingModel, count: int) -> List[PredictorState]:
    """A deterministic spread of control-period states to decide on."""
    states = []
    for i in range(count):
        outside = 4.0 + 28.0 * (i / max(1, count - 1))
        temps = [22.0 + 0.5 * s + 0.08 * i for s in range(model.num_sensors)]
        states.append(
            PredictorState(
                mode=CoolingMode.FREE_COOLING if i % 3 else CoolingMode.CLOSED,
                fan_speed=0.35 if i % 3 else 0.0,
                sensor_temps_c=temps,
                prev_sensor_temps_c=[t - 0.2 for t in temps],
                outside_temp_c=outside,
                prev_outside_temp_c=outside - 0.3,
                prev_fan_speed=0.3 if i % 3 else 0.0,
                utilization=0.25 + 0.5 * ((i % 7) / 6.0),
                inside_mixing_ratio=0.0075,
                outside_mixing_ratio=0.0085,
            )
        )
    return states


def bench_optimizer_decision(
    model: CoolingModel, decisions: int = 60, repeats: int = 3
) -> Dict[str, float]:
    """Latency of the 10-minute cooling decision (smooth hardware)."""
    setup = make_smoothsim(NAMED_LOCATIONS[BENCH_LOCATION])
    config = ALL_VERSIONS[BENCH_SYSTEM]()
    coolair = CoolAir(config, model, setup.layout, setup.forecast, smooth_hardware=True)
    coolair.start_day(BENCH_DAY)
    states = _decision_states(model, decisions)

    def run() -> None:
        for state in states:
            coolair.optimizer.decide(state, coolair.band)

    median_s = _median_time(run, repeats)
    return {
        "median_s": median_s,
        "decisions": decisions,
        "decision_latency_ms": 1000.0 * median_s / decisions,
    }


def _day_sim_factory(model: CoolingModel) -> Callable[[], object]:
    trace = FacebookTraceGenerator(num_jobs=400, seed=42).generate()

    def run() -> object:
        setup = make_smoothsim(NAMED_LOCATIONS[BENCH_LOCATION])
        config = ALL_VERSIONS[BENCH_SYSTEM]()
        coolair = CoolAir(
            config, model, setup.layout, setup.forecast, smooth_hardware=True
        )
        runner = DayRunner(
            setup, ProfileWorkload(trace, setup.layout, 600.0), CoolAirAdapter(coolair)
        )
        return runner.run_day(BENCH_DAY)

    return run


def bench_day_sim(model: CoolingModel, repeats: int = 3) -> Dict[str, float]:
    """One full simulated day, end to end."""
    run = _day_sim_factory(model)
    median_s = _median_time(run, repeats)
    return {"median_s": median_s, "days_per_s": 1.0 / median_s}


def bench_year_sample(model: CoolingModel, repeats: int = 2) -> Dict[str, float]:
    """A year-style sample: seasonally spread days on one shared setup."""
    trace = FacebookTraceGenerator(num_jobs=400, seed=42).generate()

    def run() -> None:
        setup = make_smoothsim(NAMED_LOCATIONS[BENCH_LOCATION])
        config = ALL_VERSIONS[BENCH_SYSTEM]()
        coolair = CoolAir(
            config, model, setup.layout, setup.forecast, smooth_hardware=True
        )
        runner = DayRunner(
            setup, ProfileWorkload(trace, setup.layout, 600.0), CoolAirAdapter(coolair)
        )
        for day in YEAR_SAMPLE_DAYS:
            runner.run_day(day)

    median_s = _median_time(run, repeats)
    return {
        "median_s": median_s,
        "days": len(YEAR_SAMPLE_DAYS),
        "s_per_day": median_s / len(YEAR_SAMPLE_DAYS),
    }


def _lane_chunk_factory(
    model: CoolingModel, climates, sample_every_days: int
) -> Callable[[], object]:
    """A runnable (climates x {baseline, All-ND}) lane batch."""
    from repro.sim.lanes import LaneScenario, run_year_lanes

    trace = FacebookTraceGenerator(num_jobs=CHUNK_TRACE_JOBS, seed=42).generate()
    scenarios = []
    for climate in climates:
        scenarios.append(
            LaneScenario(system="baseline", climate=climate, trace=trace)
        )
        scenarios.append(
            LaneScenario(
                system=ALL_VERSIONS[BENCH_SYSTEM](),
                climate=climate,
                trace=trace,
            )
        )

    def run() -> object:
        return run_year_lanes(
            scenarios, model=model, sample_every_days=sample_every_days
        )

    return run


def bench_world_chunk(
    model: CoolingModel, repeats: int = 3, quick: bool = False
) -> Dict[str, float]:
    """A worker-sized chunk of the Figures 12/13 world sweep, lane-batched.

    Eight (climate, system) year runs — a 6-stride sample of the 24-point
    world grid, baseline and All-ND each — stepped in lockstep over three
    seasonally spread days.  This is the headline lane-engine benchmark:
    the recorded baseline ran the same scenarios through the scalar
    reference path one at a time.
    """
    climates = world_grid(CHUNK_WORLD_GRID)[::CHUNK_WORLD_STRIDE]
    if quick:
        climates = climates[:1]
    run = _lane_chunk_factory(model, climates, CHUNK_SAMPLE_EVERY_DAYS)
    run()  # warm TMY/forecast caches so repeats time the simulation
    median_s = _median_time(run, repeats)
    lanes = 2 * len(climates)
    return {
        "median_s": median_s,
        "lanes": lanes,
        "s_per_lane": median_s / lanes,
    }


def bench_matrix(
    model: CoolingModel, repeats: int = 3, quick: bool = False
) -> Dict[str, float]:
    """A matrix-style chunk: two named locations x {baseline, All-ND}."""
    locations = MATRIX_LOCATIONS[:1] if quick else MATRIX_LOCATIONS
    climates = [NAMED_LOCATIONS[name] for name in locations]
    run = _lane_chunk_factory(model, climates, CHUNK_SAMPLE_EVERY_DAYS)
    run()
    median_s = _median_time(run, repeats)
    lanes = 2 * len(climates)
    return {
        "median_s": median_s,
        "lanes": lanes,
        "s_per_lane": median_s / lanes,
    }


# -- the suite ----------------------------------------------------------------


def run_bench(
    quick: bool = False, model: Optional[CoolingModel] = None
) -> Dict[str, Dict[str, float]]:
    """Run the suite; ``quick`` shrinks iteration counts for CI smoke runs."""
    if model is None:
        model = trained_cooling_model()
    results: Dict[str, Dict[str, float]] = {}
    if quick:
        results["plant_step"] = bench_plant_step(steps=200, repeats=1)
        results["optimizer_decision"] = bench_optimizer_decision(
            model, decisions=10, repeats=1
        )
        results["day_sim"] = bench_day_sim(model, repeats=1)
        results["world_chunk"] = bench_world_chunk(model, repeats=1, quick=True)
    else:
        results["plant_step"] = bench_plant_step()
        results["optimizer_decision"] = bench_optimizer_decision(model)
        results["day_sim"] = bench_day_sim(model)
        results["year_sample"] = bench_year_sample(model)
        results["world_chunk"] = bench_world_chunk(model)
        results["matrix"] = bench_matrix(model)
    return results


def profile_day_sim(model: Optional[CoolingModel] = None, top_n: int = 25) -> str:
    """cProfile one day simulation; returns the top-N cumulative table."""
    if model is None:
        model = trained_cooling_model()
    run = _day_sim_factory(model)
    run()  # warm any lazy caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(top_n)
    return out.getvalue()


# -- persistence and comparison -----------------------------------------------


def load_baseline(path: Path = DEFAULT_BASELINE) -> Optional[Dict]:
    """The recorded pre-PR baseline, or None if none has been recorded."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if payload.get("schema") != SCHEMA_VERSION:
        return None
    return payload


def speedups_vs_baseline(
    results: Dict[str, Dict[str, float]], baseline: Optional[Dict]
) -> Dict[str, float]:
    """Per-benchmark baseline_median / current_median (higher is faster)."""
    if not baseline:
        return {}
    speedups = {}
    for name, current in results.items():
        base = baseline.get("results", {}).get(name)
        if base and base.get("median_s") and current.get("median_s"):
            speedups[name] = base["median_s"] / current["median_s"]
    return speedups


def write_report(
    results: Dict[str, Dict[str, float]],
    path: Path,
    quick: bool = False,
    baseline_path: Path = DEFAULT_BASELINE,
) -> Dict:
    """Assemble and write the machine-readable benchmark report."""
    baseline = load_baseline(baseline_path)
    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": "sim_core",
        "recorded_unix_s": int(time.time()),
        "quick": quick,
        "results": results,
        "baseline": (baseline or {}).get("results", {}),
        "baseline_label": (baseline or {}).get("label", ""),
        "speedup_vs_baseline": speedups_vs_baseline(results, baseline),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def git_revision() -> str:
    """The current short git revision, or ``"unknown"`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parents[3],
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def append_history(
    payload: Dict, label: str = "", path: Path = DEFAULT_HISTORY
) -> Dict:
    """Append one benchmark run to the perf history (JSON Lines).

    Each ``python -m repro bench`` invocation lands here with the git
    revision it ran at, so the benchmark trajectory across PRs is a
    greppable, append-only log rather than a single overwritten file.
    """
    entry = {
        "recorded_unix_s": payload.get("recorded_unix_s"),
        "git_rev": git_revision(),
        "label": label,
        "quick": bool(payload.get("quick")),
        "medians_s": {
            name: result.get("median_s")
            for name, result in payload.get("results", {}).items()
        },
        "speedup_vs_baseline": payload.get("speedup_vs_baseline", {}),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def format_report(payload: Dict) -> str:
    """Human-readable summary of a benchmark report."""
    lines = ["sim-core benchmarks" + (" (quick)" if payload.get("quick") else "")]
    speedups = payload.get("speedup_vs_baseline", {})
    for name, result in sorted(payload.get("results", {}).items()):
        extra = ""
        if name in speedups:
            extra = f"  ({speedups[name]:.2f}x vs baseline)"
        detail = ", ".join(
            f"{key}={value:.6g}"
            for key, value in sorted(result.items())
            if key != "median_s"
        )
        lines.append(
            f"  {name:<20} median {result['median_s'] * 1000.0:9.1f} ms"
            f"{extra}  [{detail}]"
        )
    if not speedups:
        lines.append("  (no recorded baseline to compare against)")
    return "\n".join(lines)
