"""Microbenchmark harness for the simulation core (``python -m repro bench``).

Times the three hot layers of a CoolAir simulation:

* **plant step** — raw :class:`~repro.physics.thermal.ThermalPlant`
  integration throughput (model steps per second);
* **optimizer decision** — the 10-minute control decision: candidate
  enumeration, predictor rollouts, and utility scoring;
* **end to end** — one full simulated day, and a year-style sample of
  seasonally spread days, under the All-ND CoolAir version on smooth
  hardware at Newark (the configuration the paper's Figures 8-10 sweep
  runs thousands of times);
* **lane batches** — ``world_chunk``, ``plant_world_chunk``, and
  ``matrix``: worker-sized groups of (climate, system) year runs stepped
  in lockstep by the lane engine (:mod:`repro.sim.lanes`), measured
  against a recorded baseline that ran the identical scenarios through
  the scalar path one at a time (``plant_world_chunk`` cycles the
  non-parasol cooling backends across its lanes);
* **world_100k** — the screened planetary sweep
  (:mod:`repro.analysis.screening`): climate-cluster dedupe, surrogate
  screening, and cluster/surrogate serving over a dense ``world_grid``.
  The recorded baseline ran the *exhaustive* path over the identical
  quick grid, so ``speedup_vs_baseline`` reads as the screening win;
  full (non-quick) runs scale the same pipeline to a 100 000-point grid
  with the simulate budget pinned by policy.

Medians over repeated runs land in ``BENCH_sim_core.json`` next to the
recorded pre-PR baseline (``benchmarks/perf/baseline_sim_core.json``), so
speedups and regressions are visible across PRs; every run also appends a
line (git revision, label, medians) to ``benchmarks/perf/history.jsonl``.
``--profile`` wraps the day simulation in cProfile and prints the top
functions by cumulative time — the map for finding the next hot spot.

See ``docs/PERFORMANCE.md`` for the workflow.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.coolair import CoolAir
from repro.core.modeler import CoolingModel
from repro.core.predictor import PredictorState
from repro.core.versions import ALL_VERSIONS
from repro.cooling.regimes import CoolingMode
from repro.physics.thermal import PlantInputs, ThermalPlant
from repro.sim.campaign import trained_cooling_model
from repro.sim.engine import CoolAirAdapter, DayRunner, ProfileWorkload, make_smoothsim
from repro.weather.locations import NAMED_LOCATIONS, world_grid
from repro.workload.traces import FacebookTraceGenerator

SCHEMA_VERSION = 1

# Repo-root artifacts: the tracked benchmark trajectory and the recorded
# pre-PR baseline it is compared against.
DEFAULT_OUTPUT = "BENCH_sim_core.json"
DEFAULT_BASELINE = Path("benchmarks") / "perf" / "baseline_sim_core.json"
DEFAULT_HISTORY = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "perf"
    / "history.jsonl"
)

BENCH_LOCATION = "Newark"
BENCH_SYSTEM = "All-ND"
BENCH_DAY = 182
YEAR_SAMPLE_DAYS = (30, 120, 210, 300)

# Lane-engine benchmark scenarios (see bench_world_chunk / bench_matrix):
# sampled seasonally spread days of mixed (system, climate) year runs, the
# unit of work the campaign runner hands each worker.
CHUNK_SAMPLE_EVERY_DAYS = 180
CHUNK_TRACE_JOBS = 400
CHUNK_WORLD_GRID = 24
CHUNK_WORLD_STRIDE = 6
MATRIX_LOCATIONS = ("Newark", "Chad")

# plant_world_chunk: the world chunk again, but on the non-parasol
# cooling backends, cycling so every backend appears in the batch (see
# bench_plant_world_chunk).
PLANT_CHUNK_PLANTS = ("chiller", "cooling_tower", "hybrid")

# year_unfold: one All-ND year at Newark with its sampled days unfolded
# into lockstep lanes (see bench_year_unfold).  Stride 46 samples 8 days,
# filling the 8 lanes in a single batch.
UNFOLD_STRIDE_DAYS = 46
UNFOLD_DAY_LANES = 8
UNFOLD_TRACE_JOBS = 400

# world_sweep_stream: a cold-session world sweep through the campaign
# data plane (see bench_world_sweep_stream).
SWEEP_LOCATIONS = 24
SWEEP_STRIDE_DAYS = 365
SWEEP_WORKERS = 4
SWEEP_LANES = 8
SWEEP_TRACE_JOBS = 400

# world_100k: the screened planetary sweep (see bench_world_100k).  The
# quick grid is small enough for the CI smoke leg; the explicit policies
# pin the simulate budget so the benchmark's cost is a function of the
# screening pipeline, not of whatever the default fraction works out to
# at each grid size.
SCREEN_QUICK_GRID = 240
SCREEN_FULL_GRID = 100_000
SCREEN_STRIDE_DAYS = 365
SCREEN_TRACE_JOBS = 400
SCREEN_QUICK_POLICY = {
    "max_simulated_fraction": 0.05,
    "min_simulated_locations": 6,
}
SCREEN_FULL_POLICY = {
    "max_simulated_fraction": 0.0003,
    "min_simulated_locations": 24,
}


def _median_time(func: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``repeats`` calls to ``func``."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


# -- individual benchmarks ----------------------------------------------------


def bench_plant_step(steps: int = 2000, repeats: int = 3) -> Dict[str, float]:
    """Raw thermal-plant integration throughput."""
    inputs = PlantInputs(
        fc_fan_speed=0.5,
        pod_it_power_w=(400.0, 400.0, 400.0, 400.0),
        outside_temp_c=18.0,
        outside_mixing_ratio=0.008,
    )

    def run() -> None:
        plant = ThermalPlant()
        for _ in range(steps):
            plant.step(inputs, 120.0)

    median_s = _median_time(run, repeats)
    return {
        "median_s": median_s,
        "steps": steps,
        "steps_per_s": steps / median_s,
    }


def _decision_states(model: CoolingModel, count: int) -> List[PredictorState]:
    """A deterministic spread of control-period states to decide on."""
    states = []
    for i in range(count):
        outside = 4.0 + 28.0 * (i / max(1, count - 1))
        temps = [22.0 + 0.5 * s + 0.08 * i for s in range(model.num_sensors)]
        states.append(
            PredictorState(
                mode=CoolingMode.FREE_COOLING if i % 3 else CoolingMode.CLOSED,
                fan_speed=0.35 if i % 3 else 0.0,
                sensor_temps_c=temps,
                prev_sensor_temps_c=[t - 0.2 for t in temps],
                outside_temp_c=outside,
                prev_outside_temp_c=outside - 0.3,
                prev_fan_speed=0.3 if i % 3 else 0.0,
                utilization=0.25 + 0.5 * ((i % 7) / 6.0),
                inside_mixing_ratio=0.0075,
                outside_mixing_ratio=0.0085,
            )
        )
    return states


def bench_optimizer_decision(
    model: CoolingModel, decisions: int = 60, repeats: int = 3
) -> Dict[str, float]:
    """Latency of the 10-minute cooling decision (smooth hardware)."""
    setup = make_smoothsim(NAMED_LOCATIONS[BENCH_LOCATION])
    config = ALL_VERSIONS[BENCH_SYSTEM]()
    coolair = CoolAir(config, model, setup.layout, setup.forecast, smooth_hardware=True)
    coolair.start_day(BENCH_DAY)
    states = _decision_states(model, decisions)

    def run() -> None:
        for state in states:
            coolair.optimizer.decide(state, coolair.band)

    median_s = _median_time(run, repeats)
    return {
        "median_s": median_s,
        "decisions": decisions,
        "decision_latency_ms": 1000.0 * median_s / decisions,
    }


def _day_sim_factory(model: CoolingModel) -> Callable[[], object]:
    trace = FacebookTraceGenerator(num_jobs=400, seed=42).generate()

    def run() -> object:
        setup = make_smoothsim(NAMED_LOCATIONS[BENCH_LOCATION])
        config = ALL_VERSIONS[BENCH_SYSTEM]()
        coolair = CoolAir(
            config, model, setup.layout, setup.forecast, smooth_hardware=True
        )
        runner = DayRunner(
            setup, ProfileWorkload(trace, setup.layout, 600.0), CoolAirAdapter(coolair)
        )
        return runner.run_day(BENCH_DAY)

    return run


def bench_day_sim(model: CoolingModel, repeats: int = 3) -> Dict[str, float]:
    """One full simulated day, end to end."""
    run = _day_sim_factory(model)
    median_s = _median_time(run, repeats)
    return {"median_s": median_s, "days_per_s": 1.0 / median_s}


def bench_year_sample(model: CoolingModel, repeats: int = 2) -> Dict[str, float]:
    """A year-style sample: seasonally spread days on one shared setup."""
    trace = FacebookTraceGenerator(num_jobs=400, seed=42).generate()

    def run() -> None:
        setup = make_smoothsim(NAMED_LOCATIONS[BENCH_LOCATION])
        config = ALL_VERSIONS[BENCH_SYSTEM]()
        coolair = CoolAir(
            config, model, setup.layout, setup.forecast, smooth_hardware=True
        )
        runner = DayRunner(
            setup, ProfileWorkload(trace, setup.layout, 600.0), CoolAirAdapter(coolair)
        )
        for day in YEAR_SAMPLE_DAYS:
            runner.run_day(day)

    median_s = _median_time(run, repeats)
    return {
        "median_s": median_s,
        "days": len(YEAR_SAMPLE_DAYS),
        "s_per_day": median_s / len(YEAR_SAMPLE_DAYS),
    }


def _lane_chunk_factory(
    model: CoolingModel, climates, sample_every_days: int
) -> Callable[[], object]:
    """A runnable (climates x {baseline, All-ND}) lane batch."""
    from repro.sim.lanes import LaneScenario, run_year_lanes

    trace = FacebookTraceGenerator(num_jobs=CHUNK_TRACE_JOBS, seed=42).generate()
    scenarios = []
    for climate in climates:
        scenarios.append(
            LaneScenario(system="baseline", climate=climate, trace=trace)
        )
        scenarios.append(
            LaneScenario(
                system=ALL_VERSIONS[BENCH_SYSTEM](),
                climate=climate,
                trace=trace,
            )
        )

    def run() -> object:
        return run_year_lanes(
            scenarios, model=model, sample_every_days=sample_every_days
        )

    return run


def bench_year_unfold(
    model: CoolingModel, repeats: int = 2, unfold: bool = True
) -> Dict[str, float]:
    """One cell's year with its sampled days unfolded into lanes.

    Runs All-ND at Newark over the 8 days a 46-day stride samples, all
    stepped as one 8-lane lockstep batch (:func:`run_year_unfolded`) —
    the day-unfolded scheduling ``--day-lanes`` / ``REPRO_DAY_UNFOLD``
    turns on for single cells and remainder chunks.  The recorded
    baseline ran the identical cell through the day-sequential lane path
    (``unfold=False``, also used once to record that entry), so
    ``speedup_vs_baseline`` reads as the unfold win at this shape.
    """
    from repro.sim.lanes import LaneScenario, run_year_lanes, run_year_unfolded
    from repro.sim.yearsim import sampled_days

    trace = FacebookTraceGenerator(
        num_jobs=UNFOLD_TRACE_JOBS, seed=42
    ).generate()
    scenario = LaneScenario(
        system=ALL_VERSIONS[BENCH_SYSTEM](),
        climate=NAMED_LOCATIONS[BENCH_LOCATION],
        trace=trace,
    )

    def run() -> object:
        if unfold:
            return run_year_unfolded(
                scenario,
                UNFOLD_DAY_LANES,
                model=model,
                sample_every_days=UNFOLD_STRIDE_DAYS,
            )
        (result,) = run_year_lanes(
            [scenario], model=model, sample_every_days=UNFOLD_STRIDE_DAYS
        )
        return result

    run()  # warm TMY/forecast caches so repeats time the simulation
    median_s = _median_time(run, repeats)
    days = len(sampled_days(UNFOLD_STRIDE_DAYS))
    return {
        "median_s": median_s,
        "days": days,
        "day_lanes": UNFOLD_DAY_LANES if unfold else 1,
        "sample_every_days": UNFOLD_STRIDE_DAYS,
        "trace_jobs": UNFOLD_TRACE_JOBS,
        "s_per_day": median_s / days,
        "days_per_s": days / median_s,
    }


def bench_world_chunk(
    model: CoolingModel, repeats: int = 3, quick: bool = False
) -> Dict[str, float]:
    """A worker-sized chunk of the Figures 12/13 world sweep, lane-batched.

    Eight (climate, system) year runs — a 6-stride sample of the 24-point
    world grid, baseline and All-ND each — stepped in lockstep over three
    seasonally spread days.  This is the headline lane-engine benchmark:
    the recorded baseline ran the same scenarios through the scalar
    reference path one at a time.
    """
    climates = world_grid(CHUNK_WORLD_GRID)[::CHUNK_WORLD_STRIDE]
    if quick:
        climates = climates[:1]
    run = _lane_chunk_factory(model, climates, CHUNK_SAMPLE_EVERY_DAYS)
    run()  # warm TMY/forecast caches so repeats time the simulation
    median_s = _median_time(run, repeats)
    lanes = 2 * len(climates)
    return {
        "median_s": median_s,
        "lanes": lanes,
        "s_per_lane": median_s / lanes,
    }


def bench_plant_world_chunk(
    model: CoolingModel,
    repeats: int = 3,
    quick: bool = False,
    scalar: bool = False,
) -> Dict[str, float]:
    """The world chunk on the non-parasol plants, lane-batched.

    The same worker-sized chunk as ``world_chunk`` — eight
    (climate, system) year runs over three seasonally spread days — but
    with the cooling plant cycling chiller / cooling_tower / hybrid
    across the lanes, so every lane-vectorized backend is in the batch.
    The recorded baseline ran the identical scenarios through the scalar
    reference path one cell at a time (``scalar=True``, also used once
    to record that entry) — the path plant campaigns were forced onto
    before the backends grew lane variants — so ``speedup_vs_baseline``
    reads as the lane-engine win for plant campaigns.
    """
    from repro.sim.lanes import LaneScenario, run_year_lanes
    from repro.sim.yearsim import run_year

    climates = world_grid(CHUNK_WORLD_GRID)[::CHUNK_WORLD_STRIDE]
    if quick:
        climates = climates[:1]
    trace = FacebookTraceGenerator(num_jobs=CHUNK_TRACE_JOBS, seed=42).generate()
    scenarios = []
    for climate in climates:
        for system in ("baseline", ALL_VERSIONS[BENCH_SYSTEM]()):
            scenarios.append(
                LaneScenario(
                    system=system,
                    climate=climate,
                    trace=trace,
                    plant=PLANT_CHUNK_PLANTS[
                        len(scenarios) % len(PLANT_CHUNK_PLANTS)
                    ],
                )
            )

    def run() -> object:
        if scalar:
            return [
                run_year(
                    s.system,
                    s.climate,
                    s.trace,
                    model=model,
                    sample_every_days=CHUNK_SAMPLE_EVERY_DAYS,
                    plant=s.plant,
                )
                for s in scenarios
            ]
        return run_year_lanes(
            scenarios, model=model, sample_every_days=CHUNK_SAMPLE_EVERY_DAYS
        )

    run()  # warm TMY/forecast caches so repeats time the simulation
    median_s = _median_time(run, repeats)
    lanes = len(scenarios)
    return {
        "median_s": median_s,
        "lanes": lanes,
        "s_per_lane": median_s / lanes,
    }


def bench_matrix(
    model: CoolingModel, repeats: int = 3, quick: bool = False
) -> Dict[str, float]:
    """A matrix-style chunk: two named locations x {baseline, All-ND}."""
    locations = MATRIX_LOCATIONS[:1] if quick else MATRIX_LOCATIONS
    climates = [NAMED_LOCATIONS[name] for name in locations]
    run = _lane_chunk_factory(model, climates, CHUNK_SAMPLE_EVERY_DAYS)
    run()
    median_s = _median_time(run, repeats)
    lanes = 2 * len(climates)
    return {
        "median_s": median_s,
        "lanes": lanes,
        "s_per_lane": median_s / lanes,
    }


# Leg scripts for bench_world_sweep_stream: each runs in a fresh
# interpreter so import, trace, model, and weather costs are paid the way
# a real cold session pays them, and reports its own wall clock, parent
# peak RSS, and the full per-location summary for the equivalence check.
_SWEEP_LEG_CODE = """
import json, os, resource, sys, time


def peak_rss_mb():
    # VmHWM, not ru_maxrss: on Linux ru_maxrss survives exec (the
    # fork-time copy of a fat launching process becomes the child's
    # floor), while VmHWM lives in the mm struct and resets on exec,
    # so it reports this leg's own peak.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


start = time.perf_counter()
from repro.analysis import experiments
summary = experiments.world_sweep(
    num_locations=int(os.environ["BENCH_LOCATIONS"]),
    sample_every_days=int(os.environ["BENCH_STRIDE"]),
    workers=int(os.environ["BENCH_WORKERS"]),
    lanes=int(os.environ["BENCH_LANES"]),
)
total_s = time.perf_counter() - start
comparisons = [
    {
        "name": c.name,
        "latitude": c.latitude,
        "longitude": c.longitude,
        "baseline_max_range_c": c.baseline_max_range_c,
        "coolair_max_range_c": c.coolair_max_range_c,
        "baseline_pue": c.baseline_pue,
        "coolair_pue": c.coolair_pue,
    }
    for c in summary.comparisons
]
print(json.dumps({
    "total_s": total_s,
    "parent_peak_rss_mb": peak_rss_mb(),
    "comparisons": comparisons,
}))
"""

# What one spawned worker pays before it can run its first cell: import
# the harness, materialize the trace, and obtain the cooling model.
_SWEEP_SETUP_CODE = """
import json, time
start = time.perf_counter()
from repro.analysis import experiments
from repro.sim.campaign import trained_cooling_model
experiments.facebook_trace(False)
trained_cooling_model()
print(json.dumps({"setup_s": time.perf_counter() - start}))
"""

# One-time store build: materialize every weather grid the sweep reads
# plus the trace and model artifacts.
_SWEEP_BUILD_CODE = """
import json, os, time
start = time.perf_counter()
from repro import artifacts
from repro.analysis import experiments
from repro.sim.campaign import trained_cooling_model
from repro.weather.locations import world_grid
for climate in world_grid(int(os.environ["BENCH_LOCATIONS"])):
    artifacts.tmy_series(climate)
experiments.facebook_trace(False)
trained_cooling_model()
print(json.dumps({"build_s": time.perf_counter() - start}))
"""


def _run_bench_subprocess(
    code: str, env: Dict[str, str], timeout_s: float = 600.0
) -> Dict:
    """Run a leg script in a fresh interpreter; parse its JSON stdout."""
    src_root = Path(__file__).resolve().parents[2]
    merged = dict(os.environ)
    merged.update(env)
    merged["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([merged["PYTHONPATH"]] if merged.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=timeout_s,
        env=merged,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"benchmark leg failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


# Leg script for bench_world_100k: one cold-session screened (or, for
# baseline recording, exhaustive) world sweep.  A fresh interpreter pays
# trace/model/import costs the way a real session does; the cache dir is
# a throwaway so every promoted cell actually simulates.
_SCREEN_LEG_CODE = """
import json, os, time

start = time.perf_counter()
from repro.analysis import experiments
from repro.analysis.screening import ScreeningPolicy

policy = None
raw = os.environ.get("BENCH_SCREEN_POLICY")
if raw:
    policy = ScreeningPolicy.from_json(json.loads(raw))
stats = {}
summary = experiments.world_sweep(
    num_locations=int(os.environ["BENCH_GRID_POINTS"]),
    sample_every_days=int(os.environ["BENCH_STRIDE"]),
    screen=os.environ["BENCH_SCREEN"],
    screen_policy=policy,
    screen_stats=stats,
)
total_s = time.perf_counter() - start
print(json.dumps({
    "total_s": total_s,
    "locations": len(summary.comparisons),
    "stats": stats,
}))
"""


def bench_world_100k(quick: bool = False, screen: str = "on") -> Dict[str, float]:
    """The screened planetary world sweep, cold session, cold cache.

    Runs the full screening pipeline — climate-cluster dedupe, cluster
    representatives simulated, surrogate-uncertain cells promoted, the
    rest served with provenance tags — over ``SCREEN_QUICK_GRID`` points
    (quick) or ``SCREEN_FULL_GRID`` (full).  The provenance counters
    must sum to the grid size or this benchmark raises — that invariant
    check is what the CI smoke leg leans on.

    ``screen="off"`` runs the exhaustive path on the same grid instead
    (used once to record the pre-screening baseline entry).
    """
    grid = SCREEN_QUICK_GRID if quick else SCREEN_FULL_GRID
    policy = SCREEN_QUICK_POLICY if quick else SCREEN_FULL_POLICY
    env = {
        "BENCH_GRID_POINTS": str(grid),
        "BENCH_STRIDE": str(SCREEN_STRIDE_DAYS),
        "BENCH_SCREEN": screen,
        "BENCH_SCREEN_POLICY": json.dumps(policy),
        "REPRO_TRACE_JOBS": str(SCREEN_TRACE_JOBS),
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        env["REPRO_CACHE_DIR"] = str(Path(tmp) / "cache")
        leg = _run_bench_subprocess(
            _SCREEN_LEG_CODE, env, timeout_s=600.0 if quick else 3600.0
        )
    result = {
        "median_s": leg["total_s"],
        "grid_points": grid,
        "locations": leg["locations"],
        "s_per_grid_point": leg["total_s"] / grid,
        "sample_every_days": SCREEN_STRIDE_DAYS,
        "trace_jobs": SCREEN_TRACE_JOBS,
    }
    if screen == "off":
        return result
    stats = leg["stats"]
    counters = stats["counters"]
    if sum(counters.values()) != grid:
        raise RuntimeError(
            f"world_100k screening counters {counters} do not sum to the "
            f"grid size {grid}"
        )
    result.update(
        simulated=counters["simulated"],
        served_from_cluster=counters["served_from_cluster"],
        surrogate_only=counters["surrogate_only"],
        clusters=stats["clusters"],
        cells_simulated=stats["cells_simulated"],
    )
    return result


def bench_world_sweep_stream() -> Dict[str, float]:
    """A cold 24-location world sweep through the campaign data plane.

    Two legs, each a fresh interpreter fanning 48 uncached cells
    (24 grid climates x {baseline, All-ND}, one sampled day each) over
    ``spawn`` pool workers with a cold result cache:

    * **legacy** — the pre-data-plane path: artifact store disabled,
      in-memory aggregation.  The parent trains the cooling model and
      every spawned worker retrains it and regenerates traces/weather
      from scratch.
    * **plane** (the recorded ``median_s``) — artifact store prewarmed
      (the one-time build is timed separately as ``store_build_s``),
      streaming aggregation.  Workers load the pickled model and mmap
      the weather grids instead of recomputing them.

    Both legs use ``spawn`` so per-worker setup cost is actually paid and
    measured rather than hidden by fork's copy-on-write inheritance —
    this is the session-cold cost the store exists to kill, and the
    regime portable to platforms where fork is unavailable.  The legs'
    per-location summaries must match exactly (bit-identical floats
    through JSON round-trip) or this benchmark raises.
    """
    common = {
        "BENCH_LOCATIONS": str(SWEEP_LOCATIONS),
        "BENCH_STRIDE": str(SWEEP_STRIDE_DAYS),
        "BENCH_WORKERS": str(SWEEP_WORKERS),
        "BENCH_LANES": str(SWEEP_LANES),
        "REPRO_TRACE_JOBS": str(SWEEP_TRACE_JOBS),
        "REPRO_MP_CONTEXT": "spawn",
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        tmp_path = Path(tmp)
        store_dir = str(tmp_path / "artifacts")
        legacy_env = dict(
            common,
            REPRO_ARTIFACTS="0",
            REPRO_STREAM_WORLD="0",
            REPRO_CACHE_DIR=str(tmp_path / "cache-legacy"),
        )
        plane_env = dict(
            common,
            REPRO_ARTIFACTS_DIR=store_dir,
            REPRO_STREAM_WORLD="1",
            REPRO_CACHE_DIR=str(tmp_path / "cache-plane"),
        )
        legacy_setup = _run_bench_subprocess(_SWEEP_SETUP_CODE, legacy_env)
        build = _run_bench_subprocess(_SWEEP_BUILD_CODE, plane_env)
        warm_setup = _run_bench_subprocess(_SWEEP_SETUP_CODE, plane_env)
        legacy = _run_bench_subprocess(_SWEEP_LEG_CODE, legacy_env)
        plane = _run_bench_subprocess(_SWEEP_LEG_CODE, plane_env)
    if legacy["comparisons"] != plane["comparisons"]:
        raise RuntimeError(
            "world_sweep_stream legs disagree: streaming data-plane sweep "
            "is not bit-identical to the legacy in-memory sweep"
        )
    if not plane["comparisons"]:
        raise RuntimeError("world_sweep_stream produced an empty summary")
    return {
        "median_s": plane["total_s"],
        "legacy_s": legacy["total_s"],
        "speedup_vs_legacy": legacy["total_s"] / plane["total_s"],
        "store_build_s": build["build_s"],
        "worker_setup_s": warm_setup["setup_s"],
        "legacy_worker_setup_s": legacy_setup["setup_s"],
        "parent_peak_rss_mb": plane["parent_peak_rss_mb"],
        "legacy_parent_peak_rss_mb": legacy["parent_peak_rss_mb"],
        "locations": SWEEP_LOCATIONS,
        "cells": 2 * SWEEP_LOCATIONS,
        "workers": SWEEP_WORKERS,
        "sample_every_days": SWEEP_STRIDE_DAYS,
        "trace_jobs": SWEEP_TRACE_JOBS,
    }


# -- the suite ----------------------------------------------------------------


def run_bench(
    quick: bool = False, model: Optional[CoolingModel] = None
) -> Dict[str, Dict[str, float]]:
    """Run the suite; ``quick`` shrinks iteration counts for CI smoke runs."""
    if model is None:
        model = trained_cooling_model()
    results: Dict[str, Dict[str, float]] = {}
    if quick:
        results["plant_step"] = bench_plant_step(steps=200, repeats=1)
        results["optimizer_decision"] = bench_optimizer_decision(
            model, decisions=10, repeats=1
        )
        results["day_sim"] = bench_day_sim(model, repeats=1)
        results["year_unfold"] = bench_year_unfold(model, repeats=1)
        results["world_chunk"] = bench_world_chunk(model, repeats=1, quick=True)
        results["plant_world_chunk"] = bench_plant_world_chunk(
            model, repeats=1, quick=True
        )
        results["world_100k"] = bench_world_100k(quick=True)
    else:
        results["plant_step"] = bench_plant_step()
        results["optimizer_decision"] = bench_optimizer_decision(model)
        results["day_sim"] = bench_day_sim(model)
        results["year_sample"] = bench_year_sample(model)
        results["year_unfold"] = bench_year_unfold(model)
        results["world_chunk"] = bench_world_chunk(model)
        results["plant_world_chunk"] = bench_plant_world_chunk(model)
        results["matrix"] = bench_matrix(model)
        results["world_sweep_stream"] = bench_world_sweep_stream()
        results["world_100k"] = bench_world_100k()
    return results


def profile_day_sim(model: Optional[CoolingModel] = None, top_n: int = 25) -> str:
    """cProfile one day simulation; returns the top-N cumulative table."""
    if model is None:
        model = trained_cooling_model()
    run = _day_sim_factory(model)
    run()  # warm any lazy caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(top_n)
    return out.getvalue()


# -- persistence and comparison -----------------------------------------------


def load_baseline(path: Path = DEFAULT_BASELINE) -> Optional[Dict]:
    """The recorded pre-PR baseline, or None if none has been recorded."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if payload.get("schema") != SCHEMA_VERSION:
        return None
    return payload


def speedups_vs_baseline(
    results: Dict[str, Dict[str, float]], baseline: Optional[Dict]
) -> Dict[str, float]:
    """Per-benchmark baseline_median / current_median (higher is faster).

    Benchmarks whose tracked workload shape differs from the recorded
    baseline (e.g. a full 100k ``world_100k`` run against the quick-shape
    baseline) are left out rather than reported as a meaningless ratio;
    ``bench --check`` skips them for the same reason.
    """
    if not baseline:
        return {}
    speedups = {}
    for name, current in results.items():
        base = baseline.get("results", {}).get(name)
        if not (base and base.get("median_s") and current.get("median_s")):
            continue
        shape = TRACKED_METRICS.get(name, {}).get("shape", ())
        if any(current.get(key) != base.get(key) for key in shape):
            continue
        speedups[name] = base["median_s"] / current["median_s"]
    return speedups


def write_report(
    results: Dict[str, Dict[str, float]],
    path: Path,
    quick: bool = False,
    baseline_path: Path = DEFAULT_BASELINE,
) -> Dict:
    """Assemble and write the machine-readable benchmark report."""
    baseline = load_baseline(baseline_path)
    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": "sim_core",
        "recorded_unix_s": int(time.time()),
        "quick": quick,
        "results": results,
        "baseline": (baseline or {}).get("results", {}),
        "baseline_label": (baseline or {}).get("label", ""),
        "speedup_vs_baseline": speedups_vs_baseline(results, baseline),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def git_revision() -> str:
    """The current short git revision, or ``"unknown"`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parents[3],
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def append_history(
    payload: Dict, label: str = "", path: Path = DEFAULT_HISTORY
) -> Dict:
    """Append one benchmark run to the perf history (JSON Lines).

    Each ``python -m repro bench`` invocation lands here with the git
    revision it ran at, so the benchmark trajectory across PRs is a
    greppable, append-only log rather than a single overwritten file.
    """
    entry = {
        "recorded_unix_s": payload.get("recorded_unix_s"),
        "git_rev": git_revision(),
        "label": label,
        "quick": bool(payload.get("quick")),
        "medians_s": {
            name: result.get("median_s")
            for name, result in payload.get("results", {}).items()
        },
        "speedup_vs_baseline": payload.get("speedup_vs_baseline", {}),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Atomic append: rebuild the file beside itself and os.replace() it,
    # so a crashed or concurrent bench run can never leave a torn line
    # in the history (the same discipline as the result cache).
    try:
        existing = path.read_text()
    except OSError:
        existing = ""
    if existing and not existing.endswith("\n"):
        existing += "\n"
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(existing + json.dumps(entry, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return entry


# -- regression gate (``python -m repro bench --check``) -----------------------

# One tracked metric per benchmark: the value ``--check`` compares against
# the recorded baseline, which direction is better, and which result keys
# describe the workload *shape*.  A shape mismatch between the current run
# and the baseline (e.g. a ``--quick`` run's 2-lane chunk vs the recorded
# 8-lane baseline) makes the pair incomparable, so that benchmark is
# skipped with a note instead of producing a bogus verdict.
TRACKED_METRICS: Dict[str, Dict] = {
    "plant_step": {
        "metric": "steps_per_s", "better": "higher", "shape": ("steps",),
    },
    "optimizer_decision": {
        "metric": "decision_latency_ms", "better": "lower", "shape": (),
    },
    "day_sim": {"metric": "median_s", "better": "lower", "shape": ()},
    "year_sample": {
        "metric": "s_per_day", "better": "lower", "shape": ("days",),
    },
    # The recorded baseline ran the identical cell day-sequentially, so
    # the shape deliberately excludes day_lanes: the comparison *is*
    # unfolded-vs-sequential at the same workload shape.
    "year_unfold": {
        "metric": "s_per_day",
        "better": "lower",
        "shape": ("days", "sample_every_days", "trace_jobs"),
    },
    "world_chunk": {
        "metric": "s_per_lane", "better": "lower", "shape": ("lanes",),
    },
    # The recorded baseline ran the identical plant scenarios through the
    # scalar reference path one cell at a time (the pre-lane fallback),
    # so the comparison is lanes-vs-scalar at the same workload shape.
    "plant_world_chunk": {
        "metric": "s_per_lane", "better": "lower", "shape": ("lanes",),
    },
    "matrix": {
        "metric": "s_per_lane", "better": "lower", "shape": ("lanes",),
    },
    "world_sweep_stream": {
        "metric": "median_s",
        "better": "lower",
        "shape": (
            "locations", "workers", "sample_every_days", "trace_jobs",
        ),
    },
    # The recorded baseline is the exhaustive sweep on the quick grid, so
    # quick runs compare screened-vs-exhaustive at the same shape; full
    # (100k-point) runs differ in grid_points and are skipped with a note.
    "world_100k": {
        "metric": "median_s",
        "better": "lower",
        "shape": ("grid_points", "sample_every_days", "trace_jobs"),
    },
}


def check_regressions(
    results: Dict[str, Dict[str, float]],
    baseline: Optional[Dict],
    threshold: float = 0.25,
) -> Tuple[List[str], List[str]]:
    """Compare tracked metrics against the recorded baseline.

    Returns ``(regressions, notes)``: one line per tracked benchmark that
    regressed by more than ``threshold`` (fractional — 0.25 means 25%
    worse), and one informational note per benchmark that could not be
    compared (absent from either side, or a workload-shape mismatch).
    """
    regressions: List[str] = []
    notes: List[str] = []
    base_results = (baseline or {}).get("results", {})
    if not base_results:
        notes.append("no recorded baseline; nothing to check")
        return regressions, notes
    for name, spec in TRACKED_METRICS.items():
        current = results.get(name)
        base = base_results.get(name)
        if current is None or base is None:
            if current is not None:
                notes.append(f"{name}: not in baseline; skipped")
            continue
        mismatched = [
            key
            for key in spec["shape"]
            if current.get(key) != base.get(key)
        ]
        if mismatched:
            notes.append(
                f"{name}: workload shape differs from baseline "
                f"({', '.join(mismatched)}); skipped"
            )
            continue
        metric = spec["metric"]
        cur_value = current.get(metric)
        base_value = base.get(metric)
        if not cur_value or not base_value:
            notes.append(f"{name}: metric {metric} missing; skipped")
            continue
        if spec["better"] == "higher":
            worse_by = base_value / cur_value - 1.0
        else:
            worse_by = cur_value / base_value - 1.0
        if worse_by > threshold:
            regressions.append(
                f"{name}: {metric} {cur_value:.6g} vs baseline "
                f"{base_value:.6g} ({worse_by:+.0%} worse; "
                f"limit {threshold:.0%})"
            )
    return regressions, notes


def format_report(payload: Dict) -> str:
    """Human-readable summary of a benchmark report."""
    lines = ["sim-core benchmarks" + (" (quick)" if payload.get("quick") else "")]
    speedups = payload.get("speedup_vs_baseline", {})
    for name, result in sorted(payload.get("results", {}).items()):
        extra = ""
        if name in speedups:
            extra = f"  ({speedups[name]:.2f}x vs baseline)"
        detail = ", ".join(
            f"{key}={value:.6g}"
            for key, value in sorted(result.items())
            if key != "median_s"
        )
        lines.append(
            f"  {name:<20} median {result['median_s'] * 1000.0:9.1f} ms"
            f"{extra}  [{detail}]"
        )
    if not speedups:
        lines.append("  (no recorded baseline to compare against)")
    return "\n".join(lines)
