"""Three-stage screening pipeline for planetary-scale world sweeps.

The paper's world study stops at 1520 TMY locations; the ROADMAP
north-star is a 100k+ point grid, and at ~0.5 s per lane-year the
bottleneck is raw per-cell simulation cost.  This module gets ~10-30x
effective throughput by simulating only the cells that matter and
pricing the rest:

1. **Climate-cluster dedupe** — every grid cell's :class:`Climate`
   parameters embed into a normalized feature vector
   (:func:`climate_features`); near-identical climates cluster under a
   deterministic, seeded leader pass (:func:`cluster_climates`), one
   *representative* per cluster is fully simulated, and the members are
   served from the representative's metrics with a distance-based
   correction clipped to the documented :data:`CORRECTION_BOUNDS`.
2. **Surrogate screening** — the existing :mod:`repro.ml` model classes
   (OLS / LMS via :func:`repro.ml.selection.fit_best_linear`) fit the
   four :class:`~repro.analysis.worldmap.WorldSummary` metrics from the
   climate features of every *simulated* cell.  Cells whose
   prediction-interval width exceeds the policy threshold are routed to
   full simulation (most-uncertain first, within budget); confident
   cells far from any cluster representative are priced by the
   surrogate alone.
3. **Calibrated cost model** — :class:`CostModel` measures observed
   seconds per cell online (the runner feeds it), sizes lane batches to
   a target chunk duration, and converts a wall-clock budget into the
   simulate-vs-serve split.

Every location ends up tagged with a provenance (``simulated``,
``served_from_cluster``, or ``surrogate_only``); the tags travel through
the :class:`~repro.analysis.worldmap.StreamingWorldAccumulator`, the
service status API, and the CLI tables, and always sum to the grid size
— coverage is never silently truncated.  ``--screen=off`` (the default)
bypasses this module entirely and reproduces the exhaustive path
bit-identically.

Knobs: ``--screen`` / ``REPRO_SCREEN`` select the mode; the
:class:`ScreeningPolicy` fields are the tuning surface
(docs/PERFORMANCE.md has the full table).
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.weather.climate import Climate

SCREEN_MODES = ("off", "on")

#: Feature scales: one unit of normalized distance corresponds to this
#: much raw difference per climate parameter.  Chosen so that a distance
#: of ~0.1 separates climates whose year metrics differ by well under
#: the correction bounds below.
FEATURE_SCALES: Tuple[Tuple[str, float], ...] = (
    ("mean_temp_c", 10.0),
    ("seasonal_amplitude_c", 8.0),
    ("diurnal_amplitude_c", 5.0),
    ("synoptic_std_c", 4.0),
    ("mean_rh_pct", 40.0),
    ("diurnal_rh_amplitude_pct", 15.0),
)

#: The metric rows of the world accumulator, in row order: baseline /
#: CoolAir max daily range, baseline / CoolAir PUE, baseline / CoolAir
#: WUE (L/kWh; zero for air-cooled plants).
METRIC_NAMES: Tuple[str, ...] = (
    "baseline_max_range_c",
    "coolair_max_range_c",
    "baseline_pue",
    "coolair_pue",
    "baseline_wue",
    "coolair_wue",
)

#: Documented correction bounds: a cluster-served metric never moves
#: more than this from its representative's *simulated* value.  The
#: property tests in ``tests/unit/test_screening.py`` pin this contract.
CORRECTION_BOUNDS: Dict[str, float] = {
    "baseline_max_range_c": 2.0,
    "coolair_max_range_c": 2.0,
    "baseline_pue": 0.02,
    "coolair_pue": 0.02,
    "baseline_wue": 0.05,
    "coolair_wue": 0.05,
}

#: Assumed metric change per unit of normalized feature distance; used
#: to widen surrogate prediction intervals away from training data.
METRIC_LIPSCHITZ: Dict[str, float] = {
    "baseline_max_range_c": 8.0,
    "coolair_max_range_c": 8.0,
    "baseline_pue": 0.08,
    "coolair_pue": 0.08,
    "baseline_wue": 0.2,
    "coolair_wue": 0.2,
}

PROVENANCE_SIMULATED = "simulated"
PROVENANCE_CLUSTER = "served_from_cluster"
PROVENANCE_SURROGATE = "surrogate_only"
PROVENANCES = (
    PROVENANCE_SIMULATED,
    PROVENANCE_CLUSTER,
    PROVENANCE_SURROGATE,
)


def resolve_screen(requested: Optional[str] = None) -> str:
    """Screening mode: explicit argument > ``REPRO_SCREEN`` > ``off``."""
    if requested is None:
        requested = os.environ.get("REPRO_SCREEN") or "off"
    if requested not in SCREEN_MODES:
        raise ReproError(
            f"unknown screen mode {requested!r}; choices: {SCREEN_MODES}"
        )
    return requested


# -- climate feature embedding -------------------------------------------------


def climate_features(climate: Climate) -> np.ndarray:
    """The normalized feature vector of one climate.

    Parameters scale by :data:`FEATURE_SCALES`; the hemisphere enters as
    a 0/1 feature with unit weight so northern and southern climates —
    whose seasonal phase is opposite — never land in one cluster at any
    reasonable tolerance.
    """
    row = [
        getattr(climate, name) / scale for name, scale in FEATURE_SCALES
    ]
    row.append(1.0 if climate.southern_hemisphere else 0.0)
    return np.asarray(row, dtype=float)


def feature_matrix(climates: Sequence[Climate]) -> np.ndarray:
    """The (n, n_features) embedding of a climate grid."""
    return np.asarray([climate_features(c) for c in climates], dtype=float)


# -- climate-cluster dedupe ----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ClimateCluster:
    """One cluster: the representative index and its member indices.

    ``members`` excludes the representative; ``distances`` aligns with
    ``members`` and holds each member's normalized feature distance to
    the representative.
    """

    representative: int
    members: Tuple[int, ...]
    distances: Tuple[float, ...]


def cluster_climates(
    features: np.ndarray, tol: float, seed: int = 0
) -> List[ClimateCluster]:
    """Deterministic seeded leader clustering of a feature matrix.

    Points are visited in a seed-derived permutation (``seed=0`` keeps
    grid order); a point within ``tol`` of an existing representative
    joins that cluster (nearest representative wins), otherwise it
    becomes a new representative.  Same features + same seed -> same
    clusters, always.
    """
    if tol <= 0:
        raise ReproError(f"cluster tolerance must be > 0, got {tol}")
    n = features.shape[0]
    if seed:
        order = np.random.default_rng(seed).permutation(n)
    else:
        order = np.arange(n)
    rep_indices: List[int] = []
    rep_rows: List[np.ndarray] = []
    members: List[List[int]] = []
    distances: List[List[float]] = []
    for index in order:
        point = features[index]
        if rep_rows:
            deltas = np.asarray(rep_rows) - point
            dists = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
            best = int(np.argmin(dists))
            if dists[best] <= tol:
                members[best].append(int(index))
                distances[best].append(float(dists[best]))
                continue
        rep_indices.append(int(index))
        rep_rows.append(point)
        members.append([])
        distances.append([])
    clusters = [
        ClimateCluster(
            representative=rep,
            members=tuple(mem),
            distances=tuple(dist),
        )
        for rep, mem, dist in zip(rep_indices, members, distances)
    ]
    # Report clusters in representative order so downstream iteration is
    # stable regardless of the seed permutation.
    clusters.sort(key=lambda c: c.representative)
    return clusters


def cluster_to_budget(
    features: np.ndarray,
    tol: float,
    max_representatives: int,
    seed: int = 0,
) -> Tuple[List[ClimateCluster], float]:
    """Leader clustering, coarsening the tolerance to fit a rep budget.

    Doubles ``tol`` (by 1.5x steps) until the cluster count fits
    ``max_representatives``, so the simulate budget — not the grid
    density — bounds how many cells run.  Returns the clusters and the
    tolerance actually used.
    """
    if max_representatives < 1:
        raise ReproError(
            f"max_representatives must be >= 1, got {max_representatives}"
        )
    clusters = cluster_climates(features, tol, seed=seed)
    while len(clusters) > max_representatives:
        tol *= 1.5
        clusters = cluster_climates(features, tol, seed=seed)
    return clusters, tol


# -- surrogate screening -------------------------------------------------------


class WorldSurrogate:
    """Per-metric linear surrogates over climate features.

    One :func:`~repro.ml.selection.fit_best_linear` model per world
    metric, fit on the cells simulated so far.  Prediction intervals
    widen with the distance to the nearest training point: the width of
    metric ``m`` at features ``x`` is ``2 * (rmse_m + lipschitz_m *
    d_nn(x))``, which is honest about extrapolation — a cell far from
    every simulated climate is uncertain no matter how clean the fit.
    """

    def __init__(self) -> None:
        self._models: Dict[str, object] = {}
        self._rmse: Dict[str, float] = {}
        self._train: Optional[np.ndarray] = None

    @property
    def is_fit(self) -> bool:
        return bool(self._models)

    def fit(self, features: np.ndarray, metrics: np.ndarray) -> "WorldSurrogate":
        """Fit on (n, n_features) features and (len(METRIC_NAMES), n) rows.

        Needs at least ``n_features + 2`` samples to say anything; with
        fewer the surrogate stays unfit and every cell reads as
        maximally uncertain.
        """
        from repro.ml.dataset import Dataset
        from repro.ml.selection import fit_best_linear

        if metrics.shape[0] != len(METRIC_NAMES):
            raise ConfigError(
                f"surrogate fit expects {len(METRIC_NAMES)} metric rows "
                f"({', '.join(METRIC_NAMES)}); got {metrics.shape[0]}"
            )
        n = features.shape[0]
        if n < features.shape[1] + 2:
            return self
        names = tuple(f"f{i}" for i in range(features.shape[1]))
        for row, metric in enumerate(METRIC_NAMES):
            data = Dataset(names)
            for i in range(n):
                data.add(features[i].tolist(), float(metrics[row, i]))
            model = fit_best_linear(data)
            self._models[metric] = model
            self._rmse[metric] = float(model.rmse(data))
        self._train = np.array(features, dtype=float)
        return self

    def _nearest_distance(self, features: np.ndarray) -> np.ndarray:
        deltas = self._train[None, :, :] - features[:, None, :]
        dists = np.sqrt(np.einsum("nkf,nkf->nk", deltas, deltas))
        return dists.min(axis=1)

    def predict(self, features: np.ndarray) -> Dict[str, np.ndarray]:
        """Metric predictions for an (n, n_features) matrix."""
        if not self.is_fit:
            raise ReproError("surrogate not fit; simulate more cells first")
        out: Dict[str, np.ndarray] = {}
        for metric, model in self._models.items():
            values = np.array(
                [model.predict_one(row) for row in features], dtype=float
            )
            out[metric] = values
        return out

    def interval_widths(self, features: np.ndarray) -> Dict[str, np.ndarray]:
        """Prediction-interval widths per metric, distance-inflated."""
        if not self.is_fit:
            # Unfit surrogate: infinitely uncertain everywhere.
            n = features.shape[0]
            return {m: np.full(n, np.inf) for m in METRIC_NAMES}
        d_nn = self._nearest_distance(np.asarray(features, dtype=float))
        return {
            metric: 2.0 * (self._rmse[metric] + METRIC_LIPSCHITZ[metric] * d_nn)
            for metric in METRIC_NAMES
        }


# -- calibrated cost model -----------------------------------------------------


class CostModel:
    """Online estimate of observed seconds per simulated cell.

    The runner reports ``(cells, seconds)`` after every batch
    (:func:`repro.analysis.runner.run_year_tasks` with ``cost_model=``);
    an exponential moving average smooths the estimate.  The model then
    sizes lane batches to a target chunk duration and converts a
    wall-clock budget into a cell budget for the simulate-vs-serve
    split.
    """

    def __init__(
        self,
        target_chunk_s: float = 4.0,
        alpha: float = 0.5,
        prior_s_per_cell: float = 0.5,
    ) -> None:
        if target_chunk_s <= 0:
            raise ReproError("target_chunk_s must be > 0")
        if not 0.0 < alpha <= 1.0:
            raise ReproError("alpha must be in (0, 1]")
        self.target_chunk_s = target_chunk_s
        self.alpha = alpha
        self.prior_s_per_cell = prior_s_per_cell
        self._estimate: Optional[float] = None
        self.observed_cells = 0
        self.observed_seconds = 0.0

    @property
    def calibrated(self) -> bool:
        return self._estimate is not None

    def observe(self, cells: int, seconds: float) -> None:
        """Fold one measured batch into the estimate."""
        if cells < 1 or seconds < 0:
            return
        self.observed_cells += cells
        self.observed_seconds += seconds
        sample = seconds / cells
        if self._estimate is None:
            self._estimate = sample
        else:
            self._estimate = (
                self.alpha * sample + (1.0 - self.alpha) * self._estimate
            )

    @property
    def seconds_per_cell(self) -> float:
        return self._estimate if self._estimate is not None else self.prior_s_per_cell

    def suggested_lanes(self, min_lanes: int = 1, max_lanes: int = 32) -> int:
        """Lanes per lockstep chunk so a chunk takes ~``target_chunk_s``."""
        per_cell = max(self.seconds_per_cell, 1e-6)
        lanes = int(round(self.target_chunk_s / per_cell))
        return max(min_lanes, min(max_lanes, lanes))

    def affordable_cells(self, budget_s: Optional[float]) -> Optional[int]:
        """How many cells a wall-clock budget buys (None = unbounded)."""
        if budget_s is None:
            return None
        return max(0, int(budget_s / max(self.seconds_per_cell, 1e-6)))

    def snapshot(self) -> Dict[str, float]:
        return {
            "seconds_per_cell": self.seconds_per_cell,
            "observed_cells": self.observed_cells,
            "observed_seconds": self.observed_seconds,
            "suggested_lanes": self.suggested_lanes(),
        }


# -- policy --------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScreeningPolicy:
    """Tuning surface of the screening pipeline (docs/PERFORMANCE.md).

    ``cluster_tol`` is the leader-clustering radius in normalized
    feature space; members within ``serve_radius`` of their
    representative are served from it (with the clipped correction),
    members beyond it fall to the surrogate when confident.
    ``range_uncertainty_c`` / ``pue_uncertainty`` are the
    prediction-interval widths above which a cell is routed to full
    simulation; ``max_simulated_fraction`` (with the
    ``min_simulated_locations`` floor and optional
    ``simulate_budget_s`` wall-clock cap via the cost model) bounds how
    many locations simulate in total.
    """

    cluster_tol: float = 0.12
    serve_radius: float = 0.12
    range_uncertainty_c: float = 1.5
    pue_uncertainty: float = 0.015
    wue_uncertainty: float = 0.1
    max_simulated_fraction: float = 0.08
    min_simulated_locations: int = 8
    simulate_budget_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cluster_tol <= 0:
            raise ReproError("cluster_tol must be > 0")
        if self.serve_radius <= 0:
            raise ReproError("serve_radius must be > 0")
        if not 0.0 < self.max_simulated_fraction <= 1.0:
            raise ReproError("max_simulated_fraction must be in (0, 1]")
        if self.min_simulated_locations < 2:
            raise ReproError("min_simulated_locations must be >= 2")

    def simulate_budget(self, grid_size: int) -> int:
        """How many locations may fully simulate for a given grid."""
        budget = max(
            self.min_simulated_locations,
            int(math.ceil(self.max_simulated_fraction * grid_size)),
        )
        return min(grid_size, budget)

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: Optional[dict]) -> "ScreeningPolicy":
        if not payload:
            return cls()
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ReproError(
                f"unknown screening policy field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**payload)


# -- the screening session -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScreeningCounters:
    """Location-level provenance counts; always sum to the grid size."""

    simulated: int = 0
    served_from_cluster: int = 0
    surrogate_only: int = 0

    @property
    def total(self) -> int:
        return self.simulated + self.served_from_cluster + self.surrogate_only

    def to_json(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ScreeningSession:
    """The three-stage plan for one screened world sweep.

    Owned by :func:`repro.analysis.experiments.world_sweep` (the
    one-shot path) and by screened ``world`` service jobs
    (:mod:`repro.service.jobs`); both drive the same phases:

    1. :meth:`representative_tasks` — the cells to fully simulate first
       (one representative per climate cluster, baseline + CoolAir).
    2. :meth:`uncertain_tasks` — after the representatives land in the
       accumulator, fit the surrogate and return the cells whose
       prediction interval is too wide, most-uncertain first, within
       the remaining simulate budget.
    3. :meth:`serve` — price every remaining location from its cluster
       representative (distance <= ``serve_radius``, correction clipped
       to :data:`CORRECTION_BOUNDS`) or from the surrogate alone, and
       tag provenance in the accumulator.

    The session never mutates simulation results — only locations that
    were *not* simulated are filled in, so ``--screen=off`` and the
    representative cells of a screened run are bit-identical to the
    exhaustive path.
    """

    def __init__(
        self,
        climates: Sequence[Climate],
        coolair_system: str = "All-ND",
        policy: Optional[ScreeningPolicy] = None,
        sample_every_days: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        plant: str = "parasol",
    ) -> None:
        if not climates:
            raise ReproError("cannot screen an empty climate grid")
        self.climates = tuple(climates)
        self.coolair_system = coolair_system
        self.policy = policy or ScreeningPolicy()
        self.sample_every_days = sample_every_days
        self.plant = plant
        self.cost_model = cost_model or CostModel()
        self.features = feature_matrix(self.climates)
        budget = self.policy.simulate_budget(len(self.climates))
        # Representatives may use at most ~3/4 of the simulate budget so
        # uncertain members still have room to promote.
        rep_budget = max(2, int(math.ceil(0.75 * budget)))
        self.clusters, self.effective_tol = cluster_to_budget(
            self.features,
            self.policy.cluster_tol,
            rep_budget,
            seed=self.policy.seed,
        )
        self._budget = budget
        self._rep_of: Dict[int, int] = {}
        self._distance_to_rep: Dict[int, float] = {}
        for cluster in self.clusters:
            for member, dist in zip(cluster.members, cluster.distances):
                self._rep_of[member] = cluster.representative
                self._distance_to_rep[member] = dist
        self._simulated: set = {c.representative for c in self.clusters}
        self._promoted: set = set()
        self._phase = 1

    # -- phases --------------------------------------------------------------

    @property
    def phase(self) -> int:
        """1 = representatives pending, 2 = uncertain pending, 3 = served."""
        return self._phase

    def _tasks_for(self, indices: Sequence[int]) -> List["YearTask"]:
        from repro.analysis.runner import YearTask

        tasks = []
        for index in indices:
            for system in ("baseline", self.coolair_system):
                tasks.append(
                    YearTask(
                        system=system,
                        climate=self.climates[index],
                        sample_every_days=self.sample_every_days,
                        plant=self.plant,
                    )
                )
        return tasks

    def representative_tasks(self) -> List["YearTask"]:
        """Phase 1: the cluster representatives, in grid order."""
        reps = sorted(c.representative for c in self.clusters)
        return self._tasks_for(reps)

    def uncertain_tasks(self, accumulator) -> List["YearTask"]:
        """Phase 2: cells too uncertain for the surrogate, within budget.

        ``accumulator`` is the :class:`StreamingWorldAccumulator` the
        representative results were folded into.  Fits the surrogate,
        scores every unsimulated location, and promotes the widest
        intervals until the simulate budget (count-based, optionally
        tightened by the cost model's wall-clock budget) is spent.
        """
        if self._phase != 1:
            raise ReproError(f"uncertain_tasks called in phase {self._phase}")
        self._phase = 2
        self._fit_surrogate(accumulator)
        remaining = sorted(
            i for i in range(len(self.climates)) if i not in self._simulated
        )
        if not remaining:
            return []
        headroom = self._budget - len(self._simulated)
        affordable = self.cost_model.affordable_cells(
            self.policy.simulate_budget_s
        )
        if affordable is not None:
            # Two cells (baseline + CoolAir) per promoted location.
            headroom = min(headroom, affordable // 2)
        if headroom <= 0:
            return []
        if not self.surrogate.is_fit:
            # Too few representatives to fit a surrogate: spend the
            # budget on space-filling coverage (greedy farthest-point),
            # which both diversifies the training set for the phase-3
            # fit and shrinks every member's distance to a simulated
            # neighbor.
            promoted = self._farthest_points(remaining, headroom)
            self._promoted = set(promoted)
            self._simulated.update(promoted)
            return self._tasks_for(sorted(promoted))
        widths = self.surrogate.interval_widths(self.features[remaining])
        # A location is uncertain if any metric's interval is too wide;
        # its promotion score is the worst normalized width.
        range_w = np.maximum(
            widths["baseline_max_range_c"], widths["coolair_max_range_c"]
        )
        pue_w = np.maximum(widths["baseline_pue"], widths["coolair_pue"])
        wue_w = np.maximum(widths["baseline_wue"], widths["coolair_wue"])
        scores = np.maximum(
            np.maximum(
                range_w / self.policy.range_uncertainty_c,
                pue_w / self.policy.pue_uncertainty,
            ),
            wue_w / self.policy.wue_uncertainty,
        )
        uncertain = [
            (float(scores[pos]), index)
            for pos, index in enumerate(remaining)
            if scores[pos] > 1.0
        ]
        uncertain.sort(key=lambda pair: (-pair[0], pair[1]))
        promoted = [index for _, index in uncertain[:headroom]]
        self._promoted = set(promoted)
        self._simulated.update(promoted)
        return self._tasks_for(sorted(promoted))

    def _farthest_points(self, remaining: List[int], count: int) -> List[int]:
        """Greedy max-min selection of ``count`` indices from ``remaining``.

        Each pick is the point farthest from every simulated-or-picked
        point; stops early once everything left is within the serve
        radius of some simulated point (more simulation buys nothing).
        """
        simulated = self.features[sorted(self._simulated)]
        points = self.features[remaining]
        deltas = points[:, None, :] - simulated[None, :, :]
        nearest = np.sqrt(np.einsum("nkf,nkf->nk", deltas, deltas)).min(axis=1)
        chosen: List[int] = []
        for _ in range(min(count, len(remaining))):
            pos = int(np.argmax(nearest))
            if nearest[pos] <= self.policy.serve_radius:
                break
            chosen.append(remaining[pos])
            step = np.sqrt(
                np.einsum("nf,nf->n", points - points[pos], points - points[pos])
            )
            nearest = np.minimum(nearest, step)
            nearest[pos] = -1.0
        return chosen

    def _fit_surrogate(self, accumulator) -> None:
        self.surrogate = WorldSurrogate()
        rows = []
        indices = []
        for index in sorted(self._simulated):
            metrics = accumulator.location_metrics(
                self.climates[index].name
            )
            if metrics is None:
                continue
            indices.append(index)
            rows.append(metrics)
        if rows:
            self.surrogate.fit(
                self.features[indices], np.asarray(rows, dtype=float).T
            )

    def serve(self, accumulator) -> ScreeningCounters:
        """Phase 3: price every unsimulated location and tag provenance.

        Refits the surrogate on everything simulated so far (phase 2
        results included), then folds served metrics into the
        accumulator.  Locations whose representative never produced a
        result (failed cells) are left unserved — they drop from the
        summary exactly as failed cells do on the exhaustive path.
        """
        if self._phase == 1:
            # Serving without an uncertainty pass is legal (service
            # cancellations, zero-budget policies): fit on what exists.
            self._phase = 2
            self._fit_surrogate(accumulator)
        if self._phase != 2:
            raise ReproError(f"serve called in phase {self._phase}")
        self._phase = 3
        self._fit_surrogate(accumulator)
        surrogate = self.surrogate
        for index in range(len(self.climates)):
            name = self.climates[index].name
            if index in self._simulated:
                continue
            rep = self._rep_of.get(index)
            rep_metrics = (
                accumulator.location_metrics(self.climates[rep].name)
                if rep is not None
                else None
            )
            distance = self._distance_to_rep.get(index, float("inf"))
            features = self.features[index : index + 1]
            predictions = (
                {
                    metric: float(values[0])
                    for metric, values in surrogate.predict(features).items()
                }
                if surrogate.is_fit
                else None
            )
            if rep_metrics is not None and distance <= self.policy.serve_radius:
                served = self._corrected(rep_metrics, rep, index, predictions)
                accumulator.serve(name, served, PROVENANCE_CLUSTER)
            elif predictions is not None:
                served = [
                    self._clamp(metric, predictions[metric])
                    for metric in METRIC_NAMES
                ]
                accumulator.serve(name, served, PROVENANCE_SURROGATE)
            elif rep_metrics is not None:
                # No surrogate (degenerate tiny grids): zero-correction
                # cluster serving still honors the correction bound.
                accumulator.serve(name, list(rep_metrics), PROVENANCE_CLUSTER)
            # else: the representative failed and no surrogate exists —
            # the location stays missing, like a failed exhaustive cell.
        return self.counters(accumulator)

    def _corrected(
        self,
        rep_metrics: Sequence[float],
        rep: int,
        index: int,
        predictions: Optional[Dict[str, float]],
    ) -> List[float]:
        """Representative metrics plus the clipped surrogate correction."""
        served = []
        for row, metric in enumerate(METRIC_NAMES):
            value = float(rep_metrics[row])
            if predictions is not None and self.surrogate.is_fit:
                rep_pred = float(
                    self.surrogate.predict(self.features[rep : rep + 1])[
                        metric
                    ][0]
                )
                correction = predictions[metric] - rep_pred
                bound = CORRECTION_BOUNDS[metric]
                correction = max(-bound, min(bound, correction))
                value += correction
            served.append(self._clamp(metric, value))
        return served

    @staticmethod
    def _clamp(metric: str, value: float) -> float:
        """Physical floors: ranges and WUE are non-negative, PUE >= 1."""
        if metric not in CORRECTION_BOUNDS:
            raise ConfigError(
                f"unknown screening metric {metric!r}; "
                f"choices: {', '.join(METRIC_NAMES)}"
            )
        if metric.endswith("_pue"):
            return max(1.0, value)
        return max(0.0, value)

    # -- reporting -----------------------------------------------------------

    def counters(self, accumulator) -> ScreeningCounters:
        """Provenance counts as recorded in the accumulator."""
        counts = accumulator.provenance_counts()
        return ScreeningCounters(
            simulated=counts.get(PROVENANCE_SIMULATED, 0),
            served_from_cluster=counts.get(PROVENANCE_CLUSTER, 0),
            surrogate_only=counts.get(PROVENANCE_SURROGATE, 0),
        )

    @property
    def simulated_locations(self) -> int:
        return len(self._simulated)

    @property
    def promoted_locations(self) -> int:
        return len(self._promoted)
