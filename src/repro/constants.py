"""Physical constants and Parasol-derived calibration figures.

All values are either standard physical constants or numbers reported in
the CoolAir paper (Sections 4 and 5.1).  Everything here is expressed in
SI units unless the name says otherwise; temperatures are degrees Celsius
throughout the package because the paper reasons in Celsius.
"""

from __future__ import annotations

# --- air properties -------------------------------------------------------

AIR_DENSITY_KG_M3 = 1.2
"""Density of air at ~20C, sea level."""

AIR_SPECIFIC_HEAT_J_KG_K = 1005.0
"""Specific heat capacity of dry air."""

ATMOSPHERIC_PRESSURE_PA = 101_325.0
"""Standard sea-level atmospheric pressure."""

# --- paper-reported Parasol figures (Section 4.1) -------------------------

AC_FAN_ONLY_W = 135.0
"""DX AC power draw with compressor off (fan only)."""

AC_COMPRESSOR_W = 2200.0
"""DX AC power draw with compressor and fan on."""

FC_MIN_POWER_W = 8.0
"""Free-cooling unit power at its minimum operating speed."""

FC_MAX_POWER_W = 425.0
"""Free-cooling unit power at 100% fan speed."""

FC_MIN_SPEED = 0.15
"""Minimum fan speed of the Dantherm free-cooling unit (fraction of max)."""

SMOOTH_FC_MIN_SPEED = 0.01
"""Minimum fan speed of the fine-grained (Smooth-Sim) free-cooling unit."""

TKS_DEFAULT_SETPOINT_C = 25.0
"""Default TKS setpoint SP."""

TKS_DEFAULT_BAND_C = 5.0
"""Default TKS proportional band P (free cooling operates in [SP-P, SP])."""

TKS_HYSTERESIS_C = 1.0
"""Hysteresis applied around the setpoint for LOT/HOT mode switching."""

AC_CYCLE_LOW_OFFSET_C = 2.0
"""AC compressor stops when inside temperature < SP - this offset."""

SERVER_IDLE_W = 22.0
"""Idle power of one Parasol half-U Atom server."""

SERVER_PEAK_W = 30.0
"""Peak power of one Parasol half-U Atom server."""

SERVER_SLEEP_W = 2.0
"""Power of a server in ACPI S3 sleep."""

XEON_SERVER_W = 80.0
"""The 4-core Xeon management server hosting the CoolAir managers."""

NUM_SERVERS = 64
"""Number of half-U servers hosted in Parasol."""

POWER_DELIVERY_PUE_OVERHEAD = 0.08
"""Power delivery losses of Parasol, expressed as a PUE contribution."""

SENSOR_ACCURACY_C = 0.5
"""Accuracy of Parasol's temperature sensors."""

# --- CoolAir defaults (Section 5.1) ---------------------------------------

DEFAULT_OFFSET_C = 8.0
"""Typical outside-to-inlet temperature offset observed in Parasol."""

DEFAULT_WIDTH_C = 5.0
"""Default width of the CoolAir temperature band."""

DEFAULT_MIN_C = 10.0
"""Lowest allowed edge of the temperature band (Min)."""

DEFAULT_MAX_C = 30.0
"""Highest allowed edge of the temperature band (Max)."""

DEFAULT_MAX_RH_PCT = 80.0
"""Maximum allowed relative humidity."""

DEFAULT_MAX_RATE_C_PER_HOUR = 20.0
"""ASHRAE-recommended maximum air temperature change rate."""

CONTROL_PERIOD_S = 600
"""The Cooling Optimizer period (10 minutes)."""

MODEL_STEP_S = 120
"""The short-term step of the learned Cooling Model (2 minutes)."""

# --- alternative cooling plants (ROADMAP item 1) --------------------------
#
# The chiller and cooling-tower figures below are not from the CoolAir
# paper (Parasol has neither); they are round ASHRAE-style numbers sized
# to Parasol's ~2kW IT load so backend sweeps stay comparable.

CHILLER_REFERENCE_LIFT_K = 25.0
"""Condenser-to-evaporator temperature lift at the chiller's rating point."""

CHILLER_COP_AT_REFERENCE = 5.0
"""Chiller coefficient of performance at the reference lift."""

CHILLER_MAX_COP = 9.0
"""COP ceiling at very low lift (compressor/motor losses dominate)."""

CHILLER_MIN_LIFT_K = 2.0
"""Smallest lift the COP curve is evaluated at (avoids a 1/lift blowup)."""

CHILLED_WATER_SUPPLY_C = 10.0
"""Chilled-water supply temperature setpoint (evaporator side)."""

CONDENSER_APPROACH_K = 5.0
"""Condenser temperature rise above the outside heat-rejection medium."""

MECH_COOLING_CAPACITY_W = 5500.0
"""Rated heat-removal capacity of the mechanical cooling coil."""

TOWER_APPROACH_K = 4.0
"""Cooling-tower supply approach above the outside wet-bulb temperature."""

TOWER_CUTOFF_WB_C = 24.0
"""Wet-bulb temperature above which the tower loop delivers no cooling."""

TOWER_CAPACITY_BAND_K = 8.0
"""Wet-bulb band below the cutoff over which tower capacity ramps 0 -> 1."""

TOWER_PUMP_FULL_W = 120.0
"""Condenser-water pump power at full loop duty."""

TOWER_FAN_FULL_W = 300.0
"""Tower fan power at full speed (cubic fan law, like the FC unit)."""

TOWER_CYCLES_OF_CONCENTRATION = 4.0
"""Condenser-water concentration cycles; sets blowdown as evap/(COC-1)."""

# --- disk reliability (Section 4.2) ---------------------------------------

DISK_LOAD_UNLOAD_CYCLES = 300_000
"""Rated load/unload cycles of a modern disk."""

DISK_LIFETIME_YEARS = 4.0
"""Typical disk lifetime assumed by the paper."""

MAX_AVG_POWER_CYCLES_PER_HOUR = 8.5
"""Average hourly power-cycle budget over a 4-year disk lifetime."""
