"""MapReduce job and task model."""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.errors import WorkloadError


class JobPhase(enum.Enum):
    PENDING = "pending"
    MAPPING = "mapping"
    REDUCING = "reducing"
    DONE = "done"


@dataclasses.dataclass
class Task:
    """One map or reduce task."""

    job_id: int
    is_map: bool
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError(f"task duration {self.duration_s} must be positive")


@dataclasses.dataclass
class Job:
    """A MapReduce job from a day-long trace.

    Times are seconds from the start of the day.  ``deadline_s`` is the
    user-provided *start* deadline for deferrable workloads (the paper uses
    6-hour deadlines); ``None`` marks a non-deferrable job that must start
    on arrival.
    """

    job_id: int
    arrival_s: float
    num_maps: int
    map_duration_s: float
    num_reduces: int
    reduce_duration_s: float
    input_mb: float = 64.0
    output_mb: float = 0.0
    deadline_s: Optional[float] = None
    # Set by the temporal scheduler: earliest time the job may start.
    scheduled_start_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise WorkloadError(f"job {self.job_id}: negative arrival time")
        if self.num_maps < 1:
            raise WorkloadError(f"job {self.job_id}: needs at least one map task")
        if self.num_reduces < 0:
            raise WorkloadError(f"job {self.job_id}: negative reduce count")
        if self.map_duration_s <= 0:
            raise WorkloadError(f"job {self.job_id}: map duration must be positive")
        if self.num_reduces > 0 and self.reduce_duration_s <= 0:
            raise WorkloadError(f"job {self.job_id}: reduce duration must be positive")
        if self.deadline_s is not None and self.deadline_s < self.arrival_s:
            raise WorkloadError(
                f"job {self.job_id}: deadline {self.deadline_s} before arrival"
            )

    @property
    def is_deferrable(self) -> bool:
        return self.deadline_s is not None

    @property
    def effective_start_s(self) -> float:
        """When the job becomes eligible to run."""
        if self.scheduled_start_s is None:
            return self.arrival_s
        return self.scheduled_start_s

    @property
    def map_work_s(self) -> float:
        """Total map task-seconds."""
        return self.num_maps * self.map_duration_s

    @property
    def reduce_work_s(self) -> float:
        return self.num_reduces * self.reduce_duration_s

    @property
    def total_work_s(self) -> float:
        return self.map_work_s + self.reduce_work_s

    def defer_to(self, start_s: float) -> None:
        """Schedule the job to start at ``start_s`` (within its deadline)."""
        if not self.is_deferrable:
            raise WorkloadError(f"job {self.job_id} is not deferrable")
        if start_s < self.arrival_s:
            raise WorkloadError(
                f"job {self.job_id}: cannot start before arrival "
                f"({start_s} < {self.arrival_s})"
            )
        assert self.deadline_s is not None
        if start_s > self.deadline_s:
            raise WorkloadError(
                f"job {self.job_id}: start {start_s} is beyond deadline "
                f"{self.deadline_s}"
            )
        self.scheduled_start_s = start_s
