"""Aggregated day-long demand profiles for year-scale simulation.

Year-long runs repeat the same day-long workload every simulated day
(Section 5.1), so the expensive part — how many busy slot-seconds the
trace demands in each control interval — can be computed once with a fluid
(water-filling) execution model and replayed cheaply.

The fluid model shares the cluster's slot capacity fairly among eligible
unfinished jobs, capping each job's share by its remaining parallelism,
and drains map work before reduce work.  Temporal scheduling simply shifts
job eligibility times, so deferrable variants reuse the same machinery.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.workload.traces import SECONDS_PER_DAY, Trace


@dataclasses.dataclass
class DemandProfile:
    """Per-interval workload demand for one day.

    ``busy_slot_seconds[i]`` is the slot-seconds of work executed in
    interval ``i``; ``demanded_servers[i]`` is the number of servers that
    must be active to execute it at the given slots per server.
    """

    interval_s: float
    num_servers: int
    slots_per_server: int
    busy_slot_seconds: np.ndarray

    @property
    def num_intervals(self) -> int:
        return int(self.busy_slot_seconds.shape[0])

    @property
    def demanded_servers(self) -> np.ndarray:
        """Active servers needed in each interval (ceil of busy slots)."""
        avg_busy_slots = self.busy_slot_seconds / self.interval_s
        servers = np.ceil(avg_busy_slots / self.slots_per_server).astype(int)
        return np.minimum(servers, self.num_servers)

    @property
    def utilization(self) -> np.ndarray:
        """Cluster-wide slot utilization per interval, in [0, 1]."""
        capacity = self.num_servers * self.slots_per_server * self.interval_s
        return np.clip(self.busy_slot_seconds / capacity, 0.0, 1.0)

    @property
    def average_utilization(self) -> float:
        return float(np.mean(self.utilization))

    def server_utilization(self, interval: int) -> float:
        """CPU utilization of each *active* server in an interval."""
        demanded = int(self.demanded_servers[interval])
        if demanded == 0:
            return 0.0
        busy_slots = self.busy_slot_seconds[interval] / self.interval_s
        return float(min(1.0, busy_slots / (demanded * self.slots_per_server)))


def build_demand_profile(
    trace: Trace,
    num_servers: int = 64,
    slots_per_server: int = 2,
    interval_s: float = 600.0,
) -> DemandProfile:
    """Run the fluid execution model over one day of the trace."""
    if interval_s <= 0:
        raise WorkloadError("interval_s must be positive")
    num_intervals = int(math.ceil(SECONDS_PER_DAY / interval_s))
    busy = np.zeros(num_intervals)

    # Per-job state: (eligible_time, map_work, reduce_work, map_cap, red_cap)
    state = [
        {
            "eligible": job.effective_start_s,
            "map_work": job.map_work_s,
            "reduce_work": job.reduce_work_s,
            "map_cap": job.num_maps,
            "reduce_cap": max(1, job.num_reduces),
        }
        for job in trace.jobs
    ]

    capacity_slots = num_servers * slots_per_server
    for interval in range(num_intervals):
        t0 = interval * interval_s
        t1 = t0 + interval_s
        active = [
            s
            for s in state
            if s["eligible"] < t1 and (s["map_work"] > 0 or s["reduce_work"] > 0)
        ]
        if not active:
            continue
        remaining_capacity = capacity_slots * interval_s
        # Water-filling: repeatedly hand each unsatisfied job an equal share
        # capped by its parallelism and remaining work.
        pending = list(active)
        while pending and remaining_capacity > 1e-9:
            share = remaining_capacity / len(pending)
            next_pending = []
            for job_state in pending:
                in_map = job_state["map_work"] > 0
                cap_slots = job_state["map_cap"] if in_map else job_state["reduce_cap"]
                work = job_state["map_work"] if in_map else job_state["reduce_work"]
                # A job cannot use more slot-seconds than its parallelism
                # allows in this interval, nor more than its remaining work.
                grant = min(share, cap_slots * interval_s, work)
                if in_map:
                    job_state["map_work"] -= grant
                else:
                    job_state["reduce_work"] -= grant
                busy[interval] += grant
                remaining_capacity -= grant
                still_hungry = (
                    grant >= share - 1e-9
                    and (job_state["map_work"] > 0 or job_state["reduce_work"] > 0)
                )
                if still_hungry:
                    next_pending.append(job_state)
            if len(next_pending) == len(pending) and share < 1e-9:
                break
            pending = next_pending

    return DemandProfile(
        interval_s=interval_s,
        num_servers=num_servers,
        slots_per_server=slots_per_server,
        busy_slot_seconds=busy,
    )
