"""Day-long workload trace generators.

``FacebookTraceGenerator`` reproduces the SWIM-scaled Facebook trace of
Section 5.1: roughly 5500 jobs and 68000 tasks over one day; 2-1190 map
tasks and 1-63 reduce tasks per job; map phases of 25-13000 seconds and
reduce phases of 15-2600 seconds; average datacenter utilization ~27% on
64 servers.  Sizes are heavy-tailed (log-uniform), as in the original.

``NutchTraceGenerator`` reproduces the CloudSuite web-indexing trace: 2000
jobs arriving as a Poisson process with mean inter-arrival 40 s, each with
42 map tasks of 15-40 s and one 150 s reduce task; ~32% utilization.

Both generators rescale task durations so the trace hits the paper's
reported average utilization on the 64-server cluster (the paper's
utilization is measured on real Hadoop, whose per-task overheads a slot
model does not see).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workload.job import Job

SECONDS_PER_DAY = 86_400.0
DEFAULT_DEADLINE_S = 6.0 * 3600.0


@dataclasses.dataclass
class Trace:
    """An ordered day-long list of jobs."""

    name: str
    jobs: List[Job]

    def __post_init__(self) -> None:
        arrivals = [job.arrival_s for job in self.jobs]
        if arrivals != sorted(arrivals):
            raise WorkloadError("trace jobs must be sorted by arrival time")

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    @property
    def total_tasks(self) -> int:
        return sum(job.num_maps + job.num_reduces for job in self.jobs)

    @property
    def total_work_s(self) -> float:
        return sum(job.total_work_s for job in self.jobs)

    def average_utilization(self, num_servers: int, slots_per_server: int = 2) -> float:
        """Expected mean fraction of busy slot capacity over the day."""
        capacity = num_servers * slots_per_server * SECONDS_PER_DAY
        return min(1.0, self.total_work_s / capacity)

    def deferrable_copy(self, deadline_s: float = DEFAULT_DEADLINE_S) -> "Trace":
        """The same trace with ``deadline_s`` start deadlines on every job."""
        jobs = [
            dataclasses.replace(
                job, deadline_s=job.arrival_s + deadline_s, scheduled_start_s=None
            )
            for job in self.jobs
        ]
        return Trace(name=f"{self.name}-deferrable", jobs=jobs)


class FacebookTraceGenerator:
    """SWIM-style scaled-down Facebook trace for 64 machines."""

    def __init__(
        self,
        num_jobs: int = 5500,
        seed: int = 42,
        target_utilization: float = 0.27,
        num_servers: int = 64,
        slots_per_server: int = 2,
    ) -> None:
        if num_jobs < 1:
            raise WorkloadError("num_jobs must be >= 1")
        self.num_jobs = num_jobs
        self.seed = seed
        self.target_utilization = target_utilization
        self.num_servers = num_servers
        self.slots_per_server = slots_per_server

    def _log_uniform(
        self, rng: np.random.Generator, low: float, high: float, shape: float = 1.6
    ) -> float:
        """Heavy-tailed draw in [low, high]: most mass near low."""
        u = rng.random() ** shape
        return low * math.exp(u * math.log(high / low))

    def generate(self, deferrable: bool = False) -> Trace:
        """Build the day-long trace (deterministic for a given seed)."""
        rng = np.random.default_rng(self.seed)
        # Diurnal arrival intensity: Facebook load peaks in the afternoon.
        arrivals = []
        while len(arrivals) < self.num_jobs:
            t = rng.uniform(0.0, SECONDS_PER_DAY)
            hour = t / 3600.0
            intensity = 0.55 + 0.45 * math.sin(math.pi * (hour - 5.0) / 19.0) ** 2
            if rng.random() < intensity:
                arrivals.append(t)
        arrivals.sort()

        jobs: List[Job] = []
        for job_id, arrival in enumerate(arrivals):
            num_maps = int(round(self._log_uniform(rng, 2, 1190, shape=2.6)))
            num_reduces = int(round(self._log_uniform(rng, 1, 63, shape=2.6)))
            # Phase durations: per-task durations derived from phase length
            # targets (map phase 25-13000 s, reduce phase 15-2600 s).
            map_phase_s = self._log_uniform(rng, 25, 13_000, shape=2.0)
            reduce_phase_s = self._log_uniform(rng, 15, 2_600, shape=2.0)
            # A phase's duration is roughly waves-of-tasks x task duration;
            # treat per-task duration as phase length over wave count.
            waves = max(1.0, num_maps / (self.num_servers * self.slots_per_server))
            map_task_s = max(5.0, map_phase_s / waves)
            reduce_task_s = max(5.0, reduce_phase_s)
            input_mb = self._log_uniform(rng, 64, 74_000, shape=2.2)
            output_mb = self._log_uniform(rng, 1, 4_000, shape=2.2)
            jobs.append(
                Job(
                    job_id=job_id,
                    arrival_s=arrival,
                    num_maps=num_maps,
                    map_duration_s=map_task_s,
                    num_reduces=num_reduces,
                    reduce_duration_s=reduce_task_s,
                    input_mb=input_mb,
                    output_mb=output_mb,
                    deadline_s=arrival + DEFAULT_DEADLINE_S if deferrable else None,
                )
            )

        trace = Trace(name="facebook", jobs=jobs)
        return _rescale_to_utilization(
            trace,
            self.target_utilization,
            self.num_servers,
            self.slots_per_server,
        )


class NutchTraceGenerator:
    """CloudSuite Nutch web-indexing trace."""

    def __init__(
        self,
        num_jobs: int = 2000,
        mean_interarrival_s: float = 40.0,
        seed: int = 43,
        target_utilization: float = 0.32,
        num_servers: int = 64,
        slots_per_server: int = 2,
    ) -> None:
        if num_jobs < 1:
            raise WorkloadError("num_jobs must be >= 1")
        if mean_interarrival_s <= 0:
            raise WorkloadError("mean_interarrival_s must be positive")
        self.num_jobs = num_jobs
        self.mean_interarrival_s = mean_interarrival_s
        self.seed = seed
        self.target_utilization = target_utilization
        self.num_servers = num_servers
        self.slots_per_server = slots_per_server

    def generate(self, deferrable: bool = False) -> Trace:
        """Build the day-long Poisson trace."""
        rng = np.random.default_rng(self.seed)
        jobs: List[Job] = []
        t = 0.0
        for job_id in range(self.num_jobs):
            t += rng.exponential(self.mean_interarrival_s)
            arrival = min(t, SECONDS_PER_DAY - 1.0)
            jobs.append(
                Job(
                    job_id=job_id,
                    arrival_s=arrival,
                    num_maps=42,
                    map_duration_s=float(rng.uniform(15.0, 40.0)),
                    num_reduces=1,
                    reduce_duration_s=150.0,
                    input_mb=85.0,
                    deadline_s=arrival + DEFAULT_DEADLINE_S if deferrable else None,
                )
            )
        trace = Trace(name="nutch", jobs=jobs)
        return _rescale_to_utilization(
            trace,
            self.target_utilization,
            self.num_servers,
            self.slots_per_server,
        )


def _rescale_to_utilization(
    trace: Trace,
    target_utilization: float,
    num_servers: int,
    slots_per_server: int,
) -> Trace:
    """Scale all task durations so the trace hits the target utilization."""
    capacity = num_servers * slots_per_server * SECONDS_PER_DAY
    current = trace.total_work_s / capacity  # unclamped, unlike the property
    if current <= 0:
        raise WorkloadError("trace has no work to rescale")
    scale = target_utilization / current
    jobs = [
        dataclasses.replace(
            job,
            map_duration_s=max(5.0, job.map_duration_s * scale),
            reduce_duration_s=(
                max(5.0, job.reduce_duration_s * scale) if job.num_reduces else 0.0
            ),
        )
        for job in trace.jobs
    ]
    return Trace(name=trace.name, jobs=jobs)
