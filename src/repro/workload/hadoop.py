"""Task-level Hadoop-like cluster simulator.

Used by the day-long experiments.  Each active server offers task slots;
jobs become eligible at their (possibly deferred) start time, drain map
work before reduce work, and pin temporary data to the servers that ran
their tasks — which is what forces the Compute Configurer's
decommission-before-sleep protocol (Section 4.2).

Execution is fluid at slot granularity: a busy slot contributes wall-clock
seconds of work to its job each step.  This keeps year-scale accuracy of
utilization and placement without simulating 68,000 individual task
lifetimes, while preserving per-server placement (which servers are busy,
and therefore which pods heat up).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from repro.datacenter.server import PowerState, Server
from repro.errors import WorkloadError
from repro.workload.job import Job, JobPhase
from repro.workload.traces import Trace


class _JobRun:
    """Execution state of one job."""

    def __init__(self, job: Job) -> None:
        self.job = job
        self.map_work_s = job.map_work_s
        self.reduce_work_s = job.reduce_work_s
        self.phase = JobPhase.PENDING
        self.servers_used: Set[int] = set()
        self.finish_time_s: Optional[float] = None

    @property
    def parallelism_cap(self) -> int:
        if self.map_work_s > 0:
            return self.job.num_maps
        return max(1, self.job.num_reduces)

    @property
    def done(self) -> bool:
        return self.map_work_s <= 0 and self.reduce_work_s <= 0


class HadoopCluster:
    """Slot scheduler over the datacenter's servers."""

    def __init__(
        self,
        servers: List[Server],
        trace: Trace,
        slots_per_server: int = 2,
    ) -> None:
        if not servers:
            raise WorkloadError("cluster needs at least one server")
        if slots_per_server < 1:
            raise WorkloadError("slots_per_server must be >= 1")
        self.servers = servers
        self.slots_per_server = slots_per_server
        self._runs = [_JobRun(job) for job in trace.jobs]
        self._next_arrival = 0
        self._active_runs: List[_JobRun] = []
        self._now_s = 0.0
        self._data_holders: Dict[int, Set[int]] = {}  # server_id -> job ids

    @property
    def now_s(self) -> float:
        return self._now_s

    @property
    def jobs_finished(self) -> int:
        return sum(1 for run in self._runs if run.finish_time_s is not None)

    @property
    def jobs_pending(self) -> int:
        return len(self._runs) - self.jobs_finished - len(self._active_runs)

    def all_done(self) -> bool:
        return self.jobs_finished == len(self._runs)

    def finish_times(self) -> List[float]:
        """Completion times of finished jobs (for deadline/latency checks)."""
        return [r.finish_time_s for r in self._runs if r.finish_time_s is not None]

    # -- stepping -------------------------------------------------------------

    def step(self, dt_s: float, placement_order: Optional[List[Server]] = None) -> float:
        """Advance the cluster by ``dt_s``; returns slot-seconds executed.

        ``placement_order`` is the spatial-placement preference: busy slots
        fill servers in this order (CoolAir passes pods ranked by
        recirculation).  Defaults to server-id order.
        """
        if dt_s <= 0:
            raise WorkloadError("dt_s must be positive")
        self._admit_eligible()

        candidates = placement_order if placement_order is not None else self.servers
        usable = [s for s in candidates if s.state is PowerState.ACTIVE]
        total_slots = len(usable) * self.slots_per_server

        # Water-fill capacity across active jobs, respecting parallelism.
        grants = self._allocate(total_slots, dt_s)

        # Convert granted work into per-server busy-slot placement.
        busy_slots = 0.0
        executed = 0.0
        for run, grant in grants:
            executed += grant
            slots_needed = grant / dt_s
            busy_slots += slots_needed
            self._charge_work(run, grant)
            # Record which servers host this job's temporary data.
            first = int(busy_slots - slots_needed) // self.slots_per_server
            last = min(len(usable) - 1, int(busy_slots) // self.slots_per_server)
            for server in usable[first : last + 1]:
                run.servers_used.add(server.server_id)
                self._data_holders.setdefault(server.server_id, set()).add(
                    run.job.job_id
                )

        # Per-server utilization: fill in placement order.
        remaining = busy_slots
        for server in usable:
            share = min(self.slots_per_server, remaining)
            server.set_utilization(share / self.slots_per_server)
            remaining -= share
        for server in self.servers:
            if server.state is not PowerState.ACTIVE:
                server.set_utilization(0.0)

        self._now_s += dt_s
        self._retire_finished()
        return executed

    def _admit_eligible(self) -> None:
        while self._next_arrival < len(self._runs):
            run = self._runs[self._next_arrival]
            if run.job.effective_start_s > self._now_s:
                # Jobs are arrival-sorted, but deferral can reorder
                # eligibility; scan a bounded window instead of stopping.
                break
            run.phase = JobPhase.MAPPING
            self._active_runs.append(run)
            self._next_arrival += 1
        # Deferred jobs later in the list may already be eligible.
        for run in self._runs[self._next_arrival :]:
            if (
                run.phase is JobPhase.PENDING
                and run.job.effective_start_s <= self._now_s
                and run not in self._active_runs
            ):
                run.phase = JobPhase.MAPPING
                self._active_runs.append(run)

    def _allocate(self, total_slots: int, dt_s: float) -> List:
        grants = []
        remaining = total_slots * dt_s
        pending = [run for run in self._active_runs if not run.done]
        totals = {id(run): 0.0 for run in pending}
        while pending and remaining > 1e-9:
            share = remaining / len(pending)
            next_pending = []
            for run in pending:
                work = run.map_work_s if run.map_work_s > 0 else run.reduce_work_s
                cap = run.parallelism_cap * dt_s - totals[id(run)]
                grant = max(0.0, min(share, cap, work))
                totals[id(run)] += grant
                remaining -= grant
                if grant >= share - 1e-9 and work - grant > 1e-9:
                    next_pending.append(run)
            if len(next_pending) == len(pending):
                break
            pending = next_pending
        return [(run, totals[id(run)]) for run in self._active_runs if totals.get(id(run), 0.0) > 0.0]

    def _charge_work(self, run: _JobRun, grant: float) -> None:
        if run.map_work_s > 0:
            consumed = min(run.map_work_s, grant)
            run.map_work_s -= consumed
            grant -= consumed
            if run.map_work_s <= 1e-9:
                run.map_work_s = 0.0
                run.phase = JobPhase.REDUCING if run.reduce_work_s > 0 else JobPhase.DONE
        if grant > 0 and run.reduce_work_s > 0:
            run.reduce_work_s = max(0.0, run.reduce_work_s - grant)

    def _retire_finished(self) -> None:
        finished = [run for run in self._active_runs if run.done]
        for run in finished:
            run.phase = JobPhase.DONE
            run.finish_time_s = self._now_s
            self._active_runs.remove(run)
            for server_id in run.servers_used:
                holders = self._data_holders.get(server_id)
                if holders is not None:
                    holders.discard(run.job.job_id)
        self._refresh_data_flags()

    def _refresh_data_flags(self) -> None:
        for server in self.servers:
            holders = self._data_holders.get(server.server_id, set())
            server.holds_job_data = bool(holders)

    # -- queries ---------------------------------------------------------------

    def demanded_servers(self) -> int:
        """Servers needed right now for the eligible workload."""
        slots = sum(
            min(run.parallelism_cap, 10**9)
            for run in self._active_runs
            if not run.done
        )
        return min(len(self.servers), math.ceil(slots / self.slots_per_server))

    def server_holds_data(self, server_id: int) -> bool:
        return bool(self._data_holders.get(server_id))
