"""Block-level HDFS namespace and the Covering Subset scheme.

The paper's Hadoop deployment stores "a full copy of the dataset on the
smallest possible number of servers" (the Covering Subset of Leverich &
Kozyrakis) so that any server outside the subset can sleep without hurting
data availability (Section 4.2).

This module models the dataset at block granularity — replicated block
placement across servers, pod-aware (replicas spread across pods the way
HDFS spreads them across racks) — and derives the covering subset from the
*actual* block layout with a greedy set-cover, instead of assuming a size.
It also provides the availability check the Compute Configurer's
invariants rely on.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.datacenter.server import Server
from repro.errors import WorkloadError


@dataclasses.dataclass(frozen=True)
class Block:
    """One HDFS block and the servers holding its replicas."""

    block_id: int
    replica_servers: Sequence[int]

    def __post_init__(self) -> None:
        if not self.replica_servers:
            raise WorkloadError(f"block {self.block_id} has no replicas")
        if len(set(self.replica_servers)) != len(self.replica_servers):
            raise WorkloadError(
                f"block {self.block_id} has duplicate replica placements"
            )


class HDFSNamespace:
    """A replicated dataset laid out across the cluster's servers."""

    def __init__(self, blocks: List[Block], num_servers: int) -> None:
        if num_servers < 1:
            raise WorkloadError("num_servers must be >= 1")
        for block in blocks:
            for server_id in block.replica_servers:
                if not 0 <= server_id < num_servers:
                    raise WorkloadError(
                        f"block {block.block_id} replica on unknown server "
                        f"{server_id}"
                    )
        self.blocks = blocks
        self.num_servers = num_servers

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def blocks_on(self, server_id: int) -> List[Block]:
        return [b for b in self.blocks if server_id in b.replica_servers]

    # -- availability -----------------------------------------------------

    def available(self, active_server_ids: Set[int]) -> bool:
        """True when every block has at least one replica on an active
        (or decommissioned-but-powered) server."""
        return all(
            any(s in active_server_ids for s in block.replica_servers)
            for block in self.blocks
        )

    def missing_blocks(self, active_server_ids: Set[int]) -> List[int]:
        """Block ids with no powered replica (for diagnostics)."""
        return [
            block.block_id
            for block in self.blocks
            if not any(s in active_server_ids for s in block.replica_servers)
        ]

    # -- covering subset ----------------------------------------------------

    def covering_subset_ids(self) -> Set[int]:
        """Smallest-effort server set holding a full dataset copy.

        Greedy set cover: repeatedly take the server covering the most
        still-uncovered blocks.  Greedy is within ln(n) of optimal, which
        is exactly the "smallest possible number of servers" spirit.
        """
        uncovered: Set[int] = {b.block_id for b in self.blocks}
        holdings: Dict[int, Set[int]] = {}
        for block in self.blocks:
            for server_id in block.replica_servers:
                holdings.setdefault(server_id, set()).add(block.block_id)
        chosen: Set[int] = set()
        while uncovered:
            best_server = max(
                holdings, key=lambda s: (len(holdings[s] & uncovered), -s)
            )
            gain = holdings[best_server] & uncovered
            if not gain:
                raise WorkloadError("dataset cannot be covered (lost blocks?)")
            chosen.add(best_server)
            uncovered -= gain
        return chosen

    def mark_covering_subset(self, servers: Sequence[Server]) -> List[Server]:
        """Mark ``in_covering_subset`` per the block layout; returns the
        subset, activated if needed."""
        ids = self.covering_subset_ids()
        subset = []
        for server in servers:
            server.in_covering_subset = server.server_id in ids
            if server.in_covering_subset:
                if not server.is_on:
                    server.activate()
                subset.append(server)
        return subset


def place_dataset(
    dataset_gb: float,
    num_servers: int,
    servers_per_pod: int = 16,
    block_mb: float = 64.0,
    replication: int = 3,
    seed: int = 17,
) -> HDFSNamespace:
    """Lay a dataset out the way HDFS does, with pod-aware replication.

    The first replica goes to a (pseudo-random) server; subsequent
    replicas go to servers in *different pods* (HDFS's off-rack rule),
    which is what makes the covering subset span pods and keeps data
    available whichever pods CoolAir favors.
    """
    if dataset_gb <= 0 or block_mb <= 0:
        raise WorkloadError("dataset and block sizes must be positive")
    if replication < 1:
        raise WorkloadError("replication must be >= 1")
    num_pods = math.ceil(num_servers / servers_per_pod)
    if replication > max(1, num_pods):
        # Cannot honor off-rack placement; cap replicas at pod count.
        replication = max(1, num_pods)
    num_blocks = max(1, math.ceil(dataset_gb * 1024.0 / block_mb))
    rng = np.random.default_rng(seed)
    blocks: List[Block] = []
    for block_id in range(num_blocks):
        first = int(rng.integers(0, num_servers))
        replicas = [first]
        used_pods = {first // servers_per_pod}
        while len(replicas) < replication:
            candidate = int(rng.integers(0, num_servers))
            pod = candidate // servers_per_pod
            if pod in used_pods or candidate in replicas:
                continue
            replicas.append(candidate)
            used_pods.add(pod)
        blocks.append(Block(block_id=block_id, replica_servers=tuple(replicas)))
    return HDFSNamespace(blocks, num_servers)
