"""Workload substrate: Hadoop-like jobs, traces, and cluster simulation.

The paper drives Parasol with a modified Hadoop running two day-long
traces: "Facebook" (a SWIM-scaled trace of a 600-machine Facebook cluster:
~5500 jobs, ~68000 tasks, 27% average utilization) and "Nutch" (the
CloudSuite web-indexing workload: 2000 Poisson-arriving jobs, 32% average
utilization).  Both non-deferrable and deferrable (6-hour start deadline)
variants are studied.

Two execution models are provided:

* :class:`HadoopCluster` — a task-level slot scheduler with Covering
  Subset data availability and the active/decommissioned/sleep power-state
  protocol, used for day-long experiments; and
* :class:`DemandProfile` — a fast aggregated day profile (demanded server
  count and utilization per control interval) used by year-long
  simulations, where the paper repeats the same workload every simulated
  day.
"""

from repro.workload.job import Job, JobPhase, Task
from repro.workload.traces import (
    FacebookTraceGenerator,
    NutchTraceGenerator,
    Trace,
)
from repro.workload.profile import DemandProfile, build_demand_profile
from repro.workload.hadoop import HadoopCluster
from repro.workload.covering import covering_subset

__all__ = [
    "Job",
    "JobPhase",
    "Task",
    "Trace",
    "FacebookTraceGenerator",
    "NutchTraceGenerator",
    "DemandProfile",
    "build_demand_profile",
    "HadoopCluster",
    "covering_subset",
]
