"""Covering Subset selection (Section 4.2).

The paper configures Hadoop with the Covering Subset scheme of Leverich &
Kozyrakis: a full copy of the dataset is stored on the smallest possible
number of servers, and any server outside the subset can sleep without
hurting data availability.  The subset must stay active at all times.
"""

from __future__ import annotations

import math
from typing import List

from repro.datacenter.server import Server
from repro.errors import ConfigError


def covering_subset(
    servers: List[Server],
    dataset_gb: float = 1500.0,
    disk_capacity_gb: float = 250.0,
    reserve_fraction: float = 0.25,
) -> List[Server]:
    """Choose and mark the covering subset.

    The subset size is the minimum number of disks that can hold one full
    dataset copy, keeping ``reserve_fraction`` of each disk free for
    temporary job data.  Marks ``in_covering_subset`` on the chosen servers
    (lowest server ids, which live in the lowest-recirculation pods of the
    default Parasol layout) and clears it elsewhere.
    """
    if not servers:
        raise ConfigError("covering_subset needs at least one server")
    if dataset_gb <= 0 or disk_capacity_gb <= 0:
        raise ConfigError("dataset and disk sizes must be positive")
    if not 0.0 <= reserve_fraction < 1.0:
        raise ConfigError(f"reserve_fraction {reserve_fraction} out of [0, 1)")
    usable_gb = disk_capacity_gb * (1.0 - reserve_fraction)
    size = min(len(servers), max(1, math.ceil(dataset_gb / usable_gb)))
    ordered = sorted(servers, key=lambda s: s.server_id)
    subset = ordered[:size]
    for server in servers:
        server.in_covering_subset = False
    for server in subset:
        server.in_covering_subset = True
        if not server.is_on:
            server.activate()
    return subset
