"""Daily temperature band selection (Section 3.2, Figure 3).

CoolAir selects a band of inlet temperatures ``Width`` degrees wide around
the day's average predicted outside temperature plus ``Offset`` (the
typical outside-to-inlet difference).  No part of the band may exceed
``Max`` or fall below ``Min``; the band slides back just below Max or just
above Min in those cases.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import BandMode, CoolAirConfig
from repro.errors import ConfigError
from repro.weather.forecast import DailyForecast


@dataclasses.dataclass(frozen=True)
class TemperatureBand:
    """An inclusive inlet temperature target range [low, high]."""

    low_c: float
    high_c: float
    # True when the band had to slide against Min/Max — one of the two
    # conditions under which All-DEF forgoes temporal scheduling.
    slid: bool = False

    def __post_init__(self) -> None:
        if self.low_c > self.high_c:
            raise ConfigError(f"band low {self.low_c} above high {self.high_c}")

    @property
    def center_c(self) -> float:
        return (self.low_c + self.high_c) / 2.0

    @property
    def width_c(self) -> float:
        return self.high_c - self.low_c

    def contains(self, temp_c: float) -> bool:
        return self.low_c <= temp_c <= self.high_c

    def distance_c(self, temp_c: float) -> float:
        """Degrees outside the band (0 when inside)."""
        if temp_c < self.low_c:
            return self.low_c - temp_c
        if temp_c > self.high_c:
            return temp_c - self.high_c
        return 0.0


def select_band(forecast: DailyForecast, config: CoolAirConfig) -> TemperatureBand:
    """Pick the day's band from the forecast per the config's band mode."""
    if config.band_mode is BandMode.FIXED:
        return TemperatureBand(config.fixed_band_low_c, config.fixed_band_high_c)
    if config.band_mode is BandMode.MAX_ONLY:
        # No band management: the whole allowed range, capped at the
        # version's maximum-temperature setpoint.
        return TemperatureBand(config.min_c, config.max_temp_setpoint_c)

    center = forecast.average_temp_c + config.offset_c
    low = center - config.width_c / 2.0
    high = center + config.width_c / 2.0
    slid = False
    if high > config.max_c:
        high = config.max_c
        low = high - config.width_c
        slid = True
    elif low < config.min_c:
        low = config.min_c
        high = low + config.width_c
        slid = True
    return TemperatureBand(low, high, slid=slid)


def band_overlaps_forecast(
    band: TemperatureBand, forecast: DailyForecast, offset_c: float
) -> bool:
    """Whether any forecast hour's expected *inlet* temperature hits the band.

    Outside air heats by roughly ``Offset`` on its way to the inlets, so an
    hour with outside forecast ``T`` maps to an expected inlet of
    ``T + Offset``.  When no hour overlaps, temporal scheduling provides no
    benefit and All-DEF forgoes it (Section 3.3).
    """
    return any(
        band.contains(float(temp) + offset_c) for temp in forecast.hourly_temps_c
    )
