"""The Cooling Optimizer (Section 3.2).

Every 10 minutes the Optimizer enumerates the cooling regimes the
infrastructure can reach, asks the Cooling Predictor what each would do
over the next period, scores the predictions with the utility function,
and selects the lowest-penalty regime.  Ties break toward the cheaper
regime, then toward staying put (regime changes are what cause variation).
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.core.band import TemperatureBand
from repro.core.config import CoolAirConfig
from repro.core.predictor import CoolingPredictor, PredictorState
from repro.core.utility import UtilityFunction

# Fan speeds closer than this are operationally indistinguishable; offering
# both wastes a predictor rollout (they arise from floating-point drift when
# current_fc_speed carries rounding from earlier ramp arithmetic).
SPEED_DEDUPE_TOLERANCE = 0.005


def _dedupe_speeds(speeds: Sequence[float]) -> List[float]:
    """Sorted speeds with near-duplicates collapsed to the lowest of each run."""
    kept: List[float] = []
    for speed in sorted(speeds):
        if not kept or speed - kept[-1] >= SPEED_DEDUPE_TOLERANCE:
            kept.append(speed)
    return kept


@functools.lru_cache(maxsize=None)
def _abrupt_candidates_cached() -> Tuple[CoolingCommand, ...]:
    commands = [CoolingCommand.closed()]
    for speed in (0.15, 0.3, 0.5, 0.75, 1.0):
        commands.append(CoolingCommand.free_cooling(speed))
    commands.append(CoolingCommand.ac(compressor_duty=0.0))
    commands.append(CoolingCommand.ac(compressor_duty=1.0))
    return tuple(commands)


def abrupt_candidates() -> List[CoolingCommand]:
    """Regimes reachable with Parasol's real hardware."""
    return list(_abrupt_candidates_cached())


@functools.lru_cache(maxsize=1024)
def _smooth_candidates_cached(
    current_fc_speed: float, ramp_per_step: float
) -> Tuple[CoolingCommand, ...]:
    commands = [CoolingCommand.closed()]
    speeds = {0.01, 0.05, 0.10, 0.20, 0.35, 0.5, 0.75, 1.0}
    if current_fc_speed > 0.0:
        ceiling = min(1.0, current_fc_speed + ramp_per_step)
        speeds.update(
            min(ceiling, max(0.01, current_fc_speed + delta))
            for delta in (-0.10, -0.05, -0.02, 0.02, 0.05, 0.10)
        )
    for speed in _dedupe_speeds(speeds):
        commands.append(CoolingCommand.free_cooling(speed))
    commands.append(CoolingCommand.ac(compressor_duty=0.0))
    for duty in (0.25, 0.5, 0.75, 1.0):
        commands.append(CoolingCommand.ac(compressor_duty=duty))
    return tuple(commands)


def smooth_candidates(
    current_fc_speed: float = 0.0, ramp_per_step: float = 0.20
) -> List[CoolingCommand]:
    """Regimes reachable with the fine-grained (Smooth-Sim) hardware.

    Fan speeds near the current speed are included so the optimizer can
    make small moves; the ramp limit keeps the far choices honest (the
    units clamp anyway, but offering unreachable speeds wastes predictions).
    The list is cached per (speed, ramp) — a simulation revisits the same
    handful of fan speeds every 10 minutes — and callers get a fresh list.
    """
    return list(_smooth_candidates_cached(current_fc_speed, ramp_per_step))


class CoolingOptimizer:
    """Selects the best cooling regime for the next control period."""

    def __init__(
        self,
        config: CoolAirConfig,
        predictor: CoolingPredictor,
        utility: UtilityFunction,
        smooth_hardware: bool = False,
        use_batched: bool = True,
    ) -> None:
        self.config = config
        self.predictor = predictor
        self.utility = utility
        self.smooth_hardware = smooth_hardware
        # Batched scoring is bit-identical to the sequential reference path
        # (see CoolingPredictor.predict_batch); the flag exists so tests can
        # assert that equivalence and so regressions can be bisected.
        self.use_batched = use_batched
        self.last_scores: List[Tuple[CoolingCommand, float]] = []

    def _candidates(
        self, state: PredictorState, band: TemperatureBand
    ) -> List[CoolingCommand]:
        if self.smooth_hardware:
            commands = smooth_candidates(
                current_fc_speed=state.fan_speed if state.mode is CoolingMode.FREE_COOLING else 0.0
            )
        else:
            commands = abrupt_candidates()
        # Backup cooling is for when outside air is too warm to free-cool
        # (Section 2).  Far below the band the AC can only act as a
        # recirculating heater, a condition its learned models never saw
        # in the campaign (the TKS engages the AC only in HOT mode), so
        # predictions there are pure extrapolation — exclude it.  Near the
        # band the AC stays available: the paper's CoolAir spends AC
        # energy at mild locations to limit variation (Figure 10,
        # Santiago), and the full-speed penalty prices that choice.
        if state.outside_temp_c < band.low_c - 10.0:
            commands = [
                c for c in commands
                if c.mode in (CoolingMode.CLOSED, CoolingMode.FREE_COOLING)
            ]
        return commands

    def decide(
        self,
        state: PredictorState,
        band: TemperatureBand,
        active_sensor_indices: Optional[Sequence[int]] = None,
    ) -> CoolingCommand:
        """Pick the regime with the lowest predicted penalty.

        ``active_sensor_indices`` restricts the utility sum to "the sensors
        of all active pods" (Section 3.2); None scores every sensor.
        """
        steps = self.config.steps_per_control_period
        candidates = self._candidates(state, band)
        if self.use_batched:
            predictions = self.predictor.predict_batch(state, candidates, steps)
        else:
            predictions = [
                self.predictor.predict(state, command, steps)
                for command in candidates
            ]
        return self.decide_from_predictions(
            state, band, candidates, predictions, active_sensor_indices
        )

    def decide_from_predictions(
        self,
        state: PredictorState,
        band: TemperatureBand,
        candidates: Sequence[CoolingCommand],
        predictions: Sequence,
        active_sensor_indices: Optional[Sequence[int]] = None,
    ) -> CoolingCommand:
        """Score precomputed candidate predictions and select the winner.

        Split out of :meth:`decide` so the lane-batched engine, which runs
        the predictor rollouts for many lanes at once, funnels each lane's
        predictions through exactly this scoring and tie-break code.
        """
        horizon_s = float(self.config.control_period_s)
        best_command: Optional[CoolingCommand] = None
        best_key: Optional[Tuple[float, float, int]] = None
        self.last_scores = []

        if active_sensor_indices is not None:
            indices = list(active_sensor_indices)
            predictions = [
                type(prediction)(
                    sensor_temps_c=prediction.sensor_temps_c[:, indices],
                    rh_pct=prediction.rh_pct,
                    cooling_energy_kwh=prediction.cooling_energy_kwh,
                    ac_at_full_speed=prediction.ac_at_full_speed,
                )
                for prediction in predictions
            ]
            current = [state.sensor_temps_c[i] for i in indices]
        else:
            current = list(state.sensor_temps_c)
        if self.use_batched:
            scores = self.utility.score_batch(
                predictions, band, current, horizon_s
            )
        else:
            scores = [
                self.utility.score(prediction, band, current, horizon_s)
                for prediction in predictions
            ]
        for command, prediction, score in zip(candidates, predictions, scores):
            self.last_scores.append((command, score))
            same_mode = 0 if command.mode is state.mode else 1
            key = (round(score, 6), prediction.cooling_energy_kwh, same_mode)
            if best_key is None or key < best_key:
                best_key = key
                best_command = command

        assert best_command is not None
        return best_command

    def decide_from_stacked(
        self,
        state: PredictorState,
        band: TemperatureBand,
        candidates: Sequence[CoolingCommand],
        temps: "np.ndarray",
        rh: "np.ndarray",
        energies: Sequence[float],
        ac_full: Sequence[bool],
        active_sensor_indices: Optional[Sequence[int]] = None,
    ) -> CoolingCommand:
        """:meth:`decide_from_predictions` on pre-stacked prediction arrays.

        ``temps`` is (candidates, steps, sensors) and ``rh`` (candidates,
        steps) — the lane engine's :meth:`CoolingPredictor
        .predict_lanes_stacked` output.  The active-sensor restriction is a
        single gather here (``temps[:, :, indices]`` holds exactly the
        values the per-candidate rebuild produces), and scoring goes
        through :meth:`UtilityFunction.score_arrays`, the same tensor code
        ``score_batch`` uses after stacking.  Selection and tie-breaking
        are the same key comparison as the reference path.
        """
        horizon_s = float(self.config.control_period_s)
        best_command: Optional[CoolingCommand] = None
        best_key: Optional[Tuple[float, float, int]] = None
        self.last_scores = []

        if active_sensor_indices is not None:
            indices = list(active_sensor_indices)
            temps = temps[:, :, indices]
            current = [state.sensor_temps_c[i] for i in indices]
        else:
            current = list(state.sensor_temps_c)
        scores = self.utility.score_arrays(
            temps,
            rh,
            np.asarray(energies),
            np.asarray(ac_full),
            band,
            current,
            horizon_s,
        )
        for command, energy, score in zip(candidates, energies, scores):
            self.last_scores.append((command, score))
            same_mode = 0 if command.mode is state.mode else 1
            key = (round(score, 6), energy, same_mode)
            if best_key is None or key < best_key:
                best_key = key
                best_command = command

        assert best_command is not None
        return best_command
