"""CoolAir: the paper's primary contribution.

The architecture (Figure 2) has three components:

* **Cooling Modeler** (:mod:`repro.core.modeler`) — offline learning of
  per-regime/per-transition linear models for temperature, humidity, and
  cooling power from monitoring data, plus the pod recirculation ranking.
* **Cooling Manager** (:mod:`repro.core.band`, :mod:`repro.core.predictor`,
  :mod:`repro.core.optimizer`, :mod:`repro.core.configurer`) — daily
  temperature-band selection from weather forecasts, 10-minute regime
  optimization through a penalty utility function, and actuation.
* **Compute Manager** (:mod:`repro.core.compute`) — server activation,
  recirculation-ranked spatial placement, and temporal scheduling of
  deferrable jobs.

:mod:`repro.core.versions` builds the Table 1 system variants, and
:class:`repro.core.coolair.CoolAir` ties everything together.
"""

from repro.core.band import TemperatureBand, select_band
from repro.core.config import CoolAirConfig, PlacementStrategy
from repro.core.coolair import CoolAir
from repro.core.modeler import CoolingLearner, CoolingModel
from repro.core.optimizer import CoolingOptimizer
from repro.core.predictor import CoolingPredictor
from repro.core.utility import UtilityFunction, UtilityWeights
from repro.core.versions import (
    all_nd,
    all_def,
    energy_def,
    energy_version,
    temperature_version,
    var_high_recirc,
    var_low_recirc,
    variation_version,
)

__all__ = [
    "TemperatureBand",
    "select_band",
    "CoolAirConfig",
    "PlacementStrategy",
    "CoolAir",
    "CoolingLearner",
    "CoolingModel",
    "CoolingOptimizer",
    "CoolingPredictor",
    "UtilityFunction",
    "UtilityWeights",
    "temperature_version",
    "variation_version",
    "energy_version",
    "all_nd",
    "all_def",
    "energy_def",
    "var_low_recirc",
    "var_high_recirc",
]
