"""The Cooling Modeler: learning thermal/humidity/power models (Section 3.1).

The Cooling Learner runs offline, once, over monitoring data collected
under the default cooling controller.  It fits:

* a **temperature model** per sensor per regime/transition — the predicted
  temperature is a linear function of: current and last inside temperature,
  current and last outside temperature, current and last fan speed, current
  datacenter utilization, fan speed x inside temperature, and fan speed x
  outside temperature (composed inputs allow linear regression to capture
  the bilinear mixing physics);
* an **absolute humidity model** per regime/transition — linear in current
  inside humidity, current outside humidity, current fan speed, fan x
  inside humidity, and fan x outside humidity; and
* a **cooling power model** per regime — constant per regime, except free
  cooling where power is a (cubic) function of fan speed, learned with an
  M5P piecewise-linear model tree.

Model selection for the linear behaviours follows the paper: try OLS and
least-median-squares, keep the lower-error fit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cooling.regimes import CoolingMode, RegimeKey, regime_key
from repro.errors import ModelNotTrainedError
from repro.ml.dataset import Dataset
from repro.ml.m5p import M5PModelTree
from repro.ml.selection import LinearModel, fit_best_linear

TEMP_FEATURES = (
    "inside_temp",
    "inside_temp_prev",
    "outside_temp",
    "outside_temp_prev",
    "fan_speed",
    "fan_speed_prev",
    "utilization",
    "fan_x_inside_temp",
    "fan_x_outside_temp",
)

HUMIDITY_FEATURES = (
    "inside_humidity",
    "outside_humidity",
    "fan_speed",
    "fan_x_inside_humidity",
    "fan_x_outside_humidity",
)

# Minimum samples before a per-regime model is considered learnable.
MIN_SAMPLES = 12


@dataclasses.dataclass(frozen=True)
class MonitoringSample:
    """One 2-minute monitoring record from the datacenter."""

    time_s: float
    mode: CoolingMode
    fan_speed: float  # free-cooling fan speed (0 when FC is off)
    sensor_temps_c: Tuple[float, ...]  # one per pod inlet sensor
    outside_temp_c: float
    utilization: float  # fraction of active servers
    inside_mixing_ratio: float
    outside_mixing_ratio: float
    cooling_power_w: float


def temp_features(
    current: MonitoringSample, previous: MonitoringSample, sensor: int
) -> List[float]:
    """Assemble the 9 temperature-model inputs for one sensor."""
    t_in = current.sensor_temps_c[sensor]
    return [
        t_in,
        previous.sensor_temps_c[sensor],
        current.outside_temp_c,
        previous.outside_temp_c,
        current.fan_speed,
        previous.fan_speed,
        current.utilization,
        current.fan_speed * t_in,
        current.fan_speed * current.outside_temp_c,
    ]


def humidity_features(current: MonitoringSample) -> List[float]:
    """Assemble the 5 humidity-model inputs."""
    return [
        current.inside_mixing_ratio,
        current.outside_mixing_ratio,
        current.fan_speed,
        current.fan_speed * current.inside_mixing_ratio,
        current.fan_speed * current.outside_mixing_ratio,
    ]


class CoolingModel:
    """The learned model bundle the Cooling Predictor consumes."""

    def __init__(self, num_sensors: int) -> None:
        self.num_sensors = num_sensors
        # (regime key, sensor index) -> linear temperature model.
        self.temp_models: Dict[Tuple[RegimeKey, int], LinearModel] = {}
        # regime key -> linear humidity model.
        self.humidity_models: Dict[RegimeKey, LinearModel] = {}
        # regime key -> power model (M5P over fan speed, or constant).
        self.power_models: Dict[RegimeKey, M5PModelTree] = {}
        self.power_constants: Dict[RegimeKey, float] = {}

    # -- prediction ---------------------------------------------------------

    def _temp_model(self, key: RegimeKey, sensor: int) -> LinearModel:
        model = self.temp_models.get((key, sensor))
        if model is None:
            # Fall back from a transition key to the steady model of the
            # target regime, which always exists after a campaign.
            if key.startswith("transition:"):
                target = key.split("->")[-1]
                model = self.temp_models.get((f"steady:{target}", sensor))
        if model is None:
            raise ModelNotTrainedError(
                f"no temperature model for regime {key!r} sensor {sensor}"
            )
        return model

    def predict_temp(
        self, key: RegimeKey, sensor: int, features: Sequence[float]
    ) -> float:
        """Predicted inlet temperature one model step ahead."""
        return self._temp_model(key, sensor).predict_one(features)

    def _vectorized(self, key: RegimeKey) -> Tuple[np.ndarray, np.ndarray]:
        """(intercepts, coefficient matrix) stacked across sensors.

        Cached per regime key; the Cooling Predictor's hot path predicts
        all sensors with one matrix product instead of per-sensor calls.
        """
        cache = getattr(self, "_vector_cache", None)
        if cache is None:
            cache = {}
            self._vector_cache = cache
        entry = cache.get(key)
        if entry is None:
            models = [self._temp_model(key, s) for s in range(self.num_sensors)]
            intercepts = np.array([m.intercept for m in models])
            coefs = np.vstack([m.coefficients for m in models])
            entry = (intercepts, coefs)
            cache[key] = entry
        return entry

    def predict_temps_vector(self, key: RegimeKey, features: np.ndarray) -> np.ndarray:
        """Predict all sensors at once; ``features`` is (sensors, n_feat)."""
        intercepts, coefs = self._vectorized(key)
        return intercepts + np.einsum("sf,sf->s", coefs, features)

    def batched_vectorized(
        self, keys: Tuple[RegimeKey, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(intercepts, coefficients) stacked across a tuple of regime keys.

        Returns arrays of shape (rows, sensors) and (rows, sensors, n_feat)
        so the Cooling Predictor can score every candidate regime of a
        control decision in one einsum.  Cached per key tuple — an optimizer
        decision uses only two tuples (the transition step and the steady
        steps), so the stacking cost is paid once per regime set.
        """
        cache = getattr(self, "_batch_cache", None)
        if cache is None:
            cache = {}
            self._batch_cache = cache
        entry = cache.get(keys)
        if entry is None:
            pairs = [self._vectorized(key) for key in keys]
            intercepts = np.stack([p[0] for p in pairs])
            coefs = np.stack([p[1] for p in pairs])
            entry = (intercepts, coefs)
            cache[keys] = entry
        return entry

    def has_transition_model(self, key: RegimeKey) -> bool:
        return any(k == key for k, _ in self.temp_models)

    def resolved_humidity_model(self, key: RegimeKey):
        """The humidity model serving ``key`` after transition fallback.

        Lets hot paths resolve the regime lookup once and then call
        ``predict_one`` directly per step (see
        :meth:`~repro.core.predictor.CoolingPredictor.predict_batch`).
        """
        model = self.humidity_models.get(key)
        if model is None and key.startswith("transition:"):
            target = key.split("->")[-1]
            model = self.humidity_models.get(f"steady:{target}")
        if model is None:
            raise ModelNotTrainedError(f"no humidity model for regime {key!r}")
        # LMS wraps the regression it selected; predict_one just delegates,
        # so hand hot paths the underlying model directly.
        inner = getattr(model, "_best", None)
        return inner if inner is not None else model

    def predict_humidity(self, key: RegimeKey, features: Sequence[float]) -> float:
        """Predicted inside mixing ratio one model step ahead."""
        return max(1e-6, self.resolved_humidity_model(key).predict_one(features))

    def predict_power_w(self, key: RegimeKey, fan_speed: float) -> float:
        """Predicted cooling power draw in a regime."""
        tree = self.power_models.get(key)
        if tree is not None:
            return max(0.0, tree.predict_one([fan_speed]))
        if key in self.power_constants:
            return self.power_constants[key]
        if key.startswith("transition:"):
            return self.predict_power_w(f"steady:{key.split('->')[-1]}", fan_speed)
        raise ModelNotTrainedError(f"no power model for regime {key!r}")

    @property
    def learned_regimes(self) -> Tuple[RegimeKey, ...]:
        return tuple(sorted({key for key, _ in self.temp_models}))


class CoolingLearner:
    """Fits a :class:`CoolingModel` from a monitoring log."""

    def __init__(
        self,
        num_sensors: int,
        min_samples: int = MIN_SAMPLES,
        require_core_regimes: bool = True,
    ) -> None:
        self.num_sensors = num_sensors
        self.min_samples = min_samples
        # Fault-injection studies (docs/ROBUSTNESS.md) train from gapped
        # logs on purpose; they disable this so the degraded model can be
        # exercised against CoolAir's safe-mode fallback instead of
        # failing at training time.
        self.require_core_regimes = require_core_regimes

    def learn(self, log: Sequence[MonitoringSample]) -> CoolingModel:
        """Fit every regime/transition with enough data."""
        if len(log) < 3:
            raise ModelNotTrainedError(
                f"need at least 3 monitoring samples, got {len(log)}"
            )
        temp_data: Dict[Tuple[RegimeKey, int], Dataset] = {}
        hum_data: Dict[RegimeKey, Dataset] = {}
        power_data: Dict[RegimeKey, List[Tuple[float, float]]] = {}

        for i in range(1, len(log) - 1):
            prev, cur, nxt = log[i - 1], log[i], log[i + 1]
            key = regime_key(cur.mode, nxt.mode)
            for sensor in range(self.num_sensors):
                dataset = temp_data.setdefault(
                    (key, sensor), Dataset(TEMP_FEATURES)
                )
                dataset.add(
                    temp_features(cur, prev, sensor), nxt.sensor_temps_c[sensor]
                )
            hset = hum_data.setdefault(key, Dataset(HUMIDITY_FEATURES))
            hset.add(humidity_features(cur), nxt.inside_mixing_ratio)
            # Power is attributed to the regime in force during the step.
            power_data.setdefault(key, []).append(
                (nxt.fan_speed, nxt.cooling_power_w)
            )

        model = CoolingModel(self.num_sensors)
        for (key, sensor), dataset in temp_data.items():
            if len(dataset) >= self.min_samples:
                model.temp_models[(key, sensor)] = fit_best_linear(dataset)
        for key, dataset in hum_data.items():
            if len(dataset) >= self.min_samples:
                model.humidity_models[key] = fit_best_linear(dataset)
        for key, samples in power_data.items():
            if len(samples) < max(4, self.min_samples // 2):
                continue
            if key == f"steady:{CoolingMode.FREE_COOLING.value}":
                dataset = Dataset(("fan_speed",))
                for fan, power in samples:
                    dataset.add([fan], power)
                model.power_models[key] = M5PModelTree(min_leaf_size=6).fit(dataset)
            else:
                model.power_constants[key] = float(
                    np.mean([power for _, power in samples])
                )
        if self.require_core_regimes:
            self._require_steady_models(model)
        return model

    def _require_steady_models(self, model: CoolingModel) -> None:
        """A usable model needs at least the closed and FC steady regimes."""
        required = [
            f"steady:{CoolingMode.CLOSED.value}",
            f"steady:{CoolingMode.FREE_COOLING.value}",
        ]
        for key in required:
            for sensor in range(self.num_sensors):
                if (key, sensor) not in model.temp_models:
                    raise ModelNotTrainedError(
                        f"campaign produced too little data for {key!r} "
                        f"(sensor {sensor}); extend the campaign"
                    )


def rank_pods_by_recirculation(observed_rises_c: Sequence[float]) -> List[int]:
    """Rank pods by heat-recirculation potential, strongest first.

    ``observed_rises_c[i]`` is the inlet temperature rise observed when load
    was scheduled on pod ``i`` alone — the Cooling Modeler's probe
    (Section 3.3).  Hotter response means more recirculation.
    """
    order = sorted(
        range(len(observed_rises_c)),
        key=lambda pod: observed_rises_c[pod],
        reverse=True,
    )
    return order
