"""The Compute Manager (Section 3.3): server activation, spatial placement,
and temporal scheduling.

Spatial placement: CoolAir targets the pods *most* prone to heat
recirculation first.  Counter-intuitively, this eases variation management:
low-recirculation pods are more exposed to the cooling infrastructure and
swing harder (Figure 11).  The energy-aware placement of prior work fills
low-recirculation pods first.

Temporal scheduling (All-DEF): jobs already arrived are scheduled 24 hours
ahead, never beyond their start deadlines, packing as much load as possible
into hours whose outside forecast falls within the temperature band.  It is
skipped for days when (1) the band had to slide against Min/Max, or (2) the
band does not overlap the forecast at all — such days gain nothing from it.

Energy-DEF's policy (prior art) instead packs load into the *coldest*
hours, which conserves cooling energy but widens temperature variation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.band import TemperatureBand, band_overlaps_forecast
from repro.core.config import CoolAirConfig, PlacementStrategy, TemporalPolicy
from repro.datacenter.layout import DatacenterLayout
from repro.datacenter.server import PowerState, Server
from repro.errors import SchedulingError
from repro.weather.forecast import DailyForecast
from repro.workload.job import Job


class ComputeOptimizer:
    """Chooses which servers should be active and in what placement order."""

    def __init__(self, config: CoolAirConfig, layout: DatacenterLayout) -> None:
        self.config = config
        self.layout = layout
        self._placement_order: Optional[List[Server]] = None

    def placement_order(self) -> List[Server]:
        """Servers in workload-filling order per the placement strategy.

        Pod recirculation rankings and server ids are fixed for a layout,
        so the order is computed once; callers get a fresh list.
        """
        if self._placement_order is None:
            high_first = (
                self.config.placement is PlacementStrategy.HIGH_RECIRCULATION_FIRST
            )
            ordered_pods = self.layout.recirculation_ranking(high_first=high_first)
            servers: List[Server] = []
            for pod in ordered_pods:
                servers.extend(sorted(pod.servers, key=lambda s: s.server_id))
            self._placement_order = servers
        return list(self._placement_order)

    def plan_active_set(self, demanded_servers: int) -> Set[int]:
        """Server ids that should be active for the coming period.

        The Covering Subset always stays active (data availability); beyond
        it, servers are taken in placement order until demand is met.
        """
        order = self.placement_order()
        active: Set[int] = {
            server.server_id for server in order if server.in_covering_subset
        }
        for server in order:
            if len(active) >= demanded_servers:
                break
            active.add(server.server_id)
        return active

    def active_pod_indices(self, active_ids: Set[int]) -> List[int]:
        """Pods that contain at least one active server — these are the
        sensors the utility function scores (Section 3.2)."""
        indices = []
        for pod in self.layout.pods:
            if any(server.server_id in active_ids for server in pod.servers):
                indices.append(pod.pod_id)
        return indices


class ComputeConfigurer:
    """Applies power-state transitions (Section 4.2's three rules).

    1. An active server that need not be active but still stores data a
       running job needs is *decommissioned*.
    2. An active/decommissioned server that need not be active and holds no
       relevant data is put to *sleep*.
    3. Sleeping servers required for computation are *activated*.
    """

    def __init__(self, layout: DatacenterLayout) -> None:
        self.layout = layout

    def apply(self, active_ids: Set[int]) -> None:
        for server in self.layout.all_servers():
            needed = server.server_id in active_ids or server.in_covering_subset
            if needed:
                if server.state is not PowerState.ACTIVE:
                    server.activate()
            else:
                if server.state is PowerState.ACTIVE:
                    if server.holds_job_data:
                        server.decommission()
                    else:
                        server.sleep()
                elif server.state is PowerState.DECOMMISSIONED:
                    if not server.holds_job_data:
                        server.sleep()


class TemporalScheduler:
    """Deferral of jobs within their start deadlines."""

    def __init__(self, config: CoolAirConfig) -> None:
        self.config = config

    def schedule_day(
        self,
        jobs: Sequence[Job],
        forecast: DailyForecast,
        band: Optional[TemperatureBand],
    ) -> int:
        """Assign ``scheduled_start_s`` to deferrable jobs; returns the
        number of jobs deferred."""
        policy = self.config.temporal
        if policy is TemporalPolicy.NONE:
            return 0
        if policy is TemporalPolicy.BAND_AWARE:
            if band is None:
                raise SchedulingError("band-aware scheduling needs a band")
            if band.slid or not band_overlaps_forecast(
                band, forecast, self.config.offset_c
            ):
                return 0  # scheduling provides no benefit on such days
            return self._band_aware(jobs, forecast, band)
        return self._coldest_hours(jobs, forecast)

    def _hour_temps(self, forecast: DailyForecast) -> List[float]:
        return [float(t) for t in forecast.hourly_temps_c]

    def _band_aware(
        self, jobs: Sequence[Job], forecast: DailyForecast, band: TemperatureBand
    ) -> int:
        temps = self._hour_temps(forecast)
        offset = self.config.offset_c
        in_band_hours = [
            forecast.issued_hour + i
            for i, temp in enumerate(temps)
            if band.contains(temp + offset)
        ]
        # Spread deferred work across the in-band hours instead of piling
        # everything onto the first one (which would trade an out-of-band
        # start for a thermal spike).
        load_per_hour = {hour: 0 for hour in in_band_hours}
        deferred = 0
        for job in jobs:
            if not job.is_deferrable:
                continue
            arrival_hour = int(job.arrival_s // 3600)
            if arrival_hour in in_band_hours:
                load_per_hour[arrival_hour] += 1
                continue  # already arriving at a good time
            assert job.deadline_s is not None
            deadline_hour = int(job.deadline_s // 3600)
            candidates = [
                h for h in in_band_hours if arrival_hour < h <= deadline_hour
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda h: (load_per_hour[h], h))
            load_per_hour[target] += 1
            job.defer_to(target * 3600.0)
            deferred += 1
        return deferred

    def _coldest_hours(self, jobs: Sequence[Job], forecast: DailyForecast) -> int:
        temps = self._hour_temps(forecast)
        deferred = 0
        for job in jobs:
            if not job.is_deferrable:
                continue
            arrival_hour = int(job.arrival_s // 3600)
            assert job.deadline_s is not None
            deadline_hour = min(23, int(job.deadline_s // 3600))
            window = [
                (temps[h - forecast.issued_hour], h)
                for h in range(max(arrival_hour, forecast.issued_hour), deadline_hour + 1)
                if 0 <= h - forecast.issued_hour < len(temps)
            ]
            if not window:
                continue
            coldest_temp, coldest_hour = min(window)
            if coldest_hour > arrival_hour:
                job.defer_to(coldest_hour * 3600.0)
                deferred += 1
        return deferred
