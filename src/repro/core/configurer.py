"""The Cooling Configurer: the only module that touches the cooling
infrastructure (Section 3.2).

Two flavors are provided:

* :class:`DirectCoolingConfigurer` drives the cooling units directly —
  what a datacenter with a programmable cooling interface would use, and
  what the simulators use.
* :class:`TKSTranslatingConfigurer` reproduces Parasol's reality
  (Section 4.2): CoolAir cannot bypass the TKS, so it translates desired
  behavior into TKS setpoint changes — the top of the temperature band
  becomes SP and the band width becomes the TKS's P value; forcing the
  regime works by pushing SP around.
"""

from __future__ import annotations

from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.cooling.tks import TKSController
from repro.cooling.units import CoolingUnits
from repro.core.band import TemperatureBand


class DirectCoolingConfigurer:
    """Applies optimizer decisions straight to the units."""

    def __init__(self, units: CoolingUnits) -> None:
        self.units = units

    def apply(self, command: CoolingCommand) -> None:
        self.units.apply(command)


class TKSTranslatingConfigurer:
    """Drives the TKS by rewriting its setpoint.

    ``install_band`` maps the CoolAir band onto the TKS control scheme.
    ``force_command`` nudges SP to push the TKS into the regime the
    optimizer chose: a very high setpoint closes the container (LOT mode,
    inside "cold enough"), a setpoint at the current control temperature
    makes the TKS run free cooling, and a very low setpoint drives it into
    HOT/AC behavior via the inside-temperature cycling rules.
    """

    # SP excursions used to force regimes, in degrees C.
    _FORCE_MARGIN_C = 15.0

    def __init__(self, tks: TKSController, units: CoolingUnits) -> None:
        self.tks = tks
        self.units = units

    def install_band(self, band: TemperatureBand) -> None:
        """Top of the band becomes SP; Width becomes the TKS P value."""
        self.tks.config.setpoint_c = band.high_c
        self.tks.config.band_c = max(0.5, band.width_c)

    def force_command(
        self,
        command: CoolingCommand,
        control_temp_c: float,
        outside_temp_c: float,
    ) -> CoolingCommand:
        """Install a setpoint that makes the TKS do what CoolAir wants,
        then let the TKS decide.  Returns the command the TKS actually
        produced (the fidelity limit of driving Parasol's controller)."""
        if command.mode is CoolingMode.CLOSED:
            # Raise SP so the control temperature looks "too cold".
            self.tks.config.setpoint_c = control_temp_c + self._FORCE_MARGIN_C
        elif command.mode is CoolingMode.FREE_COOLING:
            # Keep SP near the control temperature so the TKS free-cools;
            # the fan speed follows the TKS's own outside/inside rule.
            self.tks.config.setpoint_c = control_temp_c + 0.5
        else:
            # Drop SP below the control temperature with HOT-mode outside
            # conditions so the TKS switches the AC on.
            self.tks.config.setpoint_c = min(
                control_temp_c - 1.0, outside_temp_c - self.tks.config.hysteresis_c - 0.5
            )
        produced = self.tks.decide(control_temp_c, outside_temp_c)
        self.units.apply(produced)
        return produced
