"""The Cooling Optimizer's utility (penalty) function (Section 3.2).

Violations all carry the same penalty weight in the paper:

* each 0.5C above the maximum temperature threshold,
* each 1C of temperature variation beyond 20C/hour,
* each 0.5C outside the temperature band,
* each 5% of relative humidity outside the humidity band, and
* turning on the AC at full speed.

The overall value for a candidate regime is the sum of penalties across the
sensors of all active pods, plus (for energy-managing versions) a term
proportional to the predicted cooling energy.  Lower is better.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.core.band import TemperatureBand
from repro.core.config import CoolAirConfig
from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class UtilityWeights:
    """Penalty weights; the paper sets all violation weights equal."""

    per_half_degree_over_max: float = 1.0
    per_degree_rate_over_limit: float = 1.0
    per_half_degree_outside_band: float = 1.0
    per_5pct_rh_outside_band: float = 1.0
    ac_full_speed: float = 1.0
    per_cooling_kwh: float = 3.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ConfigError(f"{field.name} must be non-negative")


@dataclasses.dataclass(frozen=True)
class RegimePrediction:
    """What the Cooling Predictor says a candidate regime would do.

    ``sensor_temps_c`` has shape (steps, sensors): the predicted inlet
    temperature trajectory for each active pod sensor over the horizon.
    ``rh_pct`` is the predicted cold-aisle relative humidity per step.
    """

    sensor_temps_c: np.ndarray
    rh_pct: np.ndarray
    cooling_energy_kwh: float
    ac_at_full_speed: bool

    def __post_init__(self) -> None:
        if self.sensor_temps_c.ndim != 2:
            raise ConfigError("sensor_temps_c must be (steps, sensors)")
        if self.rh_pct.shape[0] != self.sensor_temps_c.shape[0]:
            raise ConfigError("rh_pct must have one entry per step")


class UtilityFunction:
    """Scores regime predictions; lower scores are better."""

    def __init__(
        self,
        config: CoolAirConfig,
        weights: Optional[UtilityWeights] = None,
    ) -> None:
        self.config = config
        self.weights = weights or UtilityWeights()

    def score(
        self,
        prediction: RegimePrediction,
        band: TemperatureBand,
        current_sensor_temps_c: Sequence[float],
        horizon_s: float,
    ) -> float:
        """Total penalty for one candidate regime."""
        if horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        cfg = self.config
        w = self.weights
        temps = prediction.sensor_temps_c
        current = np.asarray(current_sensor_temps_c, dtype=float)
        if temps.shape[1] != current.shape[0]:
            raise ConfigError(
                f"prediction covers {temps.shape[1]} sensors, current state has "
                f"{current.shape[0]}"
            )
        penalty = 0.0

        # 1. Absolute temperature: each 0.5C above the max threshold.
        max_temp = (
            cfg.max_temp_setpoint_c
            if cfg.band_mode.value == "max_only"
            else cfg.max_c
        )
        over = np.maximum(0.0, temps - max_temp)
        penalty += w.per_half_degree_over_max * float(over.sum()) / 0.5

        # 2. Temperature variation rate: each 1C/hour beyond the limit,
        #    using the steepest step-to-step slope per sensor.
        steps = temps.shape[0]
        step_s = horizon_s / steps
        trajectory = np.vstack([current[None, :], temps])
        slopes = np.abs(np.diff(trajectory, axis=0)) / (step_s / 3600.0)
        worst_rate = np.max(slopes, axis=0)
        if cfg.use_rate_term:
            over_rate = np.maximum(0.0, worst_rate - cfg.max_rate_c_per_hour)
            penalty += w.per_degree_rate_over_limit * float(over_rate.sum())

        # 3. Temperature band: each 0.5C outside, per sensor, averaged over
        #    the horizon.
        if cfg.use_band_term:
            below = np.maximum(0.0, band.low_c - temps)
            above = np.maximum(0.0, temps - band.high_c)
            outside = below + above
            penalty += (
                w.per_half_degree_outside_band * float(outside.sum()) / 0.5
            )

        # 4. Relative humidity: each 5% beyond the humidity band.
        rh_over = np.maximum(0.0, prediction.rh_pct - cfg.max_rh_pct)
        penalty += w.per_5pct_rh_outside_band * float(rh_over.sum()) / 5.0

        # 5. Turning on the AC at full speed (charged once per step so it
        #    stays commensurate with the per-step violation terms).
        if prediction.ac_at_full_speed:
            penalty += w.ac_full_speed * steps

        # 6. Cooling energy (only for energy-managing versions).
        if cfg.use_energy_term:
            penalty += w.per_cooling_kwh * prediction.cooling_energy_kwh

        return penalty

    def score_batch(
        self,
        predictions: Sequence[RegimePrediction],
        band: TemperatureBand,
        current_sensor_temps_c: Sequence[float],
        horizon_s: float,
    ) -> List[float]:
        """Penalties for a whole candidate set in a few tensor operations.

        Bit-identical to ``[self.score(p, ...) for p in predictions]``:
        every term is elementwise arithmetic, and the axis reductions over a
        candidate's contiguous block produce the same floats as that
        candidate's standalone full-array reduction.
        """
        if not predictions:
            return []
        return self.score_arrays(
            np.stack([p.sensor_temps_c for p in predictions]),
            np.stack([p.rh_pct for p in predictions]),
            np.array([p.cooling_energy_kwh for p in predictions]),
            np.array([p.ac_at_full_speed for p in predictions]),
            band,
            current_sensor_temps_c,
            horizon_s,
        )

    def score_arrays(
        self,
        temps: np.ndarray,
        rh: np.ndarray,
        energies: np.ndarray,
        ac_full: np.ndarray,
        band: TemperatureBand,
        current_sensor_temps_c: Sequence[float],
        horizon_s: float,
    ) -> List[float]:
        """:meth:`score_batch` on pre-stacked arrays.

        ``temps`` is (candidates, steps, sensors), ``rh`` is (candidates,
        steps); callers that already hold stacked trajectories (the lane
        engine) skip the per-candidate restacking.
        """
        if horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        cfg = self.config
        w = self.weights
        current = np.asarray(current_sensor_temps_c, dtype=float)
        if temps.shape[2] != current.shape[0]:
            raise ConfigError(
                f"prediction covers {temps.shape[2]} sensors, current state has "
                f"{current.shape[0]}"
            )
        num_cands, steps, num_sensors = temps.shape

        max_temp = (
            cfg.max_temp_setpoint_c
            if cfg.band_mode.value == "max_only"
            else cfg.max_c
        )
        over = np.maximum(0.0, temps - max_temp)
        penalty = w.per_half_degree_over_max * over.sum(axis=(1, 2)) / 0.5

        if cfg.use_rate_term:
            step_s = horizon_s / steps
            trajectory = np.concatenate(
                [np.broadcast_to(current, (num_cands, 1, num_sensors)), temps],
                axis=1,
            )
            slopes = np.abs(np.diff(trajectory, axis=1)) / (step_s / 3600.0)
            worst_rate = slopes.max(axis=1)
            over_rate = np.maximum(0.0, worst_rate - cfg.max_rate_c_per_hour)
            penalty += w.per_degree_rate_over_limit * over_rate.sum(axis=1)

        if cfg.use_band_term:
            below = np.maximum(0.0, band.low_c - temps)
            above = np.maximum(0.0, temps - band.high_c)
            outside = below + above
            penalty += (
                w.per_half_degree_outside_band * outside.sum(axis=(1, 2)) / 0.5
            )

        rh_over = np.maximum(0.0, rh - cfg.max_rh_pct)
        penalty += w.per_5pct_rh_outside_band * rh_over.sum(axis=1) / 5.0

        penalty += np.where(ac_full, w.ac_full_speed * float(steps), 0.0)

        if cfg.use_energy_term:
            penalty += w.per_cooling_kwh * energies

        return [float(p) for p in penalty]
