"""The Cooling Predictor (Section 3.2).

The Cooling Model predicts only one 2-minute step ahead, so the Predictor
applies it repeatedly — each application feeding on the previous one's
output — to produce the 10-minute trajectories the Cooling Optimizer
scores.  The first step of a regime change uses the learned *transition*
model when one exists.

Smooth-hardware support follows Section 5.1 exactly: free-cooling
predictions at low fan speeds extrapolate the learned models (fan speed is
a model input), and variable-speed AC predictions interpolate between the
compressor-on and compressor-off models, weighted by compressor duty.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.cooling.regimes import CoolingCommand, CoolingMode, regime_key
from repro.core.modeler import CoolingModel
from repro.core.utility import RegimePrediction
from repro.errors import ConfigError
from repro.physics.psychrometrics import (
    absolute_to_relative_humidity,
    absolute_to_relative_humidity_array,
)


@dataclasses.dataclass
class PredictorState:
    """Everything the Predictor needs to know about "now"."""

    mode: CoolingMode
    fan_speed: float
    sensor_temps_c: Sequence[float]
    prev_sensor_temps_c: Sequence[float]
    outside_temp_c: float
    prev_outside_temp_c: float
    prev_fan_speed: float
    utilization: float
    inside_mixing_ratio: float
    outside_mixing_ratio: float


class CoolingPredictor:
    """Iterates the learned 2-minute model out to the control horizon."""

    def __init__(self, model: CoolingModel, model_step_s: int = 120) -> None:
        if model_step_s <= 0:
            raise ConfigError("model_step_s must be positive")
        self.model = model
        self.model_step_s = model_step_s
        # Power depends only on the command (regime + duty + fan speed);
        # memoized because the optimizer re-prices the same candidates
        # every control period.  Batch plans likewise recur per
        # (mode, candidate set).
        self._power_cache: dict = {}
        self._batch_plans: dict = {}

    def predict(
        self,
        state: PredictorState,
        command: CoolingCommand,
        steps: int,
    ) -> RegimePrediction:
        """Trajectory of temperatures and humidity under ``command``."""
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        num_sensors = self.model.num_sensors
        if len(state.sensor_temps_c) != num_sensors:
            raise ConfigError(
                f"state has {len(state.sensor_temps_c)} sensors, model expects "
                f"{num_sensors}"
            )

        duty = command.ac_compressor_duty
        cmd_fan = command.fc_fan_speed

        temps = np.array(state.sensor_temps_c, dtype=float)
        prev_temps = np.array(state.prev_sensor_temps_c, dtype=float)
        w_in = state.inside_mixing_ratio
        fan_prev = state.prev_fan_speed
        fan_cur = state.fan_speed
        out_prev = state.prev_outside_temp_c

        temp_rows: List[np.ndarray] = []
        rh_rows: List[float] = []
        for step in range(steps):
            prev_mode = state.mode if step == 0 else command.mode
            features_matrix = np.empty((num_sensors, 9))
            features_matrix[:, 0] = temps
            features_matrix[:, 1] = prev_temps
            features_matrix[:, 2] = state.outside_temp_c
            features_matrix[:, 3] = out_prev
            features_matrix[:, 4] = cmd_fan
            features_matrix[:, 5] = fan_cur
            features_matrix[:, 6] = state.utilization
            features_matrix[:, 7] = cmd_fan * temps
            features_matrix[:, 8] = cmd_fan * state.outside_temp_c
            next_temps = self._predict_temps_vec(
                prev_mode, command, duty, features_matrix
            )
            hum_features = [
                w_in,
                state.outside_mixing_ratio,
                cmd_fan,
                cmd_fan * w_in,
                cmd_fan * state.outside_mixing_ratio,
            ]
            w_in = self._predict_humidity(prev_mode, command, duty, hum_features)

            prev_temps = temps
            temps = next_temps
            fan_prev, fan_cur = fan_cur, cmd_fan
            out_prev = state.outside_temp_c
            temp_rows.append(temps.copy())
            rh_rows.append(
                absolute_to_relative_humidity(w_in, float(np.mean(temps)))
            )

        power_w = self._predict_power(state.mode, command, duty)
        horizon_s = steps * self.model_step_s
        energy_kwh = power_w * horizon_s / 3.6e6
        # "Turning on the AC at full speed" (Section 3.2): the compressor
        # at full blast, or the fixed-speed AC fan running flat out.
        ac_full = (
            command.mode is CoolingMode.AC_ON and duty >= 1.0 - 1e-9
        ) or (
            command.mode in (CoolingMode.AC_ON, CoolingMode.AC_FAN)
            and command.ac_fan_speed >= 1.0 - 1e-9
        )
        return RegimePrediction(
            sensor_temps_c=np.vstack(temp_rows),
            rh_pct=np.asarray(rh_rows),
            cooling_energy_kwh=energy_kwh,
            ac_at_full_speed=ac_full,
        )

    def predict_batch(
        self,
        state: PredictorState,
        commands: Sequence[CoolingCommand],
        steps: int,
    ) -> List[RegimePrediction]:
        """Score every candidate regime in one vectorized rollout.

        Returns exactly ``[self.predict(state, c, steps) for c in commands]``
        — bit-identical, not merely close: the batched einsum contracts each
        candidate row with the same per-element operation order as the
        scalar path, AC duty blending happens at the prediction level with
        the same arithmetic, and the (cheap) humidity/power/RH quantities
        reuse the scalar code paths outright.
        """
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        num_sensors = self.model.num_sensors
        if len(state.sensor_temps_c) != num_sensors:
            raise ConfigError(
                f"state has {len(state.sensor_temps_c)} sensors, model expects "
                f"{num_sensors}"
            )
        if not commands:
            return []

        num_cands = len(commands)
        # The expansion below (row layout, regime keys, humidity model
        # params) depends only on (current mode, candidate set) — both
        # recur every control period, so build the plan once.
        plan_key = (state.mode, tuple(commands))
        plan = self._batch_plans.get(plan_key)
        if plan is None:
            duties = [c.ac_compressor_duty for c in commands]
            fans = np.array([c.fc_fan_speed for c in commands])

            # Variable-duty AC candidates evaluate both the compressor-on
            # and compressor-off models each step; every other candidate is
            # one row.
            blended = [
                c.mode is CoolingMode.AC_ON and 0.0 < duties[i] < 1.0
                for i, c in enumerate(commands)
            ]
            row_cand: List[int] = []
            row_target: List[CoolingMode] = []
            for i, cmd in enumerate(commands):
                if blended[i]:
                    row_cand.extend((i, i))
                    row_target.extend((CoolingMode.AC_ON, CoolingMode.AC_FAN))
                else:
                    row_cand.append(i)
                    row_target.append(cmd.mode)
            row_index = np.asarray(row_cand)
            # Regime keys differ only between the first (transition) step
            # and the steady remainder, so two stacked-coefficient lookups.
            keys_first = tuple(regime_key(state.mode, t) for t in row_target)
            keys_steady = tuple(
                regime_key(commands[c].mode, t)
                for c, t in zip(row_cand, row_target)
            )
            hum_first = [
                (m.intercept, m.coefficients)
                for m in (
                    self.model.resolved_humidity_model(k) for k in keys_first
                )
            ]
            hum_steady = [
                (m.intercept, m.coefficients)
                for m in (
                    self.model.resolved_humidity_model(k) for k in keys_steady
                )
            ]
            plan = (
                duties,
                fans,
                blended,
                row_index,
                fans[row_index],
                keys_first,
                keys_steady,
                hum_first,
                hum_steady,
            )
            self._batch_plans[plan_key] = plan
        (
            duties,
            fans,
            blended,
            row_index,
            fans_rows,
            keys_first,
            keys_steady,
            hum_first,
            hum_steady,
        ) = plan

        temps = np.tile(np.array(state.sensor_temps_c, dtype=float), (num_cands, 1))
        prev_temps = np.tile(
            np.array(state.prev_sensor_temps_c, dtype=float), (num_cands, 1)
        )
        w_in = [state.inside_mixing_ratio] * num_cands

        traj = np.empty((steps, num_cands, num_sensors))
        rh_mat = np.empty((steps, num_cands))
        hum_buf = np.empty(5)
        # Feature tensor lives at row level; constant columns fill once.
        feats = np.empty((fans_rows.shape[0], num_sensors, 9))
        feats[:, :, 2] = state.outside_temp_c
        feats[:, :, 4] = fans_rows[:, None]
        feats[:, :, 6] = state.utilization
        feats[:, :, 8] = (fans_rows * state.outside_temp_c)[:, None]
        for step in range(steps):
            first = step == 0
            temps_rows = temps[row_index]
            feats[:, :, 0] = temps_rows
            feats[:, :, 1] = prev_temps[row_index]
            feats[:, :, 3] = (
                state.prev_outside_temp_c if first else state.outside_temp_c
            )
            feats[:, :, 5] = state.fan_speed if first else fans_rows[:, None]
            feats[:, :, 7] = fans_rows[:, None] * temps_rows

            intercepts, coefs = self.model.batched_vectorized(
                keys_first if first else keys_steady
            )
            preds = intercepts + np.einsum("rsf,rsf->rs", coefs, feats)

            next_temps = np.empty((num_cands, num_sensors))
            row = 0
            for i in range(num_cands):
                if blended[i]:
                    duty = duties[i]
                    next_temps[i] = (
                        duty * preds[row] + (1.0 - duty) * preds[row + 1]
                    )
                    row += 2
                else:
                    next_temps[i] = preds[row]
                    row += 1

            means = next_temps.mean(axis=1)
            hum_models = hum_first if first else hum_steady
            out_w = state.outside_mixing_ratio
            hum_feats = hum_buf
            hum_feats[1] = out_w
            dot = np.dot
            row = 0
            for i, cmd in enumerate(commands):
                cmd_fan = cmd.fc_fan_speed
                w = w_in[i]
                hum_feats[0] = w
                hum_feats[2] = cmd_fan
                hum_feats[3] = cmd_fan * w
                hum_feats[4] = cmd_fan * out_w
                # Inlined LinearRegression.predict_one, clamped like
                # CoolingModel.predict_humidity.
                b0, coef = hum_models[row]
                if blended[i]:
                    duty = duties[i]
                    on = max(1e-6, b0 + float(dot(coef, hum_feats)))
                    b1, coef1 = hum_models[row + 1]
                    off = max(1e-6, b1 + float(dot(coef1, hum_feats)))
                    w_in[i] = duty * on + (1.0 - duty) * off
                    row += 2
                else:
                    w_in[i] = max(1e-6, b0 + float(dot(coef, hum_feats)))
                    row += 1
            rh_mat[step] = absolute_to_relative_humidity_array(
                np.array(w_in, dtype=float), means
            )
            prev_temps = temps
            temps = next_temps
            traj[step] = next_temps

        horizon_s = steps * self.model_step_s
        predictions: List[RegimePrediction] = []
        for i, cmd in enumerate(commands):
            duty = duties[i]
            power_w = self._predict_power(state.mode, cmd, duty)
            ac_full = (
                cmd.mode is CoolingMode.AC_ON and duty >= 1.0 - 1e-9
            ) or (
                cmd.mode in (CoolingMode.AC_ON, CoolingMode.AC_FAN)
                and cmd.ac_fan_speed >= 1.0 - 1e-9
            )
            predictions.append(
                RegimePrediction(
                    sensor_temps_c=traj[:, i, :].copy(),
                    rh_pct=rh_mat[:, i].copy(),
                    cooling_energy_kwh=power_w * horizon_s / 3.6e6,
                    ac_at_full_speed=ac_full,
                )
            )
        return predictions

    # -- per-quantity dispatch ------------------------------------------------

    def _predict_temps_vec(
        self,
        prev_mode: CoolingMode,
        command: CoolingCommand,
        duty: float,
        features_matrix: np.ndarray,
    ) -> np.ndarray:
        """All-sensor temperature prediction (the optimizer's hot path)."""
        mode = command.mode
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            on = self.model.predict_temps_vector(
                regime_key(prev_mode, CoolingMode.AC_ON), features_matrix
            )
            off = self.model.predict_temps_vector(
                regime_key(prev_mode, CoolingMode.AC_FAN), features_matrix
            )
            return duty * on + (1.0 - duty) * off
        return self.model.predict_temps_vector(
            regime_key(prev_mode, mode), features_matrix
        )

    def _predict_temp(
        self,
        prev_mode: CoolingMode,
        command: CoolingCommand,
        duty: float,
        sensor: int,
        features: Sequence[float],
    ) -> float:
        mode = command.mode
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            # Variable-speed compressor: interpolate on/off models.
            on = self.model.predict_temp(
                regime_key(prev_mode, CoolingMode.AC_ON), sensor, features
            )
            off = self.model.predict_temp(
                regime_key(prev_mode, CoolingMode.AC_FAN), sensor, features
            )
            return duty * on + (1.0 - duty) * off
        return self.model.predict_temp(regime_key(prev_mode, mode), sensor, features)

    def _predict_humidity(
        self,
        prev_mode: CoolingMode,
        command: CoolingCommand,
        duty: float,
        features: Sequence[float],
    ) -> float:
        mode = command.mode
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            on = self.model.predict_humidity(
                regime_key(prev_mode, CoolingMode.AC_ON), features
            )
            off = self.model.predict_humidity(
                regime_key(prev_mode, CoolingMode.AC_FAN), features
            )
            return duty * on + (1.0 - duty) * off
        return self.model.predict_humidity(regime_key(prev_mode, mode), features)

    def _predict_power(
        self, prev_mode: CoolingMode, command: CoolingCommand, duty: float
    ) -> float:
        cached = self._power_cache.get(command)
        if cached is not None:
            return cached
        power = self._predict_power_uncached(command, duty)
        self._power_cache[command] = power
        return power

    def _predict_power_uncached(
        self, command: CoolingCommand, duty: float
    ) -> float:
        mode = command.mode
        steady = f"steady:{mode.value}"
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            # Smooth AC: fan is 1/4 of unit power, compressor linear in duty.
            on = self.model.predict_power_w(
                f"steady:{CoolingMode.AC_ON.value}", 0.0
            )
            off = self.model.predict_power_w(
                f"steady:{CoolingMode.AC_FAN.value}", 0.0
            )
            return off + duty * (on - off)
        if mode is CoolingMode.CLOSED:
            return 0.0
        return self.model.predict_power_w(steady, command.fc_fan_speed)
