"""The Cooling Predictor (Section 3.2).

The Cooling Model predicts only one 2-minute step ahead, so the Predictor
applies it repeatedly — each application feeding on the previous one's
output — to produce the 10-minute trajectories the Cooling Optimizer
scores.  The first step of a regime change uses the learned *transition*
model when one exists.

Smooth-hardware support follows Section 5.1 exactly: free-cooling
predictions at low fan speeds extrapolate the learned models (fan speed is
a model input), and variable-speed AC predictions interpolate between the
compressor-on and compressor-off models, weighted by compressor duty.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.cooling.regimes import CoolingCommand, CoolingMode, regime_key
from repro.core.modeler import CoolingModel
from repro.core.utility import RegimePrediction
from repro.errors import ConfigError
from repro.physics.psychrometrics import (
    absolute_to_relative_humidity,
    absolute_to_relative_humidity_array,
)


@dataclasses.dataclass
class PredictorState:
    """Everything the Predictor needs to know about "now"."""

    mode: CoolingMode
    fan_speed: float
    sensor_temps_c: Sequence[float]
    prev_sensor_temps_c: Sequence[float]
    outside_temp_c: float
    prev_outside_temp_c: float
    prev_fan_speed: float
    utilization: float
    inside_mixing_ratio: float
    outside_mixing_ratio: float


class CoolingPredictor:
    """Iterates the learned 2-minute model out to the control horizon."""

    def __init__(self, model: CoolingModel, model_step_s: int = 120) -> None:
        if model_step_s <= 0:
            raise ConfigError("model_step_s must be positive")
        self.model = model
        self.model_step_s = model_step_s
        # Power depends only on the command (regime + duty + fan speed);
        # memoized because the optimizer re-prices the same candidates
        # every control period.  Batch plans likewise recur per
        # (mode, candidate set).
        self._power_cache: dict = {}
        self._batch_plans: dict = {}

    def predict(
        self,
        state: PredictorState,
        command: CoolingCommand,
        steps: int,
    ) -> RegimePrediction:
        """Trajectory of temperatures and humidity under ``command``."""
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        num_sensors = self.model.num_sensors
        if len(state.sensor_temps_c) != num_sensors:
            raise ConfigError(
                f"state has {len(state.sensor_temps_c)} sensors, model expects "
                f"{num_sensors}"
            )

        duty = command.ac_compressor_duty
        cmd_fan = command.fc_fan_speed

        temps = np.array(state.sensor_temps_c, dtype=float)
        prev_temps = np.array(state.prev_sensor_temps_c, dtype=float)
        w_in = state.inside_mixing_ratio
        fan_prev = state.prev_fan_speed
        fan_cur = state.fan_speed
        out_prev = state.prev_outside_temp_c

        temp_rows: List[np.ndarray] = []
        rh_rows: List[float] = []
        for step in range(steps):
            prev_mode = state.mode if step == 0 else command.mode
            features_matrix = np.empty((num_sensors, 9))
            features_matrix[:, 0] = temps
            features_matrix[:, 1] = prev_temps
            features_matrix[:, 2] = state.outside_temp_c
            features_matrix[:, 3] = out_prev
            features_matrix[:, 4] = cmd_fan
            features_matrix[:, 5] = fan_cur
            features_matrix[:, 6] = state.utilization
            features_matrix[:, 7] = cmd_fan * temps
            features_matrix[:, 8] = cmd_fan * state.outside_temp_c
            next_temps = self._predict_temps_vec(
                prev_mode, command, duty, features_matrix
            )
            hum_features = [
                w_in,
                state.outside_mixing_ratio,
                cmd_fan,
                cmd_fan * w_in,
                cmd_fan * state.outside_mixing_ratio,
            ]
            w_in = self._predict_humidity(prev_mode, command, duty, hum_features)

            prev_temps = temps
            temps = next_temps
            fan_prev, fan_cur = fan_cur, cmd_fan
            out_prev = state.outside_temp_c
            temp_rows.append(temps.copy())
            rh_rows.append(
                absolute_to_relative_humidity(w_in, float(np.mean(temps)))
            )

        power_w = self._predict_power(state.mode, command, duty)
        horizon_s = steps * self.model_step_s
        energy_kwh = power_w * horizon_s / 3.6e6
        # "Turning on the AC at full speed" (Section 3.2): the compressor
        # at full blast, or the fixed-speed AC fan running flat out.
        ac_full = (
            command.mode is CoolingMode.AC_ON and duty >= 1.0 - 1e-9
        ) or (
            command.mode in (CoolingMode.AC_ON, CoolingMode.AC_FAN)
            and command.ac_fan_speed >= 1.0 - 1e-9
        )
        return RegimePrediction(
            sensor_temps_c=np.vstack(temp_rows),
            rh_pct=np.asarray(rh_rows),
            cooling_energy_kwh=energy_kwh,
            ac_at_full_speed=ac_full,
        )

    def predict_batch(
        self,
        state: PredictorState,
        commands: Sequence[CoolingCommand],
        steps: int,
    ) -> List[RegimePrediction]:
        """Score every candidate regime in one vectorized rollout.

        Returns exactly ``[self.predict(state, c, steps) for c in commands]``
        — bit-identical, not merely close: the batched einsum contracts each
        candidate row with the same per-element operation order as the
        scalar path, AC duty blending happens at the prediction level with
        the same arithmetic, and the (cheap) humidity/power/RH quantities
        reuse the scalar code paths outright.
        """
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        num_sensors = self.model.num_sensors
        if len(state.sensor_temps_c) != num_sensors:
            raise ConfigError(
                f"state has {len(state.sensor_temps_c)} sensors, model expects "
                f"{num_sensors}"
            )
        if not commands:
            return []

        num_cands = len(commands)
        plan = self._get_plan(state.mode, tuple(commands))
        (
            duties,
            fans,
            blended,
            row_index,
            fans_rows,
            keys_first,
            keys_steady,
            hum_first,
            hum_steady,
        ) = plan[:9]

        temps = np.tile(np.array(state.sensor_temps_c, dtype=float), (num_cands, 1))
        prev_temps = np.tile(
            np.array(state.prev_sensor_temps_c, dtype=float), (num_cands, 1)
        )
        w_in = [state.inside_mixing_ratio] * num_cands

        traj = np.empty((steps, num_cands, num_sensors))
        rh_mat = np.empty((steps, num_cands))
        hum_buf = np.empty(5)
        # Feature tensor lives at row level; constant columns fill once.
        feats = np.empty((fans_rows.shape[0], num_sensors, 9))
        feats[:, :, 2] = state.outside_temp_c
        feats[:, :, 4] = fans_rows[:, None]
        feats[:, :, 6] = state.utilization
        feats[:, :, 8] = (fans_rows * state.outside_temp_c)[:, None]
        for step in range(steps):
            first = step == 0
            temps_rows = temps[row_index]
            feats[:, :, 0] = temps_rows
            feats[:, :, 1] = prev_temps[row_index]
            feats[:, :, 3] = (
                state.prev_outside_temp_c if first else state.outside_temp_c
            )
            feats[:, :, 5] = state.fan_speed if first else fans_rows[:, None]
            feats[:, :, 7] = fans_rows[:, None] * temps_rows

            intercepts, coefs = self.model.batched_vectorized(
                keys_first if first else keys_steady
            )
            preds = intercepts + np.einsum("rsf,rsf->rs", coefs, feats)

            next_temps = np.empty((num_cands, num_sensors))
            row = 0
            for i in range(num_cands):
                if blended[i]:
                    duty = duties[i]
                    next_temps[i] = (
                        duty * preds[row] + (1.0 - duty) * preds[row + 1]
                    )
                    row += 2
                else:
                    next_temps[i] = preds[row]
                    row += 1

            means = next_temps.mean(axis=1)
            hum_models = hum_first if first else hum_steady
            out_w = state.outside_mixing_ratio
            hum_feats = hum_buf
            hum_feats[1] = out_w
            dot = np.dot
            row = 0
            for i, cmd in enumerate(commands):
                cmd_fan = cmd.fc_fan_speed
                w = w_in[i]
                hum_feats[0] = w
                hum_feats[2] = cmd_fan
                hum_feats[3] = cmd_fan * w
                hum_feats[4] = cmd_fan * out_w
                # Inlined LinearRegression.predict_one, clamped like
                # CoolingModel.predict_humidity.
                b0, coef = hum_models[row]
                if blended[i]:
                    duty = duties[i]
                    on = max(1e-6, b0 + float(dot(coef, hum_feats)))
                    b1, coef1 = hum_models[row + 1]
                    off = max(1e-6, b1 + float(dot(coef1, hum_feats)))
                    w_in[i] = duty * on + (1.0 - duty) * off
                    row += 2
                else:
                    w_in[i] = max(1e-6, b0 + float(dot(coef, hum_feats)))
                    row += 1
            rh_mat[step] = absolute_to_relative_humidity_array(
                np.array(w_in, dtype=float), means
            )
            prev_temps = temps
            temps = next_temps
            traj[step] = next_temps

        horizon_s = steps * self.model_step_s
        predictions: List[RegimePrediction] = []
        for i, cmd in enumerate(commands):
            duty = duties[i]
            power_w = self._predict_power(state.mode, cmd, duty)
            ac_full = (
                cmd.mode is CoolingMode.AC_ON and duty >= 1.0 - 1e-9
            ) or (
                cmd.mode in (CoolingMode.AC_ON, CoolingMode.AC_FAN)
                and cmd.ac_fan_speed >= 1.0 - 1e-9
            )
            predictions.append(
                RegimePrediction(
                    sensor_temps_c=traj[:, i, :].copy(),
                    rh_pct=rh_mat[:, i].copy(),
                    cooling_energy_kwh=power_w * horizon_s / 3.6e6,
                    ac_at_full_speed=ac_full,
                )
            )
        return predictions

    def _get_plan(self, mode: CoolingMode, commands: Tuple[CoolingCommand, ...]):
        """Row layout / regime keys / humidity params for one candidate set.

        The expansion depends only on (current mode, candidate set) — both
        recur every control period, so the plan is built once and cached.
        """
        plan_key = (mode, commands)
        plan = self._batch_plans.get(plan_key)
        if plan is not None:
            return plan
        duties = [c.ac_compressor_duty for c in commands]
        fans = np.array([c.fc_fan_speed for c in commands])

        # Variable-duty AC candidates evaluate both the compressor-on
        # and compressor-off models each step; every other candidate is
        # one row.
        blended = [
            c.mode is CoolingMode.AC_ON and 0.0 < duties[i] < 1.0
            for i, c in enumerate(commands)
        ]
        row_cand: List[int] = []
        row_target: List[CoolingMode] = []
        for i, cmd in enumerate(commands):
            if blended[i]:
                row_cand.extend((i, i))
                row_target.extend((CoolingMode.AC_ON, CoolingMode.AC_FAN))
            else:
                row_cand.append(i)
                row_target.append(cmd.mode)
        row_index = np.asarray(row_cand)
        # Regime keys differ only between the first (transition) step
        # and the steady remainder, so two stacked-coefficient lookups.
        keys_first = tuple(regime_key(mode, t) for t in row_target)
        keys_steady = tuple(
            regime_key(commands[c].mode, t)
            for c, t in zip(row_cand, row_target)
        )
        hum_first = [
            (m.intercept, m.coefficients)
            for m in (
                self.model.resolved_humidity_model(k) for k in keys_first
            )
        ]
        hum_steady = [
            (m.intercept, m.coefficients)
            for m in (
                self.model.resolved_humidity_model(k) for k in keys_steady
            )
        ]
        # Stacked forms of the humidity models and the duty-blend weights
        # for the lane path: weights are duty / (1 - duty) on a blended
        # pair's rows and 1.0 elsewhere (1.0 * x passes through exactly),
        # and `starts` marks each candidate's first row for reduceat.
        hum_b0_first = np.array([b0 for b0, _ in hum_first])
        hum_coef_first = np.stack([c for _, c in hum_first])
        hum_b0_steady = np.array([b0 for b0, _ in hum_steady])
        hum_coef_steady = np.stack([c for _, c in hum_steady])
        weights = np.ones(len(row_cand))
        starts = np.empty(len(commands), dtype=np.intp)
        row = 0
        for i in range(len(commands)):
            starts[i] = row
            if blended[i]:
                weights[row] = duties[i]
                weights[row + 1] = 1.0 - duties[i]
                row += 2
            else:
                row += 1
        plan = (
            duties,
            fans,
            blended,
            row_index,
            fans[row_index],
            keys_first,
            keys_steady,
            hum_first,
            hum_steady,
            hum_b0_first,
            hum_coef_first,
            hum_b0_steady,
            hum_coef_steady,
            weights,
            starts,
        )
        self._batch_plans[plan_key] = plan
        return plan

    def predict_lanes(
        self,
        states: Sequence[PredictorState],
        commands_per_lane: Sequence[Sequence[CoolingCommand]],
        steps: int,
    ) -> List[List[RegimePrediction]]:
        """Candidate rollouts for many lanes as RegimePrediction objects.

        Returns exactly ``[self.predict_batch(s, c, steps) for s, c in
        zip(states, commands_per_lane)]`` — bit-identical per lane.  Thin
        assembly over :meth:`predict_lanes_stacked`; the lane engine calls
        the stacked form directly and skips the per-candidate objects.
        """
        stacked = self.predict_lanes_stacked(states, commands_per_lane, steps)
        results: List[List[RegimePrediction]] = []
        for (temps, rh, energies, ac_full), commands in zip(
            stacked, commands_per_lane
        ):
            results.append(
                [
                    RegimePrediction(
                        sensor_temps_c=temps[i].copy(),
                        rh_pct=rh[i].copy(),
                        cooling_energy_kwh=energies[i],
                        ac_at_full_speed=ac_full[i],
                    )
                    for i in range(len(commands))
                ]
            )
        return results

    def predict_lanes_stacked(
        self,
        states: Sequence[PredictorState],
        commands_per_lane: Sequence[Sequence[CoolingCommand]],
        steps: int,
    ):
        """Candidate rollouts for many independent lanes in one pass.

        Per lane, returns ``(temps, rh, energies, ac_full)`` with ``temps``
        shaped (candidates, steps, sensors) and ``rh`` (candidates, steps)
        — exactly the arrays ``score_batch`` would stack from that lane's
        :meth:`predict_batch` output, bit-identical element for element.
        Every lane's candidate rows are concatenated into one feature
        tensor so each rollout step costs a single einsum for the whole
        batch; the ``'rsf,rsf->rs'`` contraction is row-independent, so
        concatenating rows across lanes cannot perturb any lane's values.
        Duty blending and the humidity rollout are cross-lane vectorized
        with verified bit-stable kernels (weighted ``reduceat`` segments,
        batched matmul row-dots).
        """
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        num_lanes = len(states)
        if num_lanes != len(commands_per_lane):
            raise ConfigError("one candidate list per lane required")
        num_sensors = self.model.num_sensors
        for state in states:
            if len(state.sensor_temps_c) != num_sensors:
                raise ConfigError(
                    f"state has {len(state.sensor_temps_c)} sensors, model "
                    f"expects {num_sensors}"
                )

        plans = [
            self._get_plan(state.mode, tuple(commands))
            for state, commands in zip(states, commands_per_lane)
        ]

        # Global (cross-lane) candidate and row bookkeeping.  Everything
        # below is either a gather of exact values or an elementwise /
        # row-wise operation, so stacking lanes never mixes their numerics.
        # It all derives from the per-lane plans alone (plan objects are
        # cached for the predictor's lifetime, so their ids are stable
        # keys), and lane batches revisit the same handful of plan combos
        # every control period — cache the assembled bookkeeping per combo.
        cache = getattr(self, "_lane_combo_cache", None)
        if cache is None:
            cache = {}
            self._lane_combo_cache = cache
        combo_key = (steps, *map(id, plans))
        entry = cache.get(combo_key)
        if entry is None:
            cand_counts = np.array([len(c) for c in commands_per_lane])
            cand_offsets = np.concatenate(([0], np.cumsum(cand_counts)))
            total_cands = int(cand_offsets[-1])
            row_counts = np.array([plan[4].shape[0] for plan in plans])
            row_offsets = np.concatenate(([0], np.cumsum(row_counts)))
            total_rows = int(row_offsets[-1])
            cand_slices = [
                slice(int(cand_offsets[i]), int(cand_offsets[i + 1]))
                for i in range(num_lanes)
            ]

            # Row -> global candidate index, per-row fan speeds, and the
            # duty blend weights (duty / 1-duty on a blended pair, 1.0
            # elsewhere; 1.0 * x is exact, so unblended rows pass through
            # untouched).
            global_row_index = np.concatenate(
                [
                    plans[lane][3] + int(cand_offsets[lane])
                    for lane in range(num_lanes)
                ]
            )
            fans_rows_all = np.concatenate([plan[4] for plan in plans])
            weights = np.concatenate([plan[13] for plan in plans])
            starts = np.concatenate(
                [
                    plans[lane][14] + int(row_offsets[lane])
                    for lane in range(num_lanes)
                ]
            )

            # Stacked humidity models (per row), per-candidate fan speeds,
            # and the transition/steady temperature model tensors for the
            # whole batch (each lane's stack is itself cached by key tuple).
            hum_b0_first = np.concatenate([plan[9] for plan in plans])
            hum_coef_first = np.concatenate([plan[10] for plan in plans])
            hum_b0_steady = np.concatenate([plan[11] for plan in plans])
            hum_coef_steady = np.concatenate([plan[12] for plan in plans])
            fan_cands = np.concatenate([plan[1] for plan in plans])
            model_first = [
                self.model.batched_vectorized(plan[5]) for plan in plans
            ]
            model_steady = [
                self.model.batched_vectorized(plan[6]) for plan in plans
            ]
            intercepts_first = np.concatenate([m[0] for m in model_first])
            coefs_first = np.concatenate([m[1] for m in model_first])
            intercepts_steady = np.concatenate([m[0] for m in model_steady])
            coefs_steady = np.concatenate([m[1] for m in model_steady])

            # Candidate energies and AC-at-full-speed flags depend only on
            # (mode, command, duty, horizon) — all pinned by the combo key.
            horizon_s = steps * self.model_step_s
            energies_per_lane: List[List[float]] = []
            ac_full_per_lane: List[List[bool]] = []
            for lane, state in enumerate(states):
                duties = plans[lane][0]
                energies: List[float] = []
                ac_full_flags: List[bool] = []
                for i, cmd in enumerate(commands_per_lane[lane]):
                    duty = duties[i]
                    power_w = self._predict_power(state.mode, cmd, duty)
                    ac_full = (
                        cmd.mode is CoolingMode.AC_ON and duty >= 1.0 - 1e-9
                    ) or (
                        cmd.mode in (CoolingMode.AC_ON, CoolingMode.AC_FAN)
                        and cmd.ac_fan_speed >= 1.0 - 1e-9
                    )
                    energies.append(power_w * horizon_s / 3.6e6)
                    ac_full_flags.append(ac_full)
                energies_per_lane.append(energies)
                ac_full_per_lane.append(ac_full_flags)

            entry = (
                plans,  # pins the plan objects so their ids stay valid
                cand_counts,
                total_cands,
                row_counts,
                total_rows,
                cand_slices,
                global_row_index,
                fans_rows_all,
                weights,
                weights[:, None],
                starts,
                hum_b0_first,
                hum_coef_first,
                hum_b0_steady,
                hum_coef_steady,
                fan_cands,
                intercepts_first,
                coefs_first,
                intercepts_steady,
                coefs_steady,
                energies_per_lane,
                ac_full_per_lane,
            )
            cache[combo_key] = entry
        (
            _,
            cand_counts,
            total_cands,
            row_counts,
            total_rows,
            cand_slices,
            global_row_index,
            fans_rows_all,
            weights,
            weights_col,
            starts,
            hum_b0_first,
            hum_coef_first,
            hum_b0_steady,
            hum_coef_steady,
            fan_cands,
            intercepts_first,
            coefs_first,
            intercepts_steady,
            coefs_steady,
            energies_per_lane,
            ac_full_per_lane,
        ) = entry
        out_w_cands = np.repeat(
            np.array([s.outside_mixing_ratio for s in states]), cand_counts
        )

        # Per-row broadcasts of per-lane scalars.
        def _per_row(values: List[float]) -> np.ndarray:
            return np.repeat(np.asarray(values, dtype=float), row_counts)

        outside_rows = _per_row([s.outside_temp_c for s in states])
        prev_outside_rows = _per_row([s.prev_outside_temp_c for s in states])
        fan_speed_rows = _per_row([s.fan_speed for s in states])
        util_rows = _per_row([s.utilization for s in states])

        # Lane-stacked evolving state: (total candidates, sensors).
        temps = np.concatenate(
            [
                np.tile(
                    np.array(state.sensor_temps_c, dtype=float),
                    (cand_counts[lane], 1),
                )
                for lane, state in enumerate(states)
            ]
        )
        prev_temps = np.concatenate(
            [
                np.tile(
                    np.array(state.prev_sensor_temps_c, dtype=float),
                    (cand_counts[lane], 1),
                )
                for lane, state in enumerate(states)
            ]
        )
        w_arr = np.repeat(
            np.array([s.inside_mixing_ratio for s in states]), cand_counts
        )

        traj = np.empty((steps, total_cands, num_sensors))
        rh_mat = np.empty((steps, total_cands))
        hum_f = np.empty((total_cands, 5))
        hum_f[:, 1] = out_w_cands
        hum_f[:, 2] = fan_cands
        hum_f[:, 4] = fan_cands * out_w_cands

        feats = np.empty((total_rows, num_sensors, 9))
        feats[:, :, 2] = outside_rows[:, None]
        feats[:, :, 4] = fans_rows_all[:, None]
        feats[:, :, 6] = util_rows[:, None]
        feats[:, :, 8] = (fans_rows_all * outside_rows)[:, None]

        for step in range(steps):
            first = step == 0
            temps_rows = temps[global_row_index]
            feats[:, :, 0] = temps_rows
            feats[:, :, 1] = prev_temps[global_row_index]
            feats[:, :, 3] = (
                prev_outside_rows if first else outside_rows
            )[:, None]
            feats[:, :, 5] = (
                fan_speed_rows[:, None] if first else fans_rows_all[:, None]
            )
            feats[:, :, 7] = fans_rows_all[:, None] * temps_rows

            intercepts = intercepts_first if first else intercepts_steady
            coefs = coefs_first if first else coefs_steady
            preds_all = intercepts + np.einsum("rsf,rsf->rs", coefs, feats)

            # Duty blending for every lane at once: a weighted segment sum
            # over each candidate's rows reproduces duty*on + (1-duty)*off
            # in the scalar evaluation order (on-row first).
            next_temps = np.add.reduceat(
                preds_all * weights_col, starts, axis=0
            )
            means = next_temps.mean(axis=1)

            # Humidity rollout, vectorized across all candidates: a batched
            # matmul of (rows, 1, 5) @ (rows, 5, 1) is bit-identical to the
            # scalar per-row np.dot, np.maximum mirrors the scalar max, and
            # the same weighted reduceat reproduces duty blending.
            hum_f[:, 0] = w_arr
            hum_f[:, 3] = fan_cands * w_arr
            hum_b0 = hum_b0_first if first else hum_b0_steady
            hum_coef = hum_coef_first if first else hum_coef_steady
            hum_rows = hum_f[global_row_index]
            dots = np.matmul(
                hum_coef[:, None, :], hum_rows[:, :, None]
            )[:, 0, 0]
            maxed = np.maximum(1e-6, hum_b0 + dots)
            w_arr = np.add.reduceat(maxed * weights, starts)
            rh_mat[step] = absolute_to_relative_humidity_array(w_arr, means)
            prev_temps = temps
            temps = next_temps
            traj[step] = next_temps

        results = []
        for lane in range(num_lanes):
            sl = cand_slices[lane]
            # Candidate-major contiguous copies: identical values (and the
            # same buffer layout) as np.stack over per-candidate arrays.
            temps_stack = np.ascontiguousarray(traj[:, sl, :].transpose(1, 0, 2))
            rh_stack = np.ascontiguousarray(rh_mat[:, sl].T)
            results.append(
                (
                    temps_stack,
                    rh_stack,
                    energies_per_lane[lane],
                    ac_full_per_lane[lane],
                )
            )
        return results

    # -- per-quantity dispatch ------------------------------------------------

    def _predict_temps_vec(
        self,
        prev_mode: CoolingMode,
        command: CoolingCommand,
        duty: float,
        features_matrix: np.ndarray,
    ) -> np.ndarray:
        """All-sensor temperature prediction (the optimizer's hot path)."""
        mode = command.mode
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            on = self.model.predict_temps_vector(
                regime_key(prev_mode, CoolingMode.AC_ON), features_matrix
            )
            off = self.model.predict_temps_vector(
                regime_key(prev_mode, CoolingMode.AC_FAN), features_matrix
            )
            return duty * on + (1.0 - duty) * off
        return self.model.predict_temps_vector(
            regime_key(prev_mode, mode), features_matrix
        )

    def _predict_temp(
        self,
        prev_mode: CoolingMode,
        command: CoolingCommand,
        duty: float,
        sensor: int,
        features: Sequence[float],
    ) -> float:
        mode = command.mode
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            # Variable-speed compressor: interpolate on/off models.
            on = self.model.predict_temp(
                regime_key(prev_mode, CoolingMode.AC_ON), sensor, features
            )
            off = self.model.predict_temp(
                regime_key(prev_mode, CoolingMode.AC_FAN), sensor, features
            )
            return duty * on + (1.0 - duty) * off
        return self.model.predict_temp(regime_key(prev_mode, mode), sensor, features)

    def _predict_humidity(
        self,
        prev_mode: CoolingMode,
        command: CoolingCommand,
        duty: float,
        features: Sequence[float],
    ) -> float:
        mode = command.mode
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            on = self.model.predict_humidity(
                regime_key(prev_mode, CoolingMode.AC_ON), features
            )
            off = self.model.predict_humidity(
                regime_key(prev_mode, CoolingMode.AC_FAN), features
            )
            return duty * on + (1.0 - duty) * off
        return self.model.predict_humidity(regime_key(prev_mode, mode), features)

    def _predict_power(
        self, prev_mode: CoolingMode, command: CoolingCommand, duty: float
    ) -> float:
        cached = self._power_cache.get(command)
        if cached is not None:
            return cached
        power = self._predict_power_uncached(command, duty)
        self._power_cache[command] = power
        return power

    def _predict_power_uncached(
        self, command: CoolingCommand, duty: float
    ) -> float:
        mode = command.mode
        steady = f"steady:{mode.value}"
        if mode is CoolingMode.AC_ON and 0.0 < duty < 1.0:
            # Smooth AC: fan is 1/4 of unit power, compressor linear in duty.
            on = self.model.predict_power_w(
                f"steady:{CoolingMode.AC_ON.value}", 0.0
            )
            off = self.model.predict_power_w(
                f"steady:{CoolingMode.AC_FAN.value}", 0.0
            )
            return off + duty * (on - off)
        if mode is CoolingMode.CLOSED:
            return 0.0
        return self.model.predict_power_w(steady, command.fc_fan_speed)
