"""CoolAir configuration.

The defaults are the paper's evaluation settings (Section 5.1): Offset=8C,
Width=5C, Min=10C, Max=30C, relative humidity below 80%, temperature change
rate below 20C/hour, 10-minute control periods over a 2-minute model step.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro import constants
from repro.errors import ConfigError
from repro.faults import FaultSchedule


class PlacementStrategy(enum.Enum):
    """Spatial placement order across pods (Section 3.3, Figure 11)."""

    # CoolAir's choice: fill high-recirculation pods first.  They stay
    # consistently warm, so they vary less.
    HIGH_RECIRCULATION_FIRST = "high_recirculation_first"
    # Prior work's energy-aware choice: fill low-recirculation pods first.
    LOW_RECIRCULATION_FIRST = "low_recirculation_first"


class BandMode(enum.Enum):
    """How the utility function constrains temperatures."""

    # Adaptive daily band from the weather forecast (full CoolAir).
    ADAPTIVE = "adaptive"
    # A fixed band (used by Var-Low-Recirc / Var-High-Recirc: 25..30C).
    FIXED = "fixed"
    # No band: only the maximum-temperature cap (Temperature / Energy).
    MAX_ONLY = "max_only"


class TemporalPolicy(enum.Enum):
    """Temporal scheduling policy for deferrable jobs."""

    NONE = "none"
    # All-DEF: pack load into hours whose forecast falls inside the band.
    BAND_AWARE = "band_aware"
    # Energy-DEF: pack load into the coldest hours (prior art; widens
    # variation — Section 5.2, "Temporal scheduling").
    COLDEST_HOURS = "coldest_hours"


@dataclasses.dataclass
class CoolAirConfig:
    """Everything that distinguishes one CoolAir version from another."""

    name: str = "All-ND"
    # Band geometry.
    offset_c: float = constants.DEFAULT_OFFSET_C
    width_c: float = constants.DEFAULT_WIDTH_C
    min_c: float = constants.DEFAULT_MIN_C
    max_c: float = constants.DEFAULT_MAX_C
    band_mode: BandMode = BandMode.ADAPTIVE
    # Fixed-band bounds (only used with BandMode.FIXED).
    fixed_band_low_c: float = 25.0
    fixed_band_high_c: float = 30.0
    # Hard ceiling for the Temperature/Energy versions (BandMode.MAX_ONLY).
    max_temp_setpoint_c: float = constants.DEFAULT_MAX_C
    # Environmental limits.
    max_rh_pct: float = constants.DEFAULT_MAX_RH_PCT
    max_rate_c_per_hour: float = constants.DEFAULT_MAX_RATE_C_PER_HOUR
    # Utility components.
    use_energy_term: bool = True
    use_band_term: bool = True
    use_rate_term: bool = True
    # Workload management.
    placement: PlacementStrategy = PlacementStrategy.HIGH_RECIRCULATION_FIRST
    temporal: TemporalPolicy = TemporalPolicy.NONE
    use_weather_forecast: bool = True
    # Control cadence.
    control_period_s: int = constants.CONTROL_PERIOD_S
    model_step_s: int = constants.MODEL_STEP_S
    # Fault injection (docs/ROBUSTNESS.md).  None or an empty schedule
    # leaves every simulation path bit-identical to the fault-free build;
    # a non-empty schedule forces the scalar engine (effective_engine).
    faults: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if self.width_c <= 0:
            raise ConfigError("width_c must be positive")
        if self.min_c >= self.max_c:
            raise ConfigError(f"min_c {self.min_c} must be below max_c {self.max_c}")
        if self.offset_c < 0:
            raise ConfigError("offset_c must be non-negative")
        if not 0.0 < self.max_rh_pct <= 100.0:
            raise ConfigError(f"max_rh_pct {self.max_rh_pct} out of (0, 100]")
        if self.max_rate_c_per_hour <= 0:
            raise ConfigError("max_rate_c_per_hour must be positive")
        if self.control_period_s % self.model_step_s != 0:
            raise ConfigError(
                "control_period_s must be a multiple of model_step_s "
                f"({self.control_period_s} % {self.model_step_s} != 0)"
            )
        if self.band_mode is BandMode.FIXED:
            if self.fixed_band_low_c >= self.fixed_band_high_c:
                raise ConfigError("fixed band low must be below high")

    @property
    def steps_per_control_period(self) -> int:
        return self.control_period_s // self.model_step_s
