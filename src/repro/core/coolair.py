"""The CoolAir manager: daily band selection plus the 10-minute loop.

This class wires the Figure 2 architecture together:

* at the start of each day it queries the forecast service, selects the
  temperature band, and (for deferrable workloads) runs the temporal
  scheduler;
* every control period it plans the active server set and placement order
  (Compute Manager) and selects the best cooling regime (Cooling Manager).

The simulation engines own the plant and the clock; they call into this
class, which is also how a real deployment would drive it (Section 6,
"Practical considerations").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.cooling.regimes import CoolingCommand
from repro.core.band import TemperatureBand, select_band
from repro.core.compute import ComputeConfigurer, ComputeOptimizer, TemporalScheduler
from repro.core.config import BandMode, CoolAirConfig
from repro.core.modeler import CoolingModel
from repro.core.optimizer import CoolingOptimizer
from repro.core.predictor import CoolingPredictor, PredictorState
from repro.core.utility import UtilityFunction, UtilityWeights
from repro.datacenter.layout import DatacenterLayout
from repro.errors import ConfigError, WeatherError
from repro.weather.forecast import DailyForecast, ForecastService
from repro.workload.job import Job


class CoolAir:
    """Workload and cooling manager for a free-cooled datacenter."""

    def __init__(
        self,
        config: CoolAirConfig,
        model: CoolingModel,
        layout: DatacenterLayout,
        forecast_service: ForecastService,
        smooth_hardware: bool = False,
        utility_weights: Optional[UtilityWeights] = None,
    ) -> None:
        if model.num_sensors != layout.num_pods:
            raise ConfigError(
                f"model has {model.num_sensors} sensors, layout has "
                f"{layout.num_pods} pods"
            )
        self.config = config
        self.model = model
        self.layout = layout
        self.forecast_service = forecast_service
        self.predictor = CoolingPredictor(model, config.model_step_s)
        self.utility = UtilityFunction(config, utility_weights)
        self.optimizer = CoolingOptimizer(
            config, self.predictor, self.utility, smooth_hardware=smooth_hardware
        )
        self.compute_optimizer = ComputeOptimizer(config, layout)
        self.compute_configurer = ComputeConfigurer(layout)
        self.temporal_scheduler = TemporalScheduler(config)
        self.band: Optional[TemperatureBand] = None
        self.forecast: Optional[DailyForecast] = None

    # -- daily --------------------------------------------------------------

    def start_day(
        self, day_of_year: int, jobs: Sequence[Job] = ()
    ) -> TemperatureBand:
        """Select the day's band and temporally schedule deferrable jobs.

        If the Web forecast service is unreachable, CoolAir degrades
        gracefully: it keeps yesterday's band (bands for consecutive days
        almost always overlap — Section 3.2), or centers a first-day band
        inside [Min, Max].  Temporal scheduling is skipped without a
        forecast.
        """
        try:
            self.forecast = self.forecast_service.forecast_for_day(day_of_year)
        except WeatherError:
            self.forecast = None
            if self.band is None:
                center = (self.config.min_c + self.config.max_c) / 2.0
                self.band = TemperatureBand(
                    center - self.config.width_c / 2.0,
                    center + self.config.width_c / 2.0,
                )
            return self.band
        if self.config.use_weather_forecast or self.config.band_mode is not BandMode.ADAPTIVE:
            self.band = select_band(self.forecast, self.config)
        else:
            # No-forecast variants (Var-High/Low-Recirc) fall back to a
            # fixed band; reaching here with ADAPTIVE is a config error.
            raise ConfigError(
                "adaptive band selection requires use_weather_forecast=True"
            )
        if jobs:
            self.temporal_scheduler.schedule_day(jobs, self.forecast, self.band)
        return self.band

    # -- per control period ---------------------------------------------------

    def plan_compute(self, demanded_servers: int) -> Tuple[Set[int], List[int]]:
        """Activate servers for the demand; returns (active ids, active pods)."""
        active = self.compute_optimizer.plan_active_set(demanded_servers)
        self.compute_configurer.apply(active)
        return active, self.compute_optimizer.active_pod_indices(active)

    def decide_cooling(
        self, state: PredictorState, active_pods: Optional[Sequence[int]] = None
    ) -> CoolingCommand:
        """Select the best cooling regime for the next period."""
        if self.band is None:
            raise ConfigError("call start_day before decide_cooling")
        return self.optimizer.decide(state, self.band, active_pods)

    def placement_order(self):
        """Spatial placement order for the workload scheduler."""
        return self.compute_optimizer.placement_order()
