"""The CoolAir manager: daily band selection plus the 10-minute loop.

This class wires the Figure 2 architecture together:

* at the start of each day it queries the forecast service, selects the
  temperature band, and (for deferrable workloads) runs the temporal
  scheduler;
* every control period it plans the active server set and placement order
  (Compute Manager) and selects the best cooling regime (Cooling Manager).

The simulation engines own the plant and the clock; they call into this
class, which is also how a real deployment would drive it (Section 6,
"Practical considerations").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.cooling.baseline import BaselineController
from repro.cooling.regimes import CoolingCommand
from repro.core.band import TemperatureBand, select_band
from repro.core.compute import ComputeConfigurer, ComputeOptimizer, TemporalScheduler
from repro.core.config import BandMode, CoolAirConfig
from repro.core.modeler import CoolingModel
from repro.core.optimizer import CoolingOptimizer
from repro.core.predictor import CoolingPredictor, PredictorState
from repro.core.utility import UtilityFunction, UtilityWeights
from repro.datacenter.layout import DatacenterLayout
from repro.errors import ConfigError, ModelNotTrainedError, WeatherError
from repro.weather.forecast import DailyForecast, ForecastService
from repro.workload.job import Job


class CoolAir:
    """Workload and cooling manager for a free-cooled datacenter."""

    def __init__(
        self,
        config: CoolAirConfig,
        model: CoolingModel,
        layout: DatacenterLayout,
        forecast_service: ForecastService,
        smooth_hardware: bool = False,
        utility_weights: Optional[UtilityWeights] = None,
    ) -> None:
        if model.num_sensors != layout.num_pods:
            raise ConfigError(
                f"model has {model.num_sensors} sensors, layout has "
                f"{layout.num_pods} pods"
            )
        self.config = config
        self.model = model
        self.layout = layout
        self.forecast_service = forecast_service
        self.predictor = CoolingPredictor(model, config.model_step_s)
        self.utility = UtilityFunction(config, utility_weights)
        self.optimizer = CoolingOptimizer(
            config, self.predictor, self.utility, smooth_hardware=smooth_hardware
        )
        self.compute_optimizer = ComputeOptimizer(config, layout)
        self.compute_configurer = ComputeConfigurer(layout)
        self.temporal_scheduler = TemporalScheduler(config)
        self.band: Optional[TemperatureBand] = None
        self.forecast: Optional[DailyForecast] = None
        # Safe mode (docs/ROBUSTNESS.md): when required sensors are dead
        # or the learned model has lost a regime, fall back to the same
        # TKS-style feedback law the baseline runs, with the setpoint at
        # the config's Max (plus its humidity override) — conservative
        # and model-free, so it works with no learned state at all.
        self._safe_controller = BaselineController(
            setpoint_c=config.max_c, max_rh_pct=config.max_rh_pct
        )
        self.last_decision_degraded = False
        self.last_degradation_reason: Optional[str] = None

    # -- daily --------------------------------------------------------------

    def reset_day_state(self) -> None:
        """Clear carry-over control state at a day boundary.

        The safe controller's TKS latches are the only CoolAir-side state
        that would otherwise leak between days; clearing them (together
        with the actuator/disk resets the day runners perform) makes every
        simulated day independent of which day ran before it — the
        invariant the day-unfolded lane scheduler relies on.
        """
        self._safe_controller.reset()

    def start_day(
        self, day_of_year: int, jobs: Sequence[Job] = ()
    ) -> TemperatureBand:
        """Select the day's band and temporally schedule deferrable jobs.

        If the Web forecast service is unreachable, CoolAir degrades
        gracefully: it keeps yesterday's band (bands for consecutive days
        almost always overlap — Section 3.2), or centers a first-day band
        inside [Min, Max].  Temporal scheduling is skipped without a
        forecast.
        """
        try:
            self.forecast = self.forecast_service.forecast_for_day(day_of_year)
        except WeatherError:
            self.forecast = None
            if self.band is None:
                center = (self.config.min_c + self.config.max_c) / 2.0
                self.band = TemperatureBand(
                    center - self.config.width_c / 2.0,
                    center + self.config.width_c / 2.0,
                )
            return self.band
        if self.config.use_weather_forecast or self.config.band_mode is not BandMode.ADAPTIVE:
            self.band = select_band(self.forecast, self.config)
        else:
            # No-forecast variants (Var-High/Low-Recirc) fall back to a
            # fixed band; reaching here with ADAPTIVE is a config error.
            raise ConfigError(
                "adaptive band selection requires use_weather_forecast=True"
            )
        if jobs:
            self.temporal_scheduler.schedule_day(jobs, self.forecast, self.band)
        return self.band

    # -- per control period ---------------------------------------------------

    def plan_compute(self, demanded_servers: int) -> Tuple[Set[int], List[int]]:
        """Activate servers for the demand; returns (active ids, active pods)."""
        active = self.compute_optimizer.plan_active_set(demanded_servers)
        self.compute_configurer.apply(active)
        return active, self.compute_optimizer.active_pod_indices(active)

    def decide_cooling(
        self, state: PredictorState, active_pods: Optional[Sequence[int]] = None
    ) -> CoolingCommand:
        """Select the best cooling regime for the next period.

        Degrades gracefully instead of raising: if a required sensor is
        dead (an inlet or the outside temperature) or the learned model
        cannot predict a candidate regime, the decision drops to the
        documented TKS-like safe mode and ``last_decision_degraded`` /
        ``last_degradation_reason`` record it for the trace.
        """
        if self.band is None:
            raise ConfigError("call start_day before decide_cooling")
        reason = self._dead_sensor_reason()
        if reason is None:
            try:
                command = self.optimizer.decide(state, self.band, active_pods)
                self.last_decision_degraded = False
                self.last_degradation_reason = None
                return command
            except ModelNotTrainedError as err:
                reason = f"model lost a regime: {err}"
        self.last_decision_degraded = True
        self.last_degradation_reason = reason
        return self._safe_mode_command()

    # -- graceful degradation -------------------------------------------------

    def _dead_sensor_reason(self) -> Optional[str]:
        """Why the optimizer cannot be trusted, or None if sensors are fine.

        The optimizer needs every pod inlet sensor (its state vector) and
        the outside temperature (every rollout's boundary condition); the
        humidity inputs come from the plant model, not sensors, so dead
        humidity sensors do not force a fallback.
        """
        dead = [
            sensor.name
            for sensor in self.layout.inlet_sensors
            if not sensor.healthy
        ]
        if not self.layout.outside_temp.healthy:
            dead.append(self.layout.outside_temp.name)
        if dead:
            return "dead sensors: " + ", ".join(dead)
        return None

    # Nominal inlet rise over outside air, used only when every inlet
    # sensor is dead and safe mode must estimate a control temperature.
    SAFE_MODE_INLET_RISE_C = 6.0

    def _safe_mode_command(self) -> CoolingCommand:
        """The TKS-like fallback decision (docs/ROBUSTNESS.md).

        Controls on the warmest *healthy* inlet reading; with every inlet
        dead it assumes a nominal rise over the outside reading.  Dead
        sensors hold their last value, so ``read()`` stays available.
        """
        layout = self.layout
        healthy = [
            sensor.read()
            for sensor in layout.inlet_sensors
            if sensor.healthy and sensor.has_reading
        ]
        if healthy:
            control_temp = max(healthy)
        else:
            control_temp = (
                layout.outside_temp.read() + self.SAFE_MODE_INLET_RISE_C
            )
        return self._safe_controller.decide(
            control_temp_c=control_temp,
            outside_temp_c=layout.outside_temp.read(),
            cold_aisle_rh_pct=layout.cold_aisle_humidity.read(),
            outside_rh_pct=layout.outside_humidity.read(),
        )

    def placement_order(self):
        """Spatial placement order for the workload scheduler."""
        return self.compute_optimizer.placement_order()
