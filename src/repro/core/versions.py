"""The CoolAir versions of Table 1, plus the Figure 11 / Section 5.2
ablation systems.

==========  ==============  ===================================  =================  =========
Version     Workload        Utility function                     Spatial placement  Temporal
==========  ==============  ===================================  =================  =========
Temperature non-deferrable  lower max temp + energy + humidity   low recirculation  no
Variation   non-deferrable  adaptive band (max 30C) + humidity   high recirculation no
Energy      non-deferrable  max temp (30C) + energy + humidity   low recirculation  no
All-ND      non-deferrable  adaptive band + energy + humidity    high recirculation no
All-DEF     deferrable      adaptive band + energy + humidity    low recirculation  yes
==========  ==============  ===================================  =================  =========

Ablations: Var-Low-Recirc and Var-High-Recirc hold a fixed 25-30C band (no
weather prediction) and differ only in placement; Energy-DEF adds
coldest-hours temporal scheduling to the Energy version.
"""

from __future__ import annotations

from repro.core.config import (
    BandMode,
    CoolAirConfig,
    PlacementStrategy,
    TemporalPolicy,
)


def temperature_version(max_temp_setpoint_c: float = 29.0) -> CoolAirConfig:
    """Absolute temperatures below a low setpoint only.

    Represents today's energy-aware thermal management in non-free-cooled
    datacenters.  The setpoint is the lowest value that achieves the same
    PUE as the baseline system (29C at the paper's five locations).
    """
    return CoolAirConfig(
        name="Temperature",
        band_mode=BandMode.MAX_ONLY,
        max_temp_setpoint_c=max_temp_setpoint_c,
        use_energy_term=True,
        use_band_term=False,
        use_rate_term=False,
        placement=PlacementStrategy.LOW_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.NONE,
    )


def variation_version() -> CoolAirConfig:
    """Temperature variation only: adaptive band + humidity, no energy."""
    return CoolAirConfig(
        name="Variation",
        band_mode=BandMode.ADAPTIVE,
        use_energy_term=False,
        use_band_term=True,
        use_rate_term=True,
        placement=PlacementStrategy.HIGH_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.NONE,
    )


def energy_version(max_temp_setpoint_c: float = 30.0) -> CoolAirConfig:
    """Absolute temperature + cooling energy, no variation management."""
    return CoolAirConfig(
        name="Energy",
        band_mode=BandMode.MAX_ONLY,
        max_temp_setpoint_c=max_temp_setpoint_c,
        use_energy_term=True,
        use_band_term=False,
        use_rate_term=False,
        placement=PlacementStrategy.LOW_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.NONE,
    )


def all_nd() -> CoolAirConfig:
    """The complete CoolAir implementation for non-deferrable workloads."""
    return CoolAirConfig(
        name="All-ND",
        band_mode=BandMode.ADAPTIVE,
        use_energy_term=True,
        use_band_term=True,
        use_rate_term=True,
        placement=PlacementStrategy.HIGH_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.NONE,
    )


def all_def() -> CoolAirConfig:
    """CoolAir for deferrable workloads (6-hour start deadlines)."""
    return CoolAirConfig(
        name="All-DEF",
        band_mode=BandMode.ADAPTIVE,
        use_energy_term=True,
        use_band_term=True,
        use_rate_term=True,
        placement=PlacementStrategy.LOW_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.BAND_AWARE,
    )


def var_low_recirc() -> CoolAirConfig:
    """Fixed 25-30C band, low-recirculation placement, no forecast.

    The spatial placement prior work identified as ideal for energy
    savings (Figure 11's isolation of placement impact).
    """
    return CoolAirConfig(
        name="Var-Low-Recirc",
        band_mode=BandMode.FIXED,
        fixed_band_low_c=25.0,
        fixed_band_high_c=30.0,
        use_energy_term=False,
        use_band_term=True,
        use_rate_term=True,
        placement=PlacementStrategy.LOW_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.NONE,
        use_weather_forecast=False,
    )


def var_high_recirc() -> CoolAirConfig:
    """Fixed 25-30C band with CoolAir's high-recirculation placement."""
    return CoolAirConfig(
        name="Var-High-Recirc",
        band_mode=BandMode.FIXED,
        fixed_band_low_c=25.0,
        fixed_band_high_c=30.0,
        use_energy_term=False,
        use_band_term=True,
        use_rate_term=True,
        placement=PlacementStrategy.HIGH_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.NONE,
        use_weather_forecast=False,
    )


def energy_def(max_temp_setpoint_c: float = 30.0) -> CoolAirConfig:
    """Energy version + coldest-hours temporal scheduling (prior art).

    Conserves cooling energy but widens temperature variation — the
    Section 5.2 result arguing against energy-driven temporal scheduling
    in free-cooled datacenters.
    """
    return CoolAirConfig(
        name="Energy-DEF",
        band_mode=BandMode.MAX_ONLY,
        max_temp_setpoint_c=max_temp_setpoint_c,
        use_energy_term=True,
        use_band_term=False,
        use_rate_term=False,
        placement=PlacementStrategy.LOW_RECIRCULATION_FIRST,
        temporal=TemporalPolicy.COLDEST_HOURS,
    )


ALL_VERSIONS = {
    "Temperature": temperature_version,
    "Variation": variation_version,
    "Energy": energy_version,
    "All-ND": all_nd,
    "All-DEF": all_def,
    "Var-Low-Recirc": var_low_recirc,
    "Var-High-Recirc": var_high_recirc,
    "Energy-DEF": energy_def,
}
