"""Psychrometric conversions between absolute and relative humidity.

The CoolAir Cooling Modeler predicts *absolute* inside humidity and then
converts it to *relative* humidity at the predicted inside temperature
(Section 3.1).  These helpers implement that conversion using the Magnus
formula for saturation vapor pressure, which is accurate to a few hundredths
of a hPa over the -40..60C range a datacenter can see.

Absolute humidity here means the mixing ratio w, in kilograms of water vapor
per kilogram of dry air (kg/kg).

The ``*_array`` variants convert whole series at once (the TMY generator
feeds a year of hourly weather through them).  They vectorize every
arithmetic step but keep ``math.exp`` applied element by element:
``numpy.exp`` rounds differently in the last ulp on some inputs, and these
functions guarantee bit-identical results to their scalar counterparts —
the simulation-core refactors in this repo are only allowed to change
speed, never trajectories.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import ATMOSPHERIC_PRESSURE_PA
from repro.errors import ConfigError

# Magnus formula coefficients (Alduchov & Eskridge 1996, over water).
_MAGNUS_A = 610.94  # Pa
_MAGNUS_B = 17.625
_MAGNUS_C = 243.04  # degrees C

# Ratio of molecular weights of water vapor and dry air.
_EPSILON = 0.622


def saturation_pressure_pa(temperature_c: float) -> float:
    """Saturation vapor pressure over water, in Pascal.

    Uses the Magnus formula.  Valid for temperatures above -40C.
    """
    if temperature_c < -60.0:
        raise ConfigError(f"temperature {temperature_c}C below Magnus validity range")
    return _MAGNUS_A * math.exp(_MAGNUS_B * temperature_c / (_MAGNUS_C + temperature_c))


def saturation_mixing_ratio(
    temperature_c: float, pressure_pa: float = ATMOSPHERIC_PRESSURE_PA
) -> float:
    """Mixing ratio (kg/kg) of saturated air at the given temperature."""
    p_sat = saturation_pressure_pa(temperature_c)
    if p_sat >= pressure_pa:
        # Above boiling at this pressure; saturation is unbounded.  Clamp to
        # something huge so downstream relative humidities go to ~0.
        return 10.0
    return _EPSILON * p_sat / (pressure_pa - p_sat)


def relative_to_absolute_humidity(
    relative_humidity_pct: float,
    temperature_c: float,
    pressure_pa: float = ATMOSPHERIC_PRESSURE_PA,
) -> float:
    """Convert relative humidity (percent) at a temperature to a mixing ratio.

    Returns kg water vapor per kg dry air.
    """
    if not 0.0 <= relative_humidity_pct <= 100.0:
        raise ConfigError(f"relative humidity {relative_humidity_pct}% out of [0, 100]")
    p_sat = saturation_pressure_pa(temperature_c)
    p_vapor = relative_humidity_pct / 100.0 * p_sat
    if p_vapor >= pressure_pa:
        raise ConfigError("vapor pressure exceeds total pressure")
    return _EPSILON * p_vapor / (pressure_pa - p_vapor)


def absolute_to_relative_humidity(
    mixing_ratio: float,
    temperature_c: float,
    pressure_pa: float = ATMOSPHERIC_PRESSURE_PA,
) -> float:
    """Convert a mixing ratio (kg/kg) to relative humidity (percent).

    The result is clamped to [0, 100]: supersaturated air reads as 100%.
    """
    if mixing_ratio < 0.0:
        raise ConfigError(f"mixing ratio {mixing_ratio} must be non-negative")
    p_vapor = mixing_ratio * pressure_pa / (_EPSILON + mixing_ratio)
    p_sat = saturation_pressure_pa(temperature_c)
    return max(0.0, min(100.0, 100.0 * p_vapor / p_sat))


def _exp_elementwise(values: np.ndarray) -> np.ndarray:
    """``math.exp`` over an array (bit-identical to the scalar paths)."""
    flat = values.ravel()
    out = np.fromiter((math.exp(v) for v in flat), dtype=float, count=flat.size)
    return out.reshape(values.shape)


def _atan_elementwise(values: np.ndarray) -> np.ndarray:
    """``math.atan`` over an array (``numpy.arctan`` is not guaranteed
    correctly rounded, so it could diverge from the scalar path in the
    last ulp)."""
    flat = values.ravel()
    out = np.fromiter((math.atan(v) for v in flat), dtype=float, count=flat.size)
    return out.reshape(values.shape)


def _pow15_elementwise(values: np.ndarray) -> np.ndarray:
    """``v ** 1.5`` per element via the scalar ``float.__pow__`` (``numpy``
    ``power`` carries the same last-ulp caveat as its transcendentals)."""
    flat = values.ravel()
    out = np.fromiter(
        (float(v) ** 1.5 for v in flat), dtype=float, count=flat.size
    )
    return out.reshape(values.shape)


def saturation_pressure_pa_array(temperatures_c: np.ndarray) -> np.ndarray:
    """Vectorized :func:`saturation_pressure_pa`; bit-identical per element."""
    temps = np.asarray(temperatures_c, dtype=float)
    if np.any(temps < -60.0):
        worst = float(temps.min())
        raise ConfigError(f"temperature {worst}C below Magnus validity range")
    return _MAGNUS_A * _exp_elementwise(_MAGNUS_B * temps / (_MAGNUS_C + temps))


def relative_to_absolute_humidity_array(
    relative_humidity_pct: np.ndarray,
    temperatures_c: np.ndarray,
    pressure_pa: float = ATMOSPHERIC_PRESSURE_PA,
) -> np.ndarray:
    """Vectorized :func:`relative_to_absolute_humidity`; bit-identical."""
    rh = np.asarray(relative_humidity_pct, dtype=float)
    if np.any(rh < 0.0) or np.any(rh > 100.0):
        raise ConfigError("relative humidity out of [0, 100]")
    p_sat = saturation_pressure_pa_array(temperatures_c)
    p_vapor = rh / 100.0 * p_sat
    if np.any(p_vapor >= pressure_pa):
        raise ConfigError("vapor pressure exceeds total pressure")
    return _EPSILON * p_vapor / (pressure_pa - p_vapor)


def absolute_to_relative_humidity_array(
    mixing_ratios: np.ndarray,
    temperatures_c: np.ndarray,
    pressure_pa: float = ATMOSPHERIC_PRESSURE_PA,
) -> np.ndarray:
    """Vectorized :func:`absolute_to_relative_humidity`; bit-identical."""
    w = np.asarray(mixing_ratios, dtype=float)
    if np.any(w < 0.0):
        raise ConfigError("mixing ratios must be non-negative")
    p_vapor = w * pressure_pa / (_EPSILON + w)
    p_sat = saturation_pressure_pa_array(temperatures_c)
    return np.minimum(100.0, np.maximum(0.0, 100.0 * p_vapor / p_sat))


def mixing_ratio_from_relative_humidity(
    relative_humidity_pct: float, temperature_c: float
) -> float:
    """Alias of :func:`relative_to_absolute_humidity` at standard pressure."""
    return relative_to_absolute_humidity(relative_humidity_pct, temperature_c)


def wet_bulb_c(temperature_c: float, relative_humidity_pct: float) -> float:
    """Wet-bulb temperature via Stull's (2011) empirical fit.

    Valid for RH in [5, 99]% and temperatures in [-20, 50]C — the range
    adiabatic (evaporative) cooling decisions live in.  The wet bulb is
    the floor an evaporative cooler can reach.
    """
    if not 0.0 <= relative_humidity_pct <= 100.0:
        raise ConfigError(
            f"relative humidity {relative_humidity_pct}% out of [0, 100]"
        )
    rh = max(5.0, min(99.0, relative_humidity_pct))
    t = temperature_c
    tw = (
        t * math.atan(0.151977 * math.sqrt(rh + 8.313659))
        + math.atan(t + rh)
        - math.atan(rh - 1.676331)
        + 0.00391838 * rh**1.5 * math.atan(0.023101 * rh)
        - 4.686035
    )
    return min(tw, t)  # the wet bulb never exceeds the dry bulb


def wet_bulb_c_array(
    temperatures_c: np.ndarray, relative_humidity_pct: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`wet_bulb_c`; bit-identical per element.

    Mirrors the scalar Stull fit operation for operation: the ``sqrt``
    stays vectorized (IEEE 754 requires it correctly rounded, so
    ``numpy.sqrt`` equals ``math.sqrt``), while the ``atan`` calls and
    the ``rh ** 1.5`` term go through the scalar routines element by
    element — those are the operations ``numpy`` does not promise to
    round identically.  The lane-vectorized cooling backends build their
    tower-capacity grids on this guarantee.
    """
    rh_in = np.asarray(relative_humidity_pct, dtype=float)
    if np.any(rh_in < 0.0) or np.any(rh_in > 100.0):
        raise ConfigError("relative humidity out of [0, 100]")
    t = np.asarray(temperatures_c, dtype=float)
    rh = np.maximum(5.0, np.minimum(99.0, rh_in))
    tw = (
        t * _atan_elementwise(0.151977 * np.sqrt(rh + 8.313659))
        + _atan_elementwise(t + rh)
        - _atan_elementwise(rh - 1.676331)
        + 0.00391838 * _pow15_elementwise(rh) * _atan_elementwise(0.023101 * rh)
        - 4.686035
    )
    return np.minimum(tw, t)  # the wet bulb never exceeds the dry bulb


LATENT_HEAT_VAPORIZATION_J_KG = 2.45e6


def evaporation_l_per_kwh() -> float:
    """Liters of water evaporated per kWh of heat rejected evaporatively.

    1 kWh = 3.6e6 J; dividing by the latent heat of vaporization (J/kg,
    ~= L for water) gives ~1.47 L/kWh — the thermodynamic floor for a
    cooling tower, before blowdown and drift losses.
    """
    return 3.6e6 / LATENT_HEAT_VAPORIZATION_J_KG


def dew_point_c(mixing_ratio: float, pressure_pa: float = ATMOSPHERIC_PRESSURE_PA) -> float:
    """Dew point temperature (C) of air with the given mixing ratio.

    Inverts the Magnus formula.  Air cooled below its dew point condenses,
    which is how the DX AC dehumidifies.
    """
    if mixing_ratio <= 0.0:
        return -_MAGNUS_C + 1e-9  # effectively "never condenses"
    p_vapor = mixing_ratio * pressure_pa / (_EPSILON + mixing_ratio)
    ln_ratio = math.log(p_vapor / _MAGNUS_A)
    return _MAGNUS_C * ln_ratio / (_MAGNUS_B - ln_ratio)
