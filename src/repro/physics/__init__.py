"""Physical substrate: psychrometrics and the lumped thermal plant model.

This package is the "ground truth" that stands in for the real Parasol
container.  CoolAir itself never reads these equations; it learns a linear
model from sensor logs produced by simulating this plant, exactly as the
paper learns from Parasol's monitoring data.
"""

from repro.physics.psychrometrics import (
    absolute_to_relative_humidity,
    dew_point_c,
    mixing_ratio_from_relative_humidity,
    relative_to_absolute_humidity,
    saturation_pressure_pa,
    saturation_mixing_ratio,
)
from repro.physics.thermal import PlantState, ThermalPlant, ThermalPlantConfig

__all__ = [
    "absolute_to_relative_humidity",
    "dew_point_c",
    "mixing_ratio_from_relative_humidity",
    "relative_to_absolute_humidity",
    "saturation_pressure_pa",
    "saturation_mixing_ratio",
    "PlantState",
    "ThermalPlant",
    "ThermalPlantConfig",
]
