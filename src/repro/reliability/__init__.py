"""Disk-reliability impact models.

The paper's motivation is that free cooling may expose disks to high
absolute temperatures and/or wide daily temperature variations, and that
the literature disagrees about which matters (Section 1):

* Pinheiro et al. (FAST'07, Google): absolute temperature matters little
  up to ~50C;
* Sankar et al. (ToS'13, Microsoft): absolute temperature matters a lot
  (Arrhenius-like), variation does not;
* El-Sayed et al. (SIGMETRICS'12): wide *temporal variation* consistently
  increases sector errors.

CoolAir's value proposition is robust to however that dispute resolves —
it manages both.  This package implements all three failure models so the
management systems can be compared under each hypothesis, plus a simple
cost model for the cooling-energy-vs-replacement tradeoff the paper
mentions.
"""

from repro.reliability.models import (
    ArrheniusModel,
    DiskExposure,
    ThresholdModel,
    VariationModel,
    exposure_from_day_traces,
)
from repro.reliability.assessment import ReliabilityAssessment, assess
from repro.reliability.costs import TradeoffInputs, yearly_tradeoff

__all__ = [
    "ArrheniusModel",
    "ThresholdModel",
    "VariationModel",
    "DiskExposure",
    "exposure_from_day_traces",
    "ReliabilityAssessment",
    "assess",
    "TradeoffInputs",
    "yearly_tradeoff",
]
