"""Fleet-level reliability assessment across the three failure models."""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.errors import ConfigError
from repro.reliability.models import (
    ArrheniusModel,
    DiskExposure,
    ThresholdModel,
    VariationModel,
)


@dataclasses.dataclass(frozen=True)
class ReliabilityAssessment:
    """Relative AFR multipliers of one exposure under each hypothesis."""

    arrhenius: float
    threshold: float
    variation: float

    @property
    def worst_case(self) -> float:
        """The multiplier under whichever hypothesis is least favorable —
        the number a risk-averse operator plans against."""
        return max(self.arrhenius, self.threshold, self.variation)

    @property
    def by_model(self) -> Dict[str, float]:
        return {
            "arrhenius": self.arrhenius,
            "threshold": self.threshold,
            "variation": self.variation,
        }

    def expected_annual_failures(
        self, fleet_size: int, base_afr: float = 0.02
    ) -> Dict[str, float]:
        """Expected disk failures per year under each hypothesis.

        ``base_afr`` is the fleet's annualized failure rate at the
        reference exposure (2% is a typical published figure).
        """
        if fleet_size < 1:
            raise ConfigError("fleet_size must be >= 1")
        if not 0.0 < base_afr < 1.0:
            raise ConfigError("base_afr must be in (0, 1)")
        return {
            name: fleet_size * base_afr * multiplier
            for name, multiplier in self.by_model.items()
        }


def assess(
    exposure: DiskExposure,
    arrhenius: ArrheniusModel = None,
    threshold: ThresholdModel = None,
    variation: VariationModel = None,
) -> ReliabilityAssessment:
    """Score an exposure under all three published failure hypotheses."""
    arrhenius = arrhenius or ArrheniusModel()
    threshold = threshold or ThresholdModel()
    variation = variation or VariationModel()
    return ReliabilityAssessment(
        arrhenius=arrhenius.afr_multiplier(exposure),
        threshold=threshold.afr_multiplier(exposure),
        variation=variation.afr_multiplier(exposure),
    )
