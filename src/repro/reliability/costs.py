"""Cooling-energy versus disk-replacement tradeoff.

The paper observes that "many locations exhibit a tradeoff between the
cooling energy savings due to free cooling and hardware maintenance and
replacement costs" (Section 1).  This module quantifies it: given two
management systems' cooling energy and reliability assessments, compute
the net yearly cost difference.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError
from repro.reliability.assessment import ReliabilityAssessment


@dataclasses.dataclass(frozen=True)
class TradeoffInputs:
    """Economic parameters of the tradeoff."""

    fleet_size: int = 64
    base_afr: float = 0.02
    disk_replacement_usd: float = 120.0
    electricity_usd_per_kwh: float = 0.12

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise ConfigError("fleet_size must be >= 1")
        if not 0.0 < self.base_afr < 1.0:
            raise ConfigError("base_afr must be in (0, 1)")
        if self.disk_replacement_usd < 0 or self.electricity_usd_per_kwh < 0:
            raise ConfigError("costs must be non-negative")


@dataclasses.dataclass(frozen=True)
class TradeoffResult:
    """Yearly cost deltas of system B relative to system A (USD)."""

    cooling_cost_delta_usd: float
    replacement_cost_delta_usd: float  # under the worst-case hypothesis

    @property
    def net_delta_usd(self) -> float:
        """Negative means system B is cheaper overall."""
        return self.cooling_cost_delta_usd + self.replacement_cost_delta_usd


def yearly_tradeoff(
    cooling_kwh_a: float,
    assessment_a: ReliabilityAssessment,
    cooling_kwh_b: float,
    assessment_b: ReliabilityAssessment,
    inputs: TradeoffInputs = None,
) -> TradeoffResult:
    """Cost of running system B instead of system A for one year."""
    inputs = inputs or TradeoffInputs()
    cooling_delta = (
        (cooling_kwh_b - cooling_kwh_a) * inputs.electricity_usd_per_kwh
    )
    failures_a = (
        inputs.fleet_size * inputs.base_afr * assessment_a.worst_case
    )
    failures_b = (
        inputs.fleet_size * inputs.base_afr * assessment_b.worst_case
    )
    replacement_delta = (failures_b - failures_a) * inputs.disk_replacement_usd
    return TradeoffResult(
        cooling_cost_delta_usd=cooling_delta,
        replacement_cost_delta_usd=replacement_delta,
    )
