"""Failure-rate models from the three disk-reliability studies.

Each model maps a :class:`DiskExposure` — the thermal history disks saw
over a simulated period — to a *relative annualized failure rate* (AFR
multiplier), normalized so that a disk held at the reference temperature
with no daily variation scores 1.0.  The absolute AFRs in the studies are
population-specific; only the relative shape transfers, which is all the
management-system comparison needs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.sim.trace import DayTrace

KELVIN = 273.15
BOLTZMANN_EV = 8.617e-5


@dataclasses.dataclass(frozen=True)
class DiskExposure:
    """Thermal history of the disk fleet over some number of days.

    ``daily_mean_temp_c`` and ``daily_max_temp_c`` are per-day disk
    temperatures; ``daily_range_c`` is the per-day disk temperature span
    (max - min of the worst disk).
    """

    daily_mean_temp_c: Sequence[float]
    daily_max_temp_c: Sequence[float]
    daily_range_c: Sequence[float]

    def __post_init__(self) -> None:
        lengths = {
            len(self.daily_mean_temp_c),
            len(self.daily_max_temp_c),
            len(self.daily_range_c),
        }
        if len(lengths) != 1:
            raise ConfigError("exposure series must have equal lengths")
        if not self.daily_mean_temp_c:
            raise ConfigError("exposure must cover at least one day")

    @property
    def num_days(self) -> int:
        return len(self.daily_mean_temp_c)


def exposure_from_day_traces(traces: Sequence[DayTrace]) -> DiskExposure:
    """Build an exposure from simulated day traces (uses disk sensors)."""
    if not traces:
        raise ConfigError("need at least one day trace")
    means: List[float] = []
    maxes: List[float] = []
    ranges: List[float] = []
    for trace in traces:
        disk_temps = np.array([r.disk_temps_c for r in trace.records])
        if disk_temps.size == 0:
            raise ConfigError("trace has no disk temperature records")
        means.append(float(disk_temps.mean()))
        maxes.append(float(disk_temps.max()))
        per_disk_range = disk_temps.max(axis=0) - disk_temps.min(axis=0)
        ranges.append(float(per_disk_range.max()))
    return DiskExposure(means, maxes, ranges)


class ArrheniusModel:
    """Sankar et al.: AFR grows exponentially with absolute temperature.

    AFR multiplier = exp(Ea/k * (1/T_ref - 1/T)), the standard Arrhenius
    acceleration with activation energy ``ea_ev`` (disk studies report
    roughly 0.4-0.6 eV).  Daily variation is ignored, as that study found.
    """

    name = "arrhenius (Sankar et al.)"

    def __init__(self, ea_ev: float = 0.46, reference_temp_c: float = 38.0) -> None:
        if ea_ev <= 0:
            raise ConfigError("activation energy must be positive")
        self.ea_ev = ea_ev
        self.reference_temp_c = reference_temp_c

    def afr_multiplier(self, exposure: DiskExposure) -> float:
        t_ref = self.reference_temp_c + KELVIN
        factors = [
            math.exp(
                self.ea_ev / BOLTZMANN_EV * (1.0 / t_ref - 1.0 / (t + KELVIN))
            )
            for t in exposure.daily_mean_temp_c
        ]
        return float(np.mean(factors))


class ThresholdModel:
    """Pinheiro et al.: temperature matters little below a knee (~50C
    disk temperature), then failure rates climb steeply."""

    name = "threshold (Pinheiro et al.)"

    def __init__(
        self,
        knee_c: float = 50.0,
        slope_per_c: float = 0.15,
        mild_slope_per_c: float = 0.005,
        reference_temp_c: float = 38.0,
    ) -> None:
        if slope_per_c < 0 or mild_slope_per_c < 0:
            raise ConfigError("slopes must be non-negative")
        self.knee_c = knee_c
        self.slope_per_c = slope_per_c
        self.mild_slope_per_c = mild_slope_per_c
        self.reference_temp_c = reference_temp_c

    def _factor(self, temp_c: float) -> float:
        base = 1.0 + self.mild_slope_per_c * (temp_c - self.reference_temp_c)
        if temp_c > self.knee_c:
            base += self.slope_per_c * (temp_c - self.knee_c)
        return max(0.1, base)

    def afr_multiplier(self, exposure: DiskExposure) -> float:
        return float(
            np.mean([self._factor(t) for t in exposure.daily_max_temp_c])
        )


class VariationModel:
    """El-Sayed et al.: wide temporal variation drives sector errors.

    The error-rate multiplier grows linearly with the daily disk
    temperature range beyond a benign span; absolute temperature
    contributes only weakly.
    """

    name = "variation (El-Sayed et al.)"

    def __init__(
        self,
        benign_range_c: float = 5.0,
        slope_per_c: float = 0.08,
        absolute_slope_per_c: float = 0.004,
        reference_temp_c: float = 38.0,
    ) -> None:
        if slope_per_c < 0:
            raise ConfigError("slope must be non-negative")
        self.benign_range_c = benign_range_c
        self.slope_per_c = slope_per_c
        self.absolute_slope_per_c = absolute_slope_per_c
        self.reference_temp_c = reference_temp_c

    def afr_multiplier(self, exposure: DiskExposure) -> float:
        factors = []
        for mean_t, day_range in zip(
            exposure.daily_mean_temp_c, exposure.daily_range_c
        ):
            factor = 1.0 + self.slope_per_c * max(
                0.0, day_range - self.benign_range_c
            )
            factor += self.absolute_slope_per_c * (mean_t - self.reference_temp_c)
            factors.append(max(0.1, factor))
        return float(np.mean(factors))


ALL_MODELS = (ArrheniusModel, ThresholdModel, VariationModel)
