"""Declarative campaign specifications for the control-plane service.

A :class:`CampaignSpec` is the wire form of "a campaign": the three
sweep shapes the CLI already runs one-shot (``matrix``, ``world``,
``faults``) plus an explicit ``cells`` list, expressed as plain JSON so
clients in any language can submit them.  The spec compiles to the same
:class:`~repro.analysis.runner.YearTask` cells — and therefore the same
cache keys — as the one-shot commands, which is what makes cross-request
dedupe (:mod:`repro.service.scheduler`) and service-vs-CLI bit-identity
possible.

Validation happens at :meth:`CampaignSpec.from_json` time, so a bad
request is rejected at submission with a :class:`SpecError` instead of
failing cells mid-campaign.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.analysis.runner import YearTask
from repro.core.versions import ALL_VERSIONS
from repro.errors import ReproError
from repro.faults import BUILTIN_SCENARIOS, builtin_scenario
from repro.weather.locations import NAMED_LOCATIONS, world_grid

SPEC_KINDS = ("matrix", "world", "faults", "cells")

# Systems whose five_location_matrix cells run the deferrable trace; the
# spec mirrors experiments.five_location_matrix so cache keys line up.
DEFERRABLE_SYSTEMS = ("All-DEF", "Energy-DEF")


class SpecError(ReproError):
    """A campaign spec failed validation at submission time."""


def _known_system(name: str) -> str:
    if name != "baseline" and name not in ALL_VERSIONS:
        choices = ", ".join(["baseline"] + list(ALL_VERSIONS))
        raise SpecError(f"unknown system {name!r}; choices: {choices}")
    return name


def _known_location(name: str):
    try:
        return NAMED_LOCATIONS[name]
    except KeyError:
        raise SpecError(
            f"unknown location {name!r}; "
            f"choices: {', '.join(NAMED_LOCATIONS)}"
        )


def _faulted_config(system: str, scenario: str):
    """A system config carrying a built-in fault scenario."""
    if system == "baseline":
        raise SpecError(
            "fault scenarios require a CoolAir system (the baseline has "
            "no graceful-degradation path)"
        )
    try:
        schedule = builtin_scenario(scenario)
    except ReproError as err:
        raise SpecError(str(err))
    return dataclasses.replace(ALL_VERSIONS[system](), faults=schedule)


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One explicit campaign cell (the ``cells`` spec kind)."""

    system: str
    location: str
    workload: str = "facebook"
    deferrable: bool = False
    sample_every_days: Optional[int] = None
    forecast_bias_c: float = 0.0
    faults: Optional[str] = None

    def to_task(self) -> YearTask:
        climate = _known_location(self.location)
        system = _known_system(self.system)
        if self.faults:
            system = _faulted_config(system, self.faults)
        if self.workload not in ("facebook", "nutch"):
            raise SpecError(
                f"unknown workload {self.workload!r}; choices: "
                "facebook, nutch"
            )
        return YearTask(
            system=system,
            climate=climate,
            workload=self.workload,
            deferrable=self.deferrable,
            sample_every_days=self.sample_every_days,
            forecast_bias_c=self.forecast_bias_c,
        )

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign request.

    ``kind`` selects the sweep shape:

    * ``matrix`` — ``systems`` x the five named locations (Figures 8-10);
    * ``world`` — (``baseline``, ``coolair_system``) at each of
      ``locations`` world-grid climates (Figures 12/13), aggregated by
      the streaming accumulator;
    * ``faults`` — ``system`` at ``location`` under each named built-in
      fault ``scenarios`` entry (docs/ROBUSTNESS.md);
    * ``cells`` — an explicit :class:`CellSpec` list.

    ``world`` specs take the grid size as ``grid_points`` (preferred; the
    older ``locations`` alias still works) and a ``screen`` mode:
    ``"on"`` runs the three-stage screening pipeline
    (:mod:`repro.analysis.screening`) — only climate-cluster
    representatives and surrogate-uncertain cells are simulated, the rest
    are served with provenance tags, and the job's status/result carry
    the simulated/served/surrogate counters.  Grid-cell names encode
    their coordinates, so every grid size produces its own cache keys.
    """

    kind: str
    systems: Tuple[str, ...] = ()
    workload: str = "facebook"
    sample_every_days: Optional[int] = None
    locations: Optional[int] = None
    grid_points: Optional[int] = None
    coolair_system: str = "All-ND"
    system: str = "All-ND"
    location: str = "Newark"
    scenarios: Tuple[str, ...] = ()
    cells: Tuple[CellSpec, ...] = ()
    screen: str = "off"
    # Day-unfold width stamped on every expanded cell: eligible cells
    # step their sampled year-days as lockstep lanes inside the worker
    # (``experiments.year_result`` gates eligibility per cell and falls
    # back to the day-sequential path otherwise).  Results are
    # bit-identical either way and cache keys ignore the width, so
    # cross-request dedupe is unaffected.
    day_lanes: Optional[int] = None
    # Cooling-plant backend stamped on every expanded cell.  Non-parasol
    # plants carry their own cache-key token, so a chiller campaign never
    # dedupes against a parasol one.
    plant: str = "parasol"

    # -- validation / wire form ---------------------------------------------

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise SpecError(
                f"unknown campaign kind {self.kind!r}; "
                f"choices: {', '.join(SPEC_KINDS)}"
            )
        if self.workload not in ("facebook", "nutch"):
            raise SpecError(
                f"unknown workload {self.workload!r}; choices: "
                "facebook, nutch"
            )
        if self.kind == "matrix" and not self.systems:
            raise SpecError("a matrix spec needs at least one system")
        if self.kind == "cells" and not self.cells:
            raise SpecError("a cells spec needs at least one cell")
        if self.locations is not None and self.locations < 1:
            raise SpecError(
                f"world-grid size must be >= 1, got {self.locations}"
            )
        if self.grid_points is not None and self.grid_points < 1:
            raise SpecError(
                f"world-grid size must be >= 1, got {self.grid_points}"
            )
        if self.screen not in ("off", "on"):
            raise SpecError(
                f"unknown screen mode {self.screen!r}; choices: off, on"
            )
        if (
            self.sample_every_days is not None
            and self.sample_every_days < 1
        ):
            raise SpecError(
                "sample_every_days must be >= 1, got "
                f"{self.sample_every_days}"
            )
        if self.day_lanes is not None and self.day_lanes < 1:
            raise SpecError(
                f"day_lanes must be >= 1, got {self.day_lanes}"
            )
        from repro.cooling.backends import PLANTS

        if self.plant not in PLANTS:
            raise SpecError(
                f"unknown cooling plant {self.plant!r}; "
                f"choices: {', '.join(PLANTS)}"
            )

    @classmethod
    def from_json(cls, payload: object) -> "CampaignSpec":
        if not isinstance(payload, dict):
            raise SpecError("spec must be a JSON object")
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(sorted(unknown))}")
        data = dict(payload)
        try:
            for key in ("systems", "scenarios"):
                if key in data:
                    data[key] = tuple(str(s) for s in data[key])
            if "cells" in data:
                data["cells"] = tuple(
                    CellSpec(**cell) for cell in data["cells"]
                )
        except TypeError as err:
            raise SpecError(f"malformed spec: {err}")
        try:
            return cls(**data)
        except TypeError as err:
            raise SpecError(f"malformed spec: {err}")

    def to_json(self) -> dict:
        payload: Dict[str, object] = {"kind": self.kind}
        if self.kind == "matrix":
            payload["systems"] = list(self.systems)
            payload["workload"] = self.workload
        elif self.kind == "world":
            payload["locations"] = self.locations
            payload["grid_points"] = self.grid_points
            payload["coolair_system"] = self.coolair_system
            payload["screen"] = self.screen
        elif self.kind == "faults":
            payload["system"] = self.system
            payload["location"] = self.location
            payload["scenarios"] = list(self.scenarios)
            payload["workload"] = self.workload
        else:
            payload["cells"] = [cell.to_json() for cell in self.cells]
        if self.sample_every_days is not None:
            payload["sample_every_days"] = self.sample_every_days
        if self.day_lanes is not None:
            payload["day_lanes"] = self.day_lanes
        if self.plant != "parasol":
            payload["plant"] = self.plant
        return payload

    # -- expansion -----------------------------------------------------------

    def expand(self) -> List[YearTask]:
        """Compile the spec to campaign cells.

        Mirrors the one-shot entry points cell for cell —
        ``experiments.five_location_matrix`` for ``matrix``,
        ``experiments.world_sweep`` for ``world`` — so a service-run
        campaign shares cache keys (and therefore results) with the same
        campaign run via the CLI.
        """
        tasks: List[YearTask] = []
        if self.kind == "matrix":
            for system in self.systems:
                _known_system(system)
                for climate in NAMED_LOCATIONS.values():
                    tasks.append(
                        YearTask(
                            system=system,
                            climate=climate,
                            workload=self.workload,
                            deferrable=system in DEFERRABLE_SYSTEMS,
                            sample_every_days=self.sample_every_days,
                        )
                    )
        elif self.kind == "world":
            _known_system(self.coolair_system)
            for climate in world_grid(self.world_grid_points()):
                for system in ("baseline", self.coolair_system):
                    tasks.append(
                        YearTask(
                            system=system,
                            climate=climate,
                            sample_every_days=self.sample_every_days,
                        )
                    )
        elif self.kind == "faults":
            climate = _known_location(self.location)
            scenarios = self.scenarios or tuple(sorted(BUILTIN_SCENARIOS))
            for scenario in scenarios:
                tasks.append(
                    YearTask(
                        system=_faulted_config(
                            _known_system(self.system), scenario
                        ),
                        climate=climate,
                        workload=self.workload,
                        sample_every_days=self.sample_every_days,
                    )
                )
        else:
            tasks = [cell.to_task() for cell in self.cells]
        if self.day_lanes is not None and self.day_lanes > 1:
            tasks = [
                dataclasses.replace(task, day_lanes=self.day_lanes)
                for task in tasks
            ]
        if self.plant != "parasol":
            tasks = [
                dataclasses.replace(task, plant=self.plant)
                for task in tasks
            ]
        return tasks

    def world_grid_points(self) -> int:
        """The world-grid size: ``grid_points`` > ``locations`` > default."""
        return self.grid_points or self.locations or _default_world()

    def world_climates(self):
        """The grid the world accumulator aggregates over (world kind only)."""
        return world_grid(self.world_grid_points())

    def describe(self) -> str:
        plant = f" ({self.plant})" if self.plant != "parasol" else ""
        if self.kind == "matrix":
            return f"matrix[{','.join(self.systems)}] ({self.workload}){plant}"
        if self.kind == "world":
            suffix = ", screened" if self.screen == "on" else ""
            return f"world[{self.world_grid_points()}{suffix}]{plant}"
        if self.kind == "faults":
            n = len(self.scenarios or BUILTIN_SCENARIOS)
            return f"faults[{self.system}@{self.location} x{n}]{plant}"
        return f"cells[{len(self.cells)}]{plant}"


def _default_world() -> int:
    from repro.analysis.experiments import DEFAULT_WORLD_LOCATIONS

    return DEFAULT_WORLD_LOCATIONS
