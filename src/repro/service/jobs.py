"""Job records and the admission-controlled job registry.

A :class:`Job` is one submitted campaign: its expanded cells, per-cell
completion state, the aggregate it is building (full per-cell payloads
for ``matrix``/``faults``/``cells`` specs, a bounded
:class:`~repro.analysis.worldmap.StreamingWorldAccumulator` for
``world`` specs — the PR 5 streaming data plane, multiplexed per
tenant), and the event queues of any clients streaming its progress.

The :class:`JobRegistry` owns job ids and admission control: a service
refuses new campaigns once ``max_jobs`` are queued or running
(``REPRO_SERVICE_MAX_JOBS``), so a flood of submissions degrades into
clean rejections instead of unbounded queue growth.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from repro.analysis.runner import YearTask
from repro.errors import ReproError
from repro.service.spec import CampaignSpec

JOB_STATES = ("queued", "running", "completed", "cancelled")


class AdmissionError(ReproError):
    """The service is at capacity; the submission was refused."""


def task_cache_key(task: YearTask) -> str:
    """The cell's result-cache key — the service's dedupe identity.

    Exactly the key ``experiments.year_result`` would compute for the
    same cell, including the effective-engine token, so service-run and
    CLI-run campaigns share one cache namespace.
    """
    from repro.analysis import experiments

    return experiments.cache_key(
        task.system,
        task.climate,
        task.workload,
        task.deferrable,
        task.sample_every_days,
        task.forecast_bias_c,
        plant=task.plant,
    )


def task_descriptor(task: YearTask) -> dict:
    """The wire rendering of one cell's identity."""
    if isinstance(task.system, str):
        system, faults = task.system, None
    else:
        system = task.system.name
        faults = bool(getattr(task.system, "faults", None))
    return {
        "system": system,
        "faulted": faults,
        "location": task.climate.name,
        "workload": task.workload,
        "deferrable": task.deferrable,
        "sample_every_days": task.sample_every_days,
        "forecast_bias_c": task.forecast_bias_c,
        "plant": task.plant,
        "label": task.label(),
    }


class Job:
    """One submitted campaign and everything the status API reports."""

    def __init__(
        self,
        job_id: str,
        spec: CampaignSpec,
        priority: int,
        seq: int,
        tasks: List[YearTask],
        keys: List[str],
        screening=None,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.tasks = tasks
        self.keys = keys
        self.state = "queued"
        self.total = len(tasks)
        self.done = 0
        self.failed = 0
        # How this job's cells were satisfied: pool execution, a disk/
        # memory cache hit at submission, or attachment to another
        # request's in-flight cell (the cross-request dedupe counter).
        self.deduped = 0
        self.cached = 0
        self.failures: List[dict] = []
        self.created_s = time.time()
        self.finished_s: Optional[float] = None
        self._subscribers: List[asyncio.Queue] = []
        # Screened world jobs run in phases: the initial cells are the
        # climate-cluster representatives; when they all land, the
        # session promotes surrogate-uncertain cells (``on_extend`` asks
        # the scheduler to enqueue them), and once those land too the
        # remaining grid is served in-process with provenance tags.
        self.screening = screening
        self.screen_counters: Optional[dict] = None
        self.on_extend = None
        if spec.kind == "world":
            from repro.analysis.worldmap import StreamingWorldAccumulator

            self._accumulator = StreamingWorldAccumulator(
                spec.world_climates(), spec.coolair_system
            )
            self._payloads: Optional[List[Optional[dict]]] = None
        else:
            self._accumulator = None
            self._payloads = [None] * self.total

    # -- streaming -----------------------------------------------------------

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def _publish(self, event: dict) -> None:
        for queue in self._subscribers:
            queue.put_nowait(event)

    # -- cell completion -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in ("completed", "cancelled")

    def cell_done(self, index: int, payload: dict, source: str) -> None:
        """One cell finished: fold or retain it, count it, publish it."""
        if self.finished:
            return
        if source == "cached":
            self.cached += 1
        elif source == "deduped":
            self.deduped += 1
        if self._accumulator is not None:
            from repro.analysis.experiments import _result_from_json

            self._accumulator.consume(
                index, self.tasks[index], _result_from_json(payload)
            )
        else:
            self._payloads[index] = payload
        self.done += 1
        self._publish(
            {
                "event": "cell",
                "job_id": self.id,
                "index": index,
                "label": self.tasks[index].label(),
                "ok": True,
                "source": source,
                "done": self.done + self.failed,
                "total": self.total,
            }
        )
        self._maybe_finish()

    def cell_failed(self, index: int, error: str, attempts: int) -> None:
        if self.finished:
            return
        self.failed += 1
        self.failures.append(
            {
                "label": self.tasks[index].label(),
                "error": error,
                "attempts": attempts,
            }
        )
        self._publish(
            {
                "event": "cell",
                "job_id": self.id,
                "index": index,
                "label": self.tasks[index].label(),
                "ok": False,
                "error": error,
                "done": self.done + self.failed,
                "total": self.total,
            }
        )
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.done + self.failed < self.total:
            return
        if self.screening is not None and self.screening.phase == 1:
            # Every representative landed: promote the cells the
            # surrogate is uncertain about, if the budget allows.
            uncertain = self.screening.uncertain_tasks(self._accumulator)
            if uncertain:
                start = self.total
                self.tasks.extend(uncertain)
                self.keys.extend(task_cache_key(t) for t in uncertain)
                self.total += len(uncertain)
                self._publish(
                    {
                        "event": "phase",
                        "job_id": self.id,
                        "phase": "uncertain",
                        "added": len(uncertain),
                        "total": self.total,
                    }
                )
                if self.on_extend is not None:
                    self.on_extend(self, start)
                return
        if self.screening is not None and self.screening.phase < 3:
            counters = self.screening.serve(self._accumulator)
            self.screen_counters = counters.to_json()
        self.state = "completed"
        self.finished_s = time.time()
        self._publish(self._final_event())

    def cancel(self) -> bool:
        """Mark the job cancelled; running shared cells keep running."""
        if self.finished:
            return False
        self.state = "cancelled"
        self.finished_s = time.time()
        self._publish(self._final_event())
        return True

    def _final_event(self) -> dict:
        return {
            "event": "done" if self.state == "completed" else "cancelled",
            "job_id": self.id,
            "state": self.state,
            "done": self.done,
            "failed": self.failed,
            "total": self.total,
        }

    # -- the status / result API --------------------------------------------

    def snapshot(self) -> dict:
        snap = {
            "job_id": self.id,
            "spec": self.spec.describe(),
            "kind": self.spec.kind,
            "priority": self.priority,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "deduped": self.deduped,
            "cached": self.cached,
            "created_s": self.created_s,
            "finished_s": self.finished_s,
        }
        if self.screening is not None:
            counters = self.screen_counters
            if counters is None and self._accumulator is not None:
                # Mid-stream: report provenance over what resolved so far.
                counters = self.screening.counters(self._accumulator).to_json()
            snap["screen"] = {
                "phase": self.screening.phase,
                "grid_points": self._accumulator.grid_size,
                "counters": counters,
            }
        return snap

    def result_payload(self) -> dict:
        """The final result, shaped by the spec kind.

        ``world`` jobs return the streamed summary (never the per-cell
        results — parent memory stays bounded exactly as in the one-shot
        sweep); every other kind returns one entry per cell with the
        same JSON payload a cache entry holds.
        """
        if self.state != "completed":
            raise ReproError(
                f"job {self.id} has no result (state: {self.state})"
            )
        if self._accumulator is not None:
            summary = self._accumulator.summary(
                partial=self.screening is not None
            )
            payload = {
                "kind": self.spec.kind,
                "summary": {
                    "locations": len(summary.comparisons),
                    "range_buckets": summary.range_bucket_counts(),
                    "pue_buckets": summary.pue_bucket_counts(),
                    "headline": summary.headline(),
                    "avg_baseline_max_range_c": summary.avg_baseline_max_range_c,
                    "avg_coolair_max_range_c": summary.avg_coolair_max_range_c,
                    "avg_baseline_pue": summary.avg_baseline_pue,
                    "avg_coolair_pue": summary.avg_coolair_pue,
                },
                "failed": self.failed,
            }
            if self.screen_counters is not None:
                payload["screen"] = {
                    "grid_points": self._accumulator.grid_size,
                    "counters": self.screen_counters,
                    "clusters": len(self.screening.clusters),
                    "simulated_locations": self.screening.simulated_locations,
                }
            return payload
        cells = []
        for index, task in enumerate(self.tasks):
            entry = task_descriptor(task)
            entry["result"] = self._payloads[index]
            cells.append(entry)
        return {"kind": self.spec.kind, "cells": cells, "failed": self.failed}


class JobRegistry:
    """Allocates job ids and enforces queue admission control."""

    def __init__(self, max_jobs: int) -> None:
        if max_jobs < 1:
            raise ReproError(f"max_jobs must be >= 1, got {max_jobs}")
        self.max_jobs = max_jobs
        self.jobs: Dict[str, Job] = {}
        self._seq = 0

    def active_count(self) -> int:
        return sum(1 for job in self.jobs.values() if not job.finished)

    def create(self, spec: CampaignSpec, priority: int) -> Job:
        if self.active_count() >= self.max_jobs:
            raise AdmissionError(
                f"service at capacity ({self.max_jobs} active jobs); "
                "retry after one completes"
            )
        screening = None
        if spec.kind == "world" and spec.screen == "on":
            from repro.analysis.screening import ScreeningSession

            # A screened world job starts with only the cluster
            # representatives; the uncertain cells join via on_extend
            # once the representatives land.
            screening = ScreeningSession(
                spec.world_climates(),
                coolair_system=spec.coolair_system,
                sample_every_days=spec.sample_every_days,
                plant=spec.plant,
            )
            tasks = screening.representative_tasks()
        else:
            tasks = spec.expand()
        self._seq += 1
        job = Job(
            job_id=f"job-{self._seq:04d}",
            spec=spec,
            priority=priority,
            seq=self._seq,
            tasks=tasks,
            keys=[task_cache_key(task) for task in tasks],
            screening=screening,
        )
        self.jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ReproError(f"unknown job id {job_id!r}")
