"""The cell scheduler: priority queue -> persistent worker pool.

One scheduler instance multiplexes every submitted job over a single
:class:`~repro.analysis.runner.WorkerPool`:

* **admission control** — at most ``max_inflight`` cells occupy pool
  slots at once; everything else waits in a priority heap ordered by
  (job priority desc, submission order, cell order), so a later
  high-priority request overtakes a large low-priority sweep without
  preempting cells already running;
* **cross-request dedupe** — cells are identified by their result-cache
  key (:func:`~repro.service.jobs.task_cache_key`).  A cell already
  in flight for one job is never re-submitted for another: the second
  job *subscribes* to the same :class:`CellRecord` and both receive the
  one result.  A cell already in the result cache is served immediately
  without touching the pool.  Each distinct key therefore simulates at
  most once per cache lifetime, no matter how many tenants ask for it;
* **cancellation** — cancelling a job detaches it from its cells.
  Pending cells with no subscribers left are dropped when they reach the
  front of the queue; a *running* cell keeps running (its result still
  lands in the shared cache, and any other subscriber still gets it);
* **reliability** — the PR 4 semantics, rebuilt on asyncio: per-cell
  retries with exponential backoff, a per-cell progress timeout, and
  ``BrokenProcessPool`` recovery that resets the shared pool
  (:meth:`WorkerPool.reset`) and resubmits the lost cells after a cache
  re-check, so a worker crash costs one worker generation, not the
  service.

The scheduler runs entirely on the event loop; only
:func:`~repro.analysis.runner._execute_task_payload` crosses into the
worker processes, exactly as in the one-shot runner.
"""

from __future__ import annotations

import asyncio
import heapq
import logging
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.analysis.runner import (
    RETRY_BACKOFF_S,
    WorkerPool,
    YearTask,
    _execute_task_payload,
    resolve_task_retries,
    resolve_task_timeout,
)
from repro.service.jobs import Job

logger = logging.getLogger("repro.service.scheduler")


class ServiceMetrics:
    """Service-lifetime counters exposed by the status API."""

    def __init__(self) -> None:
        self.cells_executed = 0  # submitted to the pool and completed
        self.cells_cached = 0  # served from the result cache at submit
        self.cells_deduped = 0  # attached to another request's cell
        self.cells_skipped = 0  # dropped: every subscriber cancelled
        self.cells_failed = 0
        self.pool_resets = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_cancelled = 0

    def snapshot(self) -> dict:
        return dict(vars(self))


class CellRecord:
    """One distinct in-flight cell and the jobs subscribed to it."""

    __slots__ = ("key", "task", "subscribers", "attempts", "running")

    def __init__(self, key: str, task: YearTask) -> None:
        self.key = key
        self.task = task
        # (job, index-within-job); one result fans out to all of them.
        self.subscribers: List[Tuple[Job, int]] = []
        self.attempts = 0
        self.running = False

    def live_subscribers(self) -> List[Tuple[Job, int]]:
        return [(job, i) for job, i in self.subscribers if not job.finished]


class Scheduler:
    """Shards cells from the job queue across the persistent pool."""

    def __init__(
        self,
        pool: WorkerPool,
        max_inflight: Optional[int] = None,
        task_retries: Optional[int] = None,
        task_timeout_s: Optional[float] = None,
        backoff_s: float = RETRY_BACKOFF_S,
    ) -> None:
        self.pool = pool
        self.max_inflight = max_inflight or pool.workers
        self.retries = resolve_task_retries(task_retries)
        self.timeout_s = resolve_task_timeout(task_timeout_s)
        self.backoff_s = backoff_s
        self.metrics = ServiceMetrics()
        self._cells: Dict[str, CellRecord] = {}
        # Heap entries: (-priority, job seq, cell index, record) — later
        # entries for the same record are impossible (dedupe), so the
        # tuple never compares records.
        self._heap: List[Tuple[int, int, int, CellRecord]] = []
        self._inflight = 0
        self._tasks: set = set()

    # -- job intake ----------------------------------------------------------

    def submit_job(self, job: Job) -> None:
        """Enqueue every cell of ``job``, deduping as it goes.

        Must run on the event loop.  Cache hits are delivered before
        this returns, so a fully-cached job can complete synchronously.
        """
        from repro.analysis import experiments

        self.metrics.jobs_submitted += 1
        job.state = "running"
        job.on_extend = self.extend_job
        self._enqueue_cells(job, 0)
        if job.state == "completed":
            self.metrics.jobs_completed += 1
        self._pump()

    def extend_job(self, job: Job, start_index: int) -> None:
        """Enqueue cells a running job grew mid-flight.

        Screened world jobs call this (via ``Job.on_extend``) when their
        representatives have landed and the surrogate promoted uncertain
        cells to full simulation: the new cells join the same priority
        heap, dedupe against in-flight cells, and serve from cache —
        exactly as at submission.
        """
        self._enqueue_cells(job, start_index)
        self._pump()

    def _enqueue_cells(self, job: Job, start_index: int) -> None:
        from repro.analysis import experiments

        for index in range(start_index, len(job.tasks)):
            task, key = job.tasks[index], job.keys[index]
            record = self._cells.get(key)
            if record is not None:
                # Another request already owns this cell in flight —
                # subscribe rather than resubmit.  This is the dedupe
                # counter the acceptance criteria talk about.
                record.subscribers.append((job, index))
                self.metrics.cells_deduped += 1
                continue
            # cache_memory=False: the service parent folds or forwards
            # payloads, it never needs the full YearResult pinned in the
            # in-process memory cache (bounded parent, as in PR 5).
            cached = experiments.load_cached(
                key, use_disk_cache=True, cache_memory=False
            )
            if cached is not None:
                self.metrics.cells_cached += 1
                job.cell_done(
                    index, experiments._result_to_json(cached), "cached"
                )
                continue
            record = CellRecord(key, task)
            record.subscribers.append((job, index))
            self._cells[key] = record
            heapq.heappush(
                self._heap, (-job.priority, job.seq, index, record)
            )

    def cancel_job(self, job: Job) -> bool:
        """Detach ``job`` from its cells; shared cells are unaffected."""
        if not job.cancel():
            return False
        self.metrics.jobs_cancelled += 1
        # Pending sole-subscriber cells are dropped lazily in _pump when
        # they surface with no live subscribers; nothing to do here.
        return True

    # -- the pump ------------------------------------------------------------

    def _pump(self) -> None:
        """Fill free pool slots from the head of the priority heap."""
        while self._inflight < self.max_inflight and self._heap:
            _, _, _, record = heapq.heappop(self._heap)
            if record.running or record.key not in self._cells:
                continue
            if not record.live_subscribers():
                # Every requester cancelled before the cell started.
                del self._cells[record.key]
                self.metrics.cells_skipped += 1
                continue
            record.running = True
            self._inflight += 1
            task = asyncio.get_running_loop().create_task(
                self._run_cell(record)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_cell(self, record: CellRecord) -> None:
        try:
            await self._run_cell_inner(record)
        finally:
            self._inflight -= 1
            self._cells.pop(record.key, None)
            self._pump()

    async def _run_cell_inner(self, record: CellRecord) -> None:
        from repro.analysis import experiments

        loop = asyncio.get_running_loop()
        while True:
            generation = self.pool.generation
            try:
                future = self.pool.submit(
                    _execute_task_payload, record.task, True
                )
                payload = await asyncio.wait_for(
                    asyncio.wrap_future(future, loop=loop),
                    timeout=self.timeout_s,
                )
            except (BrokenProcessPool, asyncio.TimeoutError) as err:
                # A dead or hung worker generation: reset the shared
                # pool once per generation (concurrent cells racing here
                # reset it only once), re-check the cache — the dying
                # worker may have persisted the result — then retry.
                if self.pool.generation == generation:
                    logger.warning(
                        "worker pool %s; resetting and resubmitting %s",
                        type(err).__name__,
                        record.task.label(),
                    )
                    self.pool.reset()
                    self.metrics.pool_resets += 1
                cached = experiments.load_cached(
                    record.key, use_disk_cache=True, cache_memory=False
                )
                if cached is not None:
                    self._deliver(
                        record, experiments._result_to_json(cached)
                    )
                    return
                record.attempts += 1
                if record.attempts > self.retries:
                    self._fail(record, f"{type(err).__name__}: {err}")
                    return
                await asyncio.sleep(
                    self.backoff_s * (2 ** (record.attempts - 1))
                )
                continue
            except Exception as err:  # noqa: BLE001 - typed + retried
                record.attempts += 1
                if record.attempts > self.retries:
                    self._fail(record, str(err))
                    return
                logger.warning(
                    "retrying %s (attempt %d) after: %s",
                    record.task.label(),
                    record.attempts,
                    err,
                )
                await asyncio.sleep(
                    self.backoff_s * (2 ** (record.attempts - 1))
                )
                continue
            self.metrics.cells_executed += 1
            self._deliver(record, payload)
            return

    # -- delivery ------------------------------------------------------------

    def _deliver(self, record: CellRecord, payload: dict) -> None:
        for position, (job, index) in enumerate(record.subscribers):
            if job.finished:
                continue
            source = "executed" if position == 0 else "deduped"
            job.cell_done(index, payload, source)
            if job.state == "completed":
                self.metrics.jobs_completed += 1

    def _fail(self, record: CellRecord, error: str) -> None:
        self.metrics.cells_failed += 1
        logger.error(
            "cell failed permanently: %s: %s", record.task.label(), error
        )
        for job, index in record.subscribers:
            if job.finished:
                continue
            job.cell_failed(index, error, attempts=record.attempts)
            if job.state == "completed":
                self.metrics.jobs_completed += 1

    # -- status --------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "inflight": self._inflight,
            "queued_cells": len(self._heap),
            "distinct_cells": len(self._cells),
            "max_inflight": self.max_inflight,
            "workers": self.pool.workers,
            **self.metrics.snapshot(),
        }

    async def drain(self) -> None:
        """Wait for every in-flight cell (used at shutdown and in tests)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
