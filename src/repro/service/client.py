"""Synchronous client for the campaign service.

Backs the ``python -m repro submit/status/cancel`` subcommands and the
integration tests.  One :class:`ServiceClient` owns one connection;
``submit(stream=True)`` turns that connection into an event stream until
the job finishes (open another client for concurrent status queries —
the server multiplexes connections, not messages within one).

Also home to the result renderers: a service job's result payload is
rendered through the same table shapes as the one-shot ``matrix`` /
``world`` commands, which is what lets the CI smoke job diff the two
outputs line for line.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.service.protocol import ProtocolError, decode, encode
from repro.service.spec import CampaignSpec

DEFAULT_CONNECT_TIMEOUT_S = 10.0


def resolve_connect_timeout(requested: Optional[float] = None) -> float:
    """Connect/ready timeout: argument > env > 10 s."""
    if requested is None:
        env = os.environ.get("REPRO_SERVICE_CONNECT_TIMEOUT_S")
        if env is not None:
            try:
                requested = float(env)
            except ValueError:
                raise ReproError(
                    "REPRO_SERVICE_CONNECT_TIMEOUT_S must be a number, "
                    f"got {env!r}"
                )
        else:
            requested = DEFAULT_CONNECT_TIMEOUT_S
    if requested <= 0:
        raise ReproError(f"connect timeout must be > 0, got {requested}")
    return requested


def resolve_endpoint(
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> Union[str, Tuple[str, int]]:
    """Where the service lives: explicit args > env > default socket.

    Returns a unix-socket path (str) or a ``(host, port)`` TCP pair.
    """
    host = host or os.environ.get("REPRO_SERVICE_HOST")
    if port is None:
        env_port = os.environ.get("REPRO_SERVICE_PORT")
        port = int(env_port) if env_port else None
    if host or port is not None:
        if port is None:
            raise ReproError("a TCP endpoint needs a port")
        return (host or "127.0.0.1", port)
    from repro.service.server import resolve_socket_path

    return str(resolve_socket_path(socket_path))


class ServiceClient:
    """One connection to the campaign service."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.endpoint = resolve_endpoint(socket_path, host, port)
        self.timeout_s = resolve_connect_timeout(timeout_s)
        self._sock: Optional[socket.socket] = None
        self._file = None

    @classmethod
    def from_endpoint(
        cls,
        endpoint: Union[str, Tuple[str, int]],
        timeout_s: Optional[float] = None,
    ) -> "ServiceClient":
        """A client for an already-resolved endpoint (no env lookups)."""
        client = cls.__new__(cls)
        client.endpoint = endpoint
        client.timeout_s = resolve_connect_timeout(timeout_s)
        client._sock = None
        client._file = None
        return client

    # -- connection ----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        try:
            if isinstance(self.endpoint, str):
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout_s)
                sock.connect(self.endpoint)
            else:
                sock = socket.create_connection(
                    self.endpoint, timeout=self.timeout_s
                )
        except OSError as err:
            raise ReproError(
                f"cannot reach the campaign service at {self.endpoint}: "
                f"{err} (is `python -m repro serve` running?)"
            )
        # Streamed jobs produce no bytes while cells simulate; reads
        # must wait for the campaign, not the connect timeout.
        sock.settimeout(None)
        self._sock = sock
        self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw protocol --------------------------------------------------------

    def send(self, message: dict) -> None:
        self.connect()
        self._sock.sendall(encode(message))

    def read(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ReproError("the campaign service closed the connection")
        return decode(line)

    def request(self, message: dict) -> dict:
        """Send one request and return its (checked) reply."""
        self.send(message)
        reply = self.read()
        if not reply.get("ok", False):
            raise ReproError(
                reply.get("error", "service returned an unknown error")
            )
        return reply

    # -- the status API ------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def wait_until_ready(self, timeout_s: Optional[float] = None) -> None:
        """Poll until the service answers a ping (startup races)."""
        deadline = time.monotonic() + (timeout_s or self.timeout_s)
        while True:
            probe = ServiceClient.from_endpoint(self.endpoint)
            try:
                probe.connect()
                probe.ping()
                return
            except (ReproError, ProtocolError):
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"service at {self.endpoint} not ready after "
                        f"{timeout_s or self.timeout_s:.0f}s"
                    )
                time.sleep(0.1)
            finally:
                probe.close()

    def submit(
        self,
        spec: CampaignSpec,
        priority: int = 0,
        stream: bool = False,
    ) -> dict:
        """Submit a campaign; returns the acceptance reply.

        With ``stream=True`` the connection then carries per-cell
        events — consume them with :meth:`events`.
        """
        return self.request(
            {
                "op": "submit",
                "spec": spec.to_json(),
                "priority": priority,
                "stream": stream,
            }
        )

    def events(self) -> Iterator[dict]:
        """Streamed job events, ending after ``done``/``cancelled``."""
        while True:
            event = self.read()
            yield event
            if event.get("event") in ("done", "cancelled"):
                return

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "job_id": job_id})

    def list_jobs(self) -> dict:
        return self.request({"op": "list"})

    def result(self, job_id: str) -> dict:
        return self.request({"op": "result", "job_id": job_id})["result"]

    def cancel(self, job_id: str) -> dict:
        return self.request({"op": "cancel", "job_id": job_id})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def wait_for_job(
        self, job_id: str, poll_s: float = 0.5, timeout_s: float = 3600.0
    ) -> dict:
        """Poll the status API until the job finishes; returns its snapshot."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.status(job_id)["job"]
            if job["state"] in ("completed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"job {job_id} still {job['state']} after {timeout_s:.0f}s"
                )
            time.sleep(poll_s)


# -- result rendering ----------------------------------------------------------


def render_result(result: dict) -> str:
    """A job result payload as the one-shot CLI would print it."""
    if result.get("kind") == "world":
        return _render_world(result)
    return _render_cells(result)


def _render_cells(result: dict) -> str:
    from repro.analysis.experiments import _result_from_json
    from repro.analysis.report import format_table

    cells = result.get("cells", [])
    years = {
        i: _result_from_json(cell["result"])
        for i, cell in enumerate(cells)
        if cell.get("result") is not None
    }
    wet = any(year.water_l > 0.0 for year in years.values())
    rows: List[List[str]] = []
    for i, cell in enumerate(cells):
        year = years.get(i)
        if year is None:
            rows.append(
                [cell["system"], cell["location"]] + ["-"] * (5 if wet else 4)
            )
            continue
        row = [
            cell["system"],
            cell["location"],
            f"{year.avg_violation_c:.2f}",
            f"{year.avg_range_c:.1f}",
            f"{year.max_range_c:.1f}",
            f"{year.pue:.2f}",
        ]
        if wet:
            row.append(f"{year.wue:.2f}")
        rows.append(row)
    headers = ["system", "location", "viol C", "avg range C", "max range C", "PUE"]
    if wet:
        headers.append("WUE")
    return format_table(
        headers,
        rows,
        title=f"campaign result ({result.get('kind')})",
    )


def _render_world(result: dict) -> str:
    from repro.analysis.report import format_table

    summary = result["summary"]
    parts = [
        format_table(
            ["bin C", "locations"],
            list(summary["range_buckets"].items()),
            title=(
                "Figure 12 — max-range reduction "
                f"({summary['locations']} locations)"
            ),
        ),
        format_table(
            ["bin", "locations"],
            list(summary["pue_buckets"].items()),
            title="Figure 13 — yearly PUE reduction",
        ),
        summary["headline"],
    ]
    screen = result.get("screen")
    if screen:
        counters = screen.get("counters") or {}
        parts.append(
            "screening: "
            f"{counters.get('simulated', 0)} simulated, "
            f"{counters.get('served_from_cluster', 0)} served from cluster, "
            f"{counters.get('surrogate_only', 0)} surrogate-only "
            f"of {screen.get('grid_points')} grid points "
            f"({screen.get('clusters')} clusters)"
        )
    return "\n".join(parts)


def format_jobs_table(jobs: List[dict], service: dict) -> str:
    """The ``status``/``list`` rendering: jobs plus service counters."""
    from repro.analysis.report import format_table

    rows = [
        [
            job["job_id"],
            job["spec"],
            job["state"],
            f"{job['done']}/{job['total']}",
            job["failed"],
            job["deduped"],
            job["cached"],
            job["priority"],
        ]
        for job in jobs
    ]
    table = format_table(
        ["job", "spec", "state", "done", "failed", "deduped", "cached", "prio"],
        rows,
        title="campaign service jobs",
    )
    counters = (
        f"cells: {service['cells_executed']} executed, "
        f"{service['cells_cached']} cached, "
        f"{service['cells_deduped']} deduped, "
        f"{service['cells_skipped']} skipped, "
        f"{service['cells_failed']} failed; "
        f"inflight {service['inflight']}/{service['max_inflight']} "
        f"on {service['workers']} workers; "
        f"pool resets {service['pool_resets']}"
    )
    return f"{table}\n{counters}"


def job_result_json(result: dict) -> str:
    """The raw result payload, pretty-printed (``--json`` output)."""
    return json.dumps(result, indent=2, sort_keys=True)
