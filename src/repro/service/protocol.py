"""The line-delimited JSON wire protocol.

Every message — request, reply, or streamed event — is one JSON object
per ``\\n``-terminated line, UTF-8 encoded.  Requests carry an ``op``;
replies carry ``ok`` (with ``error`` when false); streamed progress
carries ``event``.  The full message catalogue is documented in
``docs/SERVICE.md``; this module only owns framing and validation, so
the server and the client cannot drift apart on either.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ReproError

# Submit replies and result payloads for large matrix jobs can run to
# megabytes; the asyncio stream limit must cover one full line.
MAX_LINE_BYTES = 32 * 1024 * 1024

OPS = ("submit", "list", "status", "result", "cancel", "ping", "shutdown")


class ProtocolError(ReproError):
    """A malformed message crossed the wire."""


def encode(message: dict) -> bytes:
    """One message, framed: compact JSON plus the line terminator."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    try:
        message = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"malformed message: {err}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: dict) -> str:
    """Check a client request's shape; returns its op."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; choices: {', '.join(OPS)}"
        )
    if op in ("status", "result", "cancel") and not isinstance(
        message.get("job_id"), str
    ):
        raise ProtocolError(f"op {op!r} requires a string job_id")
    if op == "submit" and not isinstance(message.get("spec"), dict):
        raise ProtocolError("op 'submit' requires a spec object")
    priority = message.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("priority must be an integer")
    return op


def ok_reply(**fields) -> dict:
    return {"ok": True, **fields}


def error_reply(message: str) -> dict:
    return {"ok": False, "error": message}


async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """The next message from a stream, or None on a clean EOF."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(
            f"message exceeds the {MAX_LINE_BYTES}-byte line limit"
        )
    if not line:
        return None
    return decode(line)
