"""The asyncio control-plane server: ``python -m repro serve``.

One process owns a persistent :class:`~repro.analysis.runner.WorkerPool`
and serves many concurrent campaign clients over a line-delimited JSON
protocol (:mod:`repro.service.protocol`) on a unix socket (default) or
localhost TCP.  Request handling is pure asyncio; simulation work
happens in the pool's worker processes, and the one CPU-heavy parent
step — warming traces and learned models into the artifact store before
a job's first cell runs — is pushed to a thread so the event loop keeps
answering status requests while it runs.

Operator knobs (full table in ``docs/SERVICE.md``):

* ``REPRO_SERVICE_SOCKET`` — unix-socket path
  (default ``<cache>/service.sock``);
* ``REPRO_SERVICE_HOST`` / ``REPRO_SERVICE_PORT`` — listen on TCP
  instead of the unix socket;
* ``REPRO_SERVICE_MAX_INFLIGHT`` — admission control: cells occupying
  pool slots at once (default: the worker count);
* ``REPRO_SERVICE_MAX_JOBS`` — queued+running jobs before submissions
  are refused (default 64);

plus the shared campaign knobs the service inherits from the runner:
``REPRO_WORKERS``, ``REPRO_TASK_RETRIES``, ``REPRO_TASK_TIMEOUT_S``,
``REPRO_MP_CONTEXT``, and the artifact/cache knobs read inside workers.
"""

from __future__ import annotations

import asyncio
import logging
import os
import pathlib
import threading
from typing import Optional

from repro.analysis.runner import WorkerPool, _warm_shared_state
from repro.errors import ReproError
from repro.service import protocol
from repro.service.jobs import JobRegistry
from repro.service.scheduler import Scheduler
from repro.service.spec import CampaignSpec

logger = logging.getLogger("repro.service.server")

DEFAULT_MAX_JOBS = 64
SOCKET_NAME = "service.sock"


def resolve_socket_path(requested: Optional[str] = None) -> pathlib.Path:
    """Unix-socket path: argument > ``REPRO_SERVICE_SOCKET`` > cache dir."""
    if requested is None:
        requested = os.environ.get("REPRO_SERVICE_SOCKET")
    if requested:
        return pathlib.Path(requested)
    from repro.analysis.experiments import CACHE_DIR

    return CACHE_DIR / SOCKET_NAME


def resolve_max_inflight(
    requested: Optional[int] = None, workers: int = 1
) -> int:
    """Cells in pool slots at once: argument > env > worker count."""
    if requested is None:
        env = os.environ.get("REPRO_SERVICE_MAX_INFLIGHT")
        if env is not None:
            try:
                requested = int(env)
            except ValueError:
                raise ReproError(
                    "REPRO_SERVICE_MAX_INFLIGHT must be a positive "
                    f"integer, got {env!r}"
                )
        else:
            requested = workers
    if requested < 1:
        raise ReproError(f"max inflight must be >= 1, got {requested}")
    return requested


def resolve_max_jobs(requested: Optional[int] = None) -> int:
    """Active-job admission limit: argument > env > 64."""
    if requested is None:
        env = os.environ.get("REPRO_SERVICE_MAX_JOBS")
        if env is not None:
            try:
                requested = int(env)
            except ValueError:
                raise ReproError(
                    "REPRO_SERVICE_MAX_JOBS must be a positive integer, "
                    f"got {env!r}"
                )
        else:
            requested = DEFAULT_MAX_JOBS
    if requested < 1:
        raise ReproError(f"max jobs must be >= 1, got {requested}")
    return requested


class CampaignService:
    """The control plane: job registry + scheduler + protocol endpoint."""

    def __init__(
        self,
        workers: Optional[int] = None,
        max_inflight: Optional[int] = None,
        max_jobs: Optional[int] = None,
        task_retries: Optional[int] = None,
        task_timeout_s: Optional[float] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.pool = WorkerPool(workers=workers, mp_context=mp_context)
        self.scheduler = Scheduler(
            self.pool,
            max_inflight=resolve_max_inflight(
                max_inflight, workers=self.pool.workers
            ),
            task_retries=task_retries,
            task_timeout_s=task_timeout_s,
        )
        self.registry = JobRegistry(max_jobs=resolve_max_jobs(max_jobs))
        self.address: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._socket_path: Optional[pathlib.Path] = None
        # Created inside start() so it binds to the serving loop (3.9's
        # asyncio primitives capture a loop at construction time).
        self._stop: Optional[asyncio.Event] = None
        self._warm_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    async def start(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> str:
        """Bind and start accepting clients; returns the bound address.

        ``host``/``port`` (or ``REPRO_SERVICE_HOST``/``_PORT``) select
        TCP; otherwise a unix socket at ``socket_path`` (stale socket
        files from a dead server are replaced).
        """
        self._stop = asyncio.Event()
        host = host or os.environ.get("REPRO_SERVICE_HOST")
        if port is None:
            env_port = os.environ.get("REPRO_SERVICE_PORT")
            port = int(env_port) if env_port else None
        if host or port is not None:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=host or "127.0.0.1",
                port=port or 0,
                limit=protocol.MAX_LINE_BYTES,
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        else:
            path = resolve_socket_path(socket_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client,
                path=str(path),
                limit=protocol.MAX_LINE_BYTES,
            )
            self._socket_path = path
            self.address = str(path)
        logger.info("campaign service listening on %s", self.address)
        return self.address

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`close`) arrives."""
        assert self._stop is not None, "serve_forever before start"
        await self._stop.wait()
        await self.close()

    async def close(self) -> None:
        if self._stop is not None:
            self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._socket_path is not None and self._socket_path.exists():
            self._socket_path.unlink()
        self.pool.shutdown(wait=False)

    # -- request handling ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except protocol.ProtocolError as err:
                    writer.write(protocol.encode(protocol.error_reply(str(err))))
                    await writer.drain()
                    continue
                if message is None:
                    return
                op = None
                try:
                    op = protocol.validate_request(message)
                    await self._dispatch(op, message, writer)
                except ReproError as err:
                    writer.write(protocol.encode(protocol.error_reply(str(err))))
                    await writer.drain()
                if op == "shutdown":
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                # RuntimeError: the loop is already shutting down.
                pass

    async def _dispatch(
        self, op: str, message: dict, writer: asyncio.StreamWriter
    ) -> None:
        if op == "ping":
            await self._reply(writer, protocol.ok_reply(pong=True))
        elif op == "submit":
            await self._handle_submit(message, writer)
        elif op == "list":
            await self._reply(
                writer,
                protocol.ok_reply(
                    jobs=[
                        job.snapshot() for job in self.registry.jobs.values()
                    ],
                    service=self.scheduler.snapshot(),
                ),
            )
        elif op == "status":
            job = self.registry.get(message["job_id"])
            await self._reply(
                writer,
                protocol.ok_reply(
                    job=job.snapshot(), service=self.scheduler.snapshot()
                ),
            )
        elif op == "result":
            job = self.registry.get(message["job_id"])
            await self._reply(
                writer, protocol.ok_reply(result=job.result_payload())
            )
        elif op == "cancel":
            job = self.registry.get(message["job_id"])
            cancelled = self.scheduler.cancel_job(job)
            await self._reply(
                writer, protocol.ok_reply(cancelled=cancelled, job=job.snapshot())
            )
        elif op == "shutdown":
            await self._reply(writer, protocol.ok_reply(stopping=True))
            self._stop.set()

    async def _reply(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()

    async def _handle_submit(
        self, message: dict, writer: asyncio.StreamWriter
    ) -> None:
        spec = CampaignSpec.from_json(message["spec"])
        priority = int(message.get("priority", 0))
        stream = bool(message.get("stream", False))
        job = self.registry.create(spec, priority)
        # Train/generate this job's shared artifacts once, off the event
        # loop: workers then load them from the artifact store instead of
        # re-deriving them per process.  Serialized across submissions so
        # two jobs needing the same model never train it twice.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._warm, job.tasks)
        events = job.subscribe() if stream else None
        self.scheduler.submit_job(job)
        await self._reply(
            writer,
            protocol.ok_reply(job_id=job.id, job=job.snapshot()),
        )
        if events is None:
            return
        try:
            while True:
                event = await events.get()
                await self._reply(writer, event)
                if event.get("event") in ("done", "cancelled"):
                    return
        finally:
            job.unsubscribe(events)

    def _warm(self, tasks) -> None:
        with self._warm_lock:
            _warm_shared_state(tasks)


async def _run_service(service: CampaignService, **bind_kwargs) -> None:
    address = await service.start(**bind_kwargs)
    print(f"campaign service listening on {address}", flush=True)
    await service.serve_forever()


def serve(
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    **service_kwargs,
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    service = CampaignService(**service_kwargs)
    try:
        asyncio.run(
            _run_service(
                service, socket_path=socket_path, host=host, port=port
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


class ThreadedService:
    """A service running on a background thread (tests, embedding).

    Starts the event loop in a daemon thread, binds, and exposes the
    bound address; :meth:`stop` shuts the loop down cleanly.  Clients
    talk to it over the normal socket protocol — there is no in-process
    shortcut, so tests exercise exactly what production clients do.
    """

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: float = 10.0,
    ) -> str:
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self.address = loop.run_until_complete(
                    self.service.start(
                        socket_path=socket_path, host=host, port=port
                    )
                )
                started.set()
                loop.run_until_complete(self.service.serve_forever())
                # Let open client handlers unwind before the loop dies.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                started.set()
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout_s) or self.address is None:
            raise ReproError("service failed to start")
        return self.address

    def stop(self, timeout_s: float = 10.0) -> None:
        loop, stop = self._loop, self.service._stop
        if loop is not None and stop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout_s)
