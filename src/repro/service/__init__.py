"""The campaign control-plane service (docs/SERVICE.md).

Promotes the one-shot campaign runner into a long-running, multi-tenant
system: an asyncio server (:mod:`~repro.service.server`) accepts
declarative :class:`CampaignSpec` requests over a line-delimited JSON
protocol, a priority scheduler (:mod:`~repro.service.scheduler`) shards
their cells across one persistent
:class:`~repro.analysis.runner.WorkerPool`, identical cells are deduped
across concurrent requests via the result-cache keys, and per-cell
progress streams back to clients while the PR 4 retry/timeout/reset
machinery keeps worker crashes from taking the service down.

Layers, top to bottom::

    protocol  (framing)  ->  server  (asyncio endpoint, admission)
        -> jobs  (registry, per-job state + streams)
        -> scheduler  (priority heap, dedupe, reliability)
        -> runner.WorkerPool  (persistent process pool)
        -> artifact store + result cache  (shared data plane)

Use :class:`~repro.service.client.ServiceClient` (or the
``python -m repro serve / submit / status / cancel`` subcommands) to
talk to it.
"""

from repro.service.client import ServiceClient, render_result
from repro.service.jobs import AdmissionError, Job, JobRegistry
from repro.service.scheduler import Scheduler, ServiceMetrics
from repro.service.server import CampaignService, ThreadedService, serve
from repro.service.spec import CampaignSpec, CellSpec, SpecError

__all__ = [
    "AdmissionError",
    "CampaignService",
    "CampaignSpec",
    "CellSpec",
    "Job",
    "JobRegistry",
    "Scheduler",
    "ServiceClient",
    "ServiceMetrics",
    "SpecError",
    "ThreadedService",
    "render_result",
    "serve",
]
