"""CoolAir: temperature- and variation-aware management for free-cooled
datacenters — a full reproduction of the ASPLOS 2015 paper by Goiri,
Nguyen, and Bianchini.

Quick tour of the public API::

    from repro import (
        NEWARK, all_nd, FacebookTraceGenerator,
        trained_cooling_model, run_year,
    )

    trace = FacebookTraceGenerator().generate()
    model = trained_cooling_model()                 # Section 4.2 campaign
    result = run_year(all_nd(), NEWARK, trace, model=model)
    print(result.summary_row())

Packages:

* :mod:`repro.core` — CoolAir itself (Modeler, Manager, Compute Manager).
* :mod:`repro.physics` — psychrometrics and the thermal plant.
* :mod:`repro.datacenter` — servers, pods, sensors, disks, energy.
* :mod:`repro.cooling` — cooling units and the TKS/baseline controllers.
* :mod:`repro.weather` — synthetic TMY data, locations, forecasts.
* :mod:`repro.ml` — regression substrate (OLS, LMS, M5P).
* :mod:`repro.workload` — Hadoop-like jobs, traces, cluster, profiles.
* :mod:`repro.sim` — Real-Sim, Smooth-Sim, campaign, year runner.
* :mod:`repro.analysis` — the evaluation's metrics and tables.
"""

from repro.core import (
    CoolAir,
    CoolAirConfig,
    TemperatureBand,
    all_def,
    all_nd,
    energy_def,
    energy_version,
    select_band,
    temperature_version,
    var_high_recirc,
    var_low_recirc,
    variation_version,
)
from repro.cooling import BaselineController, CoolingCommand, CoolingMode, TKSController
from repro.sim import (
    DayRunner,
    make_realsim,
    make_smoothsim,
    run_year,
    trained_cooling_model,
)
from repro.weather import (
    CHAD,
    ICELAND,
    NEWARK,
    SANTIAGO,
    SINGAPORE,
    NAMED_LOCATIONS,
    world_grid,
)
from repro.workload import FacebookTraceGenerator, NutchTraceGenerator
from repro.reliability import assess, exposure_from_day_traces, yearly_tradeoff
from repro.sim.multizone import MultiZoneDatacenter

__version__ = "1.0.0"

__all__ = [
    "CoolAir",
    "CoolAirConfig",
    "TemperatureBand",
    "select_band",
    "temperature_version",
    "variation_version",
    "energy_version",
    "all_nd",
    "all_def",
    "energy_def",
    "var_low_recirc",
    "var_high_recirc",
    "BaselineController",
    "TKSController",
    "CoolingCommand",
    "CoolingMode",
    "DayRunner",
    "make_realsim",
    "make_smoothsim",
    "run_year",
    "trained_cooling_model",
    "NEWARK",
    "CHAD",
    "SANTIAGO",
    "ICELAND",
    "SINGAPORE",
    "NAMED_LOCATIONS",
    "world_grid",
    "FacebookTraceGenerator",
    "NutchTraceGenerator",
    "assess",
    "exposure_from_day_traces",
    "yearly_tradeoff",
    "MultiZoneDatacenter",
    "__version__",
]
