"""Year-long experiment runner.

The paper limits year-long Smooth-Sim runs by simulating the first day of
each week of the year and repeating the day-long workload on each of those
days (Section 5.1).  ``run_year`` does exactly that for either the
baseline or any CoolAir version, and aggregates the metrics the evaluation
reports: average temperature violations (Figure 8), daily worst-sensor
temperature ranges (Figure 9), and yearly PUE (Figure 10).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import List, Optional, Union

import numpy as np

from repro import constants
from repro.core.coolair import CoolAir
from repro.core.config import CoolAirConfig
from repro.core.modeler import CoolingModel
from repro.errors import ConfigError, SimulationError
from repro.sim.campaign import trained_cooling_model
from repro.sim.engine import (
    BaselineAdapter,
    CoolAirAdapter,
    DayRunner,
    ProfileWorkload,
    make_realsim,
    make_smoothsim,
)
from repro.sim.trace import DayTrace
from repro.weather.climate import Climate, DAYS_PER_YEAR
from repro.workload.traces import Trace


@dataclasses.dataclass
class YearResult:
    """Aggregated metrics of one (system, location, workload) year run."""

    label: str
    climate_name: str
    sampled_days: List[int]
    daily_worst_range_c: List[float]
    daily_outside_range_c: List[float]
    daily_avg_violation_c: List[float]
    daily_max_rate_c_per_hour: List[float]
    cooling_kwh: float
    it_kwh: float
    delivery_overhead: float = constants.POWER_DELIVERY_PUE_OVERHEAD
    # Cooling water drawn over the sampled days, liters; 0 for the
    # air-cooled plants (parasol, chiller) and for pre-water cache entries.
    water_l: float = 0.0
    # Hybrid-plant regime occupancy over the sampled days: hours of
    # mechanical cooling served by the tower vs the chiller (24 h per
    # sampled day).  0 for single-regime plants and older cache entries.
    tower_mech_hours: float = 0.0
    chiller_mech_hours: float = 0.0
    # Per sampled day: fraction of steps under safe-mode (degraded)
    # control — all zeros unless the run injected faults
    # (docs/ROBUSTNESS.md).
    daily_degraded_fraction: List[float] = dataclasses.field(
        default_factory=list
    )
    # Per-day traces, populated only when the run asked for
    # ``keep_traces=True``; excluded from the result cache's JSON codec.
    traces: Optional[List[DayTrace]] = None

    # -- Figure 9 metrics ---------------------------------------------------

    @property
    def avg_range_c(self) -> float:
        """Average of daily worst-sensor ranges over the year."""
        return float(np.mean(self.daily_worst_range_c))

    @property
    def max_range_c(self) -> float:
        """The widest worst-sensor daily range of the year."""
        return float(np.max(self.daily_worst_range_c))

    @property
    def min_range_c(self) -> float:
        return float(np.min(self.daily_worst_range_c))

    @property
    def avg_outside_range_c(self) -> float:
        return float(np.mean(self.daily_outside_range_c))

    @property
    def max_outside_range_c(self) -> float:
        return float(np.max(self.daily_outside_range_c))

    # -- Figure 8 metric -----------------------------------------------------

    @property
    def avg_violation_c(self) -> float:
        """Mean over all readings of degrees above the 30C threshold."""
        return float(np.mean(self.daily_avg_violation_c))

    # -- Figure 10 metric ----------------------------------------------------

    @property
    def degraded_fraction(self) -> float:
        """Year-average fraction of time under safe-mode control."""
        if not self.daily_degraded_fraction:
            return 0.0
        return float(np.mean(self.daily_degraded_fraction))

    @property
    def pue(self) -> float:
        if self.it_kwh <= 0:
            raise SimulationError("PUE undefined with zero IT energy")
        return 1.0 + self.cooling_kwh / self.it_kwh + self.delivery_overhead

    @property
    def wue(self) -> float:
        """Water usage effectiveness: cooling water per IT energy, L/kWh."""
        if self.it_kwh <= 0:
            raise SimulationError("WUE undefined with zero IT energy")
        return self.water_l / self.it_kwh

    def summary_row(self) -> str:
        # The WUE column appears only for water-drawing plants, keeping
        # the default (parasol) row byte-identical to the pre-water form.
        wue = f"  WUE={self.wue:4.2f}L/kWh" if self.water_l > 0 else ""
        return (
            f"{self.label:<16} {self.climate_name:<10} "
            f"viol={self.avg_violation_c:5.2f}C  "
            f"range avg={self.avg_range_c:5.1f} max={self.max_range_c:5.1f}C  "
            f"PUE={self.pue:4.2f}  cooling={self.cooling_kwh:7.1f}kWh{wue}"
        )


def sampled_days(sample_every_days: int = 7) -> List[int]:
    """First day of each week (or each N-day stride) of the year."""
    if sample_every_days < 1:
        raise ConfigError(
            f"sample_every_days must be >= 1, got {sample_every_days}"
        )
    return list(range(0, DAYS_PER_YEAR, sample_every_days))


def run_year(
    system: Union[str, CoolAirConfig],
    climate: Climate,
    trace: Trace,
    model: Optional[CoolingModel] = None,
    smooth_hardware: bool = True,
    sample_every_days: int = 7,
    forecast_bias_c: float = 0.0,
    violation_threshold_c: float = 30.0,
    keep_traces: bool = False,
    plant: str = "parasol",
) -> YearResult:
    """Simulate a year of one management system at one location.

    ``system`` is the string ``"baseline"`` or a :class:`CoolAirConfig`
    (e.g. from :mod:`repro.core.versions`).  The baseline runs on the
    abrupt Parasol hardware it was designed for; CoolAir versions default
    to the smooth hardware of Smooth-Sim (Section 5.1).  ``plant``
    selects the cooling backend (:mod:`repro.cooling.backends`).  Traces
    are deep-copied because temporal scheduling mutates job start times.
    """
    trace = copy.deepcopy(trace)
    is_baseline = isinstance(system, str)
    if is_baseline and system != "baseline":
        raise SimulationError(f"unknown system {system!r}")

    if is_baseline:
        setup = make_realsim(climate, forecast_bias_c=forecast_bias_c, plant=plant)
        adapter = BaselineAdapter()
        label = "Baseline"
    else:
        faults = system.faults if system.faults else None
        maker = make_smoothsim if smooth_hardware else make_realsim
        setup = maker(
            climate, forecast_bias_c=forecast_bias_c, faults=faults, plant=plant
        )
        if model is None:
            gaps = faults.log_gaps if faults is not None else ()
            model = trained_cooling_model(log_gaps=gaps)
        coolair = CoolAir(
            config=system,
            model=model,
            layout=setup.layout,
            forecast_service=setup.forecast,
            smooth_hardware=setup.smooth_hardware,
        )
        adapter = CoolAirAdapter(coolair)
        label = system.name

    workload = ProfileWorkload(trace, setup.layout, float(setup.control_period_s))
    runner = DayRunner(setup, workload, adapter)

    days = sampled_days(sample_every_days)
    result = YearResult(
        label=label,
        climate_name=climate.name,
        sampled_days=days,
        daily_worst_range_c=[],
        daily_outside_range_c=[],
        daily_avg_violation_c=[],
        daily_max_rate_c_per_hour=[],
        cooling_kwh=0.0,
        it_kwh=0.0,
        daily_degraded_fraction=[],
    )
    traces: List[DayTrace] = []
    for day in days:
        day_trace = runner.run_day(day)
        result.daily_worst_range_c.append(day_trace.worst_sensor_range_c())
        result.daily_outside_range_c.append(day_trace.outside_range_c())
        result.daily_avg_violation_c.append(
            day_trace.avg_violation_c(violation_threshold_c)
        )
        result.daily_max_rate_c_per_hour.append(day_trace.max_rate_c_per_hour())
        result.daily_degraded_fraction.append(day_trace.degraded_fraction())
        result.cooling_kwh += day_trace.cooling_energy_kwh()
        result.it_kwh += day_trace.it_energy_kwh()
        result.water_l += day_trace.water_liters()
        result.tower_mech_hours += (
            day_trace.mech_regime_fraction("tower") * 24.0
        )
        result.chiller_mech_hours += (
            day_trace.mech_regime_fraction("chiller") * 24.0
        )
        if keep_traces:
            traces.append(day_trace)
    if keep_traces:
        result.traces = traces
    return result
