"""The day-level simulation engine.

A :class:`DayRunner` integrates the thermal plant at the 2-minute model
step for one day, invoking a management system every control period
(10 minutes) and a workload driver every step.  Two management adapters
are provided — the baseline (extended TKS) and CoolAir — and two workload
drivers: the task-level Hadoop cluster (day experiments) and the fast
demand-profile replay (year experiments).

``make_realsim`` and ``make_smoothsim`` build the two simulator
configurations of Section 5.1: identical except for the cooling hardware
(abrupt Parasol units vs fine-grained smooth units).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.cooling.baseline import BaselineController
from repro.cooling.regimes import CoolingMode
from repro.cooling.units import CoolingUnits, SmoothCoolingUnits
from repro.core.coolair import CoolAir
from repro.core.modeler import MonitoringSample
from repro.core.predictor import PredictorState
from repro.datacenter.layout import DatacenterLayout, parasol_layout
from repro.datacenter.server import PowerState, Server
from repro.errors import ConfigError, SimulationError, WeatherError
from repro.faults import FaultInjector, FaultSchedule
from repro.physics.psychrometrics import absolute_to_relative_humidity
from repro.physics.thermal import PlantInputs, ThermalPlant
from repro.artifacts import tmy_series
from repro.sim.trace import DayTrace, StepRecord
from repro.weather.climate import Climate, SECONDS_PER_DAY
from repro.weather.forecast import ForecastService
from repro.weather.tmy import TMYSeries
from repro.workload.covering import covering_subset
from repro.workload.hadoop import HadoopCluster
from repro.workload.profile import DemandProfile, build_demand_profile
from repro.workload.traces import Trace


@dataclasses.dataclass
class SimSetup:
    """Everything a day run needs besides the management system."""

    climate: Climate
    tmy: TMYSeries
    layout: DatacenterLayout
    plant: ThermalPlant
    units: CoolingUnits
    forecast: ForecastService
    model_step_s: int = 120
    control_period_s: int = 600
    # Optional fault injection (docs/ROBUSTNESS.md); None = fault-free.
    faults: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        if self.control_period_s % self.model_step_s != 0:
            raise ConfigError("control period must be a multiple of the model step")
        if self.layout.num_pods != self.plant.config.num_pods:
            raise ConfigError("layout and plant disagree on pod count")

    @property
    def smooth_hardware(self) -> bool:
        return isinstance(self.units, SmoothCoolingUnits)


def make_realsim(
    climate: Climate,
    forecast_bias_c: float = 0.0,
    process_noise_c: float = 0.0,
    faults: Optional[FaultSchedule] = None,
    plant: str = "parasol",
) -> SimSetup:
    """Real-Sim: abrupt cooling hardware for the selected plant backend.

    ``plant`` only changes hardware granularity for ``parasol`` (the
    alternative plants model variable-speed equipment on both the real
    and smooth settings).
    """
    from repro.cooling.backends import get_backend
    from repro.physics.thermal import ThermalPlantConfig

    # Served from the artifact store (docs/PERFORMANCE.md): generated once
    # per machine, then mmapped read-only — bit-identical to generate_tmy.
    tmy = tmy_series(climate)
    layout = parasol_layout()
    # The Hadoop deployment stores a full dataset copy on a covering subset
    # of servers, which must stay active at all times (Section 4.2).
    covering_subset(layout.all_servers())
    thermal = ThermalPlant(ThermalPlantConfig(process_noise_c=process_noise_c))
    return SimSetup(
        climate=climate,
        tmy=tmy,
        layout=layout,
        plant=thermal,
        units=get_backend(plant).make_units(smooth=False),
        forecast=ForecastService(tmy, bias_c=forecast_bias_c),
        faults=FaultInjector(faults) if faults else None,
    )


def make_smoothsim(
    climate: Climate,
    forecast_bias_c: float = 0.0,
    process_noise_c: float = 0.0,
    faults: Optional[FaultSchedule] = None,
    plant: str = "parasol",
) -> SimSetup:
    """Smooth-Sim: fine-grained fan ramp and variable-speed compressor."""
    from repro.cooling.backends import get_backend

    setup = make_realsim(climate, forecast_bias_c, process_noise_c, faults, plant)
    return dataclasses.replace(setup, units=get_backend(plant).make_units(smooth=True))


# --------------------------------------------------------------------------
# Workload drivers
# --------------------------------------------------------------------------


class ProfileWorkload:
    """Replays a precomputed demand profile (year-scale runs)."""

    def __init__(
        self,
        trace: Trace,
        layout: DatacenterLayout,
        interval_s: float,
        profile: Optional[DemandProfile] = None,
    ) -> None:
        self.trace = trace
        self.layout = layout
        self.interval_s = interval_s
        # ``profile`` lets callers that run many workloads over copies of
        # one trace (the lane engine) share the initial fluid-model build;
        # it must equal ``build_demand_profile`` of the same arguments.
        # ``rebuild`` always recomputes from this instance's own trace.
        self.profile: DemandProfile = (
            profile
            if profile is not None
            else build_demand_profile(
                trace, num_servers=layout.num_servers, interval_s=interval_s
            )
        )
        self._servers: Optional[List[Server]] = None

    @property
    def jobs(self) -> Sequence:
        return self.trace.jobs

    def begin_day(self) -> None:
        """Reset any temporal-scheduling decisions from a previous day."""
        for job in self.trace.jobs:
            job.scheduled_start_s = None

    def rebuild(self) -> None:
        """Recompute the profile after the temporal scheduler moved jobs."""
        self.profile = build_demand_profile(
            self.trace, num_servers=self.layout.num_servers, interval_s=self.interval_s
        )

    def demanded_servers(self, interval_index: int) -> int:
        idx = interval_index % self.profile.num_intervals
        return int(self.profile.demanded_servers[idx])

    def warmup_step(self, dt_s: float, placement_order) -> None:
        """Pre-midnight settling: replay the first interval's demand."""
        self.step(dt_s, 0.0, placement_order)

    def step(self, dt_s: float, time_of_day_s: float, placement_order) -> None:
        """Assign the interval's utilization to active servers."""
        idx = int(time_of_day_s // self.interval_s) % self.profile.num_intervals
        util = self.profile.server_utilization(idx)
        if not 0.0 <= util <= 1.0:
            raise ConfigError(f"utilization {util} out of [0, 1]")
        # Direct assignment: set_utilization's per-server validation and
        # sleep check collapse to this (sleeping/decommissioned servers
        # always land at 0.0), and the server list is fixed for a layout.
        servers = self._servers
        if servers is None:
            servers = self._servers = self.layout.all_servers()
        for server in servers:
            server.utilization = (
                util if server.state is PowerState.ACTIVE else 0.0
            )


class ClusterWorkload:
    """Task-level Hadoop execution (day-scale runs)."""

    def __init__(self, trace: Trace, layout: DatacenterLayout) -> None:
        self.trace = trace
        self.layout = layout
        self.cluster = HadoopCluster(layout.all_servers(), trace)

    @property
    def jobs(self) -> Sequence:
        return self.trace.jobs

    def begin_day(self) -> None:
        for job in self.trace.jobs:
            job.scheduled_start_s = None
        self.cluster = HadoopCluster(self.layout.all_servers(), self.trace)

    def rebuild(self) -> None:
        self.cluster = HadoopCluster(self.layout.all_servers(), self.trace)

    def demanded_servers(self, interval_index: int) -> int:
        return self.cluster.demanded_servers()

    def warmup_step(self, dt_s: float, placement_order) -> None:
        """Pre-midnight settling: do not advance the cluster clock."""

    def step(self, dt_s: float, time_of_day_s: float, placement_order) -> None:
        self.cluster.step(dt_s, placement_order)


# --------------------------------------------------------------------------
# Management adapters
# --------------------------------------------------------------------------


class BaselineAdapter:
    """The extended TKS baseline: cooling regime control only.

    All servers stay active (the baseline does no workload or energy
    management); the control sensor is the warmest (highest-recirculation)
    pod inlet, matching the TKS's "typically warmer area" sensor.
    """

    name = "baseline"

    def __init__(self, controller: Optional[BaselineController] = None) -> None:
        self.controller = controller or BaselineController()

    def reset_day_state(self) -> None:
        """Clear the controller's TKS latches at a day boundary."""
        self.controller.reset()

    def start_day(self, runner: "DayRunner", day_of_year: int) -> None:
        for server in runner.setup.layout.all_servers():
            if server.state is not PowerState.ACTIVE:
                server.activate()

    def control(self, runner: "DayRunner") -> None:
        layout = runner.setup.layout
        control_pod = max(layout.pods, key=lambda pod: pod.recirculation)
        command = self.controller.decide(
            control_temp_c=layout.inlet_sensors[control_pod.pod_id].read(),
            outside_temp_c=layout.outside_temp.read(),
            cold_aisle_rh_pct=layout.cold_aisle_humidity.read(),
            outside_rh_pct=layout.outside_humidity.read(),
        )
        runner.setup.units.apply(command)

    def placement_order(self, runner: "DayRunner"):
        return None  # natural server order


class CoolAirAdapter:
    """Drives a :class:`~repro.core.coolair.CoolAir` instance."""

    def __init__(self, coolair: CoolAir) -> None:
        self.coolair = coolair
        self.name = coolair.config.name
        self._active_pods: Optional[List[int]] = None

    def reset_day_state(self) -> None:
        """Clear CoolAir's day-boundary control state (safe-mode latches)."""
        self.coolair.reset_day_state()

    def start_day(self, runner: "DayRunner", day_of_year: int) -> None:
        workload = runner.workload
        workload.begin_day()
        self.coolair.start_day(day_of_year, workload.jobs)
        if any(job.scheduled_start_s is not None for job in workload.jobs):
            workload.rebuild()

    def control(self, runner: "DayRunner") -> None:
        interval = runner.interval_index
        demanded = runner.workload.demanded_servers(interval)
        active_ids, active_pods = self.coolair.plan_compute(demanded)
        self._active_pods = active_pods
        state = runner.predictor_state()
        command = self.coolair.decide_cooling(state, active_pods)
        runner.degraded_control = self.coolair.last_decision_degraded
        runner.setup.units.apply(command)

    def placement_order(self, runner: "DayRunner"):
        return self.coolair.placement_order()


# --------------------------------------------------------------------------
# The runner
# --------------------------------------------------------------------------


class DayRunner:
    """Simulates whole days of plant + workload + management."""

    def __init__(self, setup: SimSetup, workload, adapter) -> None:
        self.setup = setup
        self.workload = workload
        self.adapter = adapter
        self.interval_index = 0
        self._day = 0
        self._time_of_day_s = 0.0
        # Whether the most recent control decision ran degraded (safe
        # mode); stamped onto every StepRecord until the next decision.
        self.degraded_control = False
        self._injector = setup.faults
        if self._injector is not None:
            self._injector.attach(setup.layout, setup.units)
        # Weather presampled on the model-step grid: per-step queries become
        # indexed reads (bit-identical to interpolation; see SampledWeather).
        try:
            self._weather = setup.tmy.sampled(float(setup.model_step_s))
        except WeatherError:
            self._weather = setup.tmy
        # History needed by the Cooling Predictor.
        self._prev_readings: Optional[np.ndarray] = None
        self._prev_outside_c = 0.0
        self._prev_fan = 0.0
        self.monitoring_log: List[MonitoringSample] = []
        self.collect_monitoring = False

    # -- views for adapters ---------------------------------------------------

    def predictor_state(self) -> PredictorState:
        layout = self.setup.layout
        units = self.setup.units
        readings = layout.inlet_readings()
        prev = self._prev_readings if self._prev_readings is not None else readings
        inside_w = self.setup.plant.state.cold_aisle_mixing_ratio
        return PredictorState(
            mode=units.mode,
            fan_speed=units.fc_fan_speed,
            sensor_temps_c=readings.tolist(),
            prev_sensor_temps_c=prev.tolist(),
            outside_temp_c=layout.outside_temp.read(),
            prev_outside_temp_c=self._prev_outside_c,
            prev_fan_speed=self._prev_fan,
            utilization=layout.utilization(),
            inside_mixing_ratio=inside_w,
            outside_mixing_ratio=self._weather.mixing_ratio(self._abs_time_s),
        )

    # -- execution --------------------------------------------------------------

    def run_day(
        self,
        day_of_year: int,
        reset_plant: bool = True,
        warmup_hours: float = 2.0,
    ) -> DayTrace:
        """Simulate one full day; returns its trace.

        ``warmup_hours`` of pre-midnight operation are simulated (under the
        same controller) but not recorded, so the day's metrics reflect the
        controller's behavior rather than the arbitrary initial state.
        """
        setup = self.setup
        dt = float(setup.model_step_s)
        steps = int(SECONDS_PER_DAY // setup.model_step_s)
        steps_per_control = setup.control_period_s // setup.model_step_s
        self._day = day_of_year
        self.degraded_control = False
        if self._injector is not None:
            self._injector.begin_day(day_of_year)
        trace = DayTrace(day_of_year, label=self.adapter.name)

        start_t = day_of_year * SECONDS_PER_DAY
        outside0 = self._weather.temperature_c(start_t)
        if reset_plant:
            setup.plant.reset(
                temp_c=outside0 + 6.0,
                mixing_ratio=self._weather.mixing_ratio(start_t),
            )
            # Day entry is a clean slate: actuators off, controller latches
            # cleared, disks at their initial temperature.  This makes every
            # sampled day independent of which day ran before it — the
            # invariant the day-unfolded lane scheduler relies on (installed
            # actuator faults survive; the injector re-applies them above).
            setup.units.reset()
            setup.layout.disks.reset_thermal()
            self.adapter.reset_day_state()
        warmup_steps = int(warmup_hours * 3600 / dt) if reset_plant else 0
        self._time_of_day_s = -warmup_steps * dt
        self._seed_sensors(start_t + self._time_of_day_s)
        self.adapter.start_day(self, day_of_year)

        for step in range(-warmup_steps, steps):
            self._time_of_day_s = step * dt
            abs_t = start_t + self._time_of_day_s
            if step % steps_per_control == 0:
                self.interval_index = max(0, step) // steps_per_control
                self.adapter.control(self)
            order = self.adapter.placement_order(self)
            if step >= 0:
                self.workload.step(dt, self._time_of_day_s, order)
            else:
                self.workload.warmup_step(dt, order)
            record = self._advance_plant(abs_t, dt)
            if step >= 0:
                trace.append(record)
        return trace

    @property
    def _abs_time_s(self) -> float:
        return self._day * SECONDS_PER_DAY + self._time_of_day_s

    def _seed_sensors(self, abs_t: float) -> None:
        setup = self.setup
        if self._injector is not None:
            self._injector.set_time(abs_t)
        state = setup.plant.state
        outside_c = self._weather.temperature_c(abs_t)
        outside_rh = self._weather.relative_humidity_pct(abs_t)
        inside_rh = absolute_to_relative_humidity(
            state.cold_aisle_mixing_ratio, float(np.mean(state.pod_inlet_temp_c))
        )
        setup.layout.observe(
            pod_inlet_temp_c=state.pod_inlet_temp_c,
            cold_aisle_rh_pct=inside_rh,
            outside_temp_c=outside_c,
            outside_rh_pct=outside_rh,
        )
        setup.units.observe_boundary(outside_c, outside_rh)
        self._prev_readings = setup.layout.inlet_readings()
        self._prev_outside_c = setup.layout.outside_temp.read()
        self._prev_fan = setup.units.fc_fan_speed

    def _advance_plant(self, abs_t: float, dt: float) -> StepRecord:
        setup = self.setup
        layout = setup.layout
        units = setup.units
        if self._injector is not None:
            self._injector.set_time(abs_t)

        # Remember "last" values before the step for the Predictor.
        self._prev_readings = layout.inlet_readings()
        self._prev_outside_c = layout.outside_temp.read()
        self._prev_fan = units.fc_fan_speed

        outside_c = self._weather.temperature_c(abs_t)
        outside_w = self._weather.mixing_ratio(abs_t)
        outside_rh = self._weather.relative_humidity_pct(abs_t)

        # Boundary before plant_inputs: weather-coupled units (cooling
        # tower capacity, chiller lift) read it when shaping the inputs.
        units.observe_boundary(outside_c, outside_rh)

        pod_powers = layout.pod_it_power_w()
        inputs = units.plant_inputs()
        inputs.pod_it_power_w = pod_powers
        inputs.outside_temp_c = outside_c
        inputs.outside_mixing_ratio = outside_w
        state = setup.plant.step(inputs, dt)

        inlet = state.pod_inlet_temp_c
        inside_rh = absolute_to_relative_humidity(
            state.cold_aisle_mixing_ratio,
            float(np.add.reduce(inlet) / inlet.shape[0]),
        )
        layout.observe(
            pod_inlet_temp_c=state.pod_inlet_temp_c,
            cold_aisle_rh_pct=inside_rh,
            outside_temp_c=outside_c,
            outside_rh_pct=outside_rh,
        )
        # Representative disk utilization: the mean utilization of *active*
        # servers (a sleeping server's disk is spun down and not exposed;
        # the active disks run at their own duty, not the fleet average).
        active_utils = [
            s.utilization
            for pod in layout.pods
            for s in pod.servers
            if s.state is PowerState.ACTIVE
        ]
        per_active = float(np.mean(active_utils)) if active_utils else 0.0
        disk_util = min(1.0, 0.15 + 0.7 * per_active)
        disk_temps = layout.disks.step(state.pod_inlet_temp_c, disk_util, dt)

        it_power = sum(pod_powers)
        cooling_power, water_l = units.step_resources(it_power, dt)
        record = StepRecord(
            time_s=self._time_of_day_s,
            outside_temp_c=layout.outside_temp.read(),
            sensor_temps_c=tuple(layout.inlet_readings().tolist()),
            mode=units.mode,
            fc_fan_speed=units.fc_fan_speed,
            ac_compressor_duty=units.ac_compressor_duty,
            cooling_power_w=cooling_power,
            it_power_w=it_power,
            inside_rh_pct=layout.cold_aisle_humidity.read(),
            outside_rh_pct=layout.outside_humidity.read(),
            utilization=layout.utilization(),
            disk_temps_c=tuple(float(t) for t in disk_temps),
            degraded=self.degraded_control,
            water_l=water_l,
            regime=getattr(units, "active_regime", ""),
        )
        if self.collect_monitoring:
            self.monitoring_log.append(
                MonitoringSample(
                    time_s=abs_t,
                    mode=units.mode,
                    fan_speed=units.fc_fan_speed,
                    sensor_temps_c=record.sensor_temps_c,
                    outside_temp_c=record.outside_temp_c,
                    utilization=record.utilization,
                    inside_mixing_ratio=state.cold_aisle_mixing_ratio,
                    outside_mixing_ratio=outside_w,
                    cooling_power_w=cooling_power,
                )
            )
        return record
