"""Multi-zone datacenters: one CoolAir manager per cooling zone.

Section 6: "For a large datacenter with multiple independent 'cooling
zones' (e.g., containers), each of them would have its own CoolAir-like
manager."  This module scales the single-container machinery out: the
offered workload is partitioned across zones, each zone runs its own
plant, cooling units, and manager, and fleet-level metrics aggregate
across zones.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

import numpy as np

from repro import constants
from repro.core.coolair import CoolAir
from repro.core.config import CoolAirConfig
from repro.core.modeler import CoolingModel
from repro.errors import ConfigError, SimulationError
from repro.sim.engine import (
    BaselineAdapter,
    CoolAirAdapter,
    DayRunner,
    ProfileWorkload,
    make_realsim,
    make_smoothsim,
)
from repro.sim.trace import DayTrace
from repro.weather.climate import Climate
from repro.workload.job import Job
from repro.workload.traces import Trace


def partition_trace(trace: Trace, num_zones: int) -> List[Trace]:
    """Deal jobs round-robin across zones (arrival order preserved)."""
    if num_zones < 1:
        raise ConfigError("num_zones must be >= 1")
    buckets: List[List[Job]] = [[] for _ in range(num_zones)]
    for index, job in enumerate(trace.jobs):
        buckets[index % num_zones].append(
            dataclasses.replace(job, scheduled_start_s=None)
        )
    return [
        Trace(name=f"{trace.name}-zone{z}", jobs=jobs)
        for z, jobs in enumerate(buckets)
    ]


@dataclasses.dataclass
class ZoneDayResult:
    """One zone's day trace plus its identity."""

    zone: int
    trace: DayTrace


@dataclasses.dataclass
class FleetDayResult:
    """Aggregated fleet metrics for one day."""

    zones: List[ZoneDayResult]

    @property
    def worst_zone_range_c(self) -> float:
        return max(z.trace.worst_sensor_range_c() for z in self.zones)

    @property
    def max_temp_c(self) -> float:
        return max(z.trace.max_sensor_temp_c() for z in self.zones)

    @property
    def cooling_kwh(self) -> float:
        return sum(z.trace.cooling_energy_kwh() for z in self.zones)

    @property
    def it_kwh(self) -> float:
        return sum(z.trace.it_energy_kwh() for z in self.zones)

    @property
    def water_l(self) -> float:
        return sum(z.trace.water_liters() for z in self.zones)

    def fleet_pue(
        self,
        delivery_overhead: float = constants.POWER_DELIVERY_PUE_OVERHEAD,
    ) -> float:
        """PUE over the whole fleet's energy, not a mean of zone PUEs."""
        if self.it_kwh <= 0:
            raise SimulationError("PUE undefined with zero IT energy")
        return 1.0 + self.cooling_kwh / self.it_kwh + delivery_overhead

    def fleet_wue(self) -> float:
        """WUE over the whole fleet's water and IT energy, L/kWh."""
        if self.it_kwh <= 0:
            raise SimulationError("WUE undefined with zero IT energy")
        return self.water_l / self.it_kwh

    def zone_spread_c(self) -> float:
        """Max-minus-min of zone maximum temperatures (zone imbalance)."""
        maxima = [z.trace.max_sensor_temp_c() for z in self.zones]
        return max(maxima) - min(maxima)


class MultiZoneDatacenter:
    """N independent cooling zones under per-zone management."""

    def __init__(
        self,
        climate: Climate,
        trace: Trace,
        num_zones: int,
        system: Union[str, CoolAirConfig],
        model: Optional[CoolingModel] = None,
        smooth_hardware: bool = True,
        plant: str = "parasol",
    ) -> None:
        if num_zones < 1:
            raise ConfigError("num_zones must be >= 1")
        is_baseline = isinstance(system, str)
        if is_baseline and system != "baseline":
            raise ConfigError(f"unknown system {system!r}")
        if not is_baseline and model is None:
            raise ConfigError("CoolAir zones need a trained model")

        self.num_zones = num_zones
        self.runners: List[DayRunner] = []
        for zone_trace in partition_trace(trace, num_zones):
            if is_baseline:
                setup = make_realsim(climate, plant=plant)
                adapter = BaselineAdapter()
            else:
                maker = make_smoothsim if smooth_hardware else make_realsim
                setup = maker(climate, plant=plant)
                coolair = CoolAir(
                    system, model, setup.layout, setup.forecast,
                    smooth_hardware=setup.smooth_hardware,
                )
                adapter = CoolAirAdapter(coolair)
            workload = ProfileWorkload(zone_trace, setup.layout, 600.0)
            self.runners.append(DayRunner(setup, workload, adapter))

    def run_day(self, day_of_year: int) -> FleetDayResult:
        """Simulate all zones for one day.

        Zones are independent (the paper's point), so they run
        sequentially without interaction; weather is shared.
        """
        zones = [
            ZoneDayResult(zone=z, trace=runner.run_day(day_of_year))
            for z, runner in enumerate(self.runners)
        ]
        return FleetDayResult(zones=zones)
