"""Validation harnesses: model prediction error (Figure 5) and simulator
agreement (Figure 6 / Section 5.1).

``prediction_error_cdf`` replays a held-out monitoring log through the
learned Cooling Model, predicting 2 or 10 minutes ahead along the *actual*
regime sequence, and returns the absolute prediction errors — the data
behind Figure 5's CDFs, including the with/without-regime-transition
split.

``trace_agreement`` compares two day traces (e.g. a "real" run and its
simulation) the way Section 5.1 validates Real-Sim: fraction of sensor
readings within 2C, plus relative errors on maximum temperature, daily
range, and cooling energy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.cooling.regimes import regime_key
from repro.core.modeler import CoolingModel, MonitoringSample, temp_features
from repro.errors import SimulationError
from repro.sim.trace import DayTrace


def prediction_errors(
    model: CoolingModel,
    log: Sequence[MonitoringSample],
    horizon_steps: int,
    exclude_transitions: bool = False,
) -> np.ndarray:
    """Absolute temperature prediction errors over a monitoring log.

    For each log position, iterate the model ``horizon_steps`` 2-minute
    steps ahead following the regimes the log actually used, and compare
    with the measured temperatures.  ``exclude_transitions`` keeps only
    windows whose regime never changed (Figure 5's "no-transition" CDFs).
    """
    if horizon_steps < 1:
        raise SimulationError("horizon_steps must be >= 1")
    errors: List[float] = []
    num_sensors = model.num_sensors
    for i in range(1, len(log) - horizon_steps):
        window = log[i : i + horizon_steps + 1]
        has_transition = any(
            window[j].mode is not window[j + 1].mode for j in range(len(window) - 1)
        )
        if exclude_transitions and has_transition:
            continue
        # Iterate the model along the actual inputs.
        temps = list(log[i].sensor_temps_c)
        prev_temps = list(log[i - 1].sensor_temps_c)
        prev_sample = log[i - 1]
        for j in range(horizon_steps):
            cur = window[j]
            nxt = window[j + 1]
            key = regime_key(cur.mode, nxt.mode)
            synthetic = dataclasses.replace(cur, sensor_temps_c=tuple(temps))
            synthetic_prev = dataclasses.replace(
                prev_sample, sensor_temps_c=tuple(prev_temps)
            )
            new_temps = [
                model.predict_temp(
                    key, s, temp_features(synthetic, synthetic_prev, s)
                )
                for s in range(num_sensors)
            ]
            prev_temps = temps
            prev_sample = synthetic
            temps = new_temps
        actual = window[-1].sensor_temps_c
        errors.extend(abs(p - a) for p, a in zip(temps, actual))
    return np.asarray(errors)


def prediction_error_cdf(
    model: CoolingModel,
    log: Sequence[MonitoringSample],
    horizon_steps: int,
    exclude_transitions: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted errors, cumulative percent) — the Figure 5 curves."""
    errors = prediction_errors(model, log, horizon_steps, exclude_transitions)
    if errors.size == 0:
        raise SimulationError("no prediction windows matched the filter")
    ordered = np.sort(errors)
    percent = 100.0 * np.arange(1, ordered.size + 1) / ordered.size
    return ordered, percent


def fraction_within(errors: np.ndarray, threshold: float) -> float:
    """Share of errors at or below ``threshold`` (e.g. 1C)."""
    if errors.size == 0:
        raise SimulationError("no errors to summarize")
    return float(np.mean(errors <= threshold))


@dataclasses.dataclass(frozen=True)
class TraceAgreement:
    """How closely two day traces match (Section 5.1 validation)."""

    fraction_within_2c: float
    max_temp_rel_error: float
    range_rel_error: float
    cooling_energy_rel_error: float

    @property
    def overall_rel_error(self) -> float:
        """Mean of the three headline relative errors."""
        return (
            self.max_temp_rel_error
            + self.range_rel_error
            + self.cooling_energy_rel_error
        ) / 3.0


def trace_agreement(reference: DayTrace, simulated: DayTrace) -> TraceAgreement:
    """Compare a simulated day against its reference execution."""
    ref_temps = reference.sensor_temps()
    sim_temps = simulated.sensor_temps()
    n = min(ref_temps.shape[0], sim_temps.shape[0])
    if n == 0:
        raise SimulationError("cannot compare empty traces")
    diffs = np.abs(ref_temps[:n] - sim_temps[:n])
    within = float(np.mean(diffs <= 2.0))

    def rel(ref_value: float, sim_value: float) -> float:
        if abs(ref_value) < 1e-9:
            return 0.0 if abs(sim_value) < 1e-9 else 1.0
        return abs(sim_value - ref_value) / abs(ref_value)

    return TraceAgreement(
        fraction_within_2c=within,
        max_temp_rel_error=rel(
            reference.max_sensor_temp_c(), simulated.max_sensor_temp_c()
        ),
        range_rel_error=rel(
            reference.worst_sensor_range_c(), simulated.worst_sensor_range_c()
        ),
        cooling_energy_rel_error=rel(
            reference.cooling_energy_kwh(), simulated.cooling_energy_kwh()
        ),
    )
