"""The one place that decides which numeric path a cell runs on.

Before this module, the lane/scalar/day-unfold decision was smeared
across :func:`repro.analysis.experiments.effective_engine`, the campaign
runner's partitioning, and defensive guards in :mod:`repro.sim.lanes`.
They all agreed, but each restated a subset of the rules.  This module
states the rules once; the callers above delegate here (the ``lanes.py``
constructor keeps its guards purely as tripwires against being handed a
config this module would have routed elsewhere).

The rules, in order:

* An unknown requested engine is an error (``lanes``/``scalar`` only).
* ``scalar`` requested -> scalar, always (the pinned reference path).
* Exotic timing (anything but the standard 120 s model step / 600 s
  control period) -> scalar: the lane engine's rate-split caches assume
  the standard grid.
* A non-empty fault schedule -> scalar: faults are per-lane, per-day
  mutable state the SoA batches do not model.
* Everything else -> lanes.  Since the lane-vectorized cooling backends
  landed, the plant no longer forces scalar: chiller, cooling_tower,
  and hybrid cells ride lanes (and day-unfolding) bit-identically.

Day-unfolding additionally requires every sampled day to be provably
independent of the days before it:

* scalar cells never unfold (faulted cells land here via the engine
  rules above — fault schedules are day-granular state the unfold
  cannot replay);
* deferrable workloads never unfold (their traces exist to be
  temporally rescheduled); and
* any temporal-scheduling policy other than ``NONE`` never unfolds
  (the scheduler mutates job start times across days).

See the engine-eligibility table in ``docs/EXPERIMENTS.md`` for the
same rules cell-shape by cell-shape.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.core.config import CoolAirConfig

SIM_ENGINES = ("lanes", "scalar")


@dataclasses.dataclass(frozen=True)
class EngineDecision:
    """Where a cell runs, and why it cannot run faster.

    ``engine`` is ``"lanes"`` or ``"scalar"``; ``day_unfold`` says
    whether the cell's sampled days may be unfolded into sibling lanes.
    ``reason`` carries the first rule that forced a downgrade (empty
    when the cell rides the fast path end to end).
    """

    engine: str
    day_unfold: bool
    reason: str = ""


def decide_engine(
    system: Union[str, CoolAirConfig],
    engine: Optional[str] = None,
    plant: str = "parasol",
    deferrable: bool = False,
) -> EngineDecision:
    """The single decision function for a cell's numeric path.

    ``system`` is ``"baseline"`` (or any plain string) or a resolved
    :class:`CoolAirConfig`; ``engine`` is the *requested* engine
    (``None`` means "the default", which the caller resolves — this
    function treats ``None`` as ``"lanes"`` since only the lane request
    has anything to decide).  ``plant`` participates in the signature
    because it used to force scalar; it deliberately no longer does.
    """
    requested = engine or "lanes"
    if requested not in SIM_ENGINES:
        raise ValueError(
            f"unknown sim engine {requested!r}; choices: {SIM_ENGINES}"
        )
    if requested == "scalar":
        return EngineDecision("scalar", False, "scalar engine requested")
    if not isinstance(system, str):
        from repro.sim.lanes import CONTROL_PERIOD_S, MODEL_STEP_S

        if (
            system.model_step_s != MODEL_STEP_S
            or system.control_period_s != CONTROL_PERIOD_S
        ):
            return EngineDecision(
                "scalar",
                False,
                "exotic timing (lane caches assume 120 s / 600 s)",
            )
        if getattr(system, "faults", None):
            return EngineDecision(
                "scalar", False, "fault schedules are scalar-only state"
            )
    if deferrable:
        return EngineDecision(
            "lanes", False, "deferrable traces are temporally rescheduled"
        )
    if not isinstance(system, str):
        from repro.core.config import TemporalPolicy

        if system.temporal is not TemporalPolicy.NONE:
            return EngineDecision(
                "lanes", False, "temporal scheduling couples days"
            )
    return EngineDecision("lanes", True)
