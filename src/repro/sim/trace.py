"""Simulation traces: per-step records of one simulated day."""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from repro import constants
from repro.cooling.regimes import CoolingMode
from repro.errors import SimulationError


# -- day-metric formulas -------------------------------------------------------
#
# Module-level array functions so the per-record DayTrace path and the
# lane-batched engine compute every day metric with the *same* expressions
# on the same-shaped arrays (bit-identical results by construction).


def worst_sensor_range_from(temps: np.ndarray) -> float:
    """Worst per-sensor (max - min) over a (steps, sensors) day matrix."""
    if temps.size == 0:
        raise SimulationError("empty trace")
    ranges = temps.max(axis=0) - temps.min(axis=0)
    return float(ranges.max())


def outside_range_from(outside: np.ndarray) -> float:
    return float(outside.max() - outside.min())


def avg_violation_from(temps: np.ndarray, threshold_c: float) -> float:
    return float(np.mean(np.maximum(0.0, temps - threshold_c)))


def max_rate_from(temps: np.ndarray, times_s: np.ndarray) -> float:
    if len(times_s) < 2:
        return 0.0
    dt_h = np.diff(times_s)[:, None] / 3600.0
    slopes = np.abs(np.diff(temps, axis=0)) / dt_h
    return float(slopes.max())


def energy_kwh_from(powers_w: np.ndarray, times_s: np.ndarray) -> float:
    if len(times_s) < 2:
        return 0.0
    dt = float(np.median(np.diff(times_s)))
    return float(np.sum(powers_w)) * dt / 3.6e6


@dataclasses.dataclass(frozen=True)
class StepRecord:
    """State at the end of one model step."""

    time_s: float
    outside_temp_c: float
    sensor_temps_c: Tuple[float, ...]
    mode: CoolingMode
    fc_fan_speed: float
    ac_compressor_duty: float
    cooling_power_w: float
    it_power_w: float
    inside_rh_pct: float
    outside_rh_pct: float
    utilization: float  # fraction of active servers
    disk_temps_c: Tuple[float, ...] = ()
    # Whether the step ran under a degraded (safe-mode) control decision;
    # always False for the baseline and for fault-free runs.
    degraded: bool = False
    # Water drawn by the cooling plant over this step, liters; always 0
    # for the air-cooled plants (parasol, chiller).
    water_l: float = 0.0
    # The hybrid plant's active regime this step ("free_cooling",
    # "tower", "chiller", or "off"); empty for single-regime plants.
    regime: str = ""


class DayTrace:
    """The full record of one simulated day."""

    def __init__(self, day_of_year: int, label: str = "") -> None:
        self.day_of_year = day_of_year
        self.label = label
        self.records: List[StepRecord] = []

    def append(self, record: StepRecord) -> None:
        if self.records and record.time_s <= self.records[-1].time_s:
            raise SimulationError("trace records must advance in time")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- column accessors ------------------------------------------------------

    def times_s(self) -> np.ndarray:
        return np.array([r.time_s for r in self.records])

    def sensor_temps(self) -> np.ndarray:
        """(steps, sensors) inlet temperature matrix."""
        return np.array([r.sensor_temps_c for r in self.records])

    def outside_temps(self) -> np.ndarray:
        return np.array([r.outside_temp_c for r in self.records])

    def cooling_powers_w(self) -> np.ndarray:
        return np.array([r.cooling_power_w for r in self.records])

    def it_powers_w(self) -> np.ndarray:
        return np.array([r.it_power_w for r in self.records])

    def inside_rh(self) -> np.ndarray:
        return np.array([r.inside_rh_pct for r in self.records])

    def water_draws_l(self) -> np.ndarray:
        return np.array([r.water_l for r in self.records])

    def modes(self) -> List[CoolingMode]:
        return [r.mode for r in self.records]

    # -- day-level metrics -------------------------------------------------------

    def worst_sensor_range_c(self) -> float:
        """The paper's daily variation metric: per-sensor (max - min),
        worst sensor of the day (Figure 9)."""
        return worst_sensor_range_from(self.sensor_temps())

    def outside_range_c(self) -> float:
        return outside_range_from(self.outside_temps())

    def max_sensor_temp_c(self) -> float:
        return float(self.sensor_temps().max())

    def avg_violation_c(self, threshold_c: float = 30.0) -> float:
        """Mean over all sensor readings of max(0, reading - threshold)."""
        return avg_violation_from(self.sensor_temps(), threshold_c)

    def max_rate_c_per_hour(self) -> float:
        """Steepest sensor temperature slope of the day."""
        return max_rate_from(self.sensor_temps(), self.times_s())

    def cooling_energy_kwh(self) -> float:
        return energy_kwh_from(self.cooling_powers_w(), self.times_s())

    def it_energy_kwh(self) -> float:
        return energy_kwh_from(self.it_powers_w(), self.times_s())

    def water_liters(self) -> float:
        """Total cooling water drawn over the day."""
        if not self.records:
            return 0.0
        return float(np.sum(self.water_draws_l()))

    def pue(
        self,
        delivery_overhead: float = constants.POWER_DELIVERY_PUE_OVERHEAD,
    ) -> float:
        it = self.it_energy_kwh()
        if it <= 0:
            raise SimulationError("PUE undefined with zero IT energy")
        return 1.0 + self.cooling_energy_kwh() / it + delivery_overhead

    def wue(self) -> float:
        """Water usage effectiveness: cooling water per IT energy, L/kWh."""
        it = self.it_energy_kwh()
        if it <= 0:
            raise SimulationError("WUE undefined with zero IT energy")
        return self.water_liters() / it

    def time_in_mode(self, mode: CoolingMode) -> float:
        """Fraction of the day spent in a cooling mode."""
        modes = self.modes()
        if not modes:
            return 0.0
        return sum(1 for m in modes if m is mode) / len(modes)

    def mech_regime_fraction(self, regime: str) -> float:
        """Fraction of the day a hybrid plant spent in a mechanical
        regime (``"tower"`` or ``"chiller"``); 0 for other plants."""
        if not self.records:
            return 0.0
        count = sum(1 for r in self.records if r.regime == regime)
        return count / len(self.records)

    def rh_violation_fraction(self, limit_pct: float = 80.0) -> float:
        """Fraction of steps with cold-aisle RH above the limit."""
        rh = self.inside_rh()
        if rh.size == 0:
            return 0.0
        return float(np.mean(rh > limit_pct))

    # -- degradation (docs/ROBUSTNESS.md) -------------------------------------

    def degraded_fraction(self) -> float:
        """Fraction of the day spent under safe-mode (degraded) control."""
        if not self.records:
            return 0.0
        flags = np.array([r.degraded for r in self.records], dtype=float)
        return float(np.mean(flags))

    def degradation_intervals(self) -> List[Tuple[float, float]]:
        """Maximal [start, end] time spans of contiguous degraded steps."""
        intervals: List[Tuple[float, float]] = []
        start: float = 0.0
        last: float = 0.0
        open_interval = False
        for record in self.records:
            if record.degraded:
                if not open_interval:
                    start = record.time_s
                    open_interval = True
                last = record.time_s
            elif open_interval:
                intervals.append((start, last))
                open_interval = False
        if open_interval:
            intervals.append((start, last))
        return intervals
