"""The model-learning campaign (Section 4.2).

The paper collects 1.5 months of temperature, humidity, and power data
from Parasol, intentionally generating extreme situations by changing the
cooling setup (e.g., the temperature setpoint) to enrich the dataset.
``run_learning_campaign`` reproduces that: it runs the plant under the TKS
controller across seasonally spread days while scripting aggressive
setpoint excursions and utilization swings, then fits the Cooling Model.

``probe_recirculation`` reproduces the Cooling Modeler's pod ranking
probe: schedule load on one pod at a time and observe the inlet
temperature response (Section 3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cooling.tks import TKSController
from repro.core.modeler import (
    CoolingLearner,
    CoolingModel,
    MonitoringSample,
    rank_pods_by_recirculation,
)
from repro.datacenter.server import PowerState
from repro.physics.thermal import PlantInputs, ThermalPlant
from repro.sim.engine import DayRunner, SimSetup, make_realsim
from repro.weather.climate import Climate
from repro.weather.locations import NEWARK

# Days of year the default campaign samples: spread across seasons so the
# TKS visits every regime (closed on cold days, AC on hot days).
DEFAULT_CAMPAIGN_DAYS = (5, 40, 80, 120, 160, 200, 220, 250, 290, 330)

# Scripted setpoint excursions, cycled every 3 hours within each day.
SETPOINT_SCRIPT_C = (12.0, 18.0, 24.0, 30.0, 36.0, 15.0, 27.0, 21.0)

# Scripted active-server counts, cycled every 2 hours.
ACTIVE_SCRIPT = (64, 32, 48, 16, 64, 24, 56, 40, 64, 48, 32, 64)


class _ScriptedWorkload:
    """Drives utilization and active-server patterns for the campaign."""

    def __init__(self, layout) -> None:
        self.layout = layout

    @property
    def jobs(self) -> Sequence:
        return ()

    def begin_day(self) -> None:
        pass

    def rebuild(self) -> None:
        pass

    def demanded_servers(self, interval_index: int) -> int:
        return ACTIVE_SCRIPT[(interval_index // 12) % len(ACTIVE_SCRIPT)]

    def warmup_step(self, dt_s: float, placement_order) -> None:
        self.step(dt_s, 0.0, placement_order)

    def step(self, dt_s: float, time_of_day_s: float, placement_order) -> None:
        hours = time_of_day_s / 3600.0
        active_count = ACTIVE_SCRIPT[int(hours // 2) % len(ACTIVE_SCRIPT)]
        util = 0.25 + 0.6 * np.sin(np.pi * hours / 9.0) ** 2
        for i, server in enumerate(self.layout.all_servers()):
            if i < active_count:
                if server.state is not PowerState.ACTIVE:
                    server.activate()
                server.set_utilization(float(util))
            else:
                server.holds_job_data = False
                server.in_covering_subset = False
                if server.state is not PowerState.SLEEP:
                    server.sleep()
                server.set_utilization(0.0)


class _CampaignAdapter:
    """TKS control with scripted setpoint excursions."""

    name = "campaign"

    def __init__(self) -> None:
        self.tks = TKSController()

    def reset_day_state(self) -> None:
        self.tks.reset()

    def start_day(self, runner: DayRunner, day_of_year: int) -> None:
        pass

    def control(self, runner: DayRunner) -> None:
        hours = runner._time_of_day_s / 3600.0
        setpoint = SETPOINT_SCRIPT_C[int(hours // 3) % len(SETPOINT_SCRIPT_C)]
        self.tks.set_setpoint(setpoint)
        layout = runner.setup.layout
        control_pod = max(layout.pods, key=lambda pod: pod.recirculation)
        command = self.tks.decide(
            control_temp_c=layout.inlet_sensors[control_pod.pod_id].read(),
            outside_temp_c=layout.outside_temp.read(),
        )
        runner.setup.units.apply(command)

    def placement_order(self, runner: DayRunner):
        return None


def run_learning_campaign(
    climate: Climate = NEWARK,
    days: Sequence[int] = DEFAULT_CAMPAIGN_DAYS,
    setup: Optional[SimSetup] = None,
) -> List[MonitoringSample]:
    """Collect the monitoring log the Cooling Learner trains on."""
    if setup is None:
        setup = make_realsim(climate)
    runner = DayRunner(setup, _ScriptedWorkload(setup.layout), _CampaignAdapter())
    runner.collect_monitoring = True
    for day in days:
        runner.run_day(day)
    return runner.monitoring_log


_MODEL_CACHE: Dict[tuple, CoolingModel] = {}


def trained_cooling_model(
    climate: Climate = NEWARK,
    days: Sequence[int] = DEFAULT_CAMPAIGN_DAYS,
    use_cache: bool = True,
    log_gaps: Sequence = (),
) -> CoolingModel:
    """The learned Cooling Model, cached per (climate, days, log gaps).

    The paper learns one model from Parasol (sited near Newark) and uses
    the fan-speed/outside-temperature inputs to generalize; callers
    normally take the default.  ``log_gaps`` (a sequence of
    :class:`~repro.faults.LogGapFault`) punches holes in the monitoring
    log before learning — a gapped log may starve whole regimes below
    ``min_samples``, so core-regime enforcement is relaxed and the
    degraded model relies on CoolAir's safe-mode fallback at decide time.

    Beyond the per-process memory cache, models persist to the artifact
    store (:mod:`repro.artifacts`) keyed by (climate, days, gaps, code
    fingerprint): the learning campaign runs once ever per key on a
    machine, not once per worker process per session.  ``use_cache=False``
    bypasses both layers and always retrains.
    """
    from repro import artifacts

    gaps = tuple(log_gaps)
    key = (climate.name, tuple(days), gaps)
    if use_cache and key in _MODEL_CACHE:
        return _MODEL_CACHE[key]
    model = artifacts.load_model(climate, days, gaps) if use_cache else None
    if model is None:
        log = run_learning_campaign(climate, days)
        if gaps:
            from repro.faults import apply_log_gaps

            log = apply_log_gaps(log, gaps)
        learner = CoolingLearner(num_sensors=4, require_core_regimes=not gaps)
        model = learner.learn(log)
        if use_cache:
            artifacts.save_model(climate, days, gaps, model)
    if use_cache:
        _MODEL_CACHE[key] = model
    return model


def probe_recirculation(
    plant: Optional[ThermalPlant] = None,
    pod_power_w: float = 480.0,
    probe_hours: float = 2.0,
    fan_speed: float = 0.5,
    outside_temp_c: float = 15.0,
) -> List[float]:
    """Observed inlet temperature rise when load runs on each pod alone.

    Returns one rise per pod; feed to
    :func:`repro.core.modeler.rank_pods_by_recirculation`.
    """
    plant = plant or ThermalPlant()
    num_pods = plant.config.num_pods
    idle = [40.0] * num_pods
    rises: List[float] = []
    for pod in range(num_pods):
        # Settle at the idle equilibrium first, then add the load and
        # measure the pod's inlet response relative to that equilibrium.
        plant.reset(temp_c=outside_temp_c + 5.0, mixing_ratio=0.006)
        settle = PlantInputs(
            fc_fan_speed=fan_speed,
            pod_it_power_w=list(idle),
            outside_temp_c=outside_temp_c,
            outside_mixing_ratio=0.006,
        )
        plant.step(settle, probe_hours * 3600.0)
        settled = float(plant.state.pod_inlet_temp_c[pod])
        powers = list(idle)
        powers[pod] = pod_power_w
        loaded = PlantInputs(
            fc_fan_speed=fan_speed,
            pod_it_power_w=powers,
            outside_temp_c=outside_temp_c,
            outside_mixing_ratio=0.006,
        )
        plant.step(loaded, probe_hours * 3600.0)
        rises.append(float(plant.state.pod_inlet_temp_c[pod]) - settled)
    return rises


def learned_recirculation_ranking(**kwargs) -> List[int]:
    """Pod ids ranked by recirculation potential, strongest first."""
    return rank_pods_by_recirculation(probe_recirculation(**kwargs))
