"""Simulators: Real-Sim, Smooth-Sim, the learning campaign, and the
year-long experiment runner.

Real-Sim simulates Hadoop on Parasol (abrupt cooling hardware) with or
without CoolAir; Smooth-Sim swaps in the fine-grained cooling units of
Section 5.1.  Year-long runs simulate the first day of each week of the
year, repeating the day-long workload, exactly as the paper does.
"""

from repro.sim.trace import DayTrace, StepRecord
from repro.sim.campaign import (
    probe_recirculation,
    run_learning_campaign,
    trained_cooling_model,
)
from repro.sim.engine import DayRunner, SimSetup, make_realsim, make_smoothsim
from repro.sim.yearsim import YearResult, run_year
from repro.sim.validation import prediction_error_cdf, trace_agreement

__all__ = [
    "DayTrace",
    "StepRecord",
    "run_learning_campaign",
    "probe_recirculation",
    "trained_cooling_model",
    "DayRunner",
    "SimSetup",
    "make_realsim",
    "make_smoothsim",
    "YearResult",
    "run_year",
    "prediction_error_cdf",
    "trace_agreement",
]
