"""Lane-batched year simulation: many (system, climate) runs in lockstep.

A :class:`LaneRunner` advances N independent year scenarios — each the
exact (climate, management system, workload) combination a scalar
:class:`~repro.sim.engine.DayRunner` would simulate — as *lanes* of
structure-of-arrays state.  One vectorized call per model step advances
every lane's thermal plant, weather lookup, sensor quantization, and disk
model; per-lane branching (TKS mode latches, regime changes, band
differences) is handled with boolean masks and per-lane decision objects.

Bit-identity contract: ``run_year_lanes(scenarios)[i]`` equals
``run_year(scenarios[i]...)`` field for field.  The design splits work by
rate to keep that guarantee cheap to audit:

* **Per model step (720/day, vectorized):** :class:`LaneThermalPlant`
  stepping, :class:`LaneWeather` grid reads, sensor quantization
  (``np.floor(x/res + 0.5)`` is the elementwise mirror of the scalar
  sensors' half-up quantization), cold-aisle RH,
  :class:`LaneDiskModel`, and metric recording.
* **Per control period (144/day, per-lane scalars):** everything the
  scalar engine computes from quantities that the :class:`ProfileWorkload`
  holds constant between control epochs — pod IT powers, unit actuator
  state and power draw, disk utilization — plus the management decisions
  themselves.  Baseline lanes decide through the vectorized
  :class:`LaneBaselineController`; CoolAir lanes share one cross-lane
  :meth:`CoolingPredictor.predict_lanes` rollout and then reuse the
  scalar :meth:`CoolingOptimizer.decide_from_predictions` selection code.

* **Per-backend lane units (non-parasol plants):** the chiller, tower,
  and hybrid backends step as
  :class:`~repro.cooling.backends.LaneCoolingUnits` arrays — actuator
  state gathered per control period from the per-lane scalar units
  (whose ramp/latch/regime dynamics stay authoritative), weather-coupled
  power and water evaluated per model step.  See
  :mod:`repro.sim.eligibility` for which cells ride lanes.

Restrictions (asserted): no process noise, the standard 120 s model step /
600 s control period, and the profile (not task-level Hadoop) workload.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import constants
from repro.cooling.backends import (
    LANE_REGIME_CODES,
    LANE_REGIME_CHILLER,
    LANE_REGIME_TOWER,
    LaneCoolingUnits,
    get_backend,
)
from repro.cooling.baseline import LaneBaselineController
from repro.cooling.regimes import CoolingCommand
from repro.cooling.tks import (
    LANE_CMD_AC_FAN,
    LANE_CMD_AC_ON,
    LANE_CMD_CLOSED,
    LANE_CMD_FREE_COOLING,
)
from repro.cooling.units import SmoothCoolingUnits
from repro.core.coolair import CoolAir
from repro.core.config import CoolAirConfig
from repro.core.modeler import CoolingModel
from repro.core.predictor import CoolingPredictor, PredictorState
from repro.datacenter.layout import DatacenterLayout, parasol_layout
from repro.datacenter.server import PowerState
from repro.errors import ConfigError, SimulationError
from repro.physics.psychrometrics import (
    absolute_to_relative_humidity_array,
    wet_bulb_c_array,
)
from repro.physics.thermal import LaneDiskModel, LaneThermalPlant
from repro.sim.campaign import trained_cooling_model
from repro.sim.engine import ProfileWorkload
from repro.workload.profile import DemandProfile
from repro.sim.trace import (
    DayTrace,
    StepRecord,
    avg_violation_from,
    energy_kwh_from,
    max_rate_from,
    outside_range_from,
    worst_sensor_range_from,
)
from repro.sim.yearsim import YearResult, sampled_days
from repro.weather.climate import Climate, SECONDS_PER_DAY
from repro.weather.forecast import ForecastService
from repro.artifacts import tmy_series
from repro.weather.tmy import LaneWeather, TMYSeries
from repro.workload.covering import covering_subset
from repro.workload.traces import Trace

# The scalar engine's grid (SimSetup defaults); the lane engine supports
# exactly this timing and asserts any CoolAir config agrees.
MODEL_STEP_S = 120
CONTROL_PERIOD_S = 600

_TEMP_RES = constants.SENSOR_ACCURACY_C
_RH_RES = 1.0


def _quantize_temp(true_c: np.ndarray) -> np.ndarray:
    """Elementwise mirror of ``TemperatureSensor.observe``.

    ``np.floor(x/res + 0.5) * res`` is the same half-up rule (and the
    same float64 operations) as the scalar sensor's
    :func:`~repro.datacenter.sensors.quantize_half_up`, so each element
    matches the scalar sensor bit for bit — including ties like 25.25C,
    which round up to 25.5C on both paths.
    """
    return np.floor(true_c / _TEMP_RES + 0.5) * _TEMP_RES


def _quantize_rh(true_pct: np.ndarray) -> np.ndarray:
    """Elementwise mirror of ``HumiditySensor.observe`` (half-up)."""
    clamped = np.maximum(0.0, np.minimum(100.0, true_pct))
    return np.floor(clamped / _RH_RES + 0.5) * _RH_RES


def _copy_trace(trace: Trace) -> Trace:
    """A private per-lane copy of a trace, cheaper than ``copy.deepcopy``.

    Job fields are immutable scalars, so shallow job copies give each lane
    an independent trace (the temporal scheduler mutates
    ``scheduled_start_s`` per lane).
    """
    clone = copy.copy(trace)
    clone.jobs = [copy.copy(job) for job in trace.jobs]
    return clone


def _command_for_code(code: int, fc_speed: float) -> CoolingCommand:
    """A lane controller's integer decision as a scalar CoolingCommand."""
    if code == LANE_CMD_CLOSED:
        return CoolingCommand.closed()
    if code == LANE_CMD_FREE_COOLING:
        return CoolingCommand.free_cooling(fc_speed)
    if code == LANE_CMD_AC_FAN:
        return CoolingCommand.ac(compressor_duty=0.0)
    if code == LANE_CMD_AC_ON:
        return CoolingCommand.ac(compressor_duty=1.0)
    raise SimulationError(f"unknown lane command code {code}")


@dataclasses.dataclass
class LaneScenario:
    """One lane: a (system, climate, workload trace) year combination."""

    system: Union[str, CoolAirConfig]
    climate: Climate
    trace: Trace
    forecast_bias_c: float = 0.0
    # Cooling backend (repro.cooling.backends).  Parasol's power laws are
    # vectorized natively; the alternative plants step through their
    # backend's LaneCoolingUnits.
    plant: str = "parasol"


class _PlantGroup:
    """The lanes of one non-parasol backend inside a batch."""

    __slots__ = ("plant", "indices", "lunits", "needs_wet_bulb", "wb_grid")

    def __init__(
        self, plant: str, indices: np.ndarray, lunits: LaneCoolingUnits
    ) -> None:
        self.plant = plant
        self.indices = indices
        self.lunits = lunits
        # Duty-scaling backends (tower, hybrid) read the wet bulb every
        # step; run_day precomputes it over the whole day grid.
        self.needs_wet_bulb = lunits.scales_duty
        self.wb_grid: Optional[np.ndarray] = None


class _Lane:
    """Per-lane scalar objects: everything that is cheap per control period."""

    __slots__ = (
        "label",
        "layout",
        "units",
        "workload",
        "coolair",
        "climate_name",
    )

    def __init__(
        self,
        label: str,
        layout: DatacenterLayout,
        units,
        workload: ProfileWorkload,
        coolair: Optional[CoolAir],
        climate_name: str,
    ) -> None:
        self.label = label
        self.layout = layout
        self.units = units
        self.workload = workload
        self.coolair = coolair
        self.climate_name = climate_name


class LaneRunner:
    """Steps a batch of independent year scenarios in lockstep."""

    def __init__(
        self,
        scenarios: Sequence[LaneScenario],
        model: Optional[CoolingModel] = None,
        smooth_hardware: bool = True,
    ) -> None:
        if not scenarios:
            raise ConfigError("LaneRunner needs at least one scenario")
        self.num_lanes = len(scenarios)
        self.model_step_s = MODEL_STEP_S
        self.control_period_s = CONTROL_PERIOD_S
        self._steps_per_control = CONTROL_PERIOD_S // MODEL_STEP_S

        if model is None and any(
            not isinstance(s.system, str) for s in scenarios
        ):
            model = trained_cooling_model()
        self.model = model

        series_by_climate: Dict[Climate, TMYSeries] = {}
        shared_profiles: Dict[tuple, DemandProfile] = {}
        series_list: List[TMYSeries] = []
        self.lanes: List[_Lane] = []
        baseline_indices: List[int] = []
        coolair_indices: List[int] = []

        for index, scenario in enumerate(scenarios):
            system = scenario.system
            is_baseline = isinstance(system, str)
            if is_baseline and system != "baseline":
                raise SimulationError(f"unknown system {system!r}")
            tmy = series_by_climate.get(scenario.climate)
            if tmy is None:
                # Store-backed (and cached per process): successive chunks
                # in one worker share the series and its presampled grids
                # instead of regenerating per chunk.
                tmy = tmy_series(scenario.climate)
                series_by_climate[scenario.climate] = tmy
            series_list.append(tmy)

            layout = parasol_layout()
            covering_subset(layout.all_servers())
            trace = _copy_trace(scenario.trace)
            # Lanes sharing a source trace get equal initial profiles (the
            # fluid model is deterministic in the job values, which the
            # copy preserves) — build once per distinct trace.  Each lane
            # keeps its own workload/trace; a per-lane ``rebuild()`` after
            # temporal scheduling replaces only that lane's profile.
            profile_key = (id(scenario.trace), layout.num_servers)
            profile = shared_profiles.get(profile_key)
            workload = ProfileWorkload(
                trace, layout, float(CONTROL_PERIOD_S), profile=profile
            )
            if profile is None:
                shared_profiles[profile_key] = workload.profile

            backend = get_backend(scenario.plant)
            if is_baseline:
                # make_realsim: the baseline runs on abrupt hardware (for
                # parasol; the alternative plants are smooth either way).
                units = backend.make_units(smooth=False)
                coolair = None
                label = "Baseline"
                baseline_indices.append(index)
            else:
                if (
                    system.model_step_s != MODEL_STEP_S
                    or system.control_period_s != CONTROL_PERIOD_S
                ):
                    raise ConfigError(
                        "lane engine requires the standard "
                        f"{MODEL_STEP_S}s/{CONTROL_PERIOD_S}s timing, got "
                        f"{system.model_step_s}s/{system.control_period_s}s"
                    )
                if getattr(system, "faults", None):
                    raise ConfigError(
                        "lane engine does not support fault injection; "
                        "faulted cells must run on the scalar path (see "
                        "effective_engine)"
                    )
                units = backend.make_units(smooth=smooth_hardware)
                forecast = ForecastService(
                    tmy, bias_c=scenario.forecast_bias_c
                )
                coolair = CoolAir(
                    config=system,
                    model=self.model,
                    layout=layout,
                    forecast_service=forecast,
                    smooth_hardware=isinstance(units, SmoothCoolingUnits),
                )
                label = system.name
                coolair_indices.append(index)
            self.lanes.append(
                _Lane(label, layout, units, workload, coolair,
                      scenario.climate.name)
            )

        num = self.num_lanes
        pods = self.lanes[0].layout.num_pods
        self.num_pods = pods
        self._weather = LaneWeather(series_list, float(MODEL_STEP_S))
        self._plant = LaneThermalPlant(num)
        self._disks = LaneDiskModel(num, pods)

        # Non-parasol lanes grouped by backend: each group steps one
        # LaneCoolingUnits over its lanes' slices.
        by_plant: Dict[str, List[int]] = {}
        for index, scenario in enumerate(scenarios):
            if scenario.plant != "parasol":
                by_plant.setdefault(scenario.plant, []).append(index)
        self._plant_groups: List[_PlantGroup] = [
            _PlantGroup(
                plant,
                np.asarray(indices, dtype=int),
                get_backend(plant).make_lane_units(len(indices)),
            )
            for plant, indices in by_plant.items()
        ]
        self._is_plant_lane = np.zeros(num, dtype=bool)
        for group in self._plant_groups:
            self._is_plant_lane[group.indices] = True
        self._scaling_plants = any(
            group.lunits.scales_duty for group in self._plant_groups
        )

        self._baseline_idx = np.asarray(baseline_indices, dtype=int)
        self._coolair_idx = coolair_indices
        if baseline_indices:
            self._baseline_ctrl = LaneBaselineController(len(baseline_indices))
            # The TKS control sensor: the warmest (highest-recirculation)
            # pod inlet, per lane (BaselineAdapter.control).
            self._baseline_pods = np.asarray(
                [
                    max(
                        self.lanes[i].layout.pods,
                        key=lambda pod: pod.recirculation,
                    ).pod_id
                    for i in baseline_indices
                ],
                dtype=int,
            )
        else:
            self._baseline_ctrl = None
            self._baseline_pods = None
        self._predictor = (
            CoolingPredictor(self.model, MODEL_STEP_S)
            if coolair_indices
            else None
        )

        # Sensor + history arrays (the scalar engine's sensors and
        # _prev_* attributes as lanes-first arrays).
        self._readings = np.zeros((num, pods))
        self._prev_readings = np.zeros((num, pods))
        self._outside_read = np.zeros(num)
        self._prev_outside = np.zeros(num)
        self._cold_rh = np.zeros(num)
        self._outside_rh_read = np.zeros(num)
        self._prev_fan = np.zeros(num)
        # Per-control-period caches (constant between control epochs).
        self._fc = np.zeros(num)
        self._ac_fan = np.zeros(num)
        self._duty = np.zeros(num)
        self._pod_powers = np.zeros((num, pods))
        self._it_power = np.zeros(num)
        self._cooling_power = np.zeros(num)
        self._fan = np.zeros(num)
        self._util = np.zeros(num)
        self._disk_util = np.zeros(num)
        self._modes: List = [None] * num
        # Per-step plant resources (non-parasol lanes) and the hybrid
        # regime, refreshed per control period from the scalar units.
        self._water_step = np.zeros(num)
        self._regime_code = np.zeros(num, dtype=np.int8)
        self._regime_str: List[str] = [""] * num
        # Active-server count / utilization, recomputed only when the
        # active set can change: every coolair plan_compute, and day start
        # for baseline lanes (whose set then stays all-active).
        self._active_count = [0] * num
        self._util_cache = [0.0] * num
        self._per_active_cache: Dict = {}
        # Per-day demand caches: DemandProfile.demanded_servers is a
        # property that recomputes its whole array on every access, and
        # the profile only changes at day start (temporal rescheduling).
        self._demanded_arr: List = [None] * num
        self._server_util_cache: List[Dict[int, float]] = [
            {} for _ in range(num)
        ]

    # -- per-epoch pieces ----------------------------------------------------

    def _control(
        self,
        step: int,
        grid_col: int,
        temps_grid: np.ndarray,
        rh_grid: np.ndarray,
        mix_grid: np.ndarray,
    ) -> None:
        """One control epoch: per-lane decisions, masked actuation."""
        interval = max(0, step) // self._steps_per_control

        # The scalar engine refreshes each unit's weather boundary every
        # model step, so at control time a unit sees the *previous* step's
        # raw weather (the warmup-start seed on the first step).  Only the
        # weather-coupled backends read it when applying a command (the
        # hybrid's tower-vs-chiller pick), so the lane engine defers the
        # refresh to here.
        if self._plant_groups:
            col = max(grid_col - 1, 0)
            for group in self._plant_groups:
                for lane_index in group.indices:
                    self.lanes[lane_index].units.observe_boundary(
                        float(temps_grid[lane_index, col]),
                        float(rh_grid[lane_index, col]),
                    )

        if self._baseline_ctrl is not None:
            bi = self._baseline_idx
            codes, speeds = self._baseline_ctrl.decide(
                self._readings[bi, self._baseline_pods],
                self._outside_read[bi],
                self._cold_rh[bi],
                self._outside_rh_read[bi],
            )
            for slot, lane_index in enumerate(bi):
                self.lanes[lane_index].units.apply(
                    _command_for_code(int(codes[slot]), float(speeds[slot]))
                )

        if self._coolair_idx:
            inside_w = self._plant.state.cold_aisle_mixing_ratio
            states: List[PredictorState] = []
            cands: List[list] = []
            picked: List[tuple] = []
            for lane_index in self._coolair_idx:
                lane = self.lanes[lane_index]
                demanded_arr = self._demanded_arr[lane_index]
                demanded = int(
                    demanded_arr[interval % demanded_arr.shape[0]]
                )
                _active_ids, active_pods = lane.coolair.plan_compute(demanded)
                # layout.utilization() unrolled so the active count is
                # also available to _refresh_period_caches (same int sum,
                # same division — bit-identical).
                count = 0
                for pod in lane.layout.pods:
                    count += pod.num_active()
                self._active_count[lane_index] = count
                util = count / lane.layout.num_servers
                self._util_cache[lane_index] = util
                state = PredictorState(
                    mode=lane.units.mode,
                    fan_speed=lane.units.fc_fan_speed,
                    sensor_temps_c=self._readings[lane_index].tolist(),
                    prev_sensor_temps_c=self._prev_readings[lane_index].tolist(),
                    outside_temp_c=float(self._outside_read[lane_index]),
                    prev_outside_temp_c=float(self._prev_outside[lane_index]),
                    prev_fan_speed=float(self._prev_fan[lane_index]),
                    utilization=util,
                    inside_mixing_ratio=float(inside_w[lane_index]),
                    outside_mixing_ratio=float(mix_grid[lane_index, grid_col]),
                )
                band = lane.coolair.band
                if band is None:
                    raise ConfigError("call start_day before control")
                states.append(state)
                cands.append(lane.coolair.optimizer._candidates(state, band))
                picked.append((lane, band, active_pods))
            stacked = self._predictor.predict_lanes_stacked(
                states, cands, self._steps_per_control
            )
            for (lane, band, active_pods), state, candidates, (
                temps, rh, energies, ac_full
            ) in zip(picked, states, cands, stacked):
                command = lane.coolair.optimizer.decide_from_stacked(
                    state, band, candidates, temps, rh, energies, ac_full,
                    active_pods,
                )
                lane.units.apply(command)

    def _refresh_period_caches(self, step: int, dt: float) -> None:
        """Workload utilization + everything constant within the period.

        The scalar engine recomputes these every model step; with the
        profile workload they only change at control epochs (the demand
        interval equals the control period), so computing them here once
        per period is exactly equivalent.
        """
        tod = step * dt
        for lane_index, lane in enumerate(self.lanes):
            if step >= 0:
                lane.workload.step(dt, tod, None)
            else:
                lane.workload.warmup_step(dt, None)
            pod_powers = lane.layout.pod_it_power_w()
            self._pod_powers[lane_index, :] = pod_powers
            self._it_power[lane_index] = sum(pod_powers)
            # Raw actuator state (CoolingUnits.plant_inputs without the
            # object): duty-scaling backends apply their capacity factor
            # per step through their lane units, never here.
            units = lane.units
            self._fc[lane_index] = units.fc_fan_speed
            self._ac_fan[lane_index] = units.ac_fan_speed
            self._duty[lane_index] = units.ac_compressor_duty
            if self._is_plant_lane[lane_index]:
                # Weather-coupled power is stepped per model step by the
                # lane units; record the hybrid's regime pick (constant
                # within the period) for occupancy metrics and traces.
                regime = getattr(units, "active_regime", "")
                self._regime_str[lane_index] = regime
                self._regime_code[lane_index] = LANE_REGIME_CODES.get(
                    regime, 0
                )
            else:
                self._cooling_power[lane_index] = units.power_w()
            self._fan[lane_index] = units.fc_fan_speed
            self._util[lane_index] = self._util_cache[lane_index]
            self._modes[lane_index] = lane.units.mode
            # The scalar engine averages the utilizations of the active
            # servers; ProfileWorkload gives every active server the same
            # value, so the mean is a pure function of (value, count) —
            # cache it instead of walking 64 servers per lane per epoch.
            count = self._active_count[lane_index]
            if count:
                workload = lane.workload
                idx = (
                    int((tod if step >= 0 else 0.0) // workload.interval_s)
                    % workload.profile.num_intervals
                )
                util_cache = self._server_util_cache[lane_index]
                util_value = util_cache.get(idx)
                if util_value is None:
                    # DemandProfile.server_utilization recomputes the
                    # demanded-servers array on every call; the day-start
                    # snapshot holds exactly those values, so evaluate the
                    # same formula against it.
                    profile = workload.profile
                    demanded = int(self._demanded_arr[lane_index][idx])
                    if demanded == 0:
                        util_value = 0.0
                    else:
                        busy_slots = (
                            profile.busy_slot_seconds[idx] / profile.interval_s
                        )
                        util_value = float(
                            min(
                                1.0,
                                busy_slots
                                / (demanded * profile.slots_per_server),
                            )
                        )
                    util_cache[idx] = util_value
                cache_key = (util_value, count)
                per_active = self._per_active_cache.get(cache_key)
                if per_active is None:
                    per_active = float(np.mean(np.full(count, util_value)))
                    self._per_active_cache[cache_key] = per_active
            else:
                per_active = 0.0
            self._disk_util[lane_index] = min(1.0, 0.15 + 0.7 * per_active)
        # Actuators and pod powers only change here; precompute the plant's
        # per-period invariants once (validates the actuator ranges too).
        # Duty-scaling backends re-issue set_inputs per step with their
        # capacity-scaled duty, reusing this call's cached power fold.
        self._plant.set_inputs(
            self._fc, self._ac_fan, self._duty, self._pod_powers
        )
        for group in self._plant_groups:
            idx = group.indices
            group.lunits.set_actuators(
                self._fc[idx],
                self._ac_fan[idx],
                self._duty[idx],
                self._regime_code[idx],
            )

    # -- day/year execution --------------------------------------------------

    def run_day(
        self,
        day_of_year,
        warmup_hours: float = 2.0,
        keep_traces: bool = False,
    ):
        """Simulate one day for every lane; returns per-lane day metrics.

        ``day_of_year`` is a single day every lane simulates, or a per-lane
        sequence of days (the day-unfolded mode: sibling lanes replicate
        one scenario across different sampled days of its year).

        Returns ``(metrics, traces)`` where ``metrics`` is a list of dicts
        (one per lane) with the five YearResult day quantities, and
        ``traces`` is a list of :class:`DayTrace` (or None without
        ``keep_traces``).
        """
        num = self.num_lanes
        dt = float(self.model_step_s)
        steps = int(SECONDS_PER_DAY // self.model_step_s)
        warmup_steps = int(warmup_hours * 3600 / dt)
        if np.ndim(day_of_year) == 0:
            lane_days = [int(day_of_year)] * num
            grid_days = int(day_of_year)
        else:
            lane_days = [int(d) for d in day_of_year]
            if len(lane_days) != num:
                raise ConfigError(
                    f"need one day per lane ({num}), got {len(lane_days)}"
                )
            grid_days = np.asarray(lane_days, dtype=np.int64)
        temps_grid, mix_grid, rh_grid = self._weather.day_grid(
            grid_days, -warmup_steps, warmup_steps + steps
        )
        for group in self._plant_groups:
            if group.needs_wet_bulb:
                # One bit-identical Stull evaluation over the whole day
                # grid instead of one per model step.
                group.wb_grid = wet_bulb_c_array(
                    temps_grid[group.indices], rh_grid[group.indices]
                )

        # Day entry is a clean slate (mirrors DayRunner.run_day): actuators
        # off, controller latches cleared, disks at their initial
        # temperature.  This keeps every simulated day independent of
        # which day the runner stepped before it, which is what lets one
        # runner be reused across day batches (and days be reordered into
        # lanes) while staying bit-identical to the scalar reference.
        self._disks.reset()
        if self._baseline_ctrl is not None:
            self._baseline_ctrl.reset()
        for lane in self.lanes:
            lane.units.reset()
            if lane.coolair is not None:
                lane.coolair.reset_day_state()

        self._plant.reset(
            temps_grid[:, warmup_steps] + 6.0, mix_grid[:, warmup_steps]
        )

        # Seed sensors at the warmup start (DayRunner._seed_sensors).
        state = self._plant.state
        inlets = state.pod_inlet_temp_c
        inside_rh = absolute_to_relative_humidity_array(
            state.cold_aisle_mixing_ratio, inlets.mean(axis=1)
        )
        self._readings[:] = _quantize_temp(inlets)
        self._cold_rh[:] = _quantize_rh(inside_rh)
        self._outside_read[:] = _quantize_temp(temps_grid[:, 0])
        self._outside_rh_read[:] = _quantize_rh(rh_grid[:, 0])
        self._prev_readings[:] = self._readings
        self._prev_outside[:] = self._outside_read
        for lane_index, lane in enumerate(self.lanes):
            self._prev_fan[lane_index] = lane.units.fc_fan_speed

        # Adapter start-of-day work.
        for lane_index, lane in enumerate(self.lanes):
            if lane.coolair is None:
                for server in lane.layout.all_servers():
                    if server.state is not PowerState.ACTIVE:
                        server.activate()
                # All-active until the next day start (the baseline never
                # sleeps servers); mirror layout.utilization()'s int sum.
                count = 0
                for pod in lane.layout.pods:
                    count += pod.num_active()
                self._active_count[lane_index] = count
                self._util_cache[lane_index] = count / lane.layout.num_servers
            else:
                lane.workload.begin_day()
                lane.coolair.start_day(
                    lane_days[lane_index], lane.workload.jobs
                )
                if any(
                    job.scheduled_start_s is not None
                    for job in lane.workload.jobs
                ):
                    lane.workload.rebuild()
            # The demand profile is now fixed until the next day start;
            # snapshot the demanded-servers array and reset the per-interval
            # server-utilization cache.
            self._demanded_arr[lane_index] = (
                lane.workload.profile.demanded_servers
            )
            self._server_util_cache[lane_index].clear()

        rec_temps = np.empty((steps, num, self.num_pods))
        rec_outside = np.empty((steps, num))
        rec_cooling = np.empty((steps, num))
        rec_it = np.empty((steps, num))
        if self._plant_groups:
            rec_water = np.zeros((steps, num))
            rec_regime = np.zeros((steps, num), dtype=np.int8)
        if keep_traces:
            rec_rh = np.empty((steps, num))
            rec_orh = np.empty((steps, num))
            rec_fan = np.empty((steps, num))
            rec_duty = np.empty((steps, num))
            rec_util = np.empty((steps, num))
            rec_disks = np.empty((steps, num, self.num_pods))
            rec_modes: List[list] = [[] for _ in range(num)]
            rec_regimes: List[List[str]] = [[] for _ in range(num)]

        spc = self._steps_per_control
        for step in range(-warmup_steps, steps):
            grid_col = step + warmup_steps
            if step % spc == 0:
                self._control(step, grid_col, temps_grid, rh_grid, mix_grid)
                self._refresh_period_caches(step, dt)

            # Rotate predictor history (DayRunner._advance_plant prologue).
            self._prev_readings, self._readings = (
                self._readings,
                self._prev_readings,
            )
            self._prev_outside[:] = self._outside_read
            self._prev_fan[:] = self._fan

            if self._plant_groups:
                # Mirror of the scalar _advance_plant prologue: boundary
                # before plant_inputs, so the weather-coupled backends
                # shape this step's inputs from this step's raw weather.
                for group in self._plant_groups:
                    idx = group.indices
                    group.lunits.observe_boundary(
                        temps_grid[idx, grid_col],
                        rh_grid[idx, grid_col],
                        wet_bulb=(
                            group.wb_grid[:, grid_col]
                            if group.wb_grid is not None
                            else None
                        ),
                    )
                if self._scaling_plants:
                    eff_duty = self._duty.copy()
                    for group in self._plant_groups:
                        if group.lunits.scales_duty:
                            eff_duty[group.indices] = (
                                group.lunits.effective_duty()
                            )
                    self._plant.set_inputs(
                        self._fc,
                        self._ac_fan,
                        eff_duty,
                        self._pod_powers,
                        validate=False,
                        reuse_power=True,
                    )

            plant_state = self._plant.step_outside(
                temps_grid[:, grid_col], mix_grid[:, grid_col], dt
            )
            inlets = plant_state.pod_inlet_temp_c
            means = np.add.reduce(inlets, axis=1) / inlets.shape[1]
            inside_rh = absolute_to_relative_humidity_array(
                plant_state.cold_aisle_mixing_ratio, means
            )
            self._readings[:] = _quantize_temp(inlets)
            self._cold_rh[:] = _quantize_rh(inside_rh)
            self._outside_read[:] = _quantize_temp(temps_grid[:, grid_col])
            self._outside_rh_read[:] = _quantize_rh(rh_grid[:, grid_col])
            disk_temps = self._disks.step(inlets, self._disk_util, dt)

            # Weather-coupled backends draw power (chiller lift) and
            # water (tower evaporation) per step, after the plant step —
            # the scalar step_resources position.
            for group in self._plant_groups:
                idx = group.indices
                power, water = group.lunits.step_resources(
                    self._it_power[idx], dt
                )
                self._cooling_power[idx] = power
                self._water_step[idx] = water

            if step >= 0:
                rec_temps[step] = self._readings
                rec_outside[step] = self._outside_read
                rec_cooling[step] = self._cooling_power
                rec_it[step] = self._it_power
                if self._plant_groups:
                    rec_water[step] = self._water_step
                    rec_regime[step] = self._regime_code
                if keep_traces:
                    rec_rh[step] = self._cold_rh
                    rec_orh[step] = self._outside_rh_read
                    rec_fan[step] = self._fan
                    rec_duty[step] = self._duty
                    rec_util[step] = self._util
                    rec_disks[step] = disk_temps
                    for lane_index in range(num):
                        rec_modes[lane_index].append(self._modes[lane_index])
                        rec_regimes[lane_index].append(
                            self._regime_str[lane_index]
                        )

        times = np.arange(steps, dtype=float) * dt
        metrics = []
        traces: List[Optional[DayTrace]] = []
        for lane_index, lane in enumerate(self.lanes):
            temps = np.ascontiguousarray(rec_temps[:, lane_index, :])
            outside = np.ascontiguousarray(rec_outside[:, lane_index])
            cooling = np.ascontiguousarray(rec_cooling[:, lane_index])
            it = np.ascontiguousarray(rec_it[:, lane_index])
            if self._is_plant_lane[lane_index]:
                # Same formulas as DayTrace.water_liters / the mech-regime
                # fractions, over the same 1-D per-step arrays.
                water = np.ascontiguousarray(rec_water[:, lane_index])
                water_l = float(np.sum(water))
                regimes = rec_regime[:, lane_index]
                tower_mech_hours = (
                    int(np.count_nonzero(regimes == LANE_REGIME_TOWER))
                    / steps
                ) * 24.0
                chiller_mech_hours = (
                    int(np.count_nonzero(regimes == LANE_REGIME_CHILLER))
                    / steps
                ) * 24.0
            else:
                water = None
                water_l = 0.0
                tower_mech_hours = 0.0
                chiller_mech_hours = 0.0
            metrics.append(
                {
                    "worst_range_c": worst_sensor_range_from(temps),
                    "outside_range_c": outside_range_from(outside),
                    "temps": temps,
                    "times": times,
                    "cooling_kwh": energy_kwh_from(cooling, times),
                    "it_kwh": energy_kwh_from(it, times),
                    "max_rate_c_per_hour": max_rate_from(temps, times),
                    "water_l": water_l,
                    "tower_mech_hours": tower_mech_hours,
                    "chiller_mech_hours": chiller_mech_hours,
                }
            )
            if keep_traces:
                trace = DayTrace(lane_days[lane_index], label=lane.label)
                for row in range(steps):
                    trace.append(
                        StepRecord(
                            time_s=float(times[row]),
                            outside_temp_c=float(outside[row]),
                            sensor_temps_c=tuple(temps[row].tolist()),
                            mode=rec_modes[lane_index][row],
                            fc_fan_speed=float(rec_fan[row, lane_index]),
                            ac_compressor_duty=float(
                                rec_duty[row, lane_index]
                            ),
                            cooling_power_w=float(cooling[row]),
                            it_power_w=float(it[row]),
                            inside_rh_pct=float(rec_rh[row, lane_index]),
                            outside_rh_pct=float(rec_orh[row, lane_index]),
                            utilization=float(rec_util[row, lane_index]),
                            disk_temps_c=tuple(
                                float(t)
                                for t in rec_disks[row, lane_index]
                            ),
                            water_l=(
                                float(water[row])
                                if water is not None
                                else 0.0
                            ),
                            regime=rec_regimes[lane_index][row],
                        )
                    )
                traces.append(trace)
            else:
                traces.append(None)
        return metrics, traces

    def run_year(
        self,
        sample_every_days: int = 7,
        violation_threshold_c: float = 30.0,
        keep_traces: bool = False,
    ) -> List[YearResult]:
        """Year runs for every lane; one YearResult per lane, in order."""
        days = sampled_days(sample_every_days)
        results = [
            YearResult(
                label=lane.label,
                climate_name=lane.climate_name,
                sampled_days=days,
                daily_worst_range_c=[],
                daily_outside_range_c=[],
                daily_avg_violation_c=[],
                daily_max_rate_c_per_hour=[],
                cooling_kwh=0.0,
                it_kwh=0.0,
                daily_degraded_fraction=[],
            )
            for lane in self.lanes
        ]
        all_traces: List[List[DayTrace]] = [[] for _ in self.lanes]
        for day in days:
            metrics, traces = self.run_day(day, keep_traces=keep_traces)
            for lane_index, day_metrics in enumerate(metrics):
                result = results[lane_index]
                result.daily_worst_range_c.append(
                    day_metrics["worst_range_c"]
                )
                result.daily_outside_range_c.append(
                    day_metrics["outside_range_c"]
                )
                result.daily_avg_violation_c.append(
                    avg_violation_from(
                        day_metrics["temps"], violation_threshold_c
                    )
                )
                result.daily_max_rate_c_per_hour.append(
                    day_metrics["max_rate_c_per_hour"]
                )
                # Lanes never run faulted scenarios, so no step degrades;
                # 0.0 matches the scalar path's mean-of-no-flags exactly.
                result.daily_degraded_fraction.append(0.0)
                result.cooling_kwh += day_metrics["cooling_kwh"]
                result.it_kwh += day_metrics["it_kwh"]
                result.water_l += day_metrics["water_l"]
                result.tower_mech_hours += day_metrics["tower_mech_hours"]
                result.chiller_mech_hours += (
                    day_metrics["chiller_mech_hours"]
                )
                if keep_traces:
                    all_traces[lane_index].append(traces[lane_index])
        if keep_traces:
            for result, lane_traces in zip(results, all_traces):
                result.traces = lane_traces
        return results


def run_year_lanes(
    scenarios: Sequence[LaneScenario],
    model: Optional[CoolingModel] = None,
    smooth_hardware: bool = True,
    sample_every_days: int = 7,
    violation_threshold_c: float = 30.0,
    keep_traces: bool = False,
) -> List[YearResult]:
    """Lane-batched equivalent of ``[run_year(s...) for s in scenarios]``.

    Results are bit-identical per scenario to the scalar
    :func:`~repro.sim.yearsim.run_year` path (the pinned reference); see
    ``tests/test_lane_equivalence.py`` and ``docs/PERFORMANCE.md``.
    """
    runner = LaneRunner(scenarios, model=model, smooth_hardware=smooth_hardware)
    return runner.run_year(
        sample_every_days=sample_every_days,
        violation_threshold_c=violation_threshold_c,
        keep_traces=keep_traces,
    )


def run_year_unfolded(
    scenario: LaneScenario,
    day_lanes: int,
    model: Optional[CoolingModel] = None,
    smooth_hardware: bool = True,
    sample_every_days: int = 7,
    violation_threshold_c: float = 30.0,
    keep_traces: bool = False,
) -> YearResult:
    """One scenario's year with its sampled days unfolded into lanes.

    Replicates the scenario across ``day_lanes`` sibling lanes (each with a
    per-lane controller sharing the scenario's trained model, so the
    lane-combo plan cache hits across sibling days) and steps consecutive
    batches of sampled days in SoA lockstep.  Per-day metrics are folded
    back in day order, so energy accumulation visits the same additions in
    the same order as the scalar :func:`~repro.sim.yearsim.run_year` — the
    result is bit-identical to it field for field (pinned by
    ``tests/integration/test_day_unfold.py``).

    Only valid for scenarios whose days are independent: no faults (the
    lane engine rejects them anyway) and no temporal scheduling (the
    scheduler mutates the trace across days).  Callers gate on
    :func:`repro.analysis.experiments.day_unfold_eligible`.
    """
    if day_lanes < 1:
        raise ConfigError(f"day_lanes must be >= 1, got {day_lanes}")
    days = sampled_days(sample_every_days)
    width = min(int(day_lanes), len(days))

    def make_runner(lanes: int) -> LaneRunner:
        return LaneRunner(
            [scenario] * lanes, model=model, smooth_hardware=smooth_hardware
        )

    runner = make_runner(width)
    # Reusing one trained model across batch runners keeps the remainder
    # batch's predictor caches coherent with the full batches'.
    model = runner.model

    result = YearResult(
        label=runner.lanes[0].label,
        climate_name=scenario.climate.name,
        sampled_days=days,
        daily_worst_range_c=[],
        daily_outside_range_c=[],
        daily_avg_violation_c=[],
        daily_max_rate_c_per_hour=[],
        cooling_kwh=0.0,
        it_kwh=0.0,
        daily_degraded_fraction=[],
    )
    all_traces: List[DayTrace] = []
    for start in range(0, len(days), width):
        batch = days[start:start + width]
        if len(batch) != runner.num_lanes:
            # Remainder batch: a narrower runner, no padded lanes to
            # discard (per-lane results are independent of batch grouping,
            # so the narrower batch changes nothing — pinned by the lane
            # grouping-independence test).
            runner = make_runner(len(batch))
        metrics, traces = runner.run_day(batch, keep_traces=keep_traces)
        for day_metrics, trace in zip(metrics, traces):
            result.daily_worst_range_c.append(day_metrics["worst_range_c"])
            result.daily_outside_range_c.append(
                day_metrics["outside_range_c"]
            )
            result.daily_avg_violation_c.append(
                avg_violation_from(
                    day_metrics["temps"], violation_threshold_c
                )
            )
            result.daily_max_rate_c_per_hour.append(
                day_metrics["max_rate_c_per_hour"]
            )
            # Unfold-eligible scenarios never run faulted, so no step
            # degrades; 0.0 matches the scalar mean-of-no-flags exactly.
            result.daily_degraded_fraction.append(0.0)
            result.cooling_kwh += day_metrics["cooling_kwh"]
            result.it_kwh += day_metrics["it_kwh"]
            result.water_l += day_metrics["water_l"]
            result.tower_mech_hours += day_metrics["tower_mech_hours"]
            result.chiller_mech_hours += day_metrics["chiller_mech_hours"]
            if keep_traces:
                all_traces.append(trace)
    if keep_traces:
        result.traces = all_traces
    return result
