"""Versioned on-disk artifact store: the campaign data plane.

Campaign inputs — TMY weather grids, workload traces, and learned cooling
models — are deterministic functions of small parameter sets, yet before
this store every worker process re-synthesized them from scratch.  This
module materializes each artifact once under ``.cache/artifacts/`` and
serves it to every process from disk:

* **weather** — one ``(3, 8760)`` float64 ``.npy`` per climate (rows:
  hourly temperatures, mixing ratios, relative humidities), loaded with
  ``np.load(mmap_mode="r")`` so all workers on a machine share one
  page-cache copy instead of regenerating (and duplicating) the arrays;
* **traces** — one ``(num_jobs, 9)`` float64 ``.npy`` per generator
  parameter set, rebuilt into :class:`~repro.workload.job.Job` lists on
  read (``NaN`` in the deadline column encodes "not deferrable");
* **models** — the learned :class:`~repro.core.modeler.CoolingModel`
  pickled per (climate, training days, log gaps, code fingerprint), so
  the 10-day learning campaign runs once ever per key instead of once
  per worker process per session.

Discipline matches the result cache (:mod:`repro.analysis.experiments`):

* every filename embeds its parameter fingerprints and
  ``STORE_SCHEMA_VERSION`` — changing the generator inputs or bumping the
  schema version starts a fresh store generation;
* writes are atomic (temp file + ``os.replace``), safe under concurrent
  writers;
* corrupt or truncated entries are evicted and regenerated, never
  crashed on; entries from older schema versions are swept opportunistically
  on the next write.

All store reads reproduce the generated values bit-for-bit (float64
round-trips exactly through ``.npy``), so the data plane changes wall
clock and memory, never results.

Public contract (what the runner and the campaign service rely on):

* ``tmy_series`` / ``materialize_trace`` are read-or-regenerate: they
  return the artifact whether or not it is on disk yet (``load_model``
  returns ``None`` on a miss and pairs with ``save_model``), so callers
  never need to warm the store first — warming
  (``runner._warm_shared_state``) is purely an optimization that stops
  N workers from regenerating the same artifact N times;
* every function is safe under concurrent calls from many processes
  (atomic writes, corrupt-entry eviction) — the long-lived service pool
  and any number of one-shot CLI runs can share one store;
* no module-level state depends on the environment at import time:
  ``REPRO_ARTIFACTS`` and ``REPRO_ARTIFACTS_DIR`` are read per call, so
  spawned workers, forked workers, and subprocess benchmarks all see the
  parent's environment without fork-inherited globals.

Knobs: ``REPRO_ARTIFACTS=0`` disables the store (every consumer falls
back to in-process generation, the pre-store behavior);
``REPRO_ARTIFACTS_DIR`` relocates it (default
``$REPRO_CACHE_DIR/artifacts`` or ``<repo>/.cache/artifacts``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import re
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.weather.climate import Climate
from repro.weather.tmy import HOURS_PER_YEAR, TMYSeries, generate_tmy
from repro.workload.job import Job
from repro.workload.traces import Trace

# Bump whenever an artifact payload changes meaning (array layout, model
# pickle contents, key semantics): older entries are evicted on the next
# write and never served.
STORE_SCHEMA_VERSION = 1

TRACE_COLUMNS = 9  # job_id, arrival, maps, map_s, reduces, reduce_s, in, out, deadline

_VERSION_TOKEN_RE = re.compile(r"-v(\d+)\.(npy|pkl)$")

# Per-process caches.  The TMY cache is keyed by (store dir, climate
# fingerprint) so tests and benchmarks pointing REPRO_ARTIFACTS_DIR at
# different directories never share entries.
_tmy_cache: Dict[Tuple[str, str], TMYSeries] = {}
_code_fingerprint: Optional[str] = None
_swept_dirs: set = set()


def store_enabled() -> bool:
    """Whether the artifact store is on (``REPRO_ARTIFACTS=0`` disables)."""
    return os.environ.get("REPRO_ARTIFACTS", "1") != "0"


def store_dir() -> pathlib.Path:
    """Where artifacts live; resolved from the environment per call."""
    env = os.environ.get("REPRO_ARTIFACTS_DIR")
    if env:
        return pathlib.Path(env)
    cache_root = os.environ.get("REPRO_CACHE_DIR")
    if cache_root:
        return pathlib.Path(cache_root) / "artifacts"
    return pathlib.Path(__file__).resolve().parents[2] / ".cache" / "artifacts"


# -- fingerprints --------------------------------------------------------------


def _slug(name: str) -> str:
    """A filename-safe rendering of a climate/trace name."""
    return re.sub(r"[^A-Za-z0-9_.+-]", "-", name)


def params_fingerprint(params: dict) -> str:
    """Short stable hash of a JSON-serializable parameter mapping."""
    blob = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode()).hexdigest()[:12]


def climate_fingerprint(climate: Climate) -> str:
    """Hash of every :class:`Climate` field: edit a climate, move its key."""
    return params_fingerprint(dataclasses.asdict(climate))


def code_fingerprint() -> str:
    """Hash of the simulation source tree (cached per process).

    Covers every module that can influence a learned model's numbers —
    ``src/repro`` minus the analysis/CLI layers and this store — so a
    persisted model can never outlive the code that trained it.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        root = pathlib.Path(__file__).resolve().parent
        digest = hashlib.sha1()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("analysis/") or rel in (
                "cli.py",
                "__main__.py",
                "artifacts.py",
            ):
                continue
            digest.update(rel.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()[:12]
    return _code_fingerprint


# -- low-level atomic IO -------------------------------------------------------


def _evict_stale_versions(directory: pathlib.Path) -> None:
    """Sweep entries written under other schema versions (once per dir)."""
    key = str(directory)
    if key in _swept_dirs:
        return
    _swept_dirs.add(key)
    try:
        entries = list(directory.iterdir())
    except OSError:
        return
    for path in entries:
        match = _VERSION_TOKEN_RE.search(path.name)
        if match and int(match.group(1)) != STORE_SCHEMA_VERSION:
            _evict(path)


def _evict(path: pathlib.Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def _atomic_save_array(path: pathlib.Path, array: np.ndarray) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    _evict_stale_versions(path.parent)
    # Keep the .npy suffix on the temp name so np.save doesn't append one.
    tmp = path.with_name(f"{path.stem}.tmp{os.getpid()}.npy")
    np.save(tmp, array)
    os.replace(tmp, path)


def _atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    _evict_stale_versions(path.parent)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _load_array(
    path: pathlib.Path, rows: Optional[int] = None, columns: Optional[int] = None
) -> Optional[np.ndarray]:
    """mmap one ``.npy`` entry; corruption or shape mismatch evicts it.

    The returned array is a read-only :class:`numpy.memmap` — the OS page
    cache backs every process reading the same entry with one physical
    copy, and nothing is deserialized up front.
    """
    try:
        array = np.load(path, mmap_mode="r", allow_pickle=False)
        if array.dtype != np.float64 or array.ndim != 2:
            raise ValueError(f"unexpected payload {array.dtype}/{array.ndim}d")
        if rows is not None and array.shape[0] != rows:
            raise ValueError(f"unexpected shape {array.shape}")
        if columns is not None and array.shape[1] != columns:
            raise ValueError(f"unexpected shape {array.shape}")
        return array
    except FileNotFoundError:
        return None
    except Exception:  # noqa: BLE001 - any corruption is a miss
        _evict(path)
        return None


# -- weather -------------------------------------------------------------------


def weather_path(climate: Climate) -> pathlib.Path:
    name = (
        f"tmy-{_slug(climate.name)}-{climate_fingerprint(climate)}"
        f"-v{STORE_SCHEMA_VERSION}.npy"
    )
    return store_dir() / name


def tmy_series(climate: Climate) -> TMYSeries:
    """The climate's TMY series, served zero-copy from the store.

    First call per (machine, climate) generates and persists the grid;
    every later call — in any process — wraps a read-only mmap of the
    stored arrays, bit-identical to :func:`generate_tmy`.  Within a
    process the wrapped series is cached, so its presampled step grids
    (:meth:`TMYSeries.sampled`) are shared across simulations too.  With
    the store disabled this is exactly ``generate_tmy(climate)``.
    """
    if not store_enabled():
        return generate_tmy(climate)
    key = (str(store_dir()), climate_fingerprint(climate))
    series = _tmy_cache.get(key)
    if series is not None:
        return series
    path = weather_path(climate)
    stacked = _load_array(path, rows=3, columns=HOURS_PER_YEAR)
    if stacked is None:
        generated = generate_tmy(climate)
        _atomic_save_array(
            path,
            np.stack(
                [generated._temps_c, generated._mixing_ratios, generated._rh_pct]
            ),
        )
        stacked = _load_array(path, rows=3, columns=HOURS_PER_YEAR)
        if stacked is None:  # pragma: no cover - unwritable store dir
            _tmy_cache[key] = generated
            return generated
    series = TMYSeries(climate, stacked[0], stacked[1], stacked[2])
    _tmy_cache[key] = series
    return series


# -- workload traces -----------------------------------------------------------


def trace_path(kind: str, params: dict) -> pathlib.Path:
    name = (
        f"trace-{_slug(kind)}-{params_fingerprint(params)}"
        f"-v{STORE_SCHEMA_VERSION}.npy"
    )
    return store_dir() / name


def trace_to_array(trace: Trace) -> np.ndarray:
    """Columnar ``(num_jobs, 9)`` float64 encoding of a generated trace."""
    rows = np.empty((len(trace.jobs), TRACE_COLUMNS), dtype=np.float64)
    for i, job in enumerate(trace.jobs):
        rows[i] = (
            float(job.job_id),
            job.arrival_s,
            float(job.num_maps),
            job.map_duration_s,
            float(job.num_reduces),
            job.reduce_duration_s,
            job.input_mb,
            job.output_mb,
            float("nan") if job.deadline_s is None else job.deadline_s,
        )
    return rows


def trace_from_array(name: str, array: np.ndarray) -> Trace:
    """Rebuild the :class:`Trace` a columnar entry encodes, bit-identical."""
    jobs = []
    for row in array.tolist():
        jobs.append(
            Job(
                job_id=int(row[0]),
                arrival_s=row[1],
                num_maps=int(row[2]),
                map_duration_s=row[3],
                num_reduces=int(row[4]),
                reduce_duration_s=row[5],
                input_mb=row[6],
                output_mb=row[7],
                deadline_s=None if np.isnan(row[8]) else row[8],
            )
        )
    return Trace(name=name, jobs=jobs)


def materialize_trace(
    kind: str, params: dict, build: Callable[[], Trace]
) -> Trace:
    """Serve a trace from the store, generating and persisting on a miss.

    ``params`` must pin every generator input (job count, seed,
    utilization target, deferrable flag, ...): it keys the entry.  The
    rebuilt job list equals ``build()``'s output field for field.
    """
    if not store_enabled():
        return build()
    path = trace_path(kind, params)
    array = _load_array(path, columns=TRACE_COLUMNS)
    if array is None:
        trace = build()
        _atomic_save_array(path, trace_to_array(trace))
        return trace
    return trace_from_array(kind, array)


# -- learned models ------------------------------------------------------------


def model_path(climate: Climate, days: Sequence[int], gaps: tuple) -> pathlib.Path:
    params = {
        "days": [int(d) for d in days],
        "gaps": [dataclasses.asdict(g) for g in gaps],
    }
    name = (
        f"model-{_slug(climate.name)}-{climate_fingerprint(climate)}"
        f"-{params_fingerprint(params)}-c{code_fingerprint()}"
        f"-v{STORE_SCHEMA_VERSION}.pkl"
    )
    return store_dir() / name


def load_model(climate: Climate, days: Sequence[int], gaps: tuple):
    """A persisted CoolingModel, or None.  Corrupt entries are evicted.

    The key's code fingerprint covers every module that feeds the
    learning campaign, so a model trained by older simulation code can
    never be served — there is no staleness to detect at load time.
    (Entries are this repo's own pickles under its own cache directory.)
    """
    if not store_enabled():
        return None
    path = model_path(climate, days, gaps)
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:  # noqa: BLE001 - any corruption is a miss
        _evict(path)
        return None


def save_model(climate: Climate, days: Sequence[int], gaps: tuple, model) -> None:
    """Atomically persist one learned model."""
    if not store_enabled():
        return
    _atomic_write_bytes(
        model_path(climate, days, gaps), pickle.dumps(model, protocol=4)
    )
