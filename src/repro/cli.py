"""Command-line interface: ``python -m repro`` or the ``coolair`` script.

Subcommands mirror the workflows a datacenter operator would run.  The
catalogue below is ``COMMAND_SUMMARIES``, which also generates the
``--help`` epilog — add new subcommands there so the docs, the help
text, and the dispatch table cannot drift apart
(``scripts/check_doc_commands.py`` verifies the documented invocations
in CI):

* ``versions``  — print the Table 1 system matrix.
* ``band``      — show the temperature band CoolAir would pick for a day.
* ``campaign``  — run the model-learning campaign and report model quality.
* ``day``       — simulate one day of a system at a location.
* ``year``      — simulate (and cache) a year and print the headline metrics.
* ``matrix``    — the Figures 8-10 systems-by-locations year matrix.
* ``world``     — the Figures 12/13 worldwide sweep.
* ``locations`` — list the named evaluation locations.
* ``faults``    — list the built-in fault-injection scenarios.
* ``bench``     — time the simulation core and write ``BENCH_sim_core.json``.
* ``serve``     — run the campaign control-plane service (docs/SERVICE.md).
* ``submit``    — submit a campaign to the service and stream its progress.
* ``status``    — list service jobs, or show one job (``--result`` fetches it).
* ``cancel``    — cancel a submitted job.

``matrix`` and ``world`` fan out over worker processes (``--workers`` /
``REPRO_WORKERS``) with ``--lanes`` / ``REPRO_LANES`` scenarios stepped in
lockstep per worker by the lane-batched engine, optionally unfolding each
eligible cell's sampled year-days into lanes too (``--day-lanes`` /
``REPRO_DAY_UNFOLD``; see ``docs/EXPERIMENTS.md``), and reuse the on-disk
result cache under ``.cache/``.  ``serve``/``submit``/``status``/``cancel`` are the service
mode: one persistent worker pool serving many concurrent campaign
requests with priorities, cancellation, and cross-request dedupe
(see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    DEFAULT_SAMPLE_DAYS,
    DEFAULT_WORLD_LOCATIONS,
    FIVE_LOCATION_SYSTEMS,
    five_location_matrix,
    world_sweep,
    year_result,
)
from repro.analysis.report import format_table
from repro.analysis.runner import TaskFailure, resolve_workers
from repro.cooling.backends import PLANTS, resolve_plant
from repro.core.band import select_band
from repro.core.coolair import CoolAir
from repro.core.versions import ALL_VERSIONS
from repro.errors import ReproError
from repro.faults import BUILTIN_SCENARIOS, builtin_scenario
from repro.sim.campaign import run_learning_campaign, trained_cooling_model
from repro.sim.engine import (
    BaselineAdapter,
    CoolAirAdapter,
    DayRunner,
    ProfileWorkload,
    make_realsim,
    make_smoothsim,
)
from repro.sim.validation import fraction_within, prediction_errors
from repro.weather.forecast import ForecastService
from repro.weather.locations import NAMED_LOCATIONS
from repro.weather.tmy import generate_tmy
from repro.workload.traces import FacebookTraceGenerator, NutchTraceGenerator

SYSTEM_CHOICES = ["baseline"] + list(ALL_VERSIONS)

# One line per subcommand; renders the --help epilog and anchors the
# README command table (scripts/check_doc_commands.py keeps them honest).
COMMAND_SUMMARIES = {
    "versions": "print the Table 1 system matrix",
    "band": "show the temperature band CoolAir picks for a day",
    "campaign": "run the model-learning campaign and report model quality",
    "day": "simulate one day of a system at a location",
    "year": "simulate (and cache) a year; print the headline metrics",
    "matrix": "the Figures 8-10 systems-by-locations year matrix",
    "world": "the Figures 12/13 worldwide sweep",
    "locations": "list the named evaluation locations",
    "faults": "list the built-in fault-injection scenarios",
    "bench": "time the simulation core (docs/PERFORMANCE.md)",
    "serve": "run the campaign control-plane service (docs/SERVICE.md)",
    "submit": "submit a campaign to the service and stream its progress",
    "status": "list service jobs, or show one job's progress",
    "cancel": "cancel a submitted service job",
}


def command_table() -> str:
    """The subcommand catalogue, one aligned line per command."""
    width = max(len(name) for name in COMMAND_SUMMARIES)
    return "\n".join(
        f"  {name:<{width}}  {summary}"
        for name, summary in COMMAND_SUMMARIES.items()
    )


def _climate(name: str):
    try:
        return NAMED_LOCATIONS[name]
    except KeyError:
        raise ReproError(
            f"unknown location {name!r}; choices: {', '.join(NAMED_LOCATIONS)}"
        )


def _trace(name: str, deferrable: bool):
    if name == "facebook":
        return FacebookTraceGenerator(num_jobs=1200).generate(deferrable=deferrable)
    if name == "nutch":
        return NutchTraceGenerator().generate(deferrable=deferrable)
    raise ReproError(f"unknown workload {name!r}; choices: facebook, nutch")


# -- subcommands --------------------------------------------------------------


def cmd_versions(args: argparse.Namespace) -> int:
    rows = []
    for name, factory in ALL_VERSIONS.items():
        config = factory()
        rows.append([
            name,
            config.band_mode.value,
            "yes" if config.use_energy_term else "no",
            config.placement.value.replace("_first", ""),
            config.temporal.value,
        ])
    print(format_table(
        ["version", "band mode", "energy term", "placement", "temporal"],
        rows, title="CoolAir versions (Table 1 + ablations)",
    ))
    return 0


def cmd_locations(args: argparse.Namespace) -> int:
    rows = [
        [c.name, c.latitude, c.longitude, c.mean_temp_c,
         c.seasonal_amplitude_c, c.mean_rh_pct]
        for c in NAMED_LOCATIONS.values()
    ]
    print(format_table(
        ["location", "lat", "lon", "mean C", "seasonal amp C", "mean RH %"],
        rows, title="Named evaluation locations",
    ))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    rows = []
    for name, schedule in sorted(BUILTIN_SCENARIOS.items()):
        channels = []
        for fault in schedule.sensor_faults:
            channels.append(f"{fault.sensor}:{fault.kind}")
        for fault in schedule.actuator_faults:
            channels.append(fault.kind)
        for gap in schedule.log_gaps:
            channels.append(f"log-gap:{gap.drop_mode or 'positional'}")
        rows.append([name, ", ".join(channels)])
    print(format_table(
        ["scenario", "fault channels"],
        rows, title="Built-in fault scenarios (coolair day --faults NAME)",
    ))
    return 0


def cmd_band(args: argparse.Namespace) -> int:
    climate = _climate(args.location)
    forecast = ForecastService(generate_tmy(climate)).forecast_for_day(args.day)
    config = ALL_VERSIONS[args.system]() if args.system != "baseline" else None
    if config is None:
        raise ReproError("the baseline has no temperature band; pick a version")
    band = select_band(forecast, config)
    print(
        f"{climate.name} day {args.day}: forecast avg "
        f"{forecast.average_temp_c:.1f}C "
        f"({forecast.min_temp_c:.1f}..{forecast.max_temp_c:.1f})"
    )
    print(
        f"{config.name} band: [{band.low_c:.1f}, {band.high_c:.1f}]C"
        + ("  (slid against Min/Max)" if band.slid else "")
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    print(f"Running the learning campaign ({args.days} days)...")
    days = tuple(
        int(round(d)) for d in
        [i * 365 / args.days + 5 for i in range(args.days)]
    )
    model = trained_cooling_model(days=days, use_cache=False)
    held_out = run_learning_campaign(days=(100, 270))
    errors2 = prediction_errors(model, held_out, 1)
    errors10 = prediction_errors(model, held_out, 5)
    print(f"learned regimes: {', '.join(model.learned_regimes)}")
    print(
        f"validation: {fraction_within(errors2, 1.0)*100:.0f}% of 2-min and "
        f"{fraction_within(errors10, 1.0)*100:.0f}% of 10-min predictions "
        "within 1C"
    )
    return 0


def cmd_day(args: argparse.Namespace) -> int:
    climate = _climate(args.location)
    plant = resolve_plant(args.plant)
    trace = _trace(args.workload, deferrable=args.system.endswith("DEF"))
    faults = builtin_scenario(args.faults) if args.faults else None
    if args.system == "baseline":
        if faults is not None:
            raise ReproError(
                "--faults requires a CoolAir system (the baseline has no "
                "graceful-degradation path); pick a version"
            )
        setup = make_realsim(climate, plant=plant)
        adapter = BaselineAdapter()
    else:
        config = ALL_VERSIONS[args.system]()
        if faults is not None:
            config = dataclasses.replace(config, faults=faults)
        maker = make_realsim if args.abrupt else make_smoothsim
        setup = maker(climate, faults=faults, plant=plant)
        model = trained_cooling_model(
            log_gaps=faults.log_gaps if faults is not None else ()
        )
        coolair = CoolAir(
            config, model, setup.layout, setup.forecast,
            smooth_hardware=setup.smooth_hardware,
        )
        adapter = CoolAirAdapter(coolair)
    runner = DayRunner(setup, ProfileWorkload(trace, setup.layout, 600.0), adapter)
    day = runner.run_day(args.day)
    print(
        f"{args.system} at {climate.name}, day {args.day}: "
        f"max {day.max_sensor_temp_c():.1f}C, "
        f"range {day.worst_sensor_range_c():.1f}C, "
        f"PUE {day.pue():.2f}, cooling {day.cooling_energy_kwh():.1f} kWh"
    )
    if day.water_liters() > 0:
        print(
            f"water ({plant}): {day.water_liters():.0f} L, "
            f"WUE {day.wue():.2f} L/kWh"
        )
    if plant == "hybrid":
        tower = day.mech_regime_fraction("tower")
        chiller = day.mech_regime_fraction("chiller")
        mech = tower + chiller
        split = (
            f" ({tower / mech * 100:.0f}% tower / "
            f"{chiller / mech * 100:.0f}% chiller)"
            if mech > 0
            else ""
        )
        print(
            f"regimes (hybrid): tower {tower * 24:.1f} h, "
            f"chiller {chiller * 24:.1f} h of mechanical cooling{split}"
        )
    if faults is not None:
        intervals = day.degradation_intervals()
        spans = ", ".join(f"{a/3600:.1f}h-{b/3600:.1f}h" for a, b in intervals)
        print(
            f"faults ({args.faults}): safe-mode control "
            f"{day.degraded_fraction()*100:.0f}% of the day"
            + (f" over {len(intervals)} interval(s): {spans}" if intervals else "")
        )
    return 0


def cmd_year(args: argparse.Namespace) -> int:
    climate = _climate(args.location)
    result = year_result(
        args.system,
        climate,
        workload=args.workload,
        deferrable=args.system.endswith("DEF"),
        sample_every_days=args.sample_days,
        use_disk_cache=not args.no_cache,
        day_lanes=args.day_lanes,
        plant=args.plant,
    )
    print(result.summary_row())
    return 0


def _progress(done: int, total: int, task) -> None:
    print(f"[{done}/{total}] {task.label()}", file=sys.stderr)


def _report_failures(failures: List[TaskFailure]) -> None:
    """Print the cells that exhausted their retries (docs/ROBUSTNESS.md)."""
    if not failures:
        return
    print(f"\n{len(failures)} cell(s) failed and were skipped:", file=sys.stderr)
    for failure in failures:
        print(
            f"  {failure.label()} after {failure.attempts} attempt(s): "
            f"{failure.error}",
            file=sys.stderr,
        )


def cmd_matrix(args: argparse.Namespace) -> int:
    systems = tuple(args.systems.split(","))
    for system in systems:
        if system not in SYSTEM_CHOICES:
            raise ReproError(
                f"unknown system {system!r}; choices: {', '.join(SYSTEM_CHOICES)}"
            )
    workers = resolve_workers(args.workers)
    failures: List[TaskFailure] = []
    matrix = five_location_matrix(
        systems=systems,
        workload=args.workload,
        sample_every_days=args.sample_days,
        workers=workers,
        lanes=args.lanes,
        day_lanes=args.day_lanes,
        progress=None if args.quiet else _progress,
        task_retries=args.task_retries,
        task_timeout_s=args.task_timeout,
        failures=failures,
        plant=args.plant,
    )
    wet = any(
        result.water_l > 0.0
        for by_location in matrix.values()
        for result in by_location.values()
    )
    rows = []
    for system, by_location in matrix.items():
        for name, result in by_location.items():
            row = [
                system, name,
                f"{result.avg_violation_c:.2f}",
                f"{result.avg_range_c:.1f}",
                f"{result.max_range_c:.1f}",
                f"{result.pue:.2f}",
            ]
            if wet:
                row.append(f"{result.wue:.2f}")
            rows.append(row)
    headers = ["system", "location", "viol C", "avg range C", "max range C", "PUE"]
    if wet:
        headers.append("WUE")
    print(format_table(
        headers,
        rows,
        title=f"Figures 8-10 matrix ({args.workload}, {workers} workers)",
    ))
    _report_failures(failures)
    return 1 if failures else 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import profiling

    model = trained_cooling_model()
    results = profiling.run_bench(quick=args.quick, model=model)
    baseline_path = args.baseline or profiling.DEFAULT_BASELINE
    payload = profiling.write_report(
        results,
        path=args.output,
        quick=args.quick,
        baseline_path=baseline_path,
    )
    print(profiling.format_report(payload))
    print(f"wrote {args.output}")
    if not args.no_history:
        entry = profiling.append_history(payload, label=args.label)
        print(
            f"appended run @ {entry['git_rev']} to "
            f"{profiling.DEFAULT_HISTORY}"
        )
    if args.profile:
        print(profiling.profile_day_sim(model=model, top_n=args.profile_top))
    if args.check:
        regressions, notes = profiling.check_regressions(
            results,
            profiling.load_baseline(baseline_path),
            threshold=args.check_threshold,
        )
        for note in notes:
            print(f"check: {note}")
        if regressions:
            print(
                f"{len(regressions)} tracked metric(s) regressed more than "
                f"{args.check_threshold:.0%} vs the recorded baseline:",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 3
        print("check: no tracked metric regressed beyond the threshold")
    return 0


def cmd_world(args: argparse.Namespace) -> int:
    workers = resolve_workers(args.workers)
    failures: List[TaskFailure] = []
    stream = None
    if args.stream:
        stream = True
    elif args.no_stream:
        stream = False
    screen_stats: dict = {}
    summary = world_sweep(
        num_locations=args.grid_points or args.locations,
        workers=workers,
        lanes=args.lanes,
        day_lanes=args.day_lanes,
        progress=None if args.quiet else _progress,
        task_retries=args.task_retries,
        task_timeout_s=args.task_timeout,
        failures=failures,
        stream=stream,
        screen=args.screen,
        screen_stats=screen_stats,
        plant=args.plant,
    )
    print(format_table(
        ["bin C", "locations"],
        list(summary.range_bucket_counts().items()),
        title=f"Figure 12 — max-range reduction ({len(summary.comparisons)} locations)",
    ))
    print(format_table(
        ["bin", "locations"],
        list(summary.pue_bucket_counts().items()),
        title="Figure 13 — yearly PUE reduction",
    ))
    print(summary.headline())
    if screen_stats:
        counters = screen_stats["counters"]
        cost = screen_stats["cost_model"]
        print(
            "screening: "
            f"{counters['simulated']} simulated, "
            f"{counters['served_from_cluster']} served from cluster, "
            f"{counters['surrogate_only']} surrogate-only "
            f"of {screen_stats['grid_points']} grid points "
            f"({screen_stats['clusters']} clusters, "
            f"{screen_stats['cells_simulated']} cells simulated, "
            f"{cost['seconds_per_cell']:.2f}s/cell observed)"
        )
    if args.map:
        from repro.analysis.worldmap import render_world_map

        print(render_world_map(summary, metric=args.map_metric))
    _report_failures(failures)
    return 1 if failures else 0


# -- service mode --------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    return serve(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_jobs=args.max_jobs,
        task_retries=args.task_retries,
        task_timeout_s=args.task_timeout,
    )


def _submit_spec(args: argparse.Namespace):
    """A CampaignSpec from the ``submit`` flags, by sweep kind."""
    from repro.service.spec import CampaignSpec

    plant = resolve_plant(args.plant)
    if args.kind == "matrix":
        return CampaignSpec(
            kind="matrix",
            systems=tuple(args.systems.split(",")),
            workload=args.workload,
            sample_every_days=args.sample_days,
            day_lanes=args.day_lanes,
            plant=plant,
        )
    if args.kind == "world":
        return CampaignSpec(
            kind="world",
            locations=args.locations,
            grid_points=args.grid_points,
            coolair_system=args.coolair_system,
            sample_every_days=args.sample_days,
            screen=args.screen or "off",
            day_lanes=args.day_lanes,
            plant=plant,
        )
    return CampaignSpec(
        kind="faults",
        system=args.system,
        location=args.location,
        scenarios=tuple(args.scenarios.split(",")) if args.scenarios else (),
        workload=args.workload,
        sample_every_days=args.sample_days,
        day_lanes=args.day_lanes,
        plant=plant,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import (
        ServiceClient,
        job_result_json,
        render_result,
    )

    spec = _submit_spec(args)
    with ServiceClient(
        socket_path=args.socket, host=args.host, port=args.port
    ) as client:
        if args.no_wait:
            reply = client.submit(spec, priority=args.priority, stream=False)
            print(reply["job_id"])
            return 0
        reply = client.submit(spec, priority=args.priority, stream=True)
        job_id = reply["job_id"]
        if not args.quiet:
            print(
                f"submitted {job_id}: {reply['job']['spec']} "
                f"({reply['job']['total']} cells)",
                file=sys.stderr,
            )
        final = None
        for event in client.events():
            kind = event.get("event")
            if kind == "cell" and not args.quiet:
                if event.get("ok", False):
                    status = event.get("source", "executed")
                else:
                    status = f"FAILED: {event.get('error')}"
                print(
                    f"[{event['done']}/{event['total']}] {event['label']} "
                    f"({status})",
                    file=sys.stderr,
                )
            elif kind in ("done", "cancelled"):
                final = event
        if final is None or final.get("event") == "cancelled":
            print(f"job {job_id} was cancelled", file=sys.stderr)
            return 1
        result = client.result(job_id)
        print(job_result_json(result) if args.json else render_result(result))
        return 1 if final.get("failed") else 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import (
        ServiceClient,
        format_jobs_table,
        job_result_json,
        render_result,
    )

    with ServiceClient(
        socket_path=args.socket, host=args.host, port=args.port
    ) as client:
        if args.job_id is None:
            reply = client.list_jobs()
            print(format_jobs_table(reply["jobs"], reply["service"]))
            return 0
        reply = client.status(args.job_id)
        print(format_jobs_table([reply["job"]], reply["service"]))
        if args.result:
            result = client.result(args.job_id)
            print(
                job_result_json(result) if args.json else render_result(result)
            )
        return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    with ServiceClient(
        socket_path=args.socket, host=args.host, port=args.port
    ) as client:
        reply = client.cancel(args.job_id)
        state = reply["job"]["state"]
        if reply["cancelled"]:
            print(f"cancelled {args.job_id}")
            return 0
        print(f"{args.job_id} already {state}; nothing to cancel")
        return 1


# -- entry point ----------------------------------------------------------------


def _add_plant_arg(parser: argparse.ArgumentParser) -> None:
    """The cooling-plant backend selector shared by the sim commands."""
    parser.add_argument("--plant", default=None, choices=list(PLANTS),
                        help="cooling plant backend (default REPRO_PLANT or "
                             "parasol; docs/EXPERIMENTS.md)")


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    """Where the service lives (client side); mirrors the serve flags."""
    parser.add_argument("--socket", default=None,
                        help="service unix-socket path "
                             "(default REPRO_SERVICE_SOCKET or .cache/service.sock)")
    parser.add_argument("--host", default=None,
                        help="service TCP host (default REPRO_SERVICE_HOST)")
    parser.add_argument("--port", type=int, default=None,
                        help="service TCP port (default REPRO_SERVICE_PORT)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coolair",
        description="CoolAir free-cooled datacenter management (ASPLOS'15 reproduction)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=f"commands:\n{command_table()}\n\n"
               "one-shot campaigns: `matrix`, `world` (docs/EXPERIMENTS.md); "
               "service mode: `serve` + `submit`/`status`/`cancel` "
               "(docs/SERVICE.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("versions", help="print the system matrix")
    sub.add_parser("locations", help="list named locations")
    sub.add_parser("faults", help="list built-in fault scenarios")

    band = sub.add_parser("band", help="show a day's temperature band")
    band.add_argument("--location", default="Newark")
    band.add_argument("--day", type=int, default=182)
    band.add_argument("--system", default="All-ND", choices=SYSTEM_CHOICES)

    campaign = sub.add_parser("campaign", help="run the learning campaign")
    campaign.add_argument("--days", type=int, default=10)

    day = sub.add_parser("day", help="simulate one day")
    day.add_argument("--location", default="Newark")
    day.add_argument("--day", type=int, default=182)
    day.add_argument("--system", default="All-ND", choices=SYSTEM_CHOICES)
    day.add_argument("--workload", default="facebook")
    day.add_argument("--abrupt", action="store_true",
                     help="use Parasol's abrupt hardware for CoolAir")
    day.add_argument("--faults", default=None,
                     choices=sorted(BUILTIN_SCENARIOS),
                     help="inject a built-in fault scenario "
                          "(see `coolair faults` and docs/ROBUSTNESS.md)")
    _add_plant_arg(day)

    year = sub.add_parser("year", help="simulate a year")
    year.add_argument("--location", default="Newark")
    year.add_argument("--system", default="All-ND", choices=SYSTEM_CHOICES)
    year.add_argument("--workload", default="facebook")
    year.add_argument("--sample-days", type=int, default=DEFAULT_SAMPLE_DAYS,
                      help="stride between simulated days (7 = paper)")
    year.add_argument("--day-lanes", type=int, default=None,
                      help="sampled year-days stepped in lockstep when the "
                           "cell is unfold-eligible (default "
                           "REPRO_DAY_UNFOLD; 1 = day-sequential)")
    year.add_argument("--no-cache", action="store_true",
                      help="bypass the on-disk result cache")
    _add_plant_arg(year)

    matrix = sub.add_parser(
        "matrix", help="the Figures 8-10 systems-by-locations year matrix")
    matrix.add_argument("--systems", default=",".join(FIVE_LOCATION_SYSTEMS),
                        help="comma-separated system names")
    matrix.add_argument("--workload", default="facebook")
    matrix.add_argument("--sample-days", type=int, default=None,
                        help="stride between simulated days (7 = paper)")
    matrix.add_argument("--workers", type=int, default=None,
                        help="worker processes (default REPRO_WORKERS or CPUs)")
    matrix.add_argument("--lanes", type=int, default=None,
                        help="scenarios stepped in lockstep per worker "
                             "(default REPRO_LANES; 1 = per-cell runs)")
    matrix.add_argument("--day-lanes", type=int, default=None,
                        help="sampled year-days stepped in lockstep per "
                             "eligible cell (default REPRO_DAY_UNFOLD; "
                             "1 = day-sequential)")
    matrix.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress on stderr")
    matrix.add_argument("--task-retries", type=int, default=None,
                        help="retries per failing cell "
                             "(default REPRO_TASK_RETRIES or 1)")
    matrix.add_argument("--task-timeout", type=float, default=None,
                        help="seconds to wait for any cell to finish before "
                             "recovering serially (default REPRO_TASK_TIMEOUT_S; "
                             "unset = no timeout)")
    _add_plant_arg(matrix)

    world = sub.add_parser(
        "world", help="the Figures 12/13 worldwide sweep")
    world.add_argument("--locations", type=int, default=DEFAULT_WORLD_LOCATIONS,
                       help="world-grid size (1520 = paper)")
    world.add_argument("--grid-points", type=int, default=None,
                       help="world-grid size for planetary-scale sweeps "
                            "(preferred spelling; overrides --locations, "
                            "100000+ supported with --screen=on)")
    world.add_argument("--screen", default=None, choices=["off", "on"],
                       help="screening pipeline: simulate only climate-"
                            "cluster representatives and surrogate-uncertain "
                            "cells, serve the rest with provenance tags "
                            "(default REPRO_SCREEN or off; "
                            "docs/PERFORMANCE.md)")
    world.add_argument("--map", action="store_true",
                       help="also print a terminal-sized ASCII world map "
                            "(dense grids downsample to the raster)")
    world.add_argument("--map-metric", default="range",
                       choices=["range", "pue", "wue"],
                       help="what the map glyphs encode (default range)")
    world.add_argument("--workers", type=int, default=None,
                       help="worker processes (default REPRO_WORKERS or CPUs)")
    world.add_argument("--lanes", type=int, default=None,
                       help="scenarios stepped in lockstep per worker "
                            "(default REPRO_LANES; 1 = per-cell runs)")
    world.add_argument("--day-lanes", type=int, default=None,
                       help="sampled year-days stepped in lockstep per "
                            "eligible cell (default REPRO_DAY_UNFOLD; "
                            "1 = day-sequential)")
    world.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress on stderr")
    world.add_argument("--task-retries", type=int, default=None,
                       help="retries per failing cell "
                            "(default REPRO_TASK_RETRIES or 1)")
    world.add_argument("--task-timeout", type=float, default=None,
                       help="seconds to wait for any cell to finish before "
                            "recovering serially (default REPRO_TASK_TIMEOUT_S; "
                            "unset = no timeout)")
    world.add_argument("--stream", action="store_true",
                       help="fold results into compact summary columns as "
                            "cells complete (default REPRO_STREAM_WORLD, on); "
                            "bit-identical, bounded parent memory")
    world.add_argument("--no-stream", action="store_true",
                       help="hold every full YearResult in the parent until "
                            "the sweep ends (the pre-streaming path)")
    _add_plant_arg(world)

    bench = sub.add_parser(
        "bench", help="time the simulation core (see docs/PERFORMANCE.md)")
    bench.add_argument("--quick", action="store_true",
                       help="smoke mode: tiny iteration counts, no year sample")
    bench.add_argument("--profile", action="store_true",
                       help="also cProfile a day simulation and print the "
                            "top functions by cumulative time")
    bench.add_argument("--profile-top", type=int, default=25,
                       help="rows of the cProfile table to print")
    bench.add_argument("--output", default="BENCH_sim_core.json",
                       help="where to write the machine-readable report")
    bench.add_argument("--baseline", default=None,
                       help="recorded baseline JSON to compare against "
                            "(default benchmarks/perf/baseline_sim_core.json)")
    bench.add_argument("--label", default="",
                       help="free-form label recorded with this run in "
                            "benchmarks/perf/history.jsonl")
    bench.add_argument("--no-history", action="store_true",
                       help="skip appending this run to the perf history")
    bench.add_argument("--check", action="store_true",
                       help="exit 3 if any tracked metric regressed more "
                            "than --check-threshold vs the recorded baseline")
    bench.add_argument("--check-threshold", type=float, default=0.25,
                       help="fractional regression allowed before --check "
                            "fails (0.25 = 25%%)")

    serve = sub.add_parser(
        "serve", help="run the campaign control-plane service "
                      "(see docs/SERVICE.md)")
    serve.add_argument("--socket", default=None,
                       help="unix-socket path to listen on "
                            "(default REPRO_SERVICE_SOCKET or .cache/service.sock)")
    serve.add_argument("--host", default=None,
                       help="listen on TCP at this host instead of the "
                            "unix socket (default REPRO_SERVICE_HOST)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default REPRO_SERVICE_PORT; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes (default REPRO_WORKERS or CPUs)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="cells occupying pool slots at once "
                            "(default REPRO_SERVICE_MAX_INFLIGHT or the "
                            "worker count)")
    serve.add_argument("--max-jobs", type=int, default=None,
                       help="queued+running jobs before submissions are "
                            "refused (default REPRO_SERVICE_MAX_JOBS or 64)")
    serve.add_argument("--task-retries", type=int, default=None,
                       help="retries per failing cell "
                            "(default REPRO_TASK_RETRIES or 1)")
    serve.add_argument("--task-timeout", type=float, default=None,
                       help="seconds to wait for any cell before the pool "
                            "is recycled (default REPRO_TASK_TIMEOUT_S; "
                            "unset = no timeout)")

    submit = sub.add_parser(
        "submit", help="submit a campaign to the service")
    submit.add_argument("kind", choices=["matrix", "world", "faults"],
                        help="sweep shape: the matrix/world one-shot "
                             "campaigns, or a fault-scenario sweep")
    submit.add_argument("--systems", default=",".join(FIVE_LOCATION_SYSTEMS),
                        help="matrix: comma-separated system names")
    submit.add_argument("--workload", default="facebook",
                        help="matrix/faults: facebook or nutch")
    submit.add_argument("--sample-days", type=int, default=None,
                        help="stride between simulated days (7 = paper)")
    submit.add_argument("--day-lanes", type=int, default=None,
                        help="sampled year-days stepped in lockstep per "
                             "eligible cell inside each worker "
                             "(1 = day-sequential)")
    submit.add_argument("--locations", type=int,
                        default=DEFAULT_WORLD_LOCATIONS,
                        help="world: grid size (1520 = paper)")
    submit.add_argument("--grid-points", type=int, default=None,
                        help="world: grid size (preferred spelling; "
                             "overrides --locations)")
    submit.add_argument("--screen", default=None, choices=["off", "on"],
                        help="world: run the screening pipeline instead of "
                             "the exhaustive sweep (docs/PERFORMANCE.md)")
    submit.add_argument("--coolair-system", default="All-ND",
                        choices=[s for s in SYSTEM_CHOICES if s != "baseline"],
                        help="world: the CoolAir system compared to the "
                             "baseline at every location")
    submit.add_argument("--system", default="All-ND",
                        choices=SYSTEM_CHOICES,
                        help="faults: the system to run under each scenario")
    submit.add_argument("--location", default="Newark",
                        help="faults: where to run the scenarios")
    submit.add_argument("--scenarios", default=None,
                        help="faults: comma-separated scenario names "
                             "(default: all built-ins; see `coolair faults`)")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority; higher runs first "
                             "(default 0)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return instead of "
                             "streaming progress (poll with `status`)")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress on stderr")
    submit.add_argument("--json", action="store_true",
                        help="print the raw result payload instead of tables")
    _add_plant_arg(submit)
    _add_endpoint_args(submit)

    status = sub.add_parser(
        "status", help="list service jobs, or show one job")
    status.add_argument("job_id", nargs="?", default=None,
                        help="a job id from `submit`; omit to list all jobs")
    status.add_argument("--result", action="store_true",
                        help="also fetch and render the job's result "
                             "(completed jobs only)")
    status.add_argument("--json", action="store_true",
                        help="print the raw result payload instead of tables")
    _add_endpoint_args(status)

    cancel = sub.add_parser("cancel", help="cancel a submitted job")
    cancel.add_argument("job_id", help="a job id from `submit`")
    _add_endpoint_args(cancel)
    return parser


COMMANDS = {
    "versions": cmd_versions,
    "locations": cmd_locations,
    "faults": cmd_faults,
    "band": cmd_band,
    "campaign": cmd_campaign,
    "day": cmd_day,
    "year": cmd_year,
    "matrix": cmd_matrix,
    "world": cmd_world,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "cancel": cmd_cancel,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
