"""Least-median-of-squares robust regression.

Weka's ``LeastMedSq`` fits OLS models to many random subsamples and keeps
the one whose *median* squared residual over the full dataset is smallest,
which makes it robust to the outliers a real monitoring campaign produces
(sensor glitches, undocumented regime flips).  This is the approach the
paper cites for linear behaviours alongside plain linear regression.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelNotTrainedError
from repro.ml.dataset import Dataset
from repro.ml.linreg import LinearRegression


class LeastMedianSquares:
    """LMS regression via random subsampling of OLS fits."""

    def __init__(self, num_samples: int = 40, seed: int = 11) -> None:
        self.num_samples = num_samples
        self._seed = seed
        self._best: Optional[LinearRegression] = None

    @property
    def is_trained(self) -> bool:
        return self._best is not None

    @property
    def coefficients(self) -> np.ndarray:
        if self._best is None:
            raise ModelNotTrainedError("coefficients read before fit")
        assert self._best.coefficients is not None
        return self._best.coefficients

    @property
    def intercept(self) -> float:
        if self._best is None:
            raise ModelNotTrainedError("intercept read before fit")
        return self._best.intercept

    def fit(self, dataset: Dataset) -> "LeastMedianSquares":
        """Fit to the dataset and return self."""
        x = dataset.matrix()
        y = dataset.targets()
        n = x.shape[0]
        if n == 0:
            raise ModelNotTrainedError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self._seed)
        # Subsample size: enough for a stable OLS fit, small enough that a
        # clean (outlier-free) subset is drawn with high probability across
        # the trials.  Fall back to the whole set when data is scarce.
        subset_size = max(
            dataset.num_features + 2,
            min(n // 2, 3 * (dataset.num_features + 1)),
        )
        subset_size = min(subset_size, n)

        best_median = float("inf")
        best_model: Optional[LinearRegression] = None
        trials = self.num_samples if subset_size < n else 1
        for _ in range(trials):
            indices = rng.choice(n, size=subset_size, replace=False)
            sub = Dataset(dataset.feature_names)
            for i in indices:
                sub.add(x[i], float(y[i]))
            model = LinearRegression().fit(sub)
            residuals = model.predict(x) - y
            median = float(np.median(residuals**2))
            if median < best_median:
                best_median = median
                best_model = model
        assert best_model is not None
        self._best = best_model
        return self

    def predict_one(self, features: Sequence[float]) -> float:
        if self._best is None:
            raise ModelNotTrainedError("predict_one called before fit")
        return self._best.predict_one(features)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        if self._best is None:
            raise ModelNotTrainedError("predict called before fit")
        return self._best.predict(matrix)

    def rmse(self, dataset: Dataset) -> float:
        predictions = self.predict(dataset.matrix())
        return float(np.sqrt(np.mean((predictions - dataset.targets()) ** 2)))
