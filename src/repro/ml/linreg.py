"""Ordinary-least-squares linear regression."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelNotTrainedError
from repro.ml.dataset import Dataset


class LinearRegression:
    """OLS regression with an intercept, solved via lstsq.

    Mirrors Weka's ``LinearRegression`` as used by the Cooling Learner for
    linear thermal and humidity behaviours.
    """

    def __init__(self) -> None:
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: float = 0.0
        self.feature_names: Sequence[str] = ()

    @property
    def is_trained(self) -> bool:
        return self.coefficients is not None

    def fit(self, dataset: Dataset) -> "LinearRegression":
        """Fit to the dataset and return self."""
        x = dataset.matrix()
        y = dataset.targets()
        if x.shape[0] == 0:
            raise ModelNotTrainedError("cannot fit on an empty dataset")
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept = float(solution[0])
        self.coefficients = solution[1:]
        self.feature_names = dataset.feature_names
        return self

    def predict_one(self, features: Sequence[float]) -> float:
        """Predict the target for a single feature vector."""
        if self.coefficients is None:
            raise ModelNotTrainedError("predict_one called before fit")
        return self.intercept + float(
            np.dot(self.coefficients, np.asarray(features, dtype=float))
        )

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Predict targets for an (n, n_features) matrix."""
        if self.coefficients is None:
            raise ModelNotTrainedError("predict called before fit")
        return self.intercept + matrix @ self.coefficients

    def rmse(self, dataset: Dataset) -> float:
        """Root-mean-squared error on a dataset."""
        predictions = self.predict(dataset.matrix())
        return float(np.sqrt(np.mean((predictions - dataset.targets()) ** 2)))
