"""Model selection: "try linear and least median square approaches and pick
the one with the lowest error" (Section 4.2)."""

from __future__ import annotations

from typing import Union

from repro.ml.dataset import Dataset
from repro.ml.linreg import LinearRegression
from repro.ml.lms import LeastMedianSquares

LinearModel = Union[LinearRegression, LeastMedianSquares]


def fit_best_linear(dataset: Dataset, validation_fraction: float = 0.25) -> LinearModel:
    """Fit OLS and LMS, return whichever validates better.

    With very small datasets the chronological validation split can be
    empty; in that case the comparison falls back to training error.
    """
    ols = LinearRegression().fit(dataset)
    # LMS is only worth its cost with enough data to subsample.
    if len(dataset) < 4 * dataset.num_features:
        return ols
    lms = LeastMedianSquares().fit(dataset)

    train, valid = dataset.split(1.0 - validation_fraction)
    scoring = valid if len(valid) > 0 else dataset
    return ols if ols.rmse(scoring) <= lms.rmse(scoring) else lms
