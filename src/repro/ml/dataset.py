"""Feature-matrix container used by the regression learners."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


class Dataset:
    """A named-feature design matrix with a single regression target.

    Rows are appended incrementally as the monitoring campaign produces
    samples; learners consume the frozen numpy views.
    """

    def __init__(self, feature_names: Sequence[str]) -> None:
        if not feature_names:
            raise ConfigError("feature_names must be non-empty")
        if len(set(feature_names)) != len(feature_names):
            raise ConfigError("feature names must be unique")
        self.feature_names: Tuple[str, ...] = tuple(feature_names)
        self._rows: List[List[float]] = []
        self._targets: List[float] = []

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def num_features(self) -> int:
        return len(self.feature_names)

    def add(self, features: Sequence[float], target: float) -> None:
        """Append one (features, target) sample."""
        if len(features) != self.num_features:
            raise ConfigError(
                f"expected {self.num_features} features, got {len(features)}"
            )
        self._rows.append([float(value) for value in features])
        self._targets.append(float(target))

    def matrix(self) -> np.ndarray:
        """The (n_samples, n_features) design matrix."""
        if not self._rows:
            return np.empty((0, self.num_features))
        return np.asarray(self._rows, dtype=float)

    def targets(self) -> np.ndarray:
        return np.asarray(self._targets, dtype=float)

    def split(self, train_fraction: float = 0.8) -> Tuple["Dataset", "Dataset"]:
        """Chronological train/validation split (no shuffling: time series)."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigError(f"train_fraction {train_fraction} out of (0, 1)")
        cut = int(len(self._rows) * train_fraction)
        train = Dataset(self.feature_names)
        valid = Dataset(self.feature_names)
        train._rows = self._rows[:cut]
        train._targets = self._targets[:cut]
        valid._rows = self._rows[cut:]
        valid._targets = self._targets[cut:]
        return train, valid
