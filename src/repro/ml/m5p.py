"""M5P-style piecewise-linear model tree.

The paper uses Weka's M5P for non-linear behaviours — notably cooling power
as a function of free-cooling fan speed, which is cubic.  M5P grows a
regression tree whose splits minimize target standard deviation and fits a
linear model in each leaf, yielding a piecewise-linear approximation.

This implementation keeps the core of the algorithm: standard-deviation
reduction splits, a minimum leaf size, and per-leaf OLS models, without
Weka's smoothing and pruning heuristics (which matter for generalization on
noisy data but not for the low-noise monitoring campaigns here).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError, ModelNotTrainedError
from repro.ml.dataset import Dataset
from repro.ml.linreg import LinearRegression


@dataclasses.dataclass
class _Node:
    # Internal node: split on feature_index at threshold; leaf: model set.
    feature_index: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    model: Optional[LinearRegression] = None

    @property
    def is_leaf(self) -> bool:
        return self.model is not None


class M5PModelTree:
    """Piecewise-linear regression via a model tree."""

    def __init__(
        self,
        min_leaf_size: int = 8,
        max_depth: int = 4,
        min_std_reduction: float = 0.05,
    ) -> None:
        if min_leaf_size < 2:
            raise ConfigError("min_leaf_size must be >= 2")
        if max_depth < 0:
            raise ConfigError("max_depth must be >= 0")
        self.min_leaf_size = min_leaf_size
        self.max_depth = max_depth
        self.min_std_reduction = min_std_reduction
        self._root: Optional[_Node] = None
        self._feature_names: Sequence[str] = ()

    @property
    def is_trained(self) -> bool:
        return self._root is not None

    def fit(self, dataset: Dataset) -> "M5PModelTree":
        """Fit to the dataset and return self."""
        x = dataset.matrix()
        y = dataset.targets()
        if x.shape[0] == 0:
            raise ModelNotTrainedError("cannot fit on an empty dataset")
        self._feature_names = dataset.feature_names
        self._root = self._build(x, y, depth=0, names=dataset.feature_names)
        return self

    def _build(
        self, x: np.ndarray, y: np.ndarray, depth: int, names: Sequence[str]
    ) -> _Node:
        if depth >= self.max_depth or x.shape[0] < 2 * self.min_leaf_size:
            return self._leaf(x, y, names)

        base_std = float(np.std(y))
        if base_std < 1e-12:
            return self._leaf(x, y, names)

        best_gain = 0.0
        best_feature = -1
        best_threshold = 0.0
        for feature in range(x.shape[1]):
            values = np.unique(x[:, feature])
            if values.shape[0] < 2:
                continue
            # Candidate thresholds: midpoints between distinct values,
            # capped for speed.
            midpoints = (values[:-1] + values[1:]) / 2.0
            if midpoints.shape[0] > 16:
                idx = np.linspace(0, midpoints.shape[0] - 1, 16).astype(int)
                midpoints = midpoints[idx]
            for threshold in midpoints:
                mask = x[:, feature] <= threshold
                n_left = int(np.sum(mask))
                n_right = x.shape[0] - n_left
                if n_left < self.min_leaf_size or n_right < self.min_leaf_size:
                    continue
                std_left = float(np.std(y[mask]))
                std_right = float(np.std(y[~mask]))
                weighted = (n_left * std_left + n_right * std_right) / x.shape[0]
                gain = (base_std - weighted) / base_std
                if gain > best_gain:
                    best_gain = gain
                    best_feature = feature
                    best_threshold = float(threshold)

        if best_feature < 0 or best_gain < self.min_std_reduction:
            return self._leaf(x, y, names)

        mask = x[:, best_feature] <= best_threshold
        return _Node(
            feature_index=best_feature,
            threshold=best_threshold,
            left=self._build(x[mask], y[mask], depth + 1, names),
            right=self._build(x[~mask], y[~mask], depth + 1, names),
        )

    def _leaf(self, x: np.ndarray, y: np.ndarray, names: Sequence[str]) -> _Node:
        leaf_data = Dataset(names)
        for row, target in zip(x, y):
            leaf_data.add(row, float(target))
        return _Node(model=LinearRegression().fit(leaf_data))

    def predict_one(self, features: Sequence[float]) -> float:
        """Predict the target for a single feature vector."""
        if self._root is None:
            raise ModelNotTrainedError("predict_one called before fit")
        vector = np.asarray(features, dtype=float)
        node = self._root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if vector[node.feature_index] <= node.threshold else node.right
        assert node.model is not None
        return node.model.predict_one(vector)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        return np.array([self.predict_one(row) for row in matrix])

    def rmse(self, dataset: Dataset) -> float:
        predictions = self.predict(dataset.matrix())
        return float(np.sqrt(np.mean((predictions - dataset.targets()) ** 2)))

    def num_leaves(self) -> int:
        """Number of linear models in the tree."""
        if self._root is None:
            return 0

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return count(node.left) + count(node.right)

        return count(self._root)
