"""Machine-learning substrate standing in for Weka (Section 4.2).

The paper fits its per-regime temperature, humidity, and power models with
Weka: plain linear regression and least-median-squares for linear
behaviours ("we try linear and least median square approaches and pick the
one with the lowest error"), and M5P piecewise-linear model trees for
non-linear behaviours such as power versus fan speed.
"""

from repro.ml.dataset import Dataset
from repro.ml.linreg import LinearRegression
from repro.ml.lms import LeastMedianSquares
from repro.ml.m5p import M5PModelTree
from repro.ml.selection import fit_best_linear

__all__ = [
    "Dataset",
    "LinearRegression",
    "LeastMedianSquares",
    "M5PModelTree",
    "fit_best_linear",
]
