"""Cooling-infrastructure extensions beyond Parasol's hardware.

The paper points at both of these:

* **Adiabatic (evaporative) cooling** — "some free-cooled datacenters
  also apply adiabatic cooling (via water evaporation, within the
  humidity constraint) to lower the temperature of the outside air before
  letting it reach the servers" (Section 2).
  :class:`EvaporativeCoolingUnits` adds a media pad + pump in front of
  the smooth free-cooling unit; a small policy helper decides when
  evaporation is worthwhile and humidity-safe.
* **Chilled-water backup** — "for datacenters that combine free cooling
  with chillers (instead of DX AC), we can use [Le et al.] to strike the
  proper ratio of power consumptions" (Section 6).
  :class:`ChilledWaterUnits` keeps the smooth AC's thermal behaviour but
  draws power through a chiller COP instead of the DX compressor curve.
"""

from __future__ import annotations

from repro import constants
from repro.cooling.units import SmoothCoolingUnits, free_cooling_power_w
from repro.errors import ConfigError
from repro.physics.psychrometrics import wet_bulb_c
from repro.physics.thermal import PlantInputs


class EvaporativeCoolingUnits(SmoothCoolingUnits):
    """Smooth free-cooling with an adiabatic pre-cooling stage.

    When ``evaporative_on`` is set and free cooling is running, incoming
    air is pulled toward its wet bulb with the configured media
    effectiveness; the pump adds a constant draw.
    """

    def __init__(
        self,
        ramp_per_step: float = 0.20,
        effectiveness: float = 0.7,
        pump_power_w: float = 55.0,
    ) -> None:
        super().__init__(ramp_per_step=ramp_per_step)
        if not 0.0 < effectiveness <= 1.0:
            raise ConfigError(f"effectiveness {effectiveness} out of (0, 1]")
        if pump_power_w < 0:
            raise ConfigError("pump_power_w must be non-negative")
        self.effectiveness = effectiveness
        self.pump_power_w = pump_power_w
        self.evaporative_on = False

    def set_evaporative(self, on: bool) -> None:
        self.evaporative_on = on

    def plant_inputs(self) -> PlantInputs:
        inputs = super().plant_inputs()
        if self.evaporative_on and self.fc_fan_speed > 0.0:
            inputs.evaporative_effectiveness = self.effectiveness
        return inputs

    def power_w(self) -> float:
        power = super().power_w()
        if self.evaporative_on and self.fc_fan_speed > 0.0:
            power += self.pump_power_w
        return power


def evaporation_worthwhile(
    outside_temp_c: float,
    outside_rh_pct: float,
    inside_rh_pct: float,
    target_temp_c: float,
    max_rh_pct: float = constants.DEFAULT_MAX_RH_PCT,
    min_depression_c: float = 2.0,
) -> bool:
    """Should the evaporative stage run right now?

    Yes when (1) outside air is warmer than the target, (2) the wet-bulb
    depression offers a real gain, and (3) humidity has headroom — the
    paper's "within the humidity constraint".
    """
    if outside_temp_c <= target_temp_c:
        return False
    depression = outside_temp_c - wet_bulb_c(outside_temp_c, outside_rh_pct)
    if depression < min_depression_c:
        return False
    headroom = 0.8 * max_rh_pct
    return inside_rh_pct < headroom and outside_rh_pct < headroom


class ChilledWaterUnits(SmoothCoolingUnits):
    """Smooth backup cooling driven by a chilled-water plant.

    Thermally identical to the smooth AC (the plant sees the same supply
    behaviour); the power model replaces the DX compressor curve with
    cooling capacity over a chiller COP, plus the air-handler fan.
    Typical water-cooled chiller COPs are 3-6; Parasol's DX unit works
    out to ~2.5 (5.5 kW of cooling for 2.2 kW of input).
    """

    def __init__(
        self,
        ramp_per_step: float = 0.20,
        cop: float = 4.5,
        capacity_w: float = 5500.0,
        fan_power_w: float = constants.AC_COMPRESSOR_W / 4.0,
    ) -> None:
        super().__init__(ramp_per_step=ramp_per_step)
        if cop <= 0:
            raise ConfigError("cop must be positive")
        if capacity_w <= 0:
            raise ConfigError("capacity_w must be positive")
        self.cop = cop
        self.capacity_w = capacity_w
        self.fan_power_w = fan_power_w

    def power_w(self) -> float:
        power = 0.0
        if self.fc_fan_speed > 0.0:
            power += free_cooling_power_w(self.fc_fan_speed)
        power += self.fan_power_w * self.ac_fan_speed
        power += self.capacity_w * self.ac_compressor_duty / self.cop
        return power
