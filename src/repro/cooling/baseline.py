"""The baseline management system (Section 5.1).

The baseline extends Parasol's default TKS control scheme in two ways that
make it more efficient and comparable to CoolAir: (1) the setpoint is 30C
instead of the default 25C, and (2) it adds humidity control with a maximum
limit of 80% relative humidity.

Humidity control works on top of the TKS decision: when the cold-aisle
relative humidity exceeds the limit while free cooling is bringing humid
outside air in, the baseline stops ingesting outside air — it closes the
container if temperatures allow, or falls back to the AC (whose coil
dehumidifies) when it is too warm to close.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.cooling.tks import (
    LANE_CMD_AC_ON,
    LANE_CMD_CLOSED,
    LANE_CMD_FREE_COOLING,
    LaneTKSController,
    TKSConfig,
    TKSController,
)


class BaselineController:
    """TKS with a 30C setpoint and 80% relative-humidity control."""

    def __init__(
        self,
        setpoint_c: float = constants.DEFAULT_MAX_C,
        max_rh_pct: float = constants.DEFAULT_MAX_RH_PCT,
        tks_config: TKSConfig = None,
    ) -> None:
        config = tks_config or TKSConfig()
        config.setpoint_c = setpoint_c
        self.tks = TKSController(config)
        self.max_rh_pct = max_rh_pct

    @property
    def setpoint_c(self) -> float:
        return self.tks.config.setpoint_c

    def reset(self) -> None:
        """Clear the TKS latches (day-boundary state)."""
        self.tks.reset()

    def decide(
        self,
        control_temp_c: float,
        outside_temp_c: float,
        cold_aisle_rh_pct: float,
        outside_rh_pct: float,
    ) -> CoolingCommand:
        """One control decision with the humidity override applied."""
        command = self.tks.decide(control_temp_c, outside_temp_c)
        humid_inside = cold_aisle_rh_pct > self.max_rh_pct
        humid_outside = outside_rh_pct > self.max_rh_pct
        if command.mode is CoolingMode.FREE_COOLING and humid_inside and humid_outside:
            # Free cooling is feeding the humidity problem; stop taking
            # outside air.  Closing also warms the container, which lowers
            # relative humidity; if it is already too warm to close, use the
            # AC so the coil condenses moisture out.
            sp = self.tks.config.setpoint_c
            if control_temp_c < sp:
                return CoolingCommand.closed()
            return CoolingCommand.ac(compressor_duty=1.0)
        return command


class LaneBaselineController:
    """Vectorized :class:`BaselineController` over a batch of lanes.

    The TKS decision and the humidity override are both computed with
    boolean masks; per lane the result is bit-identical to a scalar
    :class:`BaselineController` fed that lane's sensor readings.
    """

    def __init__(
        self,
        num_lanes: int,
        setpoint_c: float = constants.DEFAULT_MAX_C,
        max_rh_pct: float = constants.DEFAULT_MAX_RH_PCT,
        tks_config: TKSConfig = None,
    ) -> None:
        config = tks_config or TKSConfig()
        config.setpoint_c = setpoint_c
        self.tks = LaneTKSController(num_lanes, config)
        self.max_rh_pct = max_rh_pct

    def reset(self) -> None:
        """Clear every lane's TKS latches (day-boundary state)."""
        self.tks.reset()

    def decide(
        self,
        control_temp_c: np.ndarray,
        outside_temp_c: np.ndarray,
        cold_aisle_rh_pct: np.ndarray,
        outside_rh_pct: np.ndarray,
    ):
        """Per-lane ``(command codes, fc fan speeds)`` with RH override."""
        codes, speeds = self.tks.decide(control_temp_c, outside_temp_c)
        override = (
            (codes == LANE_CMD_FREE_COOLING)
            & (cold_aisle_rh_pct > self.max_rh_pct)
            & (outside_rh_pct > self.max_rh_pct)
        )
        if np.any(override):
            sp = self.tks.config.setpoint_c
            codes = np.where(
                override,
                np.where(control_temp_c < sp, LANE_CMD_CLOSED, LANE_CMD_AC_ON),
                codes,
            )
            speeds = np.where(override, 0.0, speeds)
        return codes, speeds
