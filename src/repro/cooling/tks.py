"""The TKS 3000 feedback controller (Section 4.1).

The TKS selects the cooling mode from how the *outside* temperature relates
to a configurable setpoint SP (default 25C), with 1C hysteresis:

* **LOT mode** (outside below SP): use free cooling as much as possible,
  driven by a control sensor in a typically warmer area of the cold aisle.
  When the control temperature is low (below SP - P), close the container
  so recirculation warms it; between SP - P and SP, run free cooling with
  the fan speed chosen from the outside/inside temperature difference (the
  closer the two, the faster the fan; minimum speed 15%).
* **HOT mode** (outside above SP): close the damper, turn free cooling
  off, and run the AC.  The AC cycles its compressor: off below SP - 2C,
  on above SP.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import constants
from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.errors import ConfigError

# Integer command codes for the lane-batched controller: a CoolingCommand
# collapsed to what the baseline can emit (FC speed travels separately).
LANE_CMD_CLOSED = 0
LANE_CMD_FREE_COOLING = 1
LANE_CMD_AC_FAN = 2  # CoolingCommand.ac(compressor_duty=0.0)
LANE_CMD_AC_ON = 3  # CoolingCommand.ac(compressor_duty=1.0)


@dataclasses.dataclass
class TKSConfig:
    """Tunable parameters of the TKS control scheme."""

    setpoint_c: float = constants.TKS_DEFAULT_SETPOINT_C  # SP
    band_c: float = constants.TKS_DEFAULT_BAND_C  # P
    hysteresis_c: float = constants.TKS_HYSTERESIS_C
    ac_cycle_low_offset_c: float = constants.AC_CYCLE_LOW_OFFSET_C
    min_fan_speed: float = constants.FC_MIN_SPEED

    def __post_init__(self) -> None:
        if self.band_c <= 0:
            raise ConfigError("band_c (P) must be positive")
        if self.hysteresis_c < 0:
            raise ConfigError("hysteresis_c must be non-negative")


class TKSController:
    """Stateful reimplementation of Parasol's commercial controller."""

    def __init__(self, config: TKSConfig = None) -> None:
        self.config = config or TKSConfig()
        self._hot_mode = False  # outside-temperature mode latch
        self._compressor_on = False  # AC cycling latch

    @property
    def in_hot_mode(self) -> bool:
        return self._hot_mode

    def reset(self) -> None:
        """Clear the HOT/LOT and compressor latches (day-boundary state)."""
        self._hot_mode = False
        self._compressor_on = False

    def set_setpoint(self, setpoint_c: float) -> None:
        """Change SP — the knob CoolAir's Configurer drives (Section 4.2)."""
        self.config.setpoint_c = setpoint_c

    def _update_mode(self, outside_temp_c: float) -> None:
        sp = self.config.setpoint_c
        h = self.config.hysteresis_c
        if self._hot_mode and outside_temp_c < sp - h:
            self._hot_mode = False
        elif not self._hot_mode and outside_temp_c > sp + h:
            self._hot_mode = True

    def _fan_speed(self, control_temp_c: float, outside_temp_c: float) -> float:
        """Fan speed from the outside/inside temperature difference.

        The closer the two temperatures, the faster the fan blows; a large
        gap means cold outside air, so the fan can idle at the minimum.
        """
        gap = control_temp_c - outside_temp_c
        if gap <= 0.0:
            # Outside is warmer than inside: free cooling can only help at
            # full dilution, run flat out (the TKS has no better option).
            return 1.0
        # Map gap in [0, band] to speed in [1.0, min]: linear roll-off.
        fraction = min(1.0, gap / (2.0 * self.config.band_c))
        speed = 1.0 - (1.0 - self.config.min_fan_speed) * fraction
        return max(self.config.min_fan_speed, min(1.0, speed))

    def decide(self, control_temp_c: float, outside_temp_c: float) -> CoolingCommand:
        """One control decision from the two temperatures the TKS reads."""
        self._update_mode(outside_temp_c)
        sp = self.config.setpoint_c

        if self._hot_mode:
            # HOT mode: AC with compressor cycling.
            if self._compressor_on and control_temp_c < sp - self.config.ac_cycle_low_offset_c:
                self._compressor_on = False
            elif not self._compressor_on and control_temp_c > sp:
                self._compressor_on = True
            if self._compressor_on:
                return CoolingCommand.ac(compressor_duty=1.0)
            return CoolingCommand.ac(compressor_duty=0.0)

        # LOT mode: free cooling as much as possible.
        self._compressor_on = False
        if control_temp_c < sp - self.config.band_c:
            # Too cold inside: close the container and let recirculation warm it.
            return CoolingCommand.closed()
        speed = self._fan_speed(control_temp_c, outside_temp_c)
        return CoolingCommand.free_cooling(speed)


class LaneTKSController:
    """Vectorized :class:`TKSController`: one decision array per epoch.

    All lanes share one :class:`TKSConfig`; the HOT/LOT and compressor
    latches are boolean arrays so lanes flip modes independently.  Each
    mask update reproduces the scalar controller's ``if``/``elif``
    semantics exactly (a lane leaving HOT mode cannot re-enter it within
    the same decision), and the fan-speed law is the elementwise mirror of
    :meth:`TKSController._fan_speed` — decisions are bit-identical per
    lane to a scalar controller fed that lane's readings.
    """

    def __init__(self, num_lanes: int, config: TKSConfig = None) -> None:
        if num_lanes < 1:
            raise ConfigError("num_lanes must be >= 1")
        self.config = config or TKSConfig()
        self.num_lanes = num_lanes
        self._hot_mode = np.zeros(num_lanes, dtype=bool)
        self._compressor_on = np.zeros(num_lanes, dtype=bool)

    @property
    def in_hot_mode(self) -> np.ndarray:
        return self._hot_mode.copy()

    def reset(self) -> None:
        """Clear every lane's HOT/LOT and compressor latches."""
        self._hot_mode[:] = False
        self._compressor_on[:] = False

    def _update_mode(self, outside_temp_c: np.ndarray) -> None:
        sp = self.config.setpoint_c
        h = self.config.hysteresis_c
        # if hot and cold-enough: leave HOT; elif not hot and warm-enough:
        # enter HOT.  The two masks are disjoint by construction (one needs
        # the latch set, the other clear), preserving the elif.
        turn_off = self._hot_mode & (outside_temp_c < sp - h)
        turn_on = ~self._hot_mode & (outside_temp_c > sp + h)
        self._hot_mode[turn_off] = False
        self._hot_mode[turn_on] = True

    def _fan_speed(
        self, control_temp_c: np.ndarray, outside_temp_c: np.ndarray
    ) -> np.ndarray:
        gap = control_temp_c - outside_temp_c
        fraction = np.minimum(1.0, gap / (2.0 * self.config.band_c))
        speed = 1.0 - (1.0 - self.config.min_fan_speed) * fraction
        speed = np.maximum(
            self.config.min_fan_speed, np.minimum(1.0, speed)
        )
        # Outside warmer than inside: free cooling only helps flat out.
        return np.where(gap <= 0.0, 1.0, speed)

    def decide(
        self, control_temp_c: np.ndarray, outside_temp_c: np.ndarray
    ):
        """Per-lane decisions: ``(command codes, fc fan speeds)``."""
        self._update_mode(outside_temp_c)
        sp = self.config.setpoint_c
        hot = self._hot_mode

        # HOT lanes: compressor cycling (disjoint latch updates again).
        comp_off = hot & self._compressor_on & (
            control_temp_c < sp - self.config.ac_cycle_low_offset_c
        )
        comp_on = hot & ~self._compressor_on & (control_temp_c > sp)
        self._compressor_on[comp_off] = False
        self._compressor_on[comp_on] = True
        # LOT lanes clear the compressor latch.
        self._compressor_on[~hot] = False

        codes = np.where(
            hot,
            np.where(self._compressor_on, LANE_CMD_AC_ON, LANE_CMD_AC_FAN),
            np.where(
                control_temp_c < sp - self.config.band_c,
                LANE_CMD_CLOSED,
                LANE_CMD_FREE_COOLING,
            ),
        )
        speeds = np.where(
            codes == LANE_CMD_FREE_COOLING,
            self._fan_speed(control_temp_c, outside_temp_c),
            0.0,
        )
        return codes, speeds
