"""Cooling regimes and commands.

A :class:`CoolingCommand` is what a controller asks the infrastructure to
do; a :class:`RegimeKey` identifies which learned model applies — the
Cooling Modeler fits "a distinct function F for each possible cooling
regime and transition between regimes" (Section 3.1), so keys name either
a steady regime or an ordered (from, to) transition.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Tuple

from repro.errors import RegimeError


class CoolingMode(enum.Enum):
    """The three high-level regimes of Section 4.1."""

    CLOSED = "closed"  # neither free cooling nor AC; container sealed
    FREE_COOLING = "free_cooling"
    AC_ON = "ac_on"  # AC with compressor running
    AC_FAN = "ac_fan"  # AC fan circulating, compressor off


@dataclasses.dataclass(frozen=True)
class CoolingCommand:
    """Desired actuator settings for the next control period."""

    mode: CoolingMode
    fc_fan_speed: float = 0.0
    ac_fan_speed: float = 0.0
    ac_compressor_duty: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fc_fan_speed", "ac_fan_speed", "ac_compressor_duty"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise RegimeError(f"{name} {value} out of [0, 1]")
        if self.mode is CoolingMode.CLOSED:
            if self.fc_fan_speed or self.ac_fan_speed or self.ac_compressor_duty:
                raise RegimeError("CLOSED command must have all actuators at zero")
        elif self.mode is CoolingMode.FREE_COOLING:
            if self.fc_fan_speed <= 0.0:
                raise RegimeError("FREE_COOLING command needs fc_fan_speed > 0")
            if self.ac_fan_speed or self.ac_compressor_duty:
                raise RegimeError("FREE_COOLING runs with the AC off")
        elif self.mode is CoolingMode.AC_ON:
            if self.ac_fan_speed <= 0.0 or self.ac_compressor_duty <= 0.0:
                raise RegimeError("AC_ON needs fan and compressor running")
            if self.fc_fan_speed:
                raise RegimeError("AC runs with free cooling off")
        elif self.mode is CoolingMode.AC_FAN:
            if self.ac_fan_speed <= 0.0:
                raise RegimeError("AC_FAN needs the fan running")
            if self.ac_compressor_duty:
                raise RegimeError("AC_FAN means compressor off")
            if self.fc_fan_speed:
                raise RegimeError("AC runs with free cooling off")

    # -- convenience constructors -----------------------------------------

    @staticmethod
    def closed() -> "CoolingCommand":
        return CoolingCommand(mode=CoolingMode.CLOSED)

    @staticmethod
    def free_cooling(fan_speed: float) -> "CoolingCommand":
        return CoolingCommand(mode=CoolingMode.FREE_COOLING, fc_fan_speed=fan_speed)

    @staticmethod
    def ac(compressor_duty: float, fan_speed: float = 1.0) -> "CoolingCommand":
        if compressor_duty > 0.0:
            return CoolingCommand(
                mode=CoolingMode.AC_ON,
                ac_fan_speed=fan_speed,
                ac_compressor_duty=compressor_duty,
            )
        return CoolingCommand(mode=CoolingMode.AC_FAN, ac_fan_speed=fan_speed)


# A RegimeKey is "steady:<mode>" or "transition:<from>-><to>".
RegimeKey = str


def regime_key(previous: CoolingMode, current: CoolingMode) -> RegimeKey:
    """Model key for a step that went from ``previous`` to ``current``."""
    if previous is current:
        return f"steady:{current.value}"
    return f"transition:{previous.value}->{current.value}"


def all_regime_keys() -> Tuple[RegimeKey, ...]:
    """Every steady and transition key the Cooling Modeler may learn."""
    modes = list(CoolingMode)
    keys = [regime_key(mode, mode) for mode in modes]
    keys.extend(
        regime_key(a, b) for a in modes for b in modes if a is not b
    )
    return tuple(keys)
