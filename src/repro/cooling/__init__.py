"""Cooling infrastructure: regimes, units, and feedback controllers.

Parasol's cooling regimes (Section 4.1) are: free cooling with a fan speed
above 15%; air conditioning with the compressor on or off; or neither (the
container is closed).  The *smooth* unit variants used by Smooth-Sim add
fine-grained fan ramp-up from 1% and a variable-speed compressor
(Section 5.1) — the commercially available hardware class the paper points
to for making temperature variation controllable.
"""

from repro.cooling.regimes import CoolingCommand, CoolingMode, RegimeKey, regime_key
from repro.cooling.units import (
    AbruptCoolingUnits,
    CoolingUnits,
    SmoothCoolingUnits,
)
from repro.cooling.backends import (
    PLANTS,
    ChillerUnits,
    CoolingBackend,
    CoolingTowerUnits,
    HybridUnits,
    get_backend,
    resolve_plant,
)
from repro.cooling.tks import TKSConfig, TKSController
from repro.cooling.baseline import BaselineController

__all__ = [
    "CoolingCommand",
    "CoolingMode",
    "RegimeKey",
    "regime_key",
    "CoolingUnits",
    "AbruptCoolingUnits",
    "SmoothCoolingUnits",
    "PLANTS",
    "CoolingBackend",
    "ChillerUnits",
    "CoolingTowerUnits",
    "HybridUnits",
    "get_backend",
    "resolve_plant",
    "TKSConfig",
    "TKSController",
    "BaselineController",
]
