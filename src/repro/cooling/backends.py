"""Declarative cooling-plant backends (ROADMAP item 1).

Every simulation selects a *plant*: the cooling technology the container
rejects heat with.  The default, ``parasol``, is the paper's hardware —
the Dantherm free-cooling unit plus the DX AC — and is bit-identical to
the pre-backend code paths (same units classes, same cache keys).  Three
alternatives model the technologies CoolAir's plant-agnostic learned
model could drive instead:

* ``chiller`` — water chiller with an ASHRAE-style COP-vs-lift
  performance curve and an air-cooled condenser: energy-hungry when the
  lift is high, but draws no water.
* ``cooling_tower`` — a wet cooling tower serving a chilled-water coil
  directly (water-side economizer).  Cheap fan + pump power, but its
  capacity collapses as the outside wet bulb approaches the loop supply
  temperature, and every kWh it rejects evaporates water (plus blowdown).
* ``hybrid`` — air-side free cooling exactly like ``parasol``, with the
  mechanical path routed to the tower when the wet bulb permits and to
  the chiller otherwise.  This exposes free-cooling/tower/chiller as
  selectable regimes to the same controller/predictor stack.

All backends present the :class:`~repro.cooling.units.CoolingUnits`
interface, so the engine, controllers, and the learned model are
unchanged; the controller's FREE_COOLING commands are mapped onto the
mechanical path for plants without an air economizer.

The chiller/tower units subclass :class:`SmoothCoolingUnits` — modern
plants have variable-speed drives — so ``SimSetup.smooth_hardware``
stays true and CoolAir's fine-grained control applies.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro import constants
from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.cooling.units import (
    AbruptCoolingUnits,
    CoolingUnits,
    SmoothCoolingUnits,
    free_cooling_power_w,
)
from repro.errors import ConfigError
from repro.physics.psychrometrics import (
    evaporation_l_per_kwh,
    wet_bulb_c,
    wet_bulb_c_array,
)
from repro.physics.thermal import PlantInputs

PLANTS = ("parasol", "chiller", "cooling_tower", "hybrid")

PLANT_ENV_VAR = "REPRO_PLANT"

DEFAULT_PLANT = "parasol"


def resolve_plant(requested: Optional[str] = None) -> str:
    """The plant to simulate: explicit argument > ``REPRO_PLANT`` > default."""
    if requested is None:
        requested = os.environ.get(PLANT_ENV_VAR) or DEFAULT_PLANT
    if requested not in PLANTS:
        raise ConfigError(
            f"unknown cooling plant {requested!r}; choices: {', '.join(PLANTS)}"
        )
    return requested


# --- performance curves (pure functions, unit-testable) -------------------


def chiller_lift_k(outside_temp_c: float) -> float:
    """Condenser-to-evaporator lift for an air-cooled condenser."""
    lift = (
        outside_temp_c
        + constants.CONDENSER_APPROACH_K
        - constants.CHILLED_WATER_SUPPLY_C
    )
    return max(constants.CHILLER_MIN_LIFT_K, lift)


def chiller_cop(lift_k: float) -> float:
    """COP-vs-lift curve, inverse in lift and clamped at both ends.

    Documented endpoints: COP equals ``CHILLER_COP_AT_REFERENCE`` (5.0)
    at the reference lift (25 K), halves to 2.5 at double the reference
    lift, and saturates at ``CHILLER_MAX_COP`` for very low lifts.
    """
    lift = max(constants.CHILLER_MIN_LIFT_K, lift_k)
    cop = constants.CHILLER_COP_AT_REFERENCE * constants.CHILLER_REFERENCE_LIFT_K / lift
    return min(constants.CHILLER_MAX_COP, cop)


def chiller_power_w(duty: float, outside_temp_c: float) -> float:
    """Compressor electrical draw to deliver ``duty`` of rated capacity."""
    if duty <= 0.0:
        return 0.0
    heat_w = duty * constants.MECH_COOLING_CAPACITY_W
    return heat_w / chiller_cop(chiller_lift_k(outside_temp_c))


def tower_capacity_factor(wet_bulb_temp_c: float) -> float:
    """Fraction of rated coil capacity the tower loop can deliver.

    Full capacity when the wet bulb sits below the control band, ramping
    linearly to zero at ``TOWER_CUTOFF_WB_C`` (supply approach + coil
    delta-T leave no useful lift above it).
    """
    margin = constants.TOWER_CUTOFF_WB_C - wet_bulb_temp_c
    return max(0.0, min(1.0, margin / constants.TOWER_CAPACITY_BAND_K))


def tower_power_w(duty: float) -> float:
    """Tower-loop electrical draw: pump linear in duty, fan cubic."""
    if duty <= 0.0:
        return 0.0
    return (
        constants.TOWER_PUMP_FULL_W * duty
        + constants.TOWER_FAN_FULL_W * duty**3
    )


def tower_water_l(heat_rejected_w: float, dt_s: float) -> float:
    """Evaporation plus blowdown for heat rejected over one step."""
    if heat_rejected_w <= 0.0:
        return 0.0
    heat_kwh = heat_rejected_w * dt_s / 3.6e6
    evaporated = heat_kwh * evaporation_l_per_kwh()
    blowdown = evaporated / (constants.TOWER_CYCLES_OF_CONCENTRATION - 1.0)
    return evaporated + blowdown


# --- lane-vectorized performance curves -----------------------------------
#
# Array counterparts of the scalar curves above, pinned *bit-identical*
# per element (tests/unit/test_lane_backends.py): the lane engine is only
# allowed to change speed, never trajectories.  Pure +-*/ chains and
# min/max vectorize exactly (same IEEE operations in the same order);
# the ``duty ** 3`` / ``fc ** 3`` power terms change only once per
# control period, so the lane units below evaluate those through the
# scalar functions element by element instead of risking a last-ulp
# difference from ``numpy.power``.


def chiller_power_w_array(
    duty: np.ndarray, outside_temp_c: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`chiller_power_w` (with its lift/COP chain)."""
    lift = np.maximum(
        constants.CHILLER_MIN_LIFT_K,
        outside_temp_c
        + constants.CONDENSER_APPROACH_K
        - constants.CHILLED_WATER_SUPPLY_C,
    )
    cop = np.minimum(
        constants.CHILLER_MAX_COP,
        constants.CHILLER_COP_AT_REFERENCE
        * constants.CHILLER_REFERENCE_LIFT_K
        / lift,
    )
    return np.where(
        duty > 0.0, duty * constants.MECH_COOLING_CAPACITY_W / cop, 0.0
    )


def tower_capacity_factor_array(wet_bulb_temp_c: np.ndarray) -> np.ndarray:
    """Vectorized :func:`tower_capacity_factor`."""
    margin = constants.TOWER_CUTOFF_WB_C - wet_bulb_temp_c
    return np.maximum(
        0.0, np.minimum(1.0, margin / constants.TOWER_CAPACITY_BAND_K)
    )


def tower_water_l_array(
    heat_rejected_w: np.ndarray, dt_s: float
) -> np.ndarray:
    """Vectorized :func:`tower_water_l` (evaporation plus blowdown)."""
    heat_kwh = heat_rejected_w * dt_s / 3.6e6
    evaporated = heat_kwh * evaporation_l_per_kwh()
    blowdown = evaporated / (constants.TOWER_CYCLES_OF_CONCENTRATION - 1.0)
    return np.where(heat_rejected_w > 0.0, evaporated + blowdown, 0.0)


def _tower_power_elementwise(duty: np.ndarray) -> np.ndarray:
    """Scalar :func:`tower_power_w` per lane (the cubic fan term).

    The ``float()`` casts keep the call exactly the scalar path —
    ``np.float64.__pow__`` is not pinned to ``float.__pow__``'s rounding.
    """
    return np.fromiter(
        (tower_power_w(float(d)) for d in duty), dtype=float, count=len(duty)
    )


def _free_cooling_power_elementwise(fc_fan_speed: np.ndarray) -> np.ndarray:
    """Scalar :func:`free_cooling_power_w` per lane (the cubic fan law)."""
    return np.fromiter(
        (free_cooling_power_w(float(f)) for f in fc_fan_speed),
        dtype=float,
        count=len(fc_fan_speed),
    )


def _mechanical_command(command: CoolingCommand) -> CoolingCommand:
    """Map a command onto a plant whose only path is mechanical cooling.

    FREE_COOLING requests become partial mechanical cooling at the
    requested intensity, so the unchanged controllers (TKS proportional
    band, CoolAir's regime search) still modulate the plant.
    """
    if command.mode is CoolingMode.FREE_COOLING:
        return CoolingCommand(
            mode=CoolingMode.AC_ON,
            ac_fan_speed=1.0,
            ac_compressor_duty=command.fc_fan_speed,
        )
    return command


class ChillerUnits(SmoothCoolingUnits):
    """Water chiller, air-cooled condenser: no economizer, no water."""

    def _apply_command(self, command: CoolingCommand) -> None:
        super()._apply_command(_mechanical_command(command))

    def power_w(self) -> float:
        power = self.AC_FAN_FULL_W * self.ac_fan_speed
        power += chiller_power_w(self.ac_compressor_duty, self.outside_temp_c)
        return power


class CoolingTowerUnits(SmoothCoolingUnits):
    """Wet tower + chilled-water coil: water-side economizer only."""

    def _apply_command(self, command: CoolingCommand) -> None:
        super()._apply_command(_mechanical_command(command))

    def capacity_factor(self) -> float:
        return tower_capacity_factor(
            wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
        )

    def plant_inputs(self) -> PlantInputs:
        # The thermal plant sees only the cooling the tower can deliver
        # at the current wet bulb; fan/pump still run at commanded duty.
        inputs = super().plant_inputs()
        inputs.ac_compressor_duty *= self.capacity_factor()
        return inputs

    def power_w(self) -> float:
        power = self.AC_FAN_FULL_W * self.ac_fan_speed
        power += tower_power_w(self.ac_compressor_duty)
        return power

    def step_resources(self, it_power_w: float, dt_s: float) -> Tuple[float, float]:
        delivered = self.ac_compressor_duty * self.capacity_factor()
        heat_rejected_w = delivered * constants.MECH_COOLING_CAPACITY_W
        return self.power_w(), tower_water_l(heat_rejected_w, dt_s)


class HybridUnits(SmoothCoolingUnits):
    """Air economizer + tower + chiller behind one set of actuators.

    FREE_COOLING commands drive the air economizer exactly like the
    smooth Parasol unit.  Mechanical commands pick a regime by outside
    wet bulb: the tower when it can deliver at least
    ``TOWER_MIN_USEFUL_CAPACITY`` of rated capacity, the chiller
    otherwise.  ``active_regime`` exposes the selection to traces/tests.
    """

    TOWER_MIN_USEFUL_CAPACITY = 0.5

    def __init__(self, ramp_per_step: float = 0.20) -> None:
        super().__init__(ramp_per_step)
        self._mech_regime: Optional[str] = None

    def _tower_viable(self) -> bool:
        return (
            tower_capacity_factor(
                wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
            )
            >= self.TOWER_MIN_USEFUL_CAPACITY
        )

    def _apply_command(self, command: CoolingCommand) -> None:
        super()._apply_command(command)
        if self.ac_compressor_duty > 0.0 or self.ac_fan_speed > 0.0:
            self._mech_regime = "tower" if self._tower_viable() else "chiller"
        else:
            self._mech_regime = None

    def reset(self) -> None:
        super().reset()
        self._mech_regime = None

    @property
    def active_regime(self) -> str:
        if self.fc_fan_speed > 0.0:
            return "free_cooling"
        if self._mech_regime is not None:
            return self._mech_regime
        return "off"

    def plant_inputs(self) -> PlantInputs:
        inputs = super().plant_inputs()
        if self._mech_regime == "tower":
            inputs.ac_compressor_duty *= tower_capacity_factor(
                wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
            )
        return inputs

    def power_w(self) -> float:
        power = 0.0
        if self.fc_fan_speed > 0.0:
            power += free_cooling_power_w(self.fc_fan_speed)
        power += self.AC_FAN_FULL_W * self.ac_fan_speed
        if self._mech_regime == "tower":
            power += tower_power_w(self.ac_compressor_duty)
        else:
            power += chiller_power_w(self.ac_compressor_duty, self.outside_temp_c)
        return power

    def step_resources(self, it_power_w: float, dt_s: float) -> Tuple[float, float]:
        water = 0.0
        if self._mech_regime == "tower":
            delivered = self.ac_compressor_duty * tower_capacity_factor(
                wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
            )
            water = tower_water_l(
                delivered * constants.MECH_COOLING_CAPACITY_W, dt_s
            )
        return self.power_w(), water


# --- lane-vectorized backend units ----------------------------------------

# Per-period mechanical-regime codes the lane engine trades in (the
# array mirror of ``HybridUnits.active_regime``).
LANE_REGIME_NONE = 0
LANE_REGIME_TOWER = 1
LANE_REGIME_CHILLER = 2

#: ``active_regime`` string -> lane regime code ("free_cooling"/"off" -> 0).
LANE_REGIME_CODES = {"tower": LANE_REGIME_TOWER, "chiller": LANE_REGIME_CHILLER}


class LaneCoolingUnits:
    """Array counterpart of the :class:`CoolingUnits` backend protocol.

    One instance covers every lane of one backend inside a
    :class:`~repro.sim.lanes.LaneRunner` batch.  Actuator state arrives
    once per control period via :meth:`set_actuators` (gathered from the
    per-lane scalar units, whose ramp/latch dynamics stay
    authoritative), the weather boundary once per model step via
    :meth:`observe_boundary`, and :meth:`step_resources` returns
    per-lane ``(power_w, water_l)`` arrays pinned bit-identical to the
    scalar :meth:`CoolingUnits.step_resources` chain
    (tests/unit/test_lane_backends.py).
    """

    #: the thermal plant needs a capacity-scaled duty refresh every step
    scales_duty = False

    def __init__(self, num_lanes: int) -> None:
        self.num_lanes = num_lanes
        self.outside_temp_c = np.full(num_lanes, 20.0)
        self.outside_rh_pct = np.full(num_lanes, 50.0)
        self._fc = np.zeros(num_lanes)
        self._ac_fan = np.zeros(num_lanes)
        self._duty = np.zeros(num_lanes)
        self._static_power = np.zeros(num_lanes)
        self._no_water = np.zeros(num_lanes)

    def observe_boundary(
        self,
        outside_temp_c: np.ndarray,
        outside_rh_pct: np.ndarray,
        wet_bulb: Optional[np.ndarray] = None,
    ) -> None:
        """Record the raw per-lane weather (``wet_bulb`` may be supplied
        precomputed from :func:`wet_bulb_c_array` over a whole day grid)."""
        self.outside_temp_c = np.asarray(outside_temp_c, dtype=float)
        self.outside_rh_pct = np.asarray(outside_rh_pct, dtype=float)

    def set_actuators(
        self,
        fc_fan_speed: np.ndarray,
        ac_fan_speed: np.ndarray,
        ac_compressor_duty: np.ndarray,
        regimes: Optional[np.ndarray] = None,
    ) -> None:
        """New per-lane actuator state for this control period."""
        self._fc = fc_fan_speed
        self._ac_fan = ac_fan_speed
        self._duty = ac_compressor_duty

    def effective_duty(self) -> np.ndarray:
        """The compressor duty the thermal plant sees this step (the
        array mirror of ``plant_inputs().ac_compressor_duty``)."""
        return self._duty

    def step_resources(
        self, it_power_w: np.ndarray, dt_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self._static_power, self._no_water


class LaneChillerUnits(LaneCoolingUnits):
    """Lane variant of :class:`ChillerUnits`: dry, lift-coupled power."""

    def set_actuators(self, fc_fan_speed, ac_fan_speed, ac_compressor_duty,
                      regimes=None):
        super().set_actuators(fc_fan_speed, ac_fan_speed, ac_compressor_duty)
        self._static_power = (
            SmoothCoolingUnits.AC_FAN_FULL_W * ac_fan_speed
        )

    def step_resources(self, it_power_w, dt_s):
        power = self._static_power + chiller_power_w_array(
            self._duty, self.outside_temp_c
        )
        return power, self._no_water


class LaneCoolingTowerUnits(LaneCoolingUnits):
    """Lane variant of :class:`CoolingTowerUnits`: capacity-scaled duty
    and evaporative water, both tracking the per-step wet bulb."""

    scales_duty = True

    def __init__(self, num_lanes: int) -> None:
        super().__init__(num_lanes)
        self._capacity = tower_capacity_factor_array(
            wet_bulb_c_array(self.outside_temp_c, self.outside_rh_pct)
        )

    def observe_boundary(self, outside_temp_c, outside_rh_pct, wet_bulb=None):
        super().observe_boundary(outside_temp_c, outside_rh_pct)
        if wet_bulb is None:
            wet_bulb = wet_bulb_c_array(
                self.outside_temp_c, self.outside_rh_pct
            )
        self._capacity = tower_capacity_factor_array(wet_bulb)

    def set_actuators(self, fc_fan_speed, ac_fan_speed, ac_compressor_duty,
                      regimes=None):
        super().set_actuators(fc_fan_speed, ac_fan_speed, ac_compressor_duty)
        self._static_power = (
            SmoothCoolingUnits.AC_FAN_FULL_W * ac_fan_speed
            + _tower_power_elementwise(ac_compressor_duty)
        )

    def effective_duty(self):
        return self._duty * self._capacity

    def step_resources(self, it_power_w, dt_s):
        delivered = self._duty * self._capacity
        heat_rejected_w = delivered * constants.MECH_COOLING_CAPACITY_W
        return self._static_power, tower_water_l_array(heat_rejected_w, dt_s)


class LaneHybridUnits(LaneCoolingTowerUnits):
    """Lane variant of :class:`HybridUnits`: the free->tower->chiller
    regime selection arrives as per-period codes (``LANE_REGIME_*``,
    read off each lane's scalar units after ``apply``) and branches via
    masks, mirroring :class:`LaneThermalPlant`'s AC-lane handling."""

    def __init__(self, num_lanes: int) -> None:
        super().__init__(num_lanes)
        self._tower_mask = np.zeros(num_lanes, dtype=bool)

    def set_actuators(self, fc_fan_speed, ac_fan_speed, ac_compressor_duty,
                      regimes=None):
        LaneCoolingUnits.set_actuators(
            self, fc_fan_speed, ac_fan_speed, ac_compressor_duty
        )
        self._tower_mask = regimes == LANE_REGIME_TOWER
        # Association order mirrors HybridUnits.power_w: free cooling,
        # then the AC fan, then the selected mechanical path.
        static = _free_cooling_power_elementwise(fc_fan_speed)
        static = static + SmoothCoolingUnits.AC_FAN_FULL_W * ac_fan_speed
        tower_lanes = np.flatnonzero(self._tower_mask)
        if tower_lanes.size:
            static[tower_lanes] += _tower_power_elementwise(
                ac_compressor_duty[tower_lanes]
            )
        self._static_power = static

    def effective_duty(self):
        return np.where(
            self._tower_mask, self._duty * self._capacity, self._duty
        )

    def step_resources(self, it_power_w, dt_s):
        power = np.where(
            self._tower_mask,
            self._static_power,
            self._static_power
            + chiller_power_w_array(self._duty, self.outside_temp_c),
        )
        delivered = self._duty * self._capacity
        heat_rejected_w = delivered * constants.MECH_COOLING_CAPACITY_W
        water = np.where(
            self._tower_mask, tower_water_l_array(heat_rejected_w, dt_s), 0.0
        )
        return power, water


# --- the registry ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CoolingBackend:
    """One cooling plant: metadata plus its units factory."""

    name: str
    description: str
    has_economizer: bool
    uses_water: bool
    abrupt_cls: Type[CoolingUnits]
    smooth_cls: Type[CoolingUnits]
    #: lane-vectorized counterpart; ``None`` for ``parasol``, whose power
    #: laws the lane engine vectorizes natively (repro.sim.lanes).
    lane_cls: Optional[Type[LaneCoolingUnits]] = None

    def make_units(self, smooth: bool = True) -> CoolingUnits:
        """Instantiate the plant's cooling units.

        Only ``parasol`` distinguishes abrupt (real Parasol hardware)
        from smooth (Smooth-Sim) units; the alternative plants model
        modern variable-speed equipment on both settings.
        """
        cls = self.smooth_cls if smooth else self.abrupt_cls
        return cls()

    def make_lane_units(self, num_lanes: int) -> LaneCoolingUnits:
        """The backend's array units for a ``num_lanes``-wide batch."""
        if self.lane_cls is None:
            raise ConfigError(
                f"plant {self.name!r} has no lane-vectorized units"
            )
        return self.lane_cls(num_lanes)


_REGISTRY: Dict[str, CoolingBackend] = {
    "parasol": CoolingBackend(
        name="parasol",
        description="Parasol free-cooling unit + DX AC (the paper's plant)",
        has_economizer=True,
        uses_water=False,
        abrupt_cls=AbruptCoolingUnits,
        smooth_cls=SmoothCoolingUnits,
    ),
    "chiller": CoolingBackend(
        name="chiller",
        description="air-cooled water chiller, COP-vs-lift curve, no water",
        has_economizer=False,
        uses_water=False,
        abrupt_cls=ChillerUnits,
        smooth_cls=ChillerUnits,
        lane_cls=LaneChillerUnits,
    ),
    "cooling_tower": CoolingBackend(
        name="cooling_tower",
        description="wet tower + CHW coil: cheap power, evaporates water",
        has_economizer=False,
        uses_water=True,
        abrupt_cls=CoolingTowerUnits,
        smooth_cls=CoolingTowerUnits,
        lane_cls=LaneCoolingTowerUnits,
    ),
    "hybrid": CoolingBackend(
        name="hybrid",
        description="air economizer with tower/chiller mechanical regimes",
        has_economizer=True,
        uses_water=True,
        abrupt_cls=HybridUnits,
        smooth_cls=HybridUnits,
        lane_cls=LaneHybridUnits,
    ),
}


def get_backend(name: str) -> CoolingBackend:
    """Look up a backend by plant name (:class:`ConfigError` if unknown)."""
    return _REGISTRY[resolve_plant(name)]
