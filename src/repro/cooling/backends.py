"""Declarative cooling-plant backends (ROADMAP item 1).

Every simulation selects a *plant*: the cooling technology the container
rejects heat with.  The default, ``parasol``, is the paper's hardware —
the Dantherm free-cooling unit plus the DX AC — and is bit-identical to
the pre-backend code paths (same units classes, same cache keys).  Three
alternatives model the technologies CoolAir's plant-agnostic learned
model could drive instead:

* ``chiller`` — water chiller with an ASHRAE-style COP-vs-lift
  performance curve and an air-cooled condenser: energy-hungry when the
  lift is high, but draws no water.
* ``cooling_tower`` — a wet cooling tower serving a chilled-water coil
  directly (water-side economizer).  Cheap fan + pump power, but its
  capacity collapses as the outside wet bulb approaches the loop supply
  temperature, and every kWh it rejects evaporates water (plus blowdown).
* ``hybrid`` — air-side free cooling exactly like ``parasol``, with the
  mechanical path routed to the tower when the wet bulb permits and to
  the chiller otherwise.  This exposes free-cooling/tower/chiller as
  selectable regimes to the same controller/predictor stack.

All backends present the :class:`~repro.cooling.units.CoolingUnits`
interface, so the engine, controllers, and the learned model are
unchanged; the controller's FREE_COOLING commands are mapped onto the
mechanical path for plants without an air economizer.

The chiller/tower units subclass :class:`SmoothCoolingUnits` — modern
plants have variable-speed drives — so ``SimSetup.smooth_hardware``
stays true and CoolAir's fine-grained control applies.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Optional, Tuple, Type

from repro import constants
from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.cooling.units import (
    AbruptCoolingUnits,
    CoolingUnits,
    SmoothCoolingUnits,
    free_cooling_power_w,
)
from repro.errors import ConfigError
from repro.physics.psychrometrics import evaporation_l_per_kwh, wet_bulb_c
from repro.physics.thermal import PlantInputs

PLANTS = ("parasol", "chiller", "cooling_tower", "hybrid")

PLANT_ENV_VAR = "REPRO_PLANT"

DEFAULT_PLANT = "parasol"


def resolve_plant(requested: Optional[str] = None) -> str:
    """The plant to simulate: explicit argument > ``REPRO_PLANT`` > default."""
    if requested is None:
        requested = os.environ.get(PLANT_ENV_VAR) or DEFAULT_PLANT
    if requested not in PLANTS:
        raise ConfigError(
            f"unknown cooling plant {requested!r}; choices: {', '.join(PLANTS)}"
        )
    return requested


# --- performance curves (pure functions, unit-testable) -------------------


def chiller_lift_k(outside_temp_c: float) -> float:
    """Condenser-to-evaporator lift for an air-cooled condenser."""
    lift = (
        outside_temp_c
        + constants.CONDENSER_APPROACH_K
        - constants.CHILLED_WATER_SUPPLY_C
    )
    return max(constants.CHILLER_MIN_LIFT_K, lift)


def chiller_cop(lift_k: float) -> float:
    """COP-vs-lift curve, inverse in lift and clamped at both ends.

    Documented endpoints: COP equals ``CHILLER_COP_AT_REFERENCE`` (5.0)
    at the reference lift (25 K), halves to 2.5 at double the reference
    lift, and saturates at ``CHILLER_MAX_COP`` for very low lifts.
    """
    lift = max(constants.CHILLER_MIN_LIFT_K, lift_k)
    cop = constants.CHILLER_COP_AT_REFERENCE * constants.CHILLER_REFERENCE_LIFT_K / lift
    return min(constants.CHILLER_MAX_COP, cop)


def chiller_power_w(duty: float, outside_temp_c: float) -> float:
    """Compressor electrical draw to deliver ``duty`` of rated capacity."""
    if duty <= 0.0:
        return 0.0
    heat_w = duty * constants.MECH_COOLING_CAPACITY_W
    return heat_w / chiller_cop(chiller_lift_k(outside_temp_c))


def tower_capacity_factor(wet_bulb_temp_c: float) -> float:
    """Fraction of rated coil capacity the tower loop can deliver.

    Full capacity when the wet bulb sits below the control band, ramping
    linearly to zero at ``TOWER_CUTOFF_WB_C`` (supply approach + coil
    delta-T leave no useful lift above it).
    """
    margin = constants.TOWER_CUTOFF_WB_C - wet_bulb_temp_c
    return max(0.0, min(1.0, margin / constants.TOWER_CAPACITY_BAND_K))


def tower_power_w(duty: float) -> float:
    """Tower-loop electrical draw: pump linear in duty, fan cubic."""
    if duty <= 0.0:
        return 0.0
    return (
        constants.TOWER_PUMP_FULL_W * duty
        + constants.TOWER_FAN_FULL_W * duty**3
    )


def tower_water_l(heat_rejected_w: float, dt_s: float) -> float:
    """Evaporation plus blowdown for heat rejected over one step."""
    if heat_rejected_w <= 0.0:
        return 0.0
    heat_kwh = heat_rejected_w * dt_s / 3.6e6
    evaporated = heat_kwh * evaporation_l_per_kwh()
    blowdown = evaporated / (constants.TOWER_CYCLES_OF_CONCENTRATION - 1.0)
    return evaporated + blowdown


def _mechanical_command(command: CoolingCommand) -> CoolingCommand:
    """Map a command onto a plant whose only path is mechanical cooling.

    FREE_COOLING requests become partial mechanical cooling at the
    requested intensity, so the unchanged controllers (TKS proportional
    band, CoolAir's regime search) still modulate the plant.
    """
    if command.mode is CoolingMode.FREE_COOLING:
        return CoolingCommand(
            mode=CoolingMode.AC_ON,
            ac_fan_speed=1.0,
            ac_compressor_duty=command.fc_fan_speed,
        )
    return command


class ChillerUnits(SmoothCoolingUnits):
    """Water chiller, air-cooled condenser: no economizer, no water."""

    def _apply_command(self, command: CoolingCommand) -> None:
        super()._apply_command(_mechanical_command(command))

    def power_w(self) -> float:
        power = self.AC_FAN_FULL_W * self.ac_fan_speed
        power += chiller_power_w(self.ac_compressor_duty, self.outside_temp_c)
        return power


class CoolingTowerUnits(SmoothCoolingUnits):
    """Wet tower + chilled-water coil: water-side economizer only."""

    def _apply_command(self, command: CoolingCommand) -> None:
        super()._apply_command(_mechanical_command(command))

    def capacity_factor(self) -> float:
        return tower_capacity_factor(
            wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
        )

    def plant_inputs(self) -> PlantInputs:
        # The thermal plant sees only the cooling the tower can deliver
        # at the current wet bulb; fan/pump still run at commanded duty.
        inputs = super().plant_inputs()
        inputs.ac_compressor_duty *= self.capacity_factor()
        return inputs

    def power_w(self) -> float:
        power = self.AC_FAN_FULL_W * self.ac_fan_speed
        power += tower_power_w(self.ac_compressor_duty)
        return power

    def step_resources(self, it_power_w: float, dt_s: float) -> Tuple[float, float]:
        delivered = self.ac_compressor_duty * self.capacity_factor()
        heat_rejected_w = delivered * constants.MECH_COOLING_CAPACITY_W
        return self.power_w(), tower_water_l(heat_rejected_w, dt_s)


class HybridUnits(SmoothCoolingUnits):
    """Air economizer + tower + chiller behind one set of actuators.

    FREE_COOLING commands drive the air economizer exactly like the
    smooth Parasol unit.  Mechanical commands pick a regime by outside
    wet bulb: the tower when it can deliver at least
    ``TOWER_MIN_USEFUL_CAPACITY`` of rated capacity, the chiller
    otherwise.  ``active_regime`` exposes the selection to traces/tests.
    """

    TOWER_MIN_USEFUL_CAPACITY = 0.5

    def __init__(self, ramp_per_step: float = 0.20) -> None:
        super().__init__(ramp_per_step)
        self._mech_regime: Optional[str] = None

    def _tower_viable(self) -> bool:
        return (
            tower_capacity_factor(
                wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
            )
            >= self.TOWER_MIN_USEFUL_CAPACITY
        )

    def _apply_command(self, command: CoolingCommand) -> None:
        super()._apply_command(command)
        if self.ac_compressor_duty > 0.0 or self.ac_fan_speed > 0.0:
            self._mech_regime = "tower" if self._tower_viable() else "chiller"
        else:
            self._mech_regime = None

    def reset(self) -> None:
        super().reset()
        self._mech_regime = None

    @property
    def active_regime(self) -> str:
        if self.fc_fan_speed > 0.0:
            return "free_cooling"
        if self._mech_regime is not None:
            return self._mech_regime
        return "off"

    def plant_inputs(self) -> PlantInputs:
        inputs = super().plant_inputs()
        if self._mech_regime == "tower":
            inputs.ac_compressor_duty *= tower_capacity_factor(
                wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
            )
        return inputs

    def power_w(self) -> float:
        power = 0.0
        if self.fc_fan_speed > 0.0:
            power += free_cooling_power_w(self.fc_fan_speed)
        power += self.AC_FAN_FULL_W * self.ac_fan_speed
        if self._mech_regime == "tower":
            power += tower_power_w(self.ac_compressor_duty)
        else:
            power += chiller_power_w(self.ac_compressor_duty, self.outside_temp_c)
        return power

    def step_resources(self, it_power_w: float, dt_s: float) -> Tuple[float, float]:
        water = 0.0
        if self._mech_regime == "tower":
            delivered = self.ac_compressor_duty * tower_capacity_factor(
                wet_bulb_c(self.outside_temp_c, self.outside_rh_pct)
            )
            water = tower_water_l(
                delivered * constants.MECH_COOLING_CAPACITY_W, dt_s
            )
        return self.power_w(), water


# --- the registry ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CoolingBackend:
    """One cooling plant: metadata plus its units factory."""

    name: str
    description: str
    has_economizer: bool
    uses_water: bool
    abrupt_cls: Type[CoolingUnits]
    smooth_cls: Type[CoolingUnits]

    def make_units(self, smooth: bool = True) -> CoolingUnits:
        """Instantiate the plant's cooling units.

        Only ``parasol`` distinguishes abrupt (real Parasol hardware)
        from smooth (Smooth-Sim) units; the alternative plants model
        modern variable-speed equipment on both settings.
        """
        cls = self.smooth_cls if smooth else self.abrupt_cls
        return cls()


_REGISTRY: Dict[str, CoolingBackend] = {
    "parasol": CoolingBackend(
        name="parasol",
        description="Parasol free-cooling unit + DX AC (the paper's plant)",
        has_economizer=True,
        uses_water=False,
        abrupt_cls=AbruptCoolingUnits,
        smooth_cls=SmoothCoolingUnits,
    ),
    "chiller": CoolingBackend(
        name="chiller",
        description="air-cooled water chiller, COP-vs-lift curve, no water",
        has_economizer=False,
        uses_water=False,
        abrupt_cls=ChillerUnits,
        smooth_cls=ChillerUnits,
    ),
    "cooling_tower": CoolingBackend(
        name="cooling_tower",
        description="wet tower + CHW coil: cheap power, evaporates water",
        has_economizer=False,
        uses_water=True,
        abrupt_cls=CoolingTowerUnits,
        smooth_cls=CoolingTowerUnits,
    ),
    "hybrid": CoolingBackend(
        name="hybrid",
        description="air economizer with tower/chiller mechanical regimes",
        has_economizer=True,
        uses_water=True,
        abrupt_cls=HybridUnits,
        smooth_cls=HybridUnits,
    ),
}


def get_backend(name: str) -> CoolingBackend:
    """Look up a backend by plant name (:class:`ConfigError` if unknown)."""
    return _REGISTRY[resolve_plant(name)]
