"""Cooling units: the actuators that turn commands into plant inputs.

Two hardware generations are modeled:

* :class:`AbruptCoolingUnits` — Parasol's real hardware.  The Dantherm
  free-cooling unit cannot run below 15% fan speed, so opening the damper
  jumps straight to >=15% (the cause of the 9C-in-12-minutes crashes of
  Figure 7(b)).  The DX AC's compressor is on/off only.
* :class:`SmoothCoolingUnits` — the fine-grained units of Smooth-Sim
  (Section 5.1): the free-cooling fan ramps up from 1% (ramp *down* still
  goes from 15% directly to off), the AC fan ramps up from 1% and settles
  at 100%, and the compressor speed is continuously variable; both AC
  actuators go straight from 15% to 0% when shutting down.

Power models (Sections 4.1 and 5.1/6): free-cooling power is cubic in fan
speed between 8W and 425W; the abrupt AC draws 135W fan-only or 2.2kW
total; the smooth AC's fan accounts for 1/4 of full-unit power and its
compressor draws linearly with speed.
"""

from __future__ import annotations

from repro import constants
from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.errors import RegimeError
from repro.physics.thermal import PlantInputs


def free_cooling_power_w(fan_speed: float) -> float:
    """Cubic fan power law between the measured endpoints."""
    if not 0.0 <= fan_speed <= 1.0:
        raise RegimeError(f"fan speed {fan_speed} out of [0, 1]")
    if fan_speed <= 0.0:
        return 0.0
    return constants.FC_MIN_POWER_W + (
        constants.FC_MAX_POWER_W - constants.FC_MIN_POWER_W
    ) * fan_speed**3


class CoolingUnits:
    """Base class: applies a command, yields plant inputs and power draw.

    Subclasses enforce the hardware's reachable actuator settings.  Units
    are stateful because smooth ramp-up constrains the next step's speed to
    the neighborhood of the current one.

    Actuator faults (:mod:`repro.faults`) are enforced here, after the
    subclass has clamped the command to the hardware envelope: a jammed
    damper forces the FC fan off, a stuck fan runs at its stuck speed
    whenever it is on at all, and a locked-out compressor cannot engage.
    Mode and power draw then derive from the faulted actuator state, so
    the plant and the trace see what the hardware actually did, not what
    the controller asked for.
    """

    def __init__(self) -> None:
        self.fc_fan_speed = 0.0
        self.ac_fan_speed = 0.0
        self.ac_compressor_duty = 0.0
        self._fan_stuck_speed: float = 0.0
        self._compressor_locked = False
        self._damper_jammed = False
        self.outside_temp_c = 20.0
        self.outside_rh_pct = 50.0

    def reset(self) -> None:
        """Return the actuators to the powered-off state.

        Day boundaries call this so each simulated day starts from the same
        actuator state regardless of which day ran before it (installed
        faults are day-granular and re-applied by the injector, so they are
        deliberately left alone here).
        """
        self.fc_fan_speed = 0.0
        self.ac_fan_speed = 0.0
        self.ac_compressor_duty = 0.0

    @property
    def mode(self) -> CoolingMode:
        if self.fc_fan_speed > 0.0:
            return CoolingMode.FREE_COOLING
        if self.ac_compressor_duty > 0.0:
            return CoolingMode.AC_ON
        if self.ac_fan_speed > 0.0:
            return CoolingMode.AC_FAN
        return CoolingMode.CLOSED

    def set_faults(
        self,
        fan_stuck_speed: "float | None" = None,
        compressor_locked: bool = False,
        damper_jammed: bool = False,
    ) -> None:
        """Install (or clear, with the defaults) the actuator faults."""
        self._fan_stuck_speed = fan_stuck_speed or 0.0
        self._compressor_locked = compressor_locked
        self._damper_jammed = damper_jammed

    def apply(self, command: CoolingCommand) -> None:
        """Apply a command, clamped to hardware limits and faults."""
        self._apply_command(command)
        if self._damper_jammed:
            self.fc_fan_speed = 0.0
        elif self._fan_stuck_speed > 0.0 and self.fc_fan_speed > 0.0:
            self.fc_fan_speed = self._fan_stuck_speed
        if self._compressor_locked:
            self.ac_compressor_duty = 0.0

    def _apply_command(self, command: CoolingCommand) -> None:
        """Subclass hook: clamp the command to the hardware envelope."""
        raise NotImplementedError

    def plant_inputs(self) -> PlantInputs:
        """Actuator portion of the plant inputs (boundary terms unset)."""
        return PlantInputs(
            fc_fan_speed=self.fc_fan_speed,
            ac_fan_speed=self.ac_fan_speed,
            ac_compressor_duty=self.ac_compressor_duty,
        )

    def observe_boundary(self, outside_temp_c: float, outside_rh_pct: float) -> None:
        """Record the outdoor conditions the units are rejecting heat into.

        The Parasol units ignore these (their power depends only on
        actuator state), but weather-coupled backends — the chiller's COP
        lift, the tower's wet-bulb capacity and evaporation — read them in
        :meth:`plant_inputs` and :meth:`step_resources`.
        """
        self.outside_temp_c = outside_temp_c
        self.outside_rh_pct = outside_rh_pct

    def step_resources(self, it_power_w: float, dt_s: float) -> "tuple[float, float]":
        """Electrical draw (W) and water use (liters) over one model step.

        The base implementation is the air-cooled Parasol plant: the
        actuator power law and zero water.  Backends that consume water
        (evaporative towers) override this.
        """
        return self.power_w(), 0.0

    def power_w(self) -> float:
        raise NotImplementedError


class AbruptCoolingUnits(CoolingUnits):
    """Parasol's real hardware: 15%-minimum fan, on/off compressor."""

    def _apply_command(self, command: CoolingCommand) -> None:
        if command.mode is CoolingMode.FREE_COOLING:
            # The unit cannot run below 15%: opening at a lower request
            # still slams in at the minimum speed.
            self.fc_fan_speed = max(constants.FC_MIN_SPEED, command.fc_fan_speed)
            self.ac_fan_speed = 0.0
            self.ac_compressor_duty = 0.0
        elif command.mode is CoolingMode.AC_ON:
            self.fc_fan_speed = 0.0
            self.ac_fan_speed = 1.0  # fixed-speed fan
            self.ac_compressor_duty = 1.0  # on/off compressor: full blast
        elif command.mode is CoolingMode.AC_FAN:
            self.fc_fan_speed = 0.0
            self.ac_fan_speed = 1.0
            self.ac_compressor_duty = 0.0
        else:
            self.fc_fan_speed = 0.0
            self.ac_fan_speed = 0.0
            self.ac_compressor_duty = 0.0

    def power_w(self) -> float:
        if self.fc_fan_speed > 0.0:
            return free_cooling_power_w(self.fc_fan_speed)
        if self.ac_compressor_duty > 0.0:
            return constants.AC_COMPRESSOR_W
        if self.ac_fan_speed > 0.0:
            return constants.AC_FAN_ONLY_W
        return 0.0


class SmoothCoolingUnits(CoolingUnits):
    """Fine-grained units: 1% fan ramp-up, variable-speed compressor.

    ``ramp_per_step`` bounds how much any actuator may *increase* per
    control application — this is the "fine-grained ramp up" of Section
    5.1.  Decreases are immediate, except that fan speeds and compressor
    duty below 15% snap to 0 (both shut down "straight from 15% to 0%").
    """

    # Smooth AC: fan is 1/4 of full-unit power, compressor linear in speed.
    AC_FAN_FULL_W = constants.AC_COMPRESSOR_W / 4.0
    AC_COMPRESSOR_FULL_W = constants.AC_COMPRESSOR_W - AC_FAN_FULL_W

    def __init__(self, ramp_per_step: float = 0.20) -> None:
        super().__init__()
        if not 0.0 < ramp_per_step <= 1.0:
            raise RegimeError(f"ramp_per_step {ramp_per_step} out of (0, 1]")
        self.ramp_per_step = ramp_per_step

    def _ramp_up(self, current: float, target: float, floor: float) -> float:
        """Move toward a higher target, starting from ``floor`` if off."""
        if current <= 0.0:
            start = floor
        else:
            start = current
        return min(target, max(start, current + self.ramp_per_step))

    def _apply_axis(self, current: float, target: float, min_speed: float) -> float:
        if target <= 0.0:
            return 0.0  # shutdown is immediate (15% -> 0 allowed)
        target = max(min_speed, target)
        if target > current:
            return self._ramp_up(current, target, min_speed)
        return target  # ramping down within the operating range is free

    def _apply_command(self, command: CoolingCommand) -> None:
        min_speed = constants.SMOOTH_FC_MIN_SPEED
        if command.mode is CoolingMode.FREE_COOLING:
            self.fc_fan_speed = self._apply_axis(
                self.fc_fan_speed, command.fc_fan_speed, min_speed
            )
            self.ac_fan_speed = 0.0
            self.ac_compressor_duty = 0.0
        elif command.mode in (CoolingMode.AC_ON, CoolingMode.AC_FAN):
            self.fc_fan_speed = 0.0
            # The smooth AC fan ramps up fine-grained and settles at 100%.
            self.ac_fan_speed = self._apply_axis(
                self.ac_fan_speed, command.ac_fan_speed, min_speed
            )
            self.ac_compressor_duty = self._apply_axis(
                self.ac_compressor_duty, command.ac_compressor_duty, min_speed
            )
        else:
            self.fc_fan_speed = 0.0
            self.ac_fan_speed = 0.0
            self.ac_compressor_duty = 0.0

    def power_w(self) -> float:
        power = 0.0
        if self.fc_fan_speed > 0.0:
            power += free_cooling_power_w(self.fc_fan_speed)
        power += self.AC_FAN_FULL_W * self.ac_fan_speed
        power += self.AC_COMPRESSOR_FULL_W * self.ac_compressor_duty
        return power
