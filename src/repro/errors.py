"""Exception hierarchy for the CoolAir reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ModelNotTrainedError(ReproError):
    """A learned model was queried before :meth:`fit` was called."""


class RegimeError(ReproError):
    """An unknown or inapplicable cooling regime was requested."""


class SensorError(ReproError):
    """A sensor was queried that does not exist or has no reading."""


class WorkloadError(ReproError):
    """A workload trace or job specification is malformed."""


class SchedulingError(ReproError):
    """Temporal scheduling could not satisfy a job's constraints."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class WeatherError(ReproError):
    """Weather data was requested outside the available range."""


class TaskExecutionError(ReproError):
    """A campaign task failed; carries the failing cell's identity.

    ``label`` is the task's (system, climate, workload) label and
    ``cause`` a string rendering of the underlying error, so the parent
    of a worker pool can report *which* cell died rather than a bare
    traceback.  ``__reduce__`` keeps instances picklable across process
    boundaries despite the multi-argument constructor.
    """

    def __init__(self, label: str, cause: str) -> None:
        self.label = label
        self.cause = cause
        super().__init__(f"task {label} failed: {cause}")

    def __reduce__(self):
        return (type(self), (self.label, self.cause))
