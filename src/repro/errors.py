"""Exception hierarchy for the CoolAir reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ModelNotTrainedError(ReproError):
    """A learned model was queried before :meth:`fit` was called."""


class RegimeError(ReproError):
    """An unknown or inapplicable cooling regime was requested."""


class SensorError(ReproError):
    """A sensor was queried that does not exist or has no reading."""


class WorkloadError(ReproError):
    """A workload trace or job specification is malformed."""


class SchedulingError(ReproError):
    """Temporal scheduling could not satisfy a job's constraints."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class WeatherError(ReproError):
    """Weather data was requested outside the available range."""
