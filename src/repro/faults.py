"""Seeded, deterministic fault injection for the simulated datacenter.

CoolAir operates at the mercy of an uncontrollable environment (Sections
3 and 5): sensors drift and die, actuators stick, and the monitoring log
the Cooling Modeler learns from can have gaps.  This module defines the
fault channels the simulator can inject and the runtime
:class:`FaultInjector` that applies them:

* **Sensor faults** (:class:`SensorFault`) — ``stuck`` (the reading
  freezes, and the sensor is reported unhealthy because a flat-lined
  sensor is detectable), ``dropout`` (no reading at all; consumers keep
  the last value and the sensor is unhealthy), ``drift`` (a slow additive
  ramp — undetectable, so the sensor stays "healthy"), and ``spike``
  (occasional large excursions, also undetectable).
* **Actuator faults** (:class:`ActuatorFault`) — ``fan_stuck`` (the
  free-cooling fan runs at a fixed speed whenever it is on),
  ``compressor_lockout`` (the AC compressor cannot engage), and
  ``damper_jam`` (the free-cooling damper will not open, forcing the fan
  to zero).
* **Log-gap faults** (:class:`LogGapFault`) — holes in the learning
  campaign's monitoring log, by position or by cooling mode, which can
  starve :class:`~repro.core.modeler.CoolingLearner` of a whole regime.

A :class:`FaultSchedule` bundles the channels plus a seed; it rides on
:class:`~repro.core.config.CoolAirConfig` (``faults=``) and is consumed
by the scalar engine only — :func:`repro.analysis.experiments.effective_engine`
falls back to the scalar path for faulted cells.  All randomness comes
from per-channel ``numpy`` generators seeded from the schedule seed, so
same-seed runs are bit-identical.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

# A window that covers every day a year simulation can sample.
ALL_YEAR = 366

SENSOR_FAULT_KINDS = ("stuck", "dropout", "drift", "spike")
ACTUATOR_FAULT_KINDS = ("fan_stuck", "compressor_lockout", "damper_jam")


@dataclasses.dataclass(frozen=True)
class SensorFault:
    """One fault channel on one named sensor (e.g. ``"inlet_pod3"``)."""

    sensor: str
    kind: str
    start_day: int = 0
    end_day: int = ALL_YEAR
    # ``stuck``: freeze at this value (None = freeze at the first reading
    # observed inside the fault window).
    stuck_value: Optional[float] = None
    # ``drift``: additive ramp, in sensor units per hour of fault time.
    drift_per_hour: float = 0.0
    # ``spike``: excursion magnitude and per-reading probability.
    spike_magnitude: float = 0.0
    spike_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SENSOR_FAULT_KINDS:
            raise ConfigError(
                f"unknown sensor fault kind {self.kind!r}; "
                f"choices: {SENSOR_FAULT_KINDS}"
            )
        if self.start_day < 0 or self.end_day <= self.start_day:
            raise ConfigError(
                f"fault window [{self.start_day}, {self.end_day}) is empty"
            )
        if self.kind == "spike" and not 0.0 <= self.spike_probability <= 1.0:
            raise ConfigError(
                f"spike_probability {self.spike_probability} out of [0, 1]"
            )

    def active_on(self, day_of_year: int) -> bool:
        return self.start_day <= day_of_year < self.end_day


@dataclasses.dataclass(frozen=True)
class ActuatorFault:
    """One fault on the cooling unit actuators, active day-granular."""

    kind: str
    start_day: int = 0
    end_day: int = ALL_YEAR
    # ``fan_stuck``: the speed the FC fan is stuck at whenever it is on.
    stuck_fan_speed: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ACTUATOR_FAULT_KINDS:
            raise ConfigError(
                f"unknown actuator fault kind {self.kind!r}; "
                f"choices: {ACTUATOR_FAULT_KINDS}"
            )
        if self.start_day < 0 or self.end_day <= self.start_day:
            raise ConfigError(
                f"fault window [{self.start_day}, {self.end_day}) is empty"
            )
        if not 0.0 < self.stuck_fan_speed <= 1.0:
            raise ConfigError(
                f"stuck_fan_speed {self.stuck_fan_speed} out of (0, 1]"
            )

    def active_on(self, day_of_year: int) -> bool:
        return self.start_day <= day_of_year < self.end_day


@dataclasses.dataclass(frozen=True)
class LogGapFault:
    """A hole in the learning campaign's monitoring log.

    ``drop_mode`` removes every sample recorded in that cooling mode
    (e.g. ``"free_cooling"`` starves the FC steady regime below
    ``min_samples``); ``start_fraction``/``end_fraction`` drop a
    positional slice of the log (0.0 = first sample, 1.0 = last).
    """

    drop_mode: Optional[str] = None
    start_fraction: float = 0.0
    end_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction <= 1.0:
            raise ConfigError("start_fraction out of [0, 1]")
        if not 0.0 <= self.end_fraction <= 1.0:
            raise ConfigError("end_fraction out of [0, 1]")
        if self.drop_mode is None and self.end_fraction <= self.start_fraction:
            raise ConfigError("log gap drops nothing")


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """Everything the injector needs: channels plus a seed.

    Frozen and tuple-valued so it can ride on ``CoolAirConfig`` (whose
    fingerprint hashes it into the cache key) and key model caches.
    """

    sensor_faults: Tuple[SensorFault, ...] = ()
    actuator_faults: Tuple[ActuatorFault, ...] = ()
    log_gaps: Tuple[LogGapFault, ...] = ()
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        return not (self.sensor_faults or self.actuator_faults or self.log_gaps)

    def __bool__(self) -> bool:
        return not self.is_empty


def apply_log_gaps(
    log: Sequence, gaps: Sequence[LogGapFault]
) -> List:
    """The monitoring log with every gap's samples removed."""
    if not gaps:
        return list(log)
    total = len(log)
    kept = []
    for index, sample in enumerate(log):
        frac = index / total if total else 0.0
        drop = False
        for gap in gaps:
            if gap.drop_mode is not None and sample.mode.value == gap.drop_mode:
                drop = True
            if gap.end_fraction > gap.start_fraction and (
                gap.start_fraction <= frac < gap.end_fraction
            ):
                drop = True
        if not drop:
            kept.append(sample)
    return kept


# -- runtime injection ---------------------------------------------------------


class _SensorChannel:
    """Runtime state of one SensorFault: window latch, RNG, held value."""

    def __init__(self, fault: SensorFault, seed: int) -> None:
        self.fault = fault
        self._rng = np.random.default_rng(seed)
        self.active = False
        self._held: Optional[float] = None
        self._start_s: Optional[float] = None

    def begin_day(self, day_of_year: int) -> None:
        was_active = self.active
        self.active = self.fault.active_on(day_of_year)
        if self.active and not was_active:
            self._held = None
            self._start_s = None

    def apply(
        self, value: float, now_s: float
    ) -> Tuple[Optional[float], bool]:
        """(faulted value or None if the sensor is dead, healthy flag)."""
        if not self.active:
            return value, True
        fault = self.fault
        if fault.kind == "dropout":
            return None, False
        if fault.kind == "stuck":
            if self._held is None:
                self._held = (
                    fault.stuck_value
                    if fault.stuck_value is not None
                    else value
                )
            # A flat-lined sensor is detectable, so it reports unhealthy.
            return self._held, False
        if fault.kind == "drift":
            if self._start_s is None:
                self._start_s = now_s
            hours = (now_s - self._start_s) / 3600.0
            return value + fault.drift_per_hour * hours, True
        # spike
        if (
            fault.spike_probability > 0.0
            and self._rng.random() < fault.spike_probability
        ):
            sign = 1.0 if self._rng.random() < 0.5 else -1.0
            return value + sign * fault.spike_magnitude, True
        return value, True


class _SensorPipe:
    """The ``inject`` hook installed on a sensor: chains its channels."""

    def __init__(self, injector: "FaultInjector", channels: List[_SensorChannel]):
        self._injector = injector
        self.channels = channels

    def __call__(self, value: float) -> Tuple[Optional[float], bool]:
        now_s = self._injector.now_s
        healthy = True
        for channel in self.channels:
            value, channel_healthy = channel.apply(value, now_s)
            healthy = healthy and channel_healthy
            if value is None:
                return None, False
        return value, healthy


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a live layout and cooling units.

    The engine owns the lifecycle: :meth:`attach` once per run,
    :meth:`begin_day` at each day start (windows and actuator faults are
    day-granular), :meth:`set_time` before each batch of sensor
    observations (drift and spike draws are time/order deterministic).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.now_s = 0.0
        self._channels: List[_SensorChannel] = []
        self._units = None

    def attach(self, layout, units) -> None:
        sensors: Dict[str, object] = {
            sensor.name: sensor for sensor in layout.inlet_sensors
        }
        for sensor in (
            layout.outside_temp,
            layout.cold_aisle_humidity,
            layout.hot_aisle_humidity,
            layout.outside_humidity,
        ):
            sensors[sensor.name] = sensor
        by_sensor: Dict[str, List[_SensorChannel]] = {}
        for index, fault in enumerate(self.schedule.sensor_faults):
            if fault.sensor not in sensors:
                raise ConfigError(
                    f"fault targets unknown sensor {fault.sensor!r}; "
                    f"known: {sorted(sensors)}"
                )
            channel = _SensorChannel(
                fault, seed=(self.schedule.seed + 1) * 7919 + index
            )
            self._channels.append(channel)
            by_sensor.setdefault(fault.sensor, []).append(channel)
        for name, channels in by_sensor.items():
            sensors[name].inject = _SensorPipe(self, channels)
        self._units = units

    def begin_day(self, day_of_year: int) -> None:
        for channel in self._channels:
            channel.begin_day(day_of_year)
        if self._units is None:
            return
        fan_stuck: Optional[float] = None
        compressor_locked = False
        damper_jammed = False
        for fault in self.schedule.actuator_faults:
            if not fault.active_on(day_of_year):
                continue
            if fault.kind == "fan_stuck":
                fan_stuck = fault.stuck_fan_speed
            elif fault.kind == "compressor_lockout":
                compressor_locked = True
            else:
                damper_jammed = True
        self._units.set_faults(
            fan_stuck_speed=fan_stuck,
            compressor_locked=compressor_locked,
            damper_jammed=damper_jammed,
        )

    def set_time(self, abs_time_s: float) -> None:
        self.now_s = abs_time_s


# -- built-in scenarios --------------------------------------------------------
#
# Each scenario is an "incident bundle": its headline channel plus an
# inlet-sensor dropout, so every scenario exercises the safe-mode
# fallback (the acceptance contract: at least one degradation interval
# per scenario).  ``model-gap`` degrades through the model path instead.

BUILTIN_SCENARIOS: Dict[str, FaultSchedule] = {
    "inlet-dropout": FaultSchedule(
        sensor_faults=(SensorFault(sensor="inlet_pod3", kind="dropout"),),
    ),
    "sensor-stuck": FaultSchedule(
        sensor_faults=(
            SensorFault(sensor="inlet_pod0", kind="stuck", stuck_value=24.0),
        ),
    ),
    "sensor-drift": FaultSchedule(
        sensor_faults=(
            SensorFault(sensor="inlet_pod2", kind="drift", drift_per_hour=0.5),
            SensorFault(sensor="inlet_pod3", kind="dropout"),
        ),
    ),
    "sensor-spike": FaultSchedule(
        sensor_faults=(
            SensorFault(
                sensor="outside_temp",
                kind="spike",
                spike_magnitude=6.0,
                spike_probability=0.05,
            ),
            SensorFault(sensor="inlet_pod1", kind="dropout"),
        ),
        seed=11,
    ),
    "fan-stuck": FaultSchedule(
        sensor_faults=(SensorFault(sensor="inlet_pod3", kind="dropout"),),
        actuator_faults=(
            ActuatorFault(kind="fan_stuck", stuck_fan_speed=0.35),
        ),
    ),
    "ac-lockout": FaultSchedule(
        sensor_faults=(SensorFault(sensor="inlet_pod3", kind="dropout"),),
        actuator_faults=(ActuatorFault(kind="compressor_lockout"),),
    ),
    "damper-jam": FaultSchedule(
        sensor_faults=(SensorFault(sensor="inlet_pod3", kind="dropout"),),
        actuator_faults=(ActuatorFault(kind="damper_jam"),),
    ),
    "model-gap": FaultSchedule(
        log_gaps=(LogGapFault(drop_mode="free_cooling"),),
    ),
}


def builtin_scenario(name: str) -> FaultSchedule:
    """Look up a built-in scenario by name (for ``--faults``)."""
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault scenario {name!r}; "
            f"choices: {', '.join(sorted(BUILTIN_SCENARIOS))}"
        )
