"""Figure 6: validating Real-Sim against a real baseline execution.

The paper compares a real 7/2/2013 baseline day on Parasol against its
Real-Sim simulation: maximum temperatures, temperature variations, and
cooling energy all within 8%, and 89% of measurements within 2C.

Substitution: the "real" execution here is the plant with sensor-level
process noise enabled (the physical container stand-in); Real-Sim is the
deterministic simulator.  Both run the same baseline controller, weather,
and Facebook workload.
"""

from benchmarks.conftest import show
from repro.analysis.ascii_plot import render_day
from repro.analysis.report import format_table
from repro.sim.engine import (
    BaselineAdapter,
    ClusterWorkload,
    DayRunner,
    make_realsim,
)
from repro.sim.validation import trace_agreement
from repro.weather.locations import NEWARK
from repro.workload.traces import FacebookTraceGenerator

JULY_2 = 182


def run_pair():
    trace_wl = FacebookTraceGenerator(num_jobs=1200).generate()

    def run(noise):
        setup = make_realsim(NEWARK, process_noise_c=noise)
        runner = DayRunner(
            setup, ClusterWorkload(trace_wl, setup.layout), BaselineAdapter()
        )
        return runner.run_day(JULY_2)

    real = run(noise=0.35)  # the "physical" container
    simulated = run(noise=0.0)  # Real-Sim
    return real, simulated


def test_fig06_realsim_matches_real_baseline_day(once):
    real, simulated = once(run_pair)
    agreement = trace_agreement(real, simulated)

    rows = [
        ["max inlet temp C", real.max_sensor_temp_c(), simulated.max_sensor_temp_c()],
        ["worst daily range C", real.worst_sensor_range_c(),
         simulated.worst_sensor_range_c()],
        ["cooling energy kWh", real.cooling_energy_kwh(),
         simulated.cooling_energy_kwh()],
        ["PUE", real.pue(), simulated.pue()],
    ]
    show(format_table(
        ["metric", "real", "Real-Sim"], rows,
        title="Figure 6 — baseline day 7/2, real vs Real-Sim",
    ))
    show(render_day(real))
    show(render_day(simulated))
    show(
        f"within 2C: {agreement.fraction_within_2c*100:.0f}%   "
        f"rel errors: max={agreement.max_temp_rel_error*100:.1f}% "
        f"range={agreement.range_rel_error*100:.1f}% "
        f"energy={agreement.cooling_energy_rel_error*100:.1f}%"
    )

    # Paper validation targets for the baseline: everything within 8%,
    # 89% of measurements within 2C.
    assert agreement.max_temp_rel_error < 0.08
    assert agreement.range_rel_error < 0.15
    assert agreement.cooling_energy_rel_error < 0.15
    assert agreement.fraction_within_2c > 0.85
