"""Figure 1: disk, inlet, and outside temperatures under free cooling.

The paper plots two July days (7/6-7/7/2013) on Parasol with a workload
holding disks 50% utilized, showing a strong correlation between outside
air, inlet air, and disk temperatures.  This bench runs the same scenario
on the simulated Parasol and prints the hourly series plus correlation
coefficients.
"""

import numpy as np

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.cooling.regimes import CoolingCommand
from repro.physics.thermal import DiskThermalModel, PlantInputs, ThermalPlant
from repro.weather.locations import NEWARK
from repro.weather.tmy import generate_tmy


def run_two_days_free_cooling():
    """Free cooling at a fixed medium fan speed for two July days."""
    tmy = generate_tmy(NEWARK)
    plant = ThermalPlant()
    disks = DiskThermalModel(num_pods=4)
    start = 186 * 86_400  # July 6th
    plant.reset(tmy.temperature_c(start) + 3.0, tmy.mixing_ratio(start))

    hours, outside, inlet_lo, inlet_hi, disk_lo, disk_hi = [], [], [], [], [], []
    for step in range(2 * 720):
        t = start + step * 120.0
        inputs = PlantInputs(
            fc_fan_speed=0.4,
            pod_it_power_w=[420.0] * 4,  # ~50% utilization
            outside_temp_c=tmy.temperature_c(t),
            outside_mixing_ratio=tmy.mixing_ratio(t),
        )
        state = plant.step(inputs, 120.0)
        disk_temps = disks.step(state.pod_inlet_temp_c, 0.5, 120.0)
        if step % 30 == 0:  # hourly
            hours.append(step / 30.0)
            outside.append(tmy.temperature_c(t))
            inlet_lo.append(float(state.pod_inlet_temp_c.min()))
            inlet_hi.append(float(state.pod_inlet_temp_c.max()))
            disk_lo.append(float(disk_temps.min()))
            disk_hi.append(float(disk_temps.max()))
    return {
        "hours": hours,
        "outside": outside,
        "inlet_lo": inlet_lo,
        "inlet_hi": inlet_hi,
        "disk_lo": disk_lo,
        "disk_hi": disk_hi,
    }


def test_fig01_disk_inlet_outside_correlation(once):
    series = once(run_two_days_free_cooling)

    rows = [
        [f"{h:.0f}", o, il, ih, dl, dh]
        for h, o, il, ih, dl, dh in zip(
            series["hours"], series["outside"], series["inlet_lo"],
            series["inlet_hi"], series["disk_lo"], series["disk_hi"],
        )
    ][::3]
    show(format_table(
        ["hour", "outside", "inlet1", "inlet2", "disk1", "disk2"],
        rows,
        title="Figure 1 — temperatures under free cooling (every 3rd hour)",
    ))

    out = np.array(series["outside"])
    inlet = np.array(series["inlet_hi"])
    disk = np.array(series["disk_hi"])
    corr_in = float(np.corrcoef(out, inlet)[0, 1])
    corr_disk = float(np.corrcoef(inlet, disk)[0, 1])
    show(f"corr(outside, inlet) = {corr_in:.3f}   corr(inlet, disk) = {corr_disk:.3f}")

    # The paper's point: a strong correlation chain outside -> inlet -> disk.
    assert corr_in > 0.9
    assert corr_disk > 0.9
    # Disks run well above their inlets (Figure 1 shows a 10-18C gap).
    assert float(np.mean(disk - inlet)) > 8.0
