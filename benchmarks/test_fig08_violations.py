"""Figure 8: average temperature violations (>30C), year-long, five
locations x five systems, Facebook workload.

Paper shape: the baseline cannot limit temperatures at warm locations
(worst in Singapore); all CoolAir versions keep average violations below
0.5C everywhere; the Temperature version is the strictest.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import five_location_matrix
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

SYSTEMS = ("baseline", "Temperature", "Energy", "Variation", "All-ND")


def test_fig08_average_temperature_violations(once):
    matrix = once(five_location_matrix, SYSTEMS)

    rows = []
    for system in SYSTEMS:
        rows.append(
            [system] + [matrix[system][loc].avg_violation_c
                        for loc in NAMED_LOCATIONS]
        )
    show(format_table(
        ["system"] + list(NAMED_LOCATIONS), rows,
        title="Figure 8 — average temperature violations over 30C (C)",
    ))

    # Every CoolAir version keeps average violations small at all
    # locations (the paper reports < 0.5C; our smooth AC's ramp-up allows
    # slightly larger brief excursions at Chad — see EXPERIMENTS.md).
    for system in ("Temperature", "Energy", "Variation", "All-ND"):
        for loc in NAMED_LOCATIONS:
            assert matrix[system][loc].avg_violation_c < 0.75, (system, loc)

    # The Temperature version (strictest setpoint) is the most successful,
    # as in the paper ("always able to keep average temperatures below 30C").
    for loc in NAMED_LOCATIONS:
        assert (
            matrix["Temperature"][loc].avg_violation_c
            <= matrix["All-ND"][loc].avg_violation_c + 1e-9
        ), loc
        assert matrix["Temperature"][loc].avg_violation_c < 0.1, loc

    # Hot locations are the hardest for every system.
    for system in SYSTEMS:
        hot_worst = max(matrix[system]["Singapore"].avg_violation_c,
                        matrix[system]["Chad"].avg_violation_c)
        cold_worst = max(matrix[system]["Iceland"].avg_violation_c,
                         matrix[system]["Newark"].avg_violation_c)
        assert hot_worst >= cold_worst - 1e-9, system
