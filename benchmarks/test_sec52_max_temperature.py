"""Section 5.2, "Impact of the desired maximum temperature".

Paper finding: CoolAir's benefits grow when operators accept higher
maximum temperatures — the max-range reductions are greater at Max=30C
than at Max=25C, and where PUE is high at 30C CoolAir lowers it, but at
25C CoolAir tends to *increase* PUE at those same locations.
"""

import dataclasses

from benchmarks.conftest import show
from repro.analysis.experiments import year_result
from repro.analysis.report import format_table
from repro.core.versions import all_nd
from repro.weather.locations import NAMED_LOCATIONS

LOCATIONS = ("Newark", "Chad", "Singapore")


def all_nd_with_max(max_c: float):
    config = all_nd()
    config = dataclasses.replace(config, name=f"All-ND-max{max_c:.0f}", max_c=max_c)
    return config


def run_all():
    results = {}
    for loc in LOCATIONS:
        climate = NAMED_LOCATIONS[loc]
        results[loc] = {
            "baseline": year_result("baseline", climate),
            30.0: year_result(all_nd_with_max(30.0), climate),
            25.0: year_result(all_nd_with_max(25.0), climate),
        }
    return results


def test_sec52_impact_of_desired_maximum_temperature(once):
    results = once(run_all)

    rows = []
    for loc in LOCATIONS:
        for key in ("baseline", 30.0, 25.0):
            r = results[loc][key]
            label = key if isinstance(key, str) else f"All-ND Max={key:.0f}C"
            rows.append([loc, label, r.max_range_c, r.pue,
                         r.cooling_kwh])
    show(format_table(
        ["location", "system", "max range C", "PUE", "cooling kWh"], rows,
        title="Section 5.2 — impact of the desired maximum temperature",
    ))

    for loc in LOCATIONS:
        at_30 = results[loc][30.0]
        at_25 = results[loc][25.0]
        # A lower ceiling costs more cooling energy.
        assert at_25.cooling_kwh >= at_30.cooling_kwh, loc

    # At the hot locations, a 25C ceiling hurts PUE relative to 30C.
    for loc in ("Chad", "Singapore"):
        assert results[loc][25.0].pue >= results[loc][30.0].pue, loc
