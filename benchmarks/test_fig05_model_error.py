"""Figure 5: Cooling Model prediction-error CDFs.

Reproduces the validation of Section 4.2: predict 2 and 10 minutes ahead
over two held-out days, with and without regime transitions, and report
the CDF.  Paper headline: without transitions, 95% of 2-minute and 90% of
10-minute predictions fall within 1C; with transitions, over 90% and over
80% respectively.
"""

import numpy as np

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.sim.campaign import run_learning_campaign, trained_cooling_model
from repro.sim.validation import fraction_within, prediction_error_cdf

HELD_OUT_DAYS = (121, 171)  # 5/1 and 6/20, as in the paper — not in the campaign


def compute_cdfs():
    model = trained_cooling_model()
    log = run_learning_campaign(days=HELD_OUT_DAYS)
    cases = {
        "2-minutes": (1, False),
        "2-minutes no-transition": (1, True),
        "10-minutes": (5, False),
        "10-minutes no-transition": (5, True),
    }
    results = {}
    for name, (steps, exclude) in cases.items():
        errors, percent = prediction_error_cdf(model, log, steps, exclude)
        results[name] = errors
    return results


def test_fig05_model_error_cdfs(once):
    results = once(compute_cdfs)

    rows = []
    for name, errors in results.items():
        rows.append([
            name,
            100.0 * fraction_within(errors, 0.5),
            100.0 * fraction_within(errors, 1.0),
            100.0 * fraction_within(errors, 2.0),
            float(np.median(errors)),
        ])
    show(format_table(
        ["case", "<=0.5C %", "<=1.0C %", "<=2.0C %", "median C"],
        rows,
        title="Figure 5 — prediction error CDF summary (2 held-out days)",
    ))

    # Paper shape: no-transition >= with-transition accuracy at each
    # horizon, and the paper's headline thresholds hold.
    assert fraction_within(results["2-minutes no-transition"], 1.0) >= 0.95
    assert fraction_within(results["10-minutes no-transition"], 1.0) >= 0.90
    assert fraction_within(results["2-minutes"], 1.0) >= 0.90
    assert fraction_within(results["10-minutes"], 1.0) >= 0.80
    assert (
        fraction_within(results["10-minutes no-transition"], 1.0)
        >= fraction_within(results["10-minutes"], 1.0)
    )
