"""Extension: band-width ablation.

Section 5.1 justifies Width = 5C: "narrower bands tend to make it harder
to control temperature variations (higher cooling energy and more regime
changes) and wider bands needlessly allow temperatures to vary."  This
bench sweeps Width at Newark and checks both halves of that sentence.
"""

import dataclasses

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.core.versions import all_nd
from repro.sim.campaign import trained_cooling_model
from repro.sim.yearsim import run_year
from repro.weather.locations import NEWARK
from repro.workload.traces import FacebookTraceGenerator

WIDTHS = (2.0, 5.0, 10.0)
STRIDE = 28


def run_sweep():
    trace = FacebookTraceGenerator(num_jobs=1200).generate()
    model = trained_cooling_model()
    results = {}
    for width in WIDTHS:
        config = dataclasses.replace(
            all_nd(), name=f"All-ND-w{width:.0f}", width_c=width
        )
        results[width] = run_year(
            config, NEWARK, trace, model=model, sample_every_days=STRIDE
        )
    return results


def test_ext_band_width_ablation(once):
    results = once(run_sweep)

    rows = [
        [f"{width:.0f}C", r.avg_range_c, r.max_range_c, r.cooling_kwh, r.pue]
        for width, r in results.items()
    ]
    show(format_table(
        ["Width", "avg range C", "max range C", "cooling kWh", "PUE"],
        rows,
        title="Extension — band-width sweep at Newark (All-ND)",
    ))

    narrow, default, wide = results[2.0], results[5.0], results[10.0]
    # Narrower bands cost more cooling energy than the default.
    assert narrow.cooling_kwh >= default.cooling_kwh
    # Wider bands needlessly allow temperatures to vary.
    assert wide.avg_range_c >= default.avg_range_c
