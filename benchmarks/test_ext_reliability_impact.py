"""Extension: disk-reliability impact of the management systems.

The paper motivates CoolAir with three conflicting disk-failure studies
(absolute temperature vs temporal variation) and argues CoolAir is useful
*however* the dispute resolves, because it manages both.  This bench
quantifies that claim: it exposes the disk fleet to a simulated year under
the baseline and under All-ND, scores the exposure under all three failure
hypotheses, and runs the cooling-energy-vs-replacement tradeoff.
"""

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.core.versions import all_nd
from repro.reliability import assess, exposure_from_day_traces, yearly_tradeoff
from repro.sim.campaign import trained_cooling_model
from repro.sim.yearsim import run_year
from repro.weather.locations import NEWARK
from repro.workload.traces import FacebookTraceGenerator

STRIDE = 28  # ~13 sampled days


def run_exposures():
    trace = FacebookTraceGenerator(num_jobs=1200).generate()
    model = trained_cooling_model()
    baseline = run_year(
        "baseline", NEWARK, trace, sample_every_days=STRIDE, keep_traces=True
    )
    coolair = run_year(
        all_nd(), NEWARK, trace, model=model, sample_every_days=STRIDE,
        keep_traces=True,
    )
    return {
        "baseline": (baseline, exposure_from_day_traces(baseline.traces)),
        "All-ND": (coolair, exposure_from_day_traces(coolair.traces)),
    }


def test_ext_reliability_impact(once):
    results = once(run_exposures)

    assessments = {}
    rows = []
    for name, (year, exposure) in results.items():
        assessment = assess(exposure)
        assessments[name] = assessment
        rows.append([
            name,
            assessment.arrhenius,
            assessment.threshold,
            assessment.variation,
            assessment.worst_case,
        ])
    show(format_table(
        ["system", "Arrhenius AFRx", "threshold AFRx", "variation AFRx",
         "worst case"],
        rows,
        title="Extension — relative disk failure rates at Newark (year)",
    ))

    base_year, _ = results["baseline"]
    cool_year, _ = results["All-ND"]
    tradeoff = yearly_tradeoff(
        cooling_kwh_a=base_year.cooling_kwh,
        assessment_a=assessments["baseline"],
        cooling_kwh_b=cool_year.cooling_kwh,
        assessment_b=assessments["All-ND"],
    )
    show(
        f"All-ND vs baseline: cooling cost {tradeoff.cooling_cost_delta_usd:+.0f} "
        f"USD/yr, replacement cost {tradeoff.replacement_cost_delta_usd:+.0f} "
        f"USD/yr, net {tradeoff.net_delta_usd:+.0f} USD/yr"
    )

    # Shape: All-ND's tighter daily ranges must win decisively under the
    # variation hypothesis...
    assert assessments["All-ND"].variation < assessments["baseline"].variation
    # ...and not lose under the absolute-temperature hypotheses.
    assert (
        assessments["All-ND"].arrhenius
        <= assessments["baseline"].arrhenius + 0.1
    )
    assert (
        assessments["All-ND"].worst_case < assessments["baseline"].worst_case
    )
