"""Figure 7: a CoolAir day — real, Real-Sim, and Smooth-Sim.

The paper's 6/15/2013 run shows (b) the real/abrupt hardware reacting too
abruptly to regime changes (opening free cooling at 15% dropped inlets 9C
in 12 minutes), versus (d) the smooth infrastructure keeping temperatures
stable inside the band.

This bench runs All-ND on: the noisy abrupt plant ("real"), the
deterministic abrupt plant (Real-Sim), and the smooth plant (Smooth-Sim),
and compares stability.
"""

import numpy as np

from benchmarks.conftest import show
from repro.analysis.ascii_plot import render_day
from repro.analysis.report import format_table
from repro.core.coolair import CoolAir
from repro.core.versions import all_nd
from repro.sim.campaign import trained_cooling_model
from repro.sim.engine import (
    CoolAirAdapter,
    DayRunner,
    ProfileWorkload,
    make_realsim,
    make_smoothsim,
)
from repro.sim.validation import trace_agreement
from repro.weather.locations import NEWARK
from repro.workload.traces import FacebookTraceGenerator

JUNE_15 = 165


def run_three():
    model = trained_cooling_model()
    trace_wl = FacebookTraceGenerator(num_jobs=1200).generate()

    def run(setup):
        coolair = CoolAir(
            all_nd(), model, setup.layout, setup.forecast,
            smooth_hardware=setup.smooth_hardware,
        )
        runner = DayRunner(
            setup, ProfileWorkload(trace_wl, setup.layout, 600.0),
            CoolAirAdapter(coolair),
        )
        return runner.run_day(JUNE_15), coolair.band

    real, band = run(make_realsim(NEWARK, process_noise_c=0.35))
    realsim, _ = run(make_realsim(NEWARK))
    smoothsim, _ = run(make_smoothsim(NEWARK))
    return real, realsim, smoothsim, band


def test_fig07_smooth_hardware_controls_variation(once):
    real, realsim, smoothsim, band = once(run_three)

    rows = []
    for name, day in [("real (noisy abrupt)", real),
                      ("Real-Sim (abrupt)", realsim),
                      ("Smooth-Sim", smoothsim)]:
        rows.append([
            name,
            day.max_sensor_temp_c(),
            day.worst_sensor_range_c(),
            day.max_rate_c_per_hour(),
            day.pue(),
        ])
    show(format_table(
        ["run", "max C", "range C", "max rate C/h", "PUE"], rows,
        title=f"Figure 7 — CoolAir day 6/15, band [{band.low_c:.0f},{band.high_c:.0f}]C",
    ))

    show(render_day(realsim))
    show(render_day(smoothsim))
    agreement = trace_agreement(real, realsim)
    show(f"Real vs Real-Sim: {agreement.fraction_within_2c*100:.0f}% within 2C")

    # Shape assertions:
    # (1) Smooth hardware keeps variation tighter than abrupt hardware.
    assert smoothsim.worst_sensor_range_c() <= realsim.worst_sensor_range_c()
    # (2) The abrupt hardware's regime changes produce fast temperature
    #     swings; the smooth hardware stays under a far lower rate.
    assert smoothsim.max_rate_c_per_hour() < realsim.max_rate_c_per_hour()
    # (3) Real-Sim tracks the "real" run (paper: 70% of CoolAir
    #     measurements within 2C).
    assert agreement.fraction_within_2c > 0.70
    # (4) Smooth-Sim keeps most readings inside the band.
    temps = smoothsim.sensor_temps()
    inside = np.mean((temps >= band.low_c - 0.5) & (temps <= band.high_c + 0.5))
    assert inside > 0.7
