"""Figure 10: yearly PUEs (including 0.08 for power delivery).

Paper shape: the baseline's PUE is highest in Chad and Singapore; the
Energy version reduces it significantly there; the Variation version pays
a substantial cooling-energy penalty; All-ND brings PUE back near the
Energy version (except Santiago, where limiting variation costs energy
the baseline never spends).
"""

from benchmarks.conftest import show
from repro.analysis.experiments import five_location_matrix
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

SYSTEMS = ("baseline", "Temperature", "Energy", "Variation", "All-ND")
HOT_LOCATIONS = ("Chad", "Singapore")


def test_fig10_yearly_pues(once):
    matrix = once(five_location_matrix, SYSTEMS)

    rows = []
    for system in SYSTEMS:
        rows.append([system] + [matrix[system][loc].pue for loc in NAMED_LOCATIONS])
    show(format_table(
        ["system"] + list(NAMED_LOCATIONS), rows,
        title="Figure 10 — yearly PUEs (incl. 0.08 delivery)",
    ))

    baseline = matrix["baseline"]
    energy = matrix["Energy"]
    variation = matrix["Variation"]
    all_nd = matrix["All-ND"]

    # Baseline PUE is highest at the hot locations.
    hot_pue = max(baseline[loc].pue for loc in HOT_LOCATIONS)
    mild_pue = max(baseline[loc].pue for loc in ("Newark", "Iceland"))
    assert hot_pue > mild_pue

    # All PUEs are at least the delivery floor and physically plausible.
    for system in SYSTEMS:
        for loc in NAMED_LOCATIONS:
            assert 1.08 <= matrix[system][loc].pue < 2.6, (system, loc)

    # Variation management carries a cooling-energy penalty vs Energy.
    penalty_locations = sum(
        variation[loc].cooling_kwh > energy[loc].cooling_kwh
        for loc in NAMED_LOCATIONS
    )
    assert penalty_locations >= 3

    # All-ND lands between Variation (costly) and Energy (cheap) on
    # cooling energy at most locations.
    between = sum(
        energy[loc].cooling_kwh <= all_nd[loc].cooling_kwh
        <= variation[loc].cooling_kwh + 1e-6
        for loc in NAMED_LOCATIONS
    )
    assert between >= 3
