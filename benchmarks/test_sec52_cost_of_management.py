"""Section 5.2, "Cost of managing temperature and variation".

The paper quantifies the yearly energy cost of lowering absolute
temperature by 1C (Energy at 30C vs Temperature at 29C) versus shrinking
the maximum daily range by 1C (Energy vs Variation): temperature costs
more in places with warm seasons (Newark 232 vs 53 kWh, Chad 1275 vs 131,
Singapore 2145 vs 716) and less in places with colder ones (Santiago 110
vs 171, Iceland 7 vs 29).
"""

from benchmarks.conftest import show
from repro.analysis.costs import management_costs
from repro.analysis.experiments import year_result
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

WARM = ("Chad", "Singapore")
COLD = ("Iceland",)


def compute_costs():
    costs = {}
    for name, climate in NAMED_LOCATIONS.items():
        energy = year_result("Energy", climate)
        temperature = year_result("Temperature", climate)
        variation = year_result("Variation", climate)
        costs[name] = management_costs(name, energy, temperature, variation)
    return costs


def test_sec52_cost_of_managing_temperature_vs_variation(once):
    costs = once(compute_costs)

    rows = [
        [name, c.temperature_kwh_per_c, c.variation_kwh_per_c,
         "temperature" if c.temperature_costs_more else "variation"]
        for name, c in costs.items()
    ]
    show(format_table(
        ["location", "kWh per C of max temp", "kWh per C of max range",
         "costlier"],
        rows,
        title="Section 5.2 — yearly energy cost of management",
    ))

    # Shape: hot climates pay far more for absolute temperature than cold
    # ones do.
    hot_temp_cost = min(costs[loc].temperature_kwh_per_c for loc in WARM)
    cold_temp_cost = max(costs[loc].temperature_kwh_per_c for loc in COLD)
    assert hot_temp_cost > cold_temp_cost

    # In the hottest climates, managing absolute temperature costs more
    # than managing variation (the paper's Chad/Singapore result).
    assert sum(costs[loc].temperature_costs_more for loc in WARM) >= 1
