"""Section 5.2, "Temporal scheduling".

Paper findings:

* All-DEF (band-aware deferral) provides only minor reductions over
  All-ND, because the days where All-ND does poorly are exactly the days
  All-DEF forgoes scheduling.  All-ND is therefore the best
  implementation.
* Energy-DEF (energy-driven coldest-hours deferral, as in prior work)
  *widens* maximum ranges dramatically — Newark 10 -> 19C and Santiago
  10 -> 18C versus All-ND — in exchange for small PUE gains (1.17 -> 1.13
  and 1.25 -> 1.10), ending up worse than even the baseline.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import year_result
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

LOCATIONS = ("Newark", "Santiago", "Iceland")


def run_all():
    results = {}
    for loc in LOCATIONS:
        climate = NAMED_LOCATIONS[loc]
        results[loc] = {
            "baseline": year_result("baseline", climate),
            "All-ND": year_result("All-ND", climate),
            "All-DEF": year_result("All-DEF", climate, deferrable=True),
            "Energy-DEF": year_result("Energy-DEF", climate, deferrable=True),
        }
    return results


def test_sec52_temporal_scheduling(once):
    results = once(run_all)

    rows = []
    for loc in LOCATIONS:
        for system in ("baseline", "All-ND", "All-DEF", "Energy-DEF"):
            r = results[loc][system]
            rows.append([loc, system, r.avg_range_c, r.max_range_c, r.pue])
    show(format_table(
        ["location", "system", "avg range C", "max range C", "PUE"], rows,
        title="Section 5.2 — temporal scheduling",
    ))

    for loc in LOCATIONS:
        all_nd = results[loc]["All-ND"]
        all_def = results[loc]["All-DEF"]
        energy_def = results[loc]["Energy-DEF"]

        # "All-DEF provides only minor reductions ... All-ND is the best
        # implementation of CoolAir": deferral never buys a substantial
        # variation win over All-ND.
        assert all_def.max_range_c >= all_nd.max_range_c - 1.0, loc

        # Energy-driven temporal scheduling widens variation vs All-ND
        # (paper: Newark 10 -> 19C, Santiago 10 -> 18C).
        assert energy_def.max_range_c > all_nd.max_range_c + 2.0, loc

        # ...in exchange for lower cooling energy.
        assert energy_def.cooling_kwh <= all_nd.cooling_kwh, loc
