"""Figure 11: temperature ranges as a function of spatial placement and
variation-limiting approach.

Four systems isolate two effects:

* Var-Low-Recirc vs Var-High-Recirc (same fixed 25-30C band, no weather
  forecast) isolates *placement*: filling high-recirculation pods first
  keeps them consistently warm and reduces maximum ranges somewhat.
* Var-High-Recirc vs Variation (adds the adaptive band + forecast)
  isolates the *band*: the largest reductions at cold-season locations
  come from the band.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import five_location_matrix
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

SYSTEMS = ("baseline", "Var-Low-Recirc", "Var-High-Recirc", "Variation")
COLD_SEASON_LOCATIONS = ("Newark", "Santiago", "Iceland")


def test_fig11_spatial_placement_and_band(once):
    matrix = once(five_location_matrix, SYSTEMS)

    rows = []
    for system in SYSTEMS:
        row = [system]
        for loc in NAMED_LOCATIONS:
            result = matrix[system][loc]
            row.append(f"{result.avg_range_c:.1f} (max {result.max_range_c:.1f})")
        rows.append(row)
    show(format_table(
        ["system"] + list(NAMED_LOCATIONS), rows,
        title="Figure 11 — ranges by placement and band, avg (max), C",
    ))

    low = matrix["Var-Low-Recirc"]
    high = matrix["Var-High-Recirc"]
    variation = matrix["Variation"]

    # Placement effect: high-recirculation placement reduces (or at least
    # never meaningfully worsens) maximum ranges relative to the
    # energy-ideal low-recirculation placement.
    improved = sum(
        high[loc].max_range_c <= low[loc].max_range_c + 0.5
        for loc in NAMED_LOCATIONS
    )
    assert improved >= 4

    # Band effect: the adaptive band delivers the largest reductions at
    # cold-season locations relative to the fixed band.
    for loc in COLD_SEASON_LOCATIONS:
        assert variation[loc].max_range_c <= high[loc].max_range_c + 0.5, loc
    band_wins = sum(
        variation[loc].max_range_c < high[loc].max_range_c
        for loc in COLD_SEASON_LOCATIONS
    )
    assert band_wins >= 2
