"""Figures 12 and 13: world-wide reductions in maximum daily range and
yearly PUE, baseline vs All-ND.

The paper runs 1520 TMY locations; this bench defaults to a 24-point
subsample of the same deterministic world grid (set
``REPRO_WORLD_LOCATIONS=1520`` for the full run).  Paper headlines: the
average maximum range falls from 18.6C to 12.1C for an average PUE shift
of 1.08 -> 1.09; reductions are largest in cold climates; fewer than 2%
of locations get worse, never by more than 1C.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import world_sweep
from repro.analysis.report import format_table


def run_world():
    # Uncached cells fan out over REPRO_WORKERS processes (default: CPUs).
    return world_sweep()


def test_fig12_13_worldwide_reductions(once):
    summary = once(run_world)

    show(format_table(
        ["bin C", "locations"],
        list(summary.range_bucket_counts().items()),
        title=f"Figure 12 — max-range reduction ({len(summary.comparisons)} locations)",
    ))
    show(format_table(
        ["bin", "locations"],
        list(summary.pue_bucket_counts().items()),
        title="Figure 13 — yearly PUE reduction",
    ))
    show(summary.headline())

    # Headline shape: a large average reduction in maximum daily range...
    assert (
        summary.avg_coolair_max_range_c
        < summary.avg_baseline_max_range_c - 2.0
    )
    # ...for a small average PUE change.
    assert abs(summary.avg_coolair_pue - summary.avg_baseline_pue) < 0.1

    # Cold climates benefit most (lesson 7): compare the polar third of
    # locations against the tropical third.
    by_lat = sorted(summary.comparisons, key=lambda c: abs(c.latitude))
    third = max(1, len(by_lat) // 3)
    tropical = sum(c.range_reduction_c for c in by_lat[:third]) / third
    polar = sum(c.range_reduction_c for c in by_lat[-third:]) / third
    assert polar > tropical

    # Few locations get worse, and only slightly.
    assert summary.fraction_range_worsened < 0.15
    assert summary.worst_range_increase_c < 2.0
