"""Figure 3: daily temperature band selection.

Shows, for a sample mild day, the hourly outside forecast and the band
CoolAir selects (average + Offset, Width wide, clamped to [Min, Max]),
plus the sliding behaviour on a hot and a cold day.
"""

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.core.band import select_band
from repro.core.versions import all_nd
from repro.weather.forecast import ForecastService
from repro.weather.locations import CHAD, ICELAND, NEWARK
from repro.weather.tmy import generate_tmy


def select_for(climate, day):
    forecast = ForecastService(generate_tmy(climate)).forecast_for_day(day)
    band = select_band(forecast, all_nd())
    return forecast, band


def coldest_day(climate):
    tmy = generate_tmy(climate)
    return min(range(365), key=tmy.daily_mean_temp_c)


def test_fig03_band_selection(once):
    results = once(
        lambda: {
            "mild": select_for(NEWARK, 130),
            "hot": select_for(CHAD, 120),
            "cold": select_for(ICELAND, coldest_day(ICELAND)),
        }
    )

    forecast, band = results["mild"]
    rows = [[f"{h:02d}:00", float(t)] for h, t in enumerate(forecast.hourly_temps_c)]
    show(format_table(
        ["hour", "forecast C"], rows[::3],
        title=f"Figure 3 — Newark day 130 forecast (avg {forecast.average_temp_c:.1f}C)",
    ))
    show(
        f"selected band: [{band.low_c:.1f}, {band.high_c:.1f}]C "
        f"(center = avg + Offset = {forecast.average_temp_c:.1f} + 8.0)"
    )

    config = all_nd()
    # Mild day: band centered at forecast average + Offset.
    assert band.center_c == forecast.average_temp_c + config.offset_c
    assert band.width_c == config.width_c

    # Hot day (Chad): the band slides back just below Max.
    _, hot_band = results["hot"]
    show(f"Chad day 120 band: [{hot_band.low_c:.1f}, {hot_band.high_c:.1f}] (slid={hot_band.slid})")
    assert hot_band.high_c == config.max_c
    assert hot_band.slid

    # Cold day (Iceland): the band slides just above Min.
    _, cold_band = results["cold"]
    show(f"Iceland day 20 band: [{cold_band.low_c:.1f}, {cold_band.high_c:.1f}] (slid={cold_band.slid})")
    assert cold_band.low_c == config.min_c
    assert cold_band.slid
