"""Section 5.2, "Impact of workload": the Nutch trace.

Paper finding: the widely different Nutch trace exhibits the exact same
trends as Facebook — All-ND roughly halves the maximum daily range at
Newark/Santiago/Iceland and lowers the average range everywhere, with
significant PUE reductions at Chad and Singapore.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import year_result
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

COLD_SEASON_LOCATIONS = ("Newark", "Santiago", "Iceland")


def run_all():
    results = {}
    for loc, climate in NAMED_LOCATIONS.items():
        results[loc] = {
            "baseline": year_result("baseline", climate, workload="nutch"),
            "All-ND": year_result("All-ND", climate, workload="nutch"),
        }
    return results


def test_sec52_nutch_shows_same_trends(once):
    results = once(run_all)

    rows = []
    for loc in NAMED_LOCATIONS:
        for system in ("baseline", "All-ND"):
            r = results[loc][system]
            rows.append([loc, system, r.avg_range_c, r.max_range_c, r.pue])
    show(format_table(
        ["location", "system", "avg range C", "max range C", "PUE"], rows,
        title="Section 5.2 — Nutch workload, baseline vs All-ND",
    ))

    big_cuts = 0
    for loc in COLD_SEASON_LOCATIONS:
        baseline = results[loc]["baseline"]
        all_nd = results[loc]["All-ND"]
        # Same headline as Facebook: large range cuts at cold-season
        # locations (the max statistic is noisy under 14-day sampling).
        assert all_nd.max_range_c <= 0.85 * baseline.max_range_c, loc
        assert all_nd.avg_range_c <= 0.85 * baseline.avg_range_c, loc
        if all_nd.avg_range_c <= 0.70 * baseline.avg_range_c:
            big_cuts += 1
    assert big_cuts >= 2  # "roughly half" at most cold-season locations

    for loc in NAMED_LOCATIONS:
        assert (
            results[loc]["All-ND"].avg_range_c
            <= results[loc]["baseline"].avg_range_c + 0.5
        ), loc
