"""Figure 9: daily worst-sensor temperature ranges (average, with min/max
whiskers), including the outside ranges, five locations x five systems.

Paper shape: the baseline's average daily range hovers around 9C with much
wider maxima (>=16.5C at locations with cold seasons); Temperature/Energy
can make maxima *worse*; Variation and All-ND cut the average consistently
and roughly halve the maximum range at Newark/Santiago/Iceland.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import five_location_matrix
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

SYSTEMS = ("baseline", "Temperature", "Energy", "Variation", "All-ND")
COLD_SEASON_LOCATIONS = ("Newark", "Santiago", "Iceland")


def test_fig09_temperature_ranges(once):
    matrix = once(five_location_matrix, SYSTEMS)

    rows = []
    outside_row = ["Outside"]
    for loc in NAMED_LOCATIONS:
        result = matrix["baseline"][loc]
        outside_row.append(
            f"{result.avg_outside_range_c:.1f} (max {result.max_outside_range_c:.1f})"
        )
    rows.append(outside_row)
    for system in SYSTEMS:
        row = [system]
        for loc in NAMED_LOCATIONS:
            result = matrix[system][loc]
            row.append(f"{result.avg_range_c:.1f} (max {result.max_range_c:.1f})")
        rows.append(row)
    show(format_table(
        ["system"] + list(NAMED_LOCATIONS), rows,
        title="Figure 9 — daily worst-sensor temperature ranges, avg (max), C",
    ))

    baseline = matrix["baseline"]
    variation = matrix["Variation"]
    all_nd = matrix["All-ND"]

    for loc in NAMED_LOCATIONS:
        # Variation-aware versions lower the average daily range.
        assert variation[loc].avg_range_c <= baseline[loc].avg_range_c + 0.5, loc
        assert all_nd[loc].avg_range_c <= baseline[loc].avg_range_c + 0.5, loc

    # The headline: at cold-season locations All-ND cuts the maximum daily
    # range substantially (the paper reports about half).
    for loc in COLD_SEASON_LOCATIONS:
        assert all_nd[loc].max_range_c <= 0.75 * baseline[loc].max_range_c, loc

    # Non-variation-aware versions do NOT deliver those cuts.
    for loc in COLD_SEASON_LOCATIONS:
        assert (
            matrix["Energy"][loc].max_range_c
            > all_nd[loc].max_range_c
        ), loc
