"""Table 1: the CoolAir version matrix.

Regenerates the table from the live version definitions so it can never
drift from the code.
"""

from benchmarks.conftest import show
from repro.analysis.report import format_table
from repro.core.config import BandMode, TemporalPolicy
from repro.core.versions import ALL_VERSIONS

PAPER_ROWS = {
    "Temperature": ("non-deferrable", "low", False),
    "Variation": ("non-deferrable", "high", False),
    "Energy": ("non-deferrable", "low", False),
    "All-ND": ("non-deferrable", "high", False),
    "All-DEF": ("deferrable", "low", True),
}


def build_table():
    rows = []
    for name in ("Temperature", "Variation", "Energy", "All-ND", "All-DEF"):
        config = ALL_VERSIONS[name]()
        if config.band_mode is BandMode.ADAPTIVE:
            utility = f"adaptive band (max {config.max_c:.0f}C)"
        else:
            utility = f"max temp ({config.max_temp_setpoint_c:.0f}C)"
        if config.use_energy_term:
            utility += " + energy"
        utility += " + humidity"
        placement = (
            "high recirculation"
            if "HIGH" in config.placement.name
            else "low recirculation"
        )
        temporal = "yes" if config.temporal is not TemporalPolicy.NONE else "no"
        workload = (
            "deferrable" if config.temporal is not TemporalPolicy.NONE
            else "non-deferrable"
        )
        rows.append([name, workload, utility, placement, temporal])
    return rows


def test_table1_version_matrix(once):
    rows = once(build_table)
    show(format_table(
        ["version", "workload", "utility function", "spatial placement", "temporal"],
        rows,
        title="Table 1 — CoolAir versions",
    ))
    for name, (workload, placement, temporal) in PAPER_ROWS.items():
        row = next(r for r in rows if r[0] == name)
        assert row[1] == workload
        assert placement in row[3]
        assert (row[4] == "yes") == temporal
