"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper's evaluation
and prints the corresponding rows/series.  Absolute numbers come from the
synthetic Parasol plant, so they will not match the paper's testbed; the
assertions check the *shape* — who wins, by roughly what factor, where
crossovers fall (see EXPERIMENTS.md).

Year-scale results are cached under ``.cache/`` at the repo root; delete
it to force fresh runs.  ``REPRO_SAMPLE_DAYS=7`` reproduces the paper's
exact weekly sampling (default 14 for speed) and ``REPRO_WORKERS``
controls campaign fan-out — see ``docs/EXPERIMENTS.md`` for every knob
and the cache contract.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


def show(text: str) -> None:
    """Print a table with spacing that survives pytest's capture (-s)."""
    print("\n" + text + "\n")
