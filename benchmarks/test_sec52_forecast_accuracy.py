"""Section 5.2, "Impact of weather forecast accuracy".

The paper injects consistent +5C and -5C biases into the average outside
temperature predictions.  Findings: with +5C, maximum ranges grow but
always by less than 1C and PUE falls; with -5C, ranges shrink and PUE
rises by less than 0.01.  CoolAir's 5C-wide band absorbs the error.
"""

from benchmarks.conftest import show
from repro.analysis.experiments import year_result
from repro.analysis.report import format_table
from repro.weather.locations import NAMED_LOCATIONS

LOCATIONS = ("Newark", "Santiago")
# Paper: <1C max-range impact and <0.01 PUE impact on their testbed.  Our
# plant's unbiased maximum ranges are unusually tight (5C-ish), so a 5C
# band shift shows up more visibly in the *max* (one bad day) while the
# average stays put — tolerances reflect that (see EXPERIMENTS.md).
TOLERANCE_MAX_RANGE_C = 5.0
TOLERANCE_AVG_RANGE_C = 3.0
TOLERANCE_PUE = 0.05


def run_all():
    results = {}
    for loc in LOCATIONS:
        climate = NAMED_LOCATIONS[loc]
        results[loc] = {
            bias: year_result("All-ND", climate, forecast_bias_c=bias)
            for bias in (0.0, +5.0, -5.0)
        }
    return results


def test_sec52_forecast_bias_impact_is_small(once):
    results = once(run_all)

    rows = []
    for loc in LOCATIONS:
        for bias in (0.0, +5.0, -5.0):
            r = results[loc][bias]
            rows.append([loc, f"{bias:+.0f}C", r.avg_range_c, r.max_range_c, r.pue])
    show(format_table(
        ["location", "forecast bias", "avg range C", "max range C", "PUE"],
        rows,
        title="Section 5.2 — impact of forecast accuracy",
    ))

    for loc in LOCATIONS:
        unbiased = results[loc][0.0]
        baseline = year_result("baseline", NAMED_LOCATIONS[loc])
        for bias in (+5.0, -5.0):
            biased = results[loc][bias]
            assert (
                abs(biased.max_range_c - unbiased.max_range_c)
                <= TOLERANCE_MAX_RANGE_C
            ), (loc, bias)
            assert (
                abs(biased.avg_range_c - unbiased.avg_range_c)
                <= TOLERANCE_AVG_RANGE_C
            ), (loc, bias)
            assert abs(biased.pue - unbiased.pue) <= TOLERANCE_PUE, (loc, bias)
            # Even with a consistently wrong forecast, CoolAir never gets
            # worse than the unmanaged baseline's variation.
            assert biased.max_range_c <= baseline.max_range_c + 0.5, (loc, bias)
