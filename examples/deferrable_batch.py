#!/usr/bin/env python
"""Deferrable batch workloads: band-aware vs energy-driven scheduling.

Many batch/data-processing workloads tolerate start delays (the paper uses
6-hour start deadlines).  This example compares, over several simulated
weeks at Newark:

* **All-ND** — no temporal scheduling,
* **All-DEF** — CoolAir's band-aware deferral (schedules load into hours
  whose forecast falls inside the temperature band; skips days where the
  band slid or never overlaps), and
* **Energy-DEF** — prior work's energy-driven deferral into the coldest
  hours, which conserves cooling energy but *widens* daily temperature
  variation (the Section 5.2 result).

Run:  python examples/deferrable_batch.py
"""

from repro import NEWARK, FacebookTraceGenerator, run_year, trained_cooling_model
from repro.analysis.report import format_table
from repro.core.versions import all_def, all_nd, energy_def

STRIDE = 42  # ~9 sampled days across the year keeps this interactive


def main():
    deferrable = FacebookTraceGenerator(num_jobs=1200).generate(deferrable=True)
    model = trained_cooling_model()

    systems = {
        "All-ND (no deferral)": all_nd(),
        "All-DEF (band-aware)": all_def(),
        "Energy-DEF (coldest hours)": energy_def(),
    }

    rows = []
    results = {}
    for label, config in systems.items():
        print(f"Simulating {label} at {NEWARK.name}...")
        result = run_year(
            config, NEWARK, deferrable, model=model, sample_every_days=STRIDE
        )
        results[label] = result
        rows.append([
            label,
            result.avg_range_c,
            result.max_range_c,
            result.pue,
            result.cooling_kwh,
        ])

    print()
    print(format_table(
        ["system", "avg daily range C", "max daily range C", "PUE",
         "cooling kWh"],
        rows,
        title="Deferrable Facebook workload at Newark",
    ))

    energy = results["Energy-DEF (coldest hours)"]
    allnd = results["All-ND (no deferral)"]
    print(
        f"\nEnergy-driven deferral saved "
        f"{allnd.cooling_kwh - energy.cooling_kwh:.1f} kWh of cooling but "
        f"widened the max daily range by "
        f"{energy.max_range_c - allnd.max_range_c:.1f}C — the paper's "
        f"argument against it in free-cooled datacenters."
    )


if __name__ == "__main__":
    main()
