#!/usr/bin/env python
"""Writing and evaluating your own cooling controller.

The simulators accept any management adapter with three methods —
``start_day``, ``control``, and ``placement_order`` — so new control
policies drop straight into the same evaluation harness as the baseline
and CoolAir.  This example implements a naive "always free-cool at a speed
proportional to the temperature error" controller and pits it against the
TKS baseline and CoolAir on a winter day, where its lack of a closed
regime hurts.

Run:  python examples/custom_controller.py
"""

from repro import NEWARK, FacebookTraceGenerator, all_nd, make_realsim, make_smoothsim, trained_cooling_model
from repro.cooling.regimes import CoolingCommand
from repro.core.coolair import CoolAir
from repro.sim.engine import (
    BaselineAdapter,
    CoolAirAdapter,
    DayRunner,
    ProfileWorkload,
)

JANUARY_15 = 14


class ProportionalFanController:
    """Naive P-controller: fan speed proportional to error above target.

    It has no closed regime and no AC, so on a cold day it keeps flushing
    the container with freezing air — exactly the failure mode CoolAir's
    regime selection avoids.
    """

    name = "proportional-fan"

    def __init__(self, target_c: float = 24.0, gain: float = 0.2) -> None:
        self.target_c = target_c
        self.gain = gain

    def start_day(self, runner, day_of_year):
        pass

    def control(self, runner):
        layout = runner.setup.layout
        hottest = float(layout.inlet_readings().max())
        error = hottest - self.target_c
        if error <= 0.0:
            speed = 0.15  # hardware minimum; it never closes the damper
        else:
            speed = min(1.0, 0.15 + self.gain * error)
        runner.setup.units.apply(CoolingCommand.free_cooling(speed))

    def placement_order(self, runner):
        return None


def run_day(setup, adapter, trace, day):
    runner = DayRunner(
        setup, ProfileWorkload(trace, setup.layout, 600.0), adapter
    )
    return runner.run_day(day)


def main():
    trace = FacebookTraceGenerator(num_jobs=1200).generate()
    model = trained_cooling_model()

    naive_day = run_day(
        make_realsim(NEWARK), ProportionalFanController(), trace, JANUARY_15
    )
    baseline_day = run_day(make_realsim(NEWARK), BaselineAdapter(), trace, JANUARY_15)
    setup = make_smoothsim(NEWARK)
    coolair = CoolAir(all_nd(), model, setup.layout, setup.forecast,
                      smooth_hardware=True)
    coolair_day = run_day(setup, CoolAirAdapter(coolair), trace, JANUARY_15)

    print(f"Winter day (Jan 15) at {NEWARK.name}:\n")
    for name, day in [("proportional fan", naive_day),
                      ("TKS baseline", baseline_day),
                      ("CoolAir All-ND", coolair_day)]:
        temps = day.sensor_temps()
        print(
            f"{name:<18} min {temps.min():5.1f}C  max {temps.max():5.1f}C  "
            f"range {day.worst_sensor_range_c():4.1f}C  PUE {day.pue():.2f}"
        )

    print(
        "\nThe naive controller never closes the container, so inlets track "
        "the freezing outside air; the baseline and CoolAir exploit "
        "recirculation to stay warm."
    )


if __name__ == "__main__":
    main()
