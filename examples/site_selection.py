#!/usr/bin/env python
"""Site selection: where does free cooling need CoolAir the most?

The paper's world-wide study (Figures 12/13) asks, for every candidate
site, how much CoolAir would reduce temperature variation and what it
would do to PUE.  This example answers the same question for a handful of
candidate sites an operator might shortlist — the paper's five named
locations plus two synthesized sites — and prints a recommendation table.

Run:  python examples/site_selection.py           (about 2-4 minutes)
      REPRO_FAST=1 python examples/site_selection.py   (coarser sampling)
"""

import os

from repro import NAMED_LOCATIONS, FacebookTraceGenerator, all_nd, run_year, trained_cooling_model
from repro.analysis.report import format_table
from repro.weather.locations import climate_for_coordinates

# Coarse year sampling keeps this example interactive; drop the stride to
# 7 to match the paper's weekly sampling.
STRIDE = 56 if os.environ.get("REPRO_FAST") else 28

CANDIDATE_SITES = dict(NAMED_LOCATIONS)
CANDIDATE_SITES["Oslo-like"] = climate_for_coordinates(59.9, 10.8)
CANDIDATE_SITES["Nairobi-like"] = climate_for_coordinates(-1.3, 36.8)


def main():
    trace = FacebookTraceGenerator(num_jobs=1200).generate()
    model = trained_cooling_model()

    rows = []
    for name, climate in CANDIDATE_SITES.items():
        print(f"Simulating a year at {name}...")
        baseline = run_year("baseline", climate, trace, sample_every_days=STRIDE)
        coolair = run_year(
            all_nd(), climate, trace, model=model, sample_every_days=STRIDE
        )
        range_cut = baseline.max_range_c - coolair.max_range_c
        pue_delta = coolair.pue - baseline.pue
        if range_cut > 4.0 and pue_delta < 0.05:
            verdict = "strong fit: big variation cut, cheap"
        elif pue_delta < -0.01:
            verdict = "strong fit: CoolAir also lowers PUE"
        elif range_cut > 1.0:
            verdict = "good fit"
        else:
            verdict = "marginal: already stable"
        rows.append([
            name,
            baseline.max_range_c,
            coolair.max_range_c,
            baseline.pue,
            coolair.pue,
            verdict,
        ])

    print()
    print(format_table(
        ["site", "max range (baseline)", "max range (CoolAir)",
         "PUE (baseline)", "PUE (CoolAir)", "verdict"],
        rows,
        title="Free-cooled site assessment (year-long simulation)",
    ))


if __name__ == "__main__":
    main()
