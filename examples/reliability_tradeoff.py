#!/usr/bin/env python
"""Disk reliability: what do the management systems do to your disks?

The paper's motivation is that the disk-failure literature disagrees about
what kills disks — high absolute temperatures (Sankar et al.), anything
past a ~50C knee (Pinheiro et al.), or wide daily swings (El-Sayed et
al.).  This example exposes a simulated disk fleet to a year under three
management systems and scores the exposure under *all three* hypotheses,
then prices the cooling-vs-replacement tradeoff.

Run:  python examples/reliability_tradeoff.py   (about 1 minute)
"""

from repro import NEWARK, FacebookTraceGenerator, run_year, trained_cooling_model
from repro.analysis.report import format_table
from repro.core.versions import all_nd, energy_version
from repro.reliability import (
    TradeoffInputs,
    assess,
    exposure_from_day_traces,
    yearly_tradeoff,
)

STRIDE = 42


def main():
    trace = FacebookTraceGenerator(num_jobs=1200).generate()
    model = trained_cooling_model()

    systems = {
        "baseline": ("baseline", None),
        "Energy (no variation mgmt)": (energy_version(), model),
        "All-ND (full CoolAir)": (all_nd(), model),
    }

    years = {}
    rows = []
    for name, (system, m) in systems.items():
        print(f"Simulating a year of {name}...")
        year = run_year(
            system, NEWARK, trace, model=m, sample_every_days=STRIDE,
            keep_traces=True,
        )
        exposure = exposure_from_day_traces(year.traces)
        assessment = assess(exposure)
        years[name] = (year, assessment)
        rows.append([
            name,
            max(exposure.daily_max_temp_c),
            max(exposure.daily_range_c),
            assessment.arrhenius,
            assessment.variation,
            assessment.worst_case,
        ])

    print()
    print(format_table(
        ["system", "peak disk C", "worst daily disk range C",
         "AFRx (absolute)", "AFRx (variation)", "AFRx (worst case)"],
        rows,
        title="Disk exposure and relative failure rates at Newark",
    ))

    base_year, base_assessment = years["baseline"]
    cool_year, cool_assessment = years["All-ND (full CoolAir)"]
    inputs = TradeoffInputs(fleet_size=64)
    tradeoff = yearly_tradeoff(
        base_year.cooling_kwh, base_assessment,
        cool_year.cooling_kwh, cool_assessment,
        inputs,
    )
    print(
        f"\nSwitching baseline -> All-ND: cooling "
        f"{tradeoff.cooling_cost_delta_usd:+.0f} USD/yr, disk replacement "
        f"{tradeoff.replacement_cost_delta_usd:+.0f} USD/yr "
        f"(worst-case hypothesis), net {tradeoff.net_delta_usd:+.0f} USD/yr "
        f"for a {inputs.fleet_size}-disk fleet."
    )


if __name__ == "__main__":
    main()
