#!/usr/bin/env python
"""Scaling out: a multi-container fleet with one CoolAir manager per zone.

Section 6 of the paper: "For a large datacenter with multiple independent
'cooling zones' (e.g., containers), each of them would have its own
CoolAir-like manager."  This example runs a 4-zone fleet (256 servers) for
one day at Newark under per-zone CoolAir and under the per-zone baseline,
and reports fleet-level metrics.

Run:  python examples/multizone_fleet.py
"""

from repro import NEWARK, FacebookTraceGenerator, all_nd, trained_cooling_model
from repro.analysis.report import format_table
from repro.sim.multizone import MultiZoneDatacenter

NUM_ZONES = 4
JULY_1 = 182


def main():
    # Four containers' worth of work: scale the trace up accordingly.
    trace = FacebookTraceGenerator(num_jobs=1200 * NUM_ZONES).generate()
    model = trained_cooling_model()

    print(f"Simulating a {NUM_ZONES}-zone fleet "
          f"({NUM_ZONES * 64} servers) for one day...")
    fleets = {
        "baseline": MultiZoneDatacenter(
            NEWARK, trace, NUM_ZONES, system="baseline"
        ),
        "CoolAir All-ND": MultiZoneDatacenter(
            NEWARK, trace, NUM_ZONES, system=all_nd(), model=model
        ),
    }

    rows = []
    for name, fleet in fleets.items():
        result = fleet.run_day(JULY_1)
        rows.append([
            name,
            result.max_temp_c,
            result.worst_zone_range_c,
            result.zone_spread_c(),
            result.fleet_pue(),
            result.cooling_kwh,
        ])

    print()
    print(format_table(
        ["fleet management", "max temp C", "worst zone range C",
         "zone spread C", "fleet PUE", "cooling kWh"],
        rows,
        title=f"{NUM_ZONES}-zone fleet at Newark, one July day",
    ))
    print("\nEach zone runs its own manager against shared site weather;"
          "\nfleet PUE aggregates energy across zones.")


if __name__ == "__main__":
    main()
