#!/usr/bin/env python
"""Quickstart: run CoolAir for one summer day and compare it to the
baseline cooling controller.

This walks the whole pipeline on a simulated Parasol container sited in
Newark:

1. learn the Cooling Model from a monitoring campaign (Section 4.2),
2. run the extended-TKS baseline for one day,
3. run CoolAir (All-ND) on the smooth cooling hardware for the same day,
4. print what each did.

Run:  python examples/quickstart.py
"""

from repro import (
    NEWARK,
    FacebookTraceGenerator,
    all_nd,
    make_realsim,
    make_smoothsim,
    trained_cooling_model,
)
from repro.core.coolair import CoolAir
from repro.sim.engine import BaselineAdapter, CoolAirAdapter, DayRunner, ProfileWorkload

JULY_1 = 182


def describe(name, day, band=None):
    line = (
        f"{name:<22} max {day.max_sensor_temp_c():5.1f}C   "
        f"daily range {day.worst_sensor_range_c():4.1f}C   "
        f"PUE {day.pue():.2f}   cooling {day.cooling_energy_kwh():.1f} kWh"
    )
    if band is not None:
        line += f"   band [{band.low_c:.0f}, {band.high_c:.0f}]C"
    print(line)


def main():
    print("Generating the day-long Facebook workload trace...")
    trace = FacebookTraceGenerator(num_jobs=1200).generate()

    print("Learning the Cooling Model from the monitoring campaign "
          "(one-time, ~5s)...")
    model = trained_cooling_model()

    # --- baseline: Parasol's extended TKS controller --------------------
    setup = make_realsim(NEWARK)
    runner = DayRunner(
        setup, ProfileWorkload(trace, setup.layout, 600.0), BaselineAdapter()
    )
    baseline_day = runner.run_day(JULY_1)

    # --- CoolAir All-ND on smooth cooling hardware -----------------------
    setup = make_smoothsim(NEWARK)
    coolair = CoolAir(
        all_nd(), model, setup.layout, setup.forecast, smooth_hardware=True
    )
    runner = DayRunner(
        setup, ProfileWorkload(trace, setup.layout, 600.0), CoolAirAdapter(coolair)
    )
    coolair_day = runner.run_day(JULY_1)

    print(f"\nOne simulated day (July 1) at {NEWARK.name}:")
    describe("baseline (TKS@30C)", baseline_day)
    describe("CoolAir All-ND", coolair_day, coolair.band)

    reduction = (
        baseline_day.worst_sensor_range_c() - coolair_day.worst_sensor_range_c()
    )
    print(f"\nCoolAir cut the worst daily temperature range by "
          f"{reduction:.1f}C on this day.")


if __name__ == "__main__":
    main()
