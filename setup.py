"""Setup shim for legacy editable installs (offline environments without
the ``wheel`` package cannot take the PEP 660 path)."""

from setuptools import setup

setup()
