"""Regenerate ``plant_golden_day.json``: the pre-refactor plant reference.

The fixture pins :class:`repro.physics.thermal.ThermalPlant` to the exact
floating-point trajectory the scalar, pre-PR-2 implementation produced on a
scripted day that visits every regime (closed, free cooling at several fan
speeds, evaporative pre-cooling, AC with and without compressor).  The
equality test in ``tests/unit/test_plant_golden.py`` replays the script and
asserts bit-identical output, so any refactor of the stepping code that
changes results — even at the last ulp — fails loudly.

Run from the repo root only when the plant *model* (not its implementation)
intentionally changes:

    PYTHONPATH=src python tests/data/make_plant_golden.py
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.physics.thermal import PlantInputs, ThermalPlant

STEPS = 720
DT_S = 120.0


def scripted_inputs(step: int) -> PlantInputs:
    """Deterministic actuator/boundary script covering every regime."""
    t = step * DT_S
    outside_c = 21.0 + 13.0 * math.cos(2.0 * math.pi * (t / 86400.0 - 15.0 / 24.0))
    outside_w = 0.0075 + 0.0035 * math.sin(2.0 * math.pi * t / 86400.0 + 1.0)
    power = tuple(
        300.0 + 150.0 * math.sin(2.0 * math.pi * t / 86400.0 + 0.5 * pod)
        for pod in range(4)
    )
    if step < 100:
        return PlantInputs(pod_it_power_w=power, outside_temp_c=outside_c,
                           outside_mixing_ratio=outside_w)
    if step < 250:
        speed = (0.15, 0.35, 0.75)[(step // 50) % 3]
        return PlantInputs(fc_fan_speed=speed, pod_it_power_w=power,
                           outside_temp_c=outside_c, outside_mixing_ratio=outside_w)
    if step < 350:
        return PlantInputs(fc_fan_speed=0.5, evaporative_effectiveness=0.6,
                           pod_it_power_w=power, outside_temp_c=outside_c,
                           outside_mixing_ratio=outside_w)
    if step < 450:
        return PlantInputs(ac_fan_speed=1.0, ac_compressor_duty=1.0,
                           pod_it_power_w=power, outside_temp_c=outside_c,
                           outside_mixing_ratio=outside_w)
    if step < 520:
        return PlantInputs(ac_fan_speed=1.0, pod_it_power_w=power,
                           outside_temp_c=outside_c, outside_mixing_ratio=outside_w)
    if step < 620:
        return PlantInputs(fc_fan_speed=1.0, pod_it_power_w=power,
                           outside_temp_c=outside_c, outside_mixing_ratio=outside_w)
    return PlantInputs(pod_it_power_w=power, outside_temp_c=outside_c,
                       outside_mixing_ratio=outside_w)


def generate() -> dict:
    plant = ThermalPlant()
    rows = []
    for step in range(STEPS):
        state = plant.step(scripted_inputs(step), DT_S)
        rows.append({
            "pod_inlet_temp_c": [float(v) for v in state.pod_inlet_temp_c],
            "hot_aisle_temp_c": float(state.hot_aisle_temp_c),
            "cold_aisle_mixing_ratio": float(state.cold_aisle_mixing_ratio),
        })
    return {"steps": STEPS, "dt_s": DT_S, "trace": rows}


if __name__ == "__main__":
    out = Path(__file__).parent / "plant_golden_day.json"
    out.write_text(json.dumps(generate()) + "\n")
    print(f"wrote {out}")
