"""Regenerate ``engine_golden_day.json``: the pre-refactor engine reference.

Pins one full baseline-controller day (Real-Sim, Newark, Facebook-style
profile workload, day 182) to the exact trajectory produced before the
PR-2 fast-path refactor (index-sampled TMY grid, allocation-free plant
stepping, single per-step IT-power computation).  The baseline controller
takes no optimizer decisions, so the trace is independent of the candidate
list — it isolates exactly the engine + weather + plant layers.

Run from the repo root only when simulation *behavior* intentionally
changes:

    PYTHONPATH=src python tests/data/make_engine_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.engine import BaselineAdapter, DayRunner, ProfileWorkload, make_realsim
from repro.weather.locations import NAMED_LOCATIONS
from repro.workload.traces import FacebookTraceGenerator

DAY = 182


def generate() -> dict:
    setup = make_realsim(NAMED_LOCATIONS["Newark"])
    trace_gen = FacebookTraceGenerator(num_jobs=400, seed=42).generate()
    runner = DayRunner(
        setup, ProfileWorkload(trace_gen, setup.layout, 600.0), BaselineAdapter()
    )
    day = runner.run_day(DAY)
    rows = []
    for record in day.records:
        rows.append({
            "time_s": record.time_s,
            "outside_temp_c": record.outside_temp_c,
            "sensor_temps_c": list(record.sensor_temps_c),
            "mode": record.mode.value,
            "fc_fan_speed": record.fc_fan_speed,
            "cooling_power_w": record.cooling_power_w,
            "it_power_w": record.it_power_w,
            "inside_rh_pct": record.inside_rh_pct,
            "outside_rh_pct": record.outside_rh_pct,
            "disk_temps_c": list(record.disk_temps_c),
        })
    return {"day": DAY, "trace": rows}


if __name__ == "__main__":
    out = Path(__file__).parent / "engine_golden_day.json"
    out.write_text(json.dumps(generate()) + "\n")
    print(f"wrote {out}")
