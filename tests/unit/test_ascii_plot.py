"""ASCII timeline rendering tests."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import regime_ribbon, render_day, sparkline
from repro.cooling.regimes import CoolingMode
from repro.errors import SimulationError
from repro.sim.trace import DayTrace, StepRecord


def record(t, temp, mode=CoolingMode.FREE_COOLING):
    return StepRecord(
        time_s=t,
        outside_temp_c=temp - 3.0,
        sensor_temps_c=(temp, temp + 1.0),
        mode=mode,
        fc_fan_speed=0.5,
        ac_compressor_duty=0.0,
        cooling_power_w=100.0,
        it_power_w=1500.0,
        inside_rh_pct=50.0,
        outside_rh_pct=60.0,
        utilization=0.5,
    )


@pytest.fixture()
def day():
    trace = DayTrace(0, label="test")
    for i in range(144):
        mode = CoolingMode.CLOSED if i < 72 else CoolingMode.FREE_COOLING
        trace.append(record(i * 600.0, 20.0 + 5.0 * np.sin(i / 20.0), mode))
    return trace


class TestSparkline:
    def test_length_matches_width(self):
        assert len(sparkline(range(1000), width=40)) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_flat_series_renders_floor(self):
        line = sparkline([5.0] * 10)
        assert set(line) == {"▁"}

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(np.linspace(0, 1, 8), width=8)
        assert line == "".join(sorted(line))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            sparkline([])


class TestRegimeRibbon:
    def test_shows_dominant_modes(self, day):
        ribbon = regime_ribbon(day, width=10)
        assert ribbon[:5] == "....."
        assert ribbon[5:] == "FFFFF"

    def test_width(self, day):
        assert len(regime_ribbon(day, width=36)) == 36

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            regime_ribbon(DayTrace(0), width=10)


class TestRenderDay:
    def test_panel_contents(self, day):
        panel = render_day(day, width=40)
        assert "outside" in panel
        assert "inlet" in panel
        assert "regime" in panel
        assert "PUE" in panel
        assert "test — day 0" in panel

    def test_panel_is_multiline(self, day):
        assert len(render_day(day).splitlines()) == 5
