"""Temperature band selection tests (Section 3.2, Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.band import TemperatureBand, band_overlaps_forecast, select_band
from repro.core.config import BandMode, CoolAirConfig
from repro.errors import ConfigError
from repro.weather.forecast import DailyForecast


def forecast_with_avg(avg_c, spread_c=4.0):
    hours = np.arange(24)
    temps = avg_c + spread_c * np.cos(2 * np.pi * (hours - 15) / 24)
    return DailyForecast(day_of_year=0, issued_hour=0, hourly_temps_c=temps)


class TestTemperatureBand:
    def test_geometry(self):
        band = TemperatureBand(20.0, 25.0)
        assert band.center_c == 22.5
        assert band.width_c == 5.0

    def test_contains_and_distance(self):
        band = TemperatureBand(20.0, 25.0)
        assert band.contains(22.0)
        assert band.distance_c(22.0) == 0.0
        assert band.distance_c(18.0) == 2.0
        assert band.distance_c(27.5) == 2.5

    def test_rejects_inverted(self):
        with pytest.raises(ConfigError):
            TemperatureBand(25.0, 20.0)


class TestAdaptiveSelection:
    def test_band_centered_on_average_plus_offset(self):
        config = CoolAirConfig(offset_c=8.0, width_c=5.0)
        band = select_band(forecast_with_avg(12.0), config)
        assert band.center_c == pytest.approx(20.0)
        assert band.width_c == 5.0
        assert not band.slid

    def test_slides_below_max(self):
        config = CoolAirConfig(offset_c=8.0, width_c=5.0, max_c=30.0)
        band = select_band(forecast_with_avg(28.0), config)
        assert band.high_c == 30.0
        assert band.low_c == 25.0
        assert band.slid

    def test_slides_above_min(self):
        config = CoolAirConfig(offset_c=8.0, width_c=5.0, min_c=10.0)
        band = select_band(forecast_with_avg(-10.0), config)
        assert band.low_c == 10.0
        assert band.high_c == 15.0
        assert band.slid

    @settings(max_examples=40, deadline=None)
    @given(avg=st.floats(min_value=-30.0, max_value=45.0))
    def test_band_always_within_min_max(self, avg):
        config = CoolAirConfig()
        band = select_band(forecast_with_avg(avg), config)
        assert band.low_c >= config.min_c - 1e-9
        assert band.high_c <= config.max_c + 1e-9
        assert band.width_c == pytest.approx(config.width_c)


class TestOtherModes:
    def test_fixed_band(self):
        config = CoolAirConfig(
            band_mode=BandMode.FIXED, fixed_band_low_c=25.0, fixed_band_high_c=30.0
        )
        band = select_band(forecast_with_avg(0.0), config)
        assert (band.low_c, band.high_c) == (25.0, 30.0)

    def test_max_only_spans_allowed_range(self):
        config = CoolAirConfig(band_mode=BandMode.MAX_ONLY, max_temp_setpoint_c=29.0)
        band = select_band(forecast_with_avg(50.0), config)
        assert band.high_c == 29.0
        assert band.low_c == config.min_c


class TestBandForecastOverlap:
    def test_overlap_when_forecast_reaches_band(self):
        band = TemperatureBand(18.0, 23.0)
        forecast = forecast_with_avg(12.0)  # +8 offset -> inlet ~20
        assert band_overlaps_forecast(band, forecast, offset_c=8.0)

    def test_no_overlap_when_outside_always_hotter(self):
        band = TemperatureBand(25.0, 30.0)
        forecast = forecast_with_avg(35.0)  # +8 -> >39 all day
        assert not band_overlaps_forecast(band, forecast, offset_c=8.0)

    def test_no_overlap_when_outside_always_colder(self):
        band = TemperatureBand(25.0, 30.0)
        forecast = forecast_with_avg(-5.0)
        assert not band_overlaps_forecast(band, forecast, offset_c=8.0)
