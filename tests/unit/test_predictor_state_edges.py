"""Edge cases of the Cooling Predictor's state handling and smooth-hardware
extrapolation/interpolation (Section 5.1 mechanics)."""

import numpy as np
import pytest

from repro.cooling.regimes import CoolingCommand, CoolingMode
from repro.core.predictor import CoolingPredictor, PredictorState


def state(**overrides):
    base = dict(
        mode=CoolingMode.FREE_COOLING,
        fan_speed=0.4,
        sensor_temps_c=[26.0, 26.5, 27.0, 27.5],
        prev_sensor_temps_c=[26.1, 26.6, 27.1, 27.6],
        outside_temp_c=15.0,
        prev_outside_temp_c=15.5,
        prev_fan_speed=0.35,
        utilization=0.5,
        inside_mixing_ratio=0.008,
        outside_mixing_ratio=0.006,
    )
    base.update(overrides)
    return PredictorState(**base)


class TestLowSpeedExtrapolation:
    """Smooth-Sim models FC below 15% "by extrapolating the earlier
    models to lower speeds" — fan speed is a model input, so prediction at
    1% must be continuous with the trained range."""

    def test_low_speed_prediction_is_between_closed_and_min_speed(
        self, cooling_model
    ):
        predictor = CoolingPredictor(cooling_model)
        hot = state(sensor_temps_c=[32.0] * 4, prev_sensor_temps_c=[32.0] * 4,
                    outside_temp_c=10.0)
        closed = predictor.predict(hot, CoolingCommand.closed(), 5)
        slow = predictor.predict(hot, CoolingCommand.free_cooling(0.05), 5)
        fast = predictor.predict(hot, CoolingCommand.free_cooling(0.15), 5)
        t_closed = float(closed.sensor_temps_c[-1].mean())
        t_slow = float(slow.sensor_temps_c[-1].mean())
        t_fast = float(fast.sensor_temps_c[-1].mean())
        assert t_fast < t_slow < t_closed + 0.5

    def test_fan_speed_monotone_cooling(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        hot = state(sensor_temps_c=[33.0] * 4, prev_sensor_temps_c=[33.0] * 4,
                    outside_temp_c=8.0)
        finals = []
        for speed in (0.1, 0.3, 0.6, 1.0):
            p = predictor.predict(hot, CoolingCommand.free_cooling(speed), 5)
            finals.append(float(p.sensor_temps_c[-1].mean()))
        assert finals == sorted(finals, reverse=True)


class TestTransitionHandling:
    def test_first_step_uses_transition_then_steady(self, cooling_model):
        """A regime change must not predict identically to steady state
        when a transition model exists for the pair."""
        predictor = CoolingPredictor(cooling_model)
        closed_state = state(mode=CoolingMode.CLOSED, fan_speed=0.0)
        from_closed = predictor.predict(
            closed_state, CoolingCommand.free_cooling(0.3), 1
        )
        fc_state = state(mode=CoolingMode.FREE_COOLING, fan_speed=0.3)
        steady = predictor.predict(fc_state, CoolingCommand.free_cooling(0.3), 1)
        # Both predict cooling, but via different learned models.
        assert from_closed.sensor_temps_c.shape == steady.sensor_temps_c.shape

    def test_longer_horizons_extend_trajectory(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        short = predictor.predict(state(), CoolingCommand.free_cooling(0.4), 2)
        long = predictor.predict(state(), CoolingCommand.free_cooling(0.4), 10)
        assert long.sensor_temps_c.shape[0] == 10
        assert np.allclose(
            short.sensor_temps_c, long.sensor_temps_c[:2], atol=1e-9
        )


class TestHumidityPrediction:
    def test_rh_trajectory_bounded(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        humid = state(inside_mixing_ratio=0.016, outside_mixing_ratio=0.018)
        p = predictor.predict(humid, CoolingCommand.free_cooling(0.8), 5)
        assert np.all(p.rh_pct >= 0.0)
        assert np.all(p.rh_pct <= 100.0)

    def test_dry_outside_air_flushes_humidity(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        humid = state(inside_mixing_ratio=0.014, outside_mixing_ratio=0.004)
        p = predictor.predict(humid, CoolingCommand.free_cooling(1.0), 5)
        dry_trend = p.rh_pct[-1] <= p.rh_pct[0] + 1e-9
        assert dry_trend


class TestEnergyAccounting:
    def test_energy_scales_with_horizon(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        e5 = predictor.predict(state(), CoolingCommand.free_cooling(0.5), 5)
        e10 = predictor.predict(state(), CoolingCommand.free_cooling(0.5), 10)
        assert e10.cooling_energy_kwh == pytest.approx(
            2.0 * e5.cooling_energy_kwh
        )

    def test_closed_energy_zero(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        p = predictor.predict(state(mode=CoolingMode.CLOSED, fan_speed=0.0),
                              CoolingCommand.closed(), 5)
        assert p.cooling_energy_kwh == 0.0
