"""The engine-eligibility decision matrix (repro.sim.eligibility).

One test per row of the cell-shape table in docs/EXPERIMENTS.md:
``decide_engine`` is the single place the lane/scalar/day-unfold
routing lives, and the ``experiments`` wrappers must agree with it.
"""

import dataclasses

import pytest

from repro.analysis import experiments
from repro.core.config import TemporalPolicy
from repro.core.versions import ALL_VERSIONS
from repro.faults import BUILTIN_SCENARIOS
from repro.sim.eligibility import EngineDecision, decide_engine

PLANTS = ("parasol", "chiller", "cooling_tower", "hybrid")


def faulted_config():
    config = ALL_VERSIONS["All-ND"]()
    return dataclasses.replace(
        config, faults=next(iter(BUILTIN_SCENARIOS.values()))
    )


class TestDecisionMatrix:
    """Cell shape -> (engine, day_unfold), first matching rule wins."""

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            decide_engine("baseline", "gpu")

    def test_scalar_request_wins_over_everything(self):
        for system in ("baseline", ALL_VERSIONS["All-ND"]()):
            decision = decide_engine(system, "scalar")
            assert decision.engine == "scalar"
            assert decision.day_unfold is False

    def test_baseline_rides_lanes_and_unfolds(self):
        assert decide_engine("baseline") == EngineDecision("lanes", True)
        assert decide_engine("baseline", "lanes") == (
            EngineDecision("lanes", True)
        )

    def test_standard_coolair_config_rides_lanes_and_unfolds(self):
        decision = decide_engine(ALL_VERSIONS["All-ND"]())
        assert decision.engine == "lanes"
        assert decision.day_unfold is True
        assert decision.reason == ""

    def test_every_plant_rides_lanes(self):
        """The plant no longer changes the decision (PR 10)."""
        for plant in PLANTS:
            for system in ("baseline", ALL_VERSIONS["All-ND"]()):
                decision = decide_engine(system, plant=plant)
                assert decision == EngineDecision("lanes", True)

    def test_exotic_timing_falls_back_to_scalar(self):
        config = ALL_VERSIONS["All-ND"]()
        config.model_step_s = 60.0
        decision = decide_engine(config)
        assert decision.engine == "scalar"
        assert decision.day_unfold is False
        assert "timing" in decision.reason

        config = ALL_VERSIONS["All-ND"]()
        config.control_period_s = 300.0
        assert decide_engine(config).engine == "scalar"

    def test_faulted_config_falls_back_to_scalar(self):
        decision = decide_engine(faulted_config())
        assert decision.engine == "scalar"
        assert decision.day_unfold is False
        assert "fault" in decision.reason

    def test_faulted_plant_cell_stays_scalar(self):
        """Fault schedules beat the plant's lane eligibility."""
        for plant in ("chiller", "cooling_tower", "hybrid"):
            assert decide_engine(faulted_config(), plant=plant).engine == (
                "scalar"
            )

    def test_deferrable_rides_lanes_but_never_unfolds(self):
        decision = decide_engine("baseline", deferrable=True)
        assert decision.engine == "lanes"
        assert decision.day_unfold is False

    def test_temporal_scheduling_rides_lanes_but_never_unfolds(self):
        config = ALL_VERSIONS["All-DEF"]()
        assert config.temporal is not TemporalPolicy.NONE
        decision = decide_engine(config)
        assert decision.engine == "lanes"
        assert decision.day_unfold is False


class TestExperimentsWrappersDelegate:
    """effective_engine / day_unfold_eligible restate nothing."""

    def test_effective_engine_matches_decision(self):
        for system in ("baseline", "All-ND", "All-DEF"):
            resolved, _ = experiments._resolve_system(system)
            for engine in ("lanes", "scalar"):
                for plant in PLANTS:
                    assert experiments.effective_engine(
                        system, engine, plant=plant
                    ) == decide_engine(resolved, engine, plant=plant).engine

    def test_day_unfold_eligible_matches_decision(self):
        for system in ("baseline", "All-ND", "All-DEF"):
            resolved, _ = experiments._resolve_system(system)
            for deferrable in (False, True):
                assert experiments.day_unfold_eligible(
                    system, deferrable=deferrable
                ) == decide_engine(resolved, deferrable=deferrable).day_unfold

    def test_day_unfold_ineligible_under_scalar_request(self):
        assert not experiments.day_unfold_eligible(
            "baseline", engine="scalar"
        )
