"""Artifact-store tests (repro.artifacts): round-trips, mmap serving,
corruption recovery, schema-version eviction, and the disabled fallback."""

import os
import pickle

import numpy as np
import pytest

from repro import artifacts
from repro.faults import LogGapFault
from repro.weather.locations import NAMED_LOCATIONS
from repro.weather.tmy import HOURS_PER_YEAR, generate_tmy
from repro.workload.traces import FacebookTraceGenerator

NEWARK = NAMED_LOCATIONS["Newark"]


@pytest.fixture()
def store(tmp_path, monkeypatch):
    """A fresh store directory with clean per-process caches."""
    store_dir = tmp_path / "artifacts"
    monkeypatch.setenv("REPRO_ARTIFACTS_DIR", str(store_dir))
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    monkeypatch.setattr(artifacts, "_tmy_cache", {})
    monkeypatch.setattr(artifacts, "_swept_dirs", set())
    return store_dir


def assert_series_equal(served, generated):
    assert np.array_equal(np.asarray(served._temps_c), generated._temps_c)
    assert np.array_equal(
        np.asarray(served._mixing_ratios), generated._mixing_ratios
    )
    assert np.array_equal(np.asarray(served._rh_pct), generated._rh_pct)


class TestWeather:
    def test_roundtrip_bit_identical(self, store):
        served = artifacts.tmy_series(NEWARK)
        assert_series_equal(served, generate_tmy(NEWARK))
        assert artifacts.weather_path(NEWARK).exists()

    def test_served_from_mmap(self, store):
        served = artifacts.tmy_series(NEWARK)
        # Row views of the mmapped (3, 8760) stack, not in-heap copies.
        assert isinstance(served._temps_c.base, np.memmap)
        assert served._temps_c.shape == (HOURS_PER_YEAR,)

    def test_process_cache_returns_same_object(self, store):
        assert artifacts.tmy_series(NEWARK) is artifacts.tmy_series(NEWARK)

    def test_second_load_never_regenerates(self, store, monkeypatch):
        artifacts.tmy_series(NEWARK)
        generated = generate_tmy(NEWARK)
        artifacts._tmy_cache.clear()
        monkeypatch.setattr(
            artifacts,
            "generate_tmy",
            lambda climate: pytest.fail("store hit must not regenerate"),
        )
        assert_series_equal(artifacts.tmy_series(NEWARK), generated)

    def test_corrupt_entry_recovered(self, store):
        path = artifacts.weather_path(NEWARK)
        artifacts.tmy_series(NEWARK)
        path.write_bytes(b"not a numpy file at all")
        artifacts._tmy_cache.clear()
        assert_series_equal(artifacts.tmy_series(NEWARK), generate_tmy(NEWARK))
        # The corrupt entry was evicted and rewritten with valid contents.
        reloaded = np.load(path, mmap_mode="r", allow_pickle=False)
        assert reloaded.shape == (3, HOURS_PER_YEAR)

    def test_truncated_entry_recovered(self, store):
        path = artifacts.weather_path(NEWARK)
        artifacts.tmy_series(NEWARK)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        artifacts._tmy_cache.clear()
        assert_series_equal(artifacts.tmy_series(NEWARK), generate_tmy(NEWARK))

    def test_wrong_shape_entry_recovered(self, store):
        path = artifacts.weather_path(NEWARK)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.save(path, np.zeros((2, 5)))
        assert_series_equal(artifacts.tmy_series(NEWARK), generate_tmy(NEWARK))

    def test_disabled_store_writes_nothing(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        served = artifacts.tmy_series(NEWARK)
        assert_series_equal(served, generate_tmy(NEWARK))
        assert not store.exists()


class TestSchemaVersion:
    def test_stale_versions_evicted_on_write(self, store):
        store.mkdir(parents=True)
        stale = store / "tmy-Old-abc123-v0.npy"
        stale.write_bytes(b"stale generation")
        current_looking = store / f"model-Keep-x-y-cz-v{artifacts.STORE_SCHEMA_VERSION}.pkl"
        current_looking.write_bytes(b"current generation")
        unrelated = store / "README.txt"
        unrelated.write_text("not an artifact")
        artifacts.tmy_series(NEWARK)
        assert not stale.exists()
        assert current_looking.exists()
        assert unrelated.exists()

    def test_mismatched_version_never_served(self, store, monkeypatch):
        artifacts.tmy_series(NEWARK)
        artifacts._tmy_cache.clear()
        monkeypatch.setattr(artifacts, "STORE_SCHEMA_VERSION", 99)
        # The v1 entry is invisible under schema 99: a fresh entry is
        # generated and written under the new version token.
        served = artifacts.tmy_series(NEWARK)
        assert_series_equal(served, generate_tmy(NEWARK))
        assert artifacts.weather_path(NEWARK).name.endswith("-v99.npy")
        assert artifacts.weather_path(NEWARK).exists()


class TestTraces:
    @pytest.mark.parametrize("deferrable", [False, True])
    def test_roundtrip_field_for_field(self, store, deferrable):
        params = {"num_jobs": 50, "seed": 42, "deferrable": deferrable}
        build = lambda: FacebookTraceGenerator(num_jobs=50).generate(
            deferrable=deferrable
        )
        first = artifacts.materialize_trace("facebook", params, build)
        second = artifacts.materialize_trace(
            "facebook",
            params,
            lambda: pytest.fail("store hit must not rebuild"),
        )
        assert second.name == first.name == "facebook"
        assert second.jobs == build().jobs
        if deferrable:
            assert any(job.deadline_s is not None for job in second.jobs)
        else:
            assert all(job.deadline_s is None for job in second.jobs)

    def test_corrupt_trace_recovered(self, store):
        params = {"num_jobs": 20, "seed": 42}
        build = lambda: FacebookTraceGenerator(num_jobs=20).generate()
        artifacts.materialize_trace("facebook", params, build)
        artifacts.trace_path("facebook", params).write_bytes(b"garbage")
        recovered = artifacts.materialize_trace("facebook", params, build)
        assert recovered.jobs == build().jobs

    def test_different_params_different_entries(self, store):
        a = artifacts.trace_path("facebook", {"num_jobs": 10})
        b = artifacts.trace_path("facebook", {"num_jobs": 20})
        assert a != b


class TestModels:
    def test_roundtrip(self, store):
        gaps = (LogGapFault(drop_mode="free_cooling"),)
        payload = {"weights": [1.0, 2.0], "gapped": True}
        artifacts.save_model(NEWARK, (5, 40), gaps, payload)
        assert artifacts.load_model(NEWARK, (5, 40), gaps) == payload
        # Distinct gap keys never collide.
        assert artifacts.load_model(NEWARK, (5, 40), ()) is None

    def test_corrupt_pickle_evicted(self, store):
        artifacts.save_model(NEWARK, (5,), (), {"ok": 1})
        path = artifacts.model_path(NEWARK, (5,), ())
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        assert artifacts.load_model(NEWARK, (5,), ()) is None
        assert not path.exists()

    def test_code_fingerprint_in_key(self, store, monkeypatch):
        artifacts.save_model(NEWARK, (5,), (), {"ok": 1})
        monkeypatch.setattr(artifacts, "_code_fingerprint", "0" * 12)
        # A different simulation-source hash addresses a different file.
        assert artifacts.load_model(NEWARK, (5,), ()) is None

    def test_disabled_store(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        artifacts.save_model(NEWARK, (5,), (), {"ok": 1})
        assert artifacts.load_model(NEWARK, (5,), ()) is None
        assert not store.exists()


class TestAtomicity:
    def test_no_temp_files_left_behind(self, store):
        artifacts.tmy_series(NEWARK)
        artifacts.materialize_trace(
            "facebook",
            {"num_jobs": 10},
            lambda: FacebookTraceGenerator(num_jobs=10).generate(),
        )
        artifacts.save_model(NEWARK, (5,), (), {"ok": 1})
        leftovers = [p.name for p in store.iterdir() if ".tmp" in p.name]
        assert leftovers == []
