"""TKS controller and extended-baseline tests (Sections 4.1 and 5.1)."""

import pytest

from repro.cooling.baseline import BaselineController
from repro.cooling.regimes import CoolingMode
from repro.cooling.tks import TKSConfig, TKSController
from repro.errors import ConfigError


class TestTKSModes:
    def test_lot_mode_below_setpoint(self):
        tks = TKSController()
        command = tks.decide(control_temp_c=23.0, outside_temp_c=15.0)
        assert not tks.in_hot_mode
        assert command.mode is CoolingMode.FREE_COOLING

    def test_hot_mode_above_setpoint(self):
        tks = TKSController()
        command = tks.decide(control_temp_c=27.0, outside_temp_c=30.0)
        assert tks.in_hot_mode
        assert command.mode is CoolingMode.AC_ON

    def test_hysteresis_prevents_flapping(self):
        tks = TKSController()
        tks.decide(27.0, 30.0)  # enter HOT
        assert tks.in_hot_mode
        # Outside drops to just below SP but within hysteresis: stay HOT.
        tks.decide(27.0, 24.5)
        assert tks.in_hot_mode
        # Outside well below SP - hysteresis: back to LOT.
        tks.decide(27.0, 23.0)
        assert not tks.in_hot_mode

    def test_closes_when_inside_cold(self):
        tks = TKSController()
        command = tks.decide(control_temp_c=18.0, outside_temp_c=10.0)
        assert command.mode is CoolingMode.CLOSED


class TestTKSFanSpeed:
    def test_fan_faster_when_temps_close(self):
        tks = TKSController()
        near = tks.decide(24.0, 23.0)
        tks2 = TKSController()
        far = tks2.decide(24.0, 10.0)
        assert near.fc_fan_speed > far.fc_fan_speed

    def test_fan_never_below_minimum(self):
        tks = TKSController()
        command = tks.decide(24.0, -20.0)
        assert command.fc_fan_speed >= 0.15

    def test_outside_warmer_runs_full_speed(self):
        tks = TKSController()
        command = tks.decide(24.0, 24.5)
        assert command.fc_fan_speed == 1.0


class TestACCycling:
    def test_compressor_cycles_between_sp_minus_2_and_sp(self):
        tks = TKSController()
        tks.decide(26.0, 30.0)  # HOT mode, above SP: compressor on
        assert tks._compressor_on
        command = tks.decide(22.5, 30.0)  # below SP - 2: compressor stops
        assert command.mode is CoolingMode.AC_FAN
        command = tks.decide(24.0, 30.0)  # between: stays off
        assert command.mode is CoolingMode.AC_FAN
        command = tks.decide(25.5, 30.0)  # above SP: restarts
        assert command.mode is CoolingMode.AC_ON


class TestTKSConfig:
    def test_rejects_bad_band(self):
        with pytest.raises(ConfigError):
            TKSConfig(band_c=0.0)

    def test_setpoint_setter(self):
        tks = TKSController()
        tks.set_setpoint(30.0)
        assert tks.config.setpoint_c == 30.0


class TestBaseline:
    def test_default_setpoint_is_30(self):
        assert BaselineController().setpoint_c == 30.0

    def test_passes_through_when_humidity_ok(self):
        baseline = BaselineController()
        command = baseline.decide(
            control_temp_c=28.0,
            outside_temp_c=20.0,
            cold_aisle_rh_pct=50.0,
            outside_rh_pct=60.0,
        )
        assert command.mode is CoolingMode.FREE_COOLING

    def test_humid_outside_air_closes_container(self):
        baseline = BaselineController()
        command = baseline.decide(
            control_temp_c=28.0,
            outside_temp_c=20.0,
            cold_aisle_rh_pct=85.0,
            outside_rh_pct=90.0,
        )
        assert command.mode is CoolingMode.CLOSED

    def test_humid_and_hot_falls_back_to_ac(self):
        baseline = BaselineController()
        command = baseline.decide(
            control_temp_c=30.5,
            outside_temp_c=26.0,
            cold_aisle_rh_pct=85.0,
            outside_rh_pct=90.0,
        )
        assert command.mode is CoolingMode.AC_ON

    def test_humid_inside_but_dry_outside_keeps_free_cooling(self):
        """Dry outside air flushes the humidity out: keep free cooling."""
        baseline = BaselineController()
        command = baseline.decide(
            control_temp_c=28.0,
            outside_temp_c=20.0,
            cold_aisle_rh_pct=85.0,
            outside_rh_pct=40.0,
        )
        assert command.mode is CoolingMode.FREE_COOLING
