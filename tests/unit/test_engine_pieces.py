"""Simulation-engine unit tests: setups, workload drivers, adapters."""

import numpy as np
import pytest

from repro.cooling.units import AbruptCoolingUnits, SmoothCoolingUnits
from repro.datacenter.server import PowerState
from repro.errors import ConfigError
from repro.sim.engine import (
    BaselineAdapter,
    ClusterWorkload,
    DayRunner,
    ProfileWorkload,
    SimSetup,
    make_realsim,
    make_smoothsim,
)
from repro.weather.locations import NEWARK
from repro.workload.traces import FacebookTraceGenerator


class TestSetupFactories:
    def test_realsim_uses_abrupt_units(self):
        setup = make_realsim(NEWARK)
        assert isinstance(setup.units, AbruptCoolingUnits)
        assert not setup.smooth_hardware

    def test_smoothsim_uses_smooth_units(self):
        setup = make_smoothsim(NEWARK)
        assert isinstance(setup.units, SmoothCoolingUnits)
        assert setup.smooth_hardware

    def test_covering_subset_marked(self):
        setup = make_realsim(NEWARK)
        subset = [s for s in setup.layout.all_servers() if s.in_covering_subset]
        assert len(subset) == 8

    def test_forecast_bias_installed(self):
        setup = make_realsim(NEWARK, forecast_bias_c=5.0)
        assert setup.forecast.bias_c == 5.0

    def test_control_period_must_divide(self):
        setup = make_realsim(NEWARK)
        with pytest.raises(ConfigError):
            SimSetup(
                climate=setup.climate,
                tmy=setup.tmy,
                layout=setup.layout,
                plant=setup.plant,
                units=setup.units,
                forecast=setup.forecast,
                model_step_s=120,
                control_period_s=500,
            )


class TestProfileWorkload:
    @pytest.fixture()
    def workload(self, facebook_trace, layout):
        return ProfileWorkload(facebook_trace, layout, 600.0)

    def test_demand_wraps_around_day(self, workload):
        assert workload.demanded_servers(0) == workload.demanded_servers(144)

    def test_step_sets_utilization_on_active_only(self, workload, layout):
        for server in layout.all_servers()[32:]:
            server.in_covering_subset = False
            server.sleep()
        workload.step(120.0, 12 * 3600.0, None)
        actives = [s for s in layout.all_servers() if s.state is PowerState.ACTIVE]
        sleepers = [s for s in layout.all_servers() if s.state is PowerState.SLEEP]
        assert all(s.utilization >= 0.0 for s in actives)
        assert all(s.utilization == 0.0 for s in sleepers)

    def test_begin_day_resets_deferrals(self, layout):
        trace = FacebookTraceGenerator(num_jobs=30).generate(deferrable=True)
        workload = ProfileWorkload(trace, layout, 600.0)
        trace.jobs[0].defer_to(trace.jobs[0].arrival_s + 3600.0)
        workload.begin_day()
        assert trace.jobs[0].scheduled_start_s is None

    def test_rebuild_reflects_deferral(self, layout):
        trace = FacebookTraceGenerator(num_jobs=30).generate(deferrable=True)
        workload = ProfileWorkload(trace, layout, 600.0)
        before = workload.profile.busy_slot_seconds.copy()
        for job in trace.jobs:
            job.defer_to(min(job.deadline_s, job.arrival_s + 4 * 3600.0))
        workload.rebuild()
        after = workload.profile.busy_slot_seconds
        assert not np.array_equal(before, after)


class TestClusterWorkload:
    def test_demand_tracks_cluster(self, facebook_trace, layout):
        workload = ClusterWorkload(facebook_trace, layout)
        initial = workload.demanded_servers(0)
        workload.step(600.0, 0.0, None)
        assert workload.demanded_servers(0) >= 0
        assert initial >= 0

    def test_begin_day_resets_cluster(self, facebook_trace, layout):
        workload = ClusterWorkload(facebook_trace, layout)
        workload.step(3600.0, 0.0, None)
        done_before = workload.cluster.jobs_finished
        workload.begin_day()
        assert workload.cluster.jobs_finished == 0
        assert done_before >= 0


class TestBaselineAdapter:
    def test_start_day_wakes_everyone(self, facebook_trace):
        setup = make_realsim(NEWARK)
        for server in setup.layout.all_servers()[10:20]:
            server.in_covering_subset = False
            server.sleep()
        runner = DayRunner(
            setup, ProfileWorkload(facebook_trace, setup.layout, 600.0),
            BaselineAdapter(),
        )
        BaselineAdapter().start_day(runner, 0)
        assert all(
            s.state is PowerState.ACTIVE for s in setup.layout.all_servers()
        )

    def test_control_reads_high_recirc_sensor(self, facebook_trace):
        setup = make_realsim(NEWARK)
        setup.layout.observe([20.0, 20.0, 20.0, 29.0], 50.0, 25.0, 60.0)
        adapter = BaselineAdapter()
        runner = DayRunner(
            setup, ProfileWorkload(facebook_trace, setup.layout, 600.0), adapter
        )
        adapter.control(runner)
        # Control temp 29 with SP=30 and outside 25 -> free cooling (LOT).
        assert setup.units.fc_fan_speed > 0.0
