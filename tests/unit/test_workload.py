"""Workload substrate tests: jobs, traces, demand profiles, covering subset."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datacenter.server import Server
from repro.errors import WorkloadError
from repro.workload.covering import covering_subset
from repro.workload.job import Job
from repro.workload.profile import build_demand_profile
from repro.workload.traces import (
    FacebookTraceGenerator,
    NutchTraceGenerator,
    SECONDS_PER_DAY,
    Trace,
)


def simple_job(job_id=0, arrival=0.0, maps=4, map_s=100.0, reduces=1, red_s=50.0, **kw):
    return Job(
        job_id=job_id,
        arrival_s=arrival,
        num_maps=maps,
        map_duration_s=map_s,
        num_reduces=reduces,
        reduce_duration_s=red_s,
        **kw,
    )


class TestJob:
    def test_work_accounting(self):
        job = simple_job(maps=4, map_s=100.0, reduces=2, red_s=50.0)
        assert job.map_work_s == 400.0
        assert job.reduce_work_s == 100.0
        assert job.total_work_s == 500.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            simple_job(maps=0)
        with pytest.raises(WorkloadError):
            simple_job(map_s=0.0)
        with pytest.raises(WorkloadError):
            simple_job(arrival=-1.0)
        with pytest.raises(WorkloadError):
            Job(0, 100.0, 1, 10.0, 0, 0.0, deadline_s=50.0)

    def test_deferral_rules(self):
        job = simple_job(arrival=1000.0, deadline_s=5000.0)
        assert job.is_deferrable
        job.defer_to(3000.0)
        assert job.effective_start_s == 3000.0
        with pytest.raises(WorkloadError):
            job.defer_to(6000.0)  # beyond deadline
        with pytest.raises(WorkloadError):
            job.defer_to(500.0)  # before arrival

    def test_non_deferrable_refuses_deferral(self):
        job = simple_job()
        assert not job.is_deferrable
        with pytest.raises(WorkloadError):
            job.defer_to(100.0)


class TestFacebookTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return FacebookTraceGenerator(num_jobs=800, seed=1).generate()

    def test_job_count(self, trace):
        assert len(trace) == 800

    def test_arrivals_sorted_within_day(self, trace):
        arrivals = [j.arrival_s for j in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < SECONDS_PER_DAY for a in arrivals)

    def test_paper_shape_ranges(self, trace):
        maps = [j.num_maps for j in trace]
        reduces = [j.num_reduces for j in trace]
        assert min(maps) >= 2 and max(maps) <= 1190
        assert min(reduces) >= 1 and max(reduces) <= 63
        # Heavy tail: median far below max.
        assert np.median(maps) < 0.15 * max(maps)

    def test_rescaled_to_target_utilization(self, trace):
        util = trace.average_utilization(num_servers=64)
        assert util == pytest.approx(0.27, abs=0.03)

    def test_deterministic(self):
        a = FacebookTraceGenerator(num_jobs=50, seed=5).generate()
        b = FacebookTraceGenerator(num_jobs=50, seed=5).generate()
        assert [j.num_maps for j in a] == [j.num_maps for j in b]

    def test_deferrable_variant_sets_deadlines(self):
        trace = FacebookTraceGenerator(num_jobs=20).generate(deferrable=True)
        assert all(j.deadline_s == j.arrival_s + 6 * 3600 for j in trace)

    def test_deferrable_copy(self, trace):
        deferred = trace.deferrable_copy()
        assert all(j.is_deferrable for j in deferred)
        assert not any(j.is_deferrable for j in trace)


class TestNutchTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return NutchTraceGenerator(num_jobs=2000, seed=2).generate()

    def test_fixed_shape(self, trace):
        assert all(j.num_maps == 42 for j in trace)
        assert all(j.num_reduces == 1 for j in trace)
        # Durations are rescaled to the paper's reported 32% utilization,
        # so the 15-40s map range stretches by the common scale factor.
        durations = [j.map_duration_s for j in trace]
        assert max(durations) / min(durations) == pytest.approx(40.0 / 15.0, rel=0.1)
        reduces = {j.reduce_duration_s for j in trace}
        assert len(reduces) == 1  # all reduces share one scaled duration

    def test_poisson_interarrivals(self, trace):
        arrivals = np.array([j.arrival_s for j in trace])
        gaps = np.diff(arrivals)
        gaps = gaps[gaps > 0]
        assert np.mean(gaps) == pytest.approx(40.0, rel=0.15)

    def test_utilization_higher_than_facebook(self, trace):
        # Paper: Nutch ~32% vs Facebook ~27%.
        assert trace.average_utilization(64) == pytest.approx(0.32, abs=0.02)
        fb = FacebookTraceGenerator(num_jobs=400, seed=1).generate()
        assert trace.average_utilization(64) > fb.average_utilization(64)


class TestTraceValidation:
    def test_rejects_unsorted_jobs(self):
        jobs = [simple_job(0, arrival=100.0), simple_job(1, arrival=50.0)]
        with pytest.raises(WorkloadError):
            Trace("bad", jobs)


class TestDemandProfile:
    def test_conserves_work(self):
        trace = FacebookTraceGenerator(num_jobs=200, seed=4).generate()
        profile = build_demand_profile(trace)
        executed = float(np.sum(profile.busy_slot_seconds))
        # All work that fits in the day is executed (small spill past
        # midnight is possible for late arrivals).
        assert executed <= trace.total_work_s + 1e-6
        assert executed >= 0.85 * trace.total_work_s

    def test_demand_bounded_by_cluster(self):
        trace = FacebookTraceGenerator(num_jobs=500, seed=5).generate()
        profile = build_demand_profile(trace, num_servers=64)
        assert profile.demanded_servers.max() <= 64
        assert profile.utilization.max() <= 1.0

    def test_no_demand_before_first_arrival(self):
        job = simple_job(arrival=12 * 3600.0)
        trace = Trace("one", [job])
        profile = build_demand_profile(trace)
        assert profile.busy_slot_seconds[:71].sum() == 0.0
        assert profile.busy_slot_seconds.sum() > 0.0

    def test_deferral_moves_demand(self):
        job = simple_job(arrival=3600.0, maps=64, map_s=600.0,
                         deadline_s=8 * 3600.0)
        trace = Trace("one", [job])
        before = build_demand_profile(trace)
        job.defer_to(7 * 3600.0)
        after = build_demand_profile(trace)
        first_busy_before = int(np.argmax(before.busy_slot_seconds > 0))
        first_busy_after = int(np.argmax(after.busy_slot_seconds > 0))
        assert first_busy_after > first_busy_before

    def test_parallelism_cap_limits_rate(self):
        # One job with a single map task can use at most 1 slot.
        job = simple_job(arrival=0.0, maps=1, map_s=3600.0, reduces=0, red_s=0.0)
        profile = build_demand_profile(Trace("one", [job]), interval_s=600.0)
        assert profile.busy_slot_seconds.max() <= 600.0 + 1e-6

    def test_server_utilization_bounds(self):
        trace = FacebookTraceGenerator(num_jobs=100, seed=6).generate()
        profile = build_demand_profile(trace)
        for i in range(profile.num_intervals):
            assert 0.0 <= profile.server_utilization(i) <= 1.0

    def test_rejects_bad_interval(self):
        trace = Trace("empty", [])
        with pytest.raises(WorkloadError):
            build_demand_profile(trace, interval_s=0.0)


class TestCoveringSubset:
    def test_size_from_dataset(self):
        servers = [Server(i, 0) for i in range(64)]
        subset = covering_subset(servers, dataset_gb=1500.0, disk_capacity_gb=250.0)
        # 1500 GB over 187.5 usable GB per disk = 8 servers.
        assert len(subset) == 8
        assert all(s.in_covering_subset for s in subset)
        assert sum(s.in_covering_subset for s in servers) == 8

    def test_lowest_ids_chosen(self):
        servers = [Server(i, 0) for i in range(16)]
        subset = covering_subset(servers, dataset_gb=400.0)
        assert [s.server_id for s in subset] == [0, 1, 2]

    def test_subset_members_woken_up(self):
        servers = [Server(i, 0) for i in range(8)]
        for s in servers:
            s.sleep()
        subset = covering_subset(servers, dataset_gb=200.0)
        assert all(s.is_on for s in subset)

    def test_capped_at_cluster_size(self):
        servers = [Server(i, 0) for i in range(4)]
        subset = covering_subset(servers, dataset_gb=1e6)
        assert len(subset) == 4

    def test_remarking_clears_old_flags(self):
        servers = [Server(i, 0) for i in range(8)]
        covering_subset(servers, dataset_gb=1000.0)
        covering_subset(servers, dataset_gb=100.0)
        assert sum(s.in_covering_subset for s in servers) == 1

    def test_validation(self):
        with pytest.raises(Exception):
            covering_subset([], dataset_gb=100.0)
