"""CampaignSpec validation, expansion, and wire-form round trips.

The load-bearing property is cell-for-cell equality with the one-shot
entry points: a spec's expansion must produce the same cache keys as
``experiments.five_location_matrix`` / ``world_sweep`` would, because
those keys are the service's dedupe identity and what makes service-run
and CLI-run campaigns share one result cache.
"""

import pytest

from repro.analysis.experiments import DEFAULT_WORLD_LOCATIONS
from repro.core.coolair import CoolAirConfig
from repro.faults import BUILTIN_SCENARIOS
from repro.service.jobs import task_cache_key, task_descriptor
from repro.service.spec import CampaignSpec, CellSpec, SpecError
from repro.weather.locations import NAMED_LOCATIONS


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown campaign kind"):
            CampaignSpec(kind="bogus")

    def test_matrix_needs_systems(self):
        with pytest.raises(SpecError, match="at least one system"):
            CampaignSpec(kind="matrix")

    def test_cells_needs_cells(self):
        with pytest.raises(SpecError, match="at least one cell"):
            CampaignSpec(kind="cells")

    def test_unknown_workload(self):
        with pytest.raises(SpecError, match="unknown workload"):
            CampaignSpec(kind="world", workload="hadoop")

    def test_bad_world_size(self):
        with pytest.raises(SpecError, match=">= 1"):
            CampaignSpec(kind="world", locations=0)

    def test_bad_stride(self):
        with pytest.raises(SpecError, match="sample_every_days"):
            CampaignSpec(kind="world", sample_every_days=0)

    def test_unknown_system_rejected_at_expand(self):
        spec = CampaignSpec(kind="matrix", systems=("bogus",))
        with pytest.raises(SpecError, match="unknown system"):
            spec.expand()

    def test_faults_reject_baseline(self):
        spec = CampaignSpec(
            kind="faults", system="baseline", scenarios=("sensor-stuck",)
        )
        with pytest.raises(SpecError, match="CoolAir system"):
            spec.expand()

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            CampaignSpec.from_json({"kind": "world", "surprise": 1})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(SpecError, match="JSON object"):
            CampaignSpec.from_json(["matrix"])


class TestExpansion:
    def test_matrix_mirrors_five_location_matrix(self):
        spec = CampaignSpec(
            kind="matrix", systems=("baseline", "All-DEF"), sample_every_days=183
        )
        tasks = spec.expand()
        assert len(tasks) == 2 * len(NAMED_LOCATIONS)
        # All-DEF runs the deferrable trace, exactly as the one-shot
        # matrix does; baseline does not.
        by_system = {}
        for task in tasks:
            by_system.setdefault(task.system, []).append(task)
        assert all(not t.deferrable for t in by_system["baseline"])
        assert all(t.deferrable for t in by_system["All-DEF"])

    def test_matrix_keys_match_one_shot_cache_keys(self):
        from repro.analysis import experiments
        from repro.analysis.runner import YearTask

        spec = CampaignSpec(kind="matrix", systems=("baseline",))
        spec_keys = {task_cache_key(t) for t in spec.expand()}
        direct_keys = {
            experiments.cache_key(
                "baseline", climate, "facebook", False, None, 0.0
            )
            for climate in NAMED_LOCATIONS.values()
        }
        assert spec_keys == direct_keys
        assert len(spec_keys) == len(spec.expand())  # all distinct
        assert all(isinstance(t, YearTask) for t in spec.expand())

    def test_world_pairs_baseline_with_coolair(self):
        spec = CampaignSpec(kind="world", locations=4)
        tasks = spec.expand()
        assert len(tasks) == 8
        systems = [
            t.system if isinstance(t.system, str) else t.system.name
            for t in tasks
        ]
        assert systems[::2] == ["baseline"] * 4
        assert systems[1::2] == ["All-ND"] * 4
        assert len(list(spec.world_climates())) == 4

    def test_world_defaults(self):
        spec = CampaignSpec(kind="world")
        assert len(spec.expand()) == 2 * DEFAULT_WORLD_LOCATIONS

    def test_faults_expand_to_configured_systems(self):
        spec = CampaignSpec(
            kind="faults", system="All-ND", scenarios=("sensor-stuck",)
        )
        tasks = spec.expand()
        assert len(tasks) == 1
        config = tasks[0].system
        assert isinstance(config, CoolAirConfig)
        assert config.faults is not None

    def test_faults_default_to_all_builtin_scenarios(self):
        spec = CampaignSpec(kind="faults")
        assert len(spec.expand()) == len(BUILTIN_SCENARIOS)

    def test_cells_kind(self):
        spec = CampaignSpec(
            kind="cells",
            cells=(
                CellSpec(system="baseline", location="Newark"),
                CellSpec(system="All-ND", location="Chad", faults="sensor-stuck"),
            ),
        )
        tasks = spec.expand()
        assert tasks[0].system == "baseline"
        assert isinstance(tasks[1].system, CoolAirConfig)

    def test_cell_unknown_location(self):
        spec = CampaignSpec(
            kind="cells", cells=(CellSpec(system="baseline", location="Atlantis"),)
        )
        with pytest.raises(SpecError, match="Atlantis"):
            spec.expand()


class TestWireForm:
    @pytest.mark.parametrize(
        "spec",
        [
            CampaignSpec(kind="matrix", systems=("baseline", "All-ND")),
            CampaignSpec(kind="world", locations=6, coolair_system="Energy"),
            CampaignSpec(
                kind="faults",
                system="All-ND",
                location="Chad",
                scenarios=("sensor-stuck",),
                sample_every_days=91,
            ),
            CampaignSpec(
                kind="cells",
                cells=(CellSpec(system="baseline", location="Newark"),),
            ),
        ],
    )
    def test_roundtrip_preserves_expansion(self, spec):
        clone = CampaignSpec.from_json(spec.to_json())
        assert [task_cache_key(t) for t in clone.expand()] == [
            task_cache_key(t) for t in spec.expand()
        ]
        assert clone.describe() == spec.describe()

    def test_descriptor_reports_faults(self):
        spec = CampaignSpec(kind="faults", scenarios=("sensor-stuck",))
        desc = task_descriptor(spec.expand()[0])
        assert desc["system"] == "All-ND"
        assert desc["faulted"] is True
        plain = task_descriptor(
            CampaignSpec(kind="matrix", systems=("baseline",)).expand()[0]
        )
        assert plain["faulted"] is None
        assert plain["label"]


class TestScreeningFields:
    def test_grid_points_overrides_locations(self):
        spec = CampaignSpec(kind="world", locations=24, grid_points=120)
        assert spec.world_grid_points() == 120

    def test_locations_fallback(self):
        spec = CampaignSpec(kind="world", locations=24)
        assert spec.world_grid_points() == 24

    def test_default_world_size(self):
        spec = CampaignSpec(kind="world")
        assert spec.world_grid_points() == DEFAULT_WORLD_LOCATIONS

    def test_bad_grid_points(self):
        with pytest.raises(SpecError, match=">= 1"):
            CampaignSpec(kind="world", grid_points=0)

    def test_bad_screen_mode(self):
        with pytest.raises(SpecError, match="unknown screen mode"):
            CampaignSpec(kind="world", screen="auto")

    def test_world_json_roundtrip_carries_screen(self):
        spec = CampaignSpec(kind="world", grid_points=120, screen="on")
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone.grid_points == 120
        assert clone.screen == "on"
        assert clone == spec

    def test_describe_marks_screened_sweeps(self):
        screened = CampaignSpec(kind="world", grid_points=120, screen="on")
        plain = CampaignSpec(kind="world", grid_points=120)
        assert "screened" in screened.describe()
        assert "screened" not in plain.describe()

    def test_grid_points_change_cache_keys(self):
        # Cache keys follow the coordinate-encoded climate names: two
        # densities share keys exactly where their lattices coincide,
        # and nowhere else — same physical cell, one cache entry.
        from repro.weather.locations import world_grid

        coarse = CampaignSpec(kind="world", grid_points=24, sample_every_days=365)
        dense = CampaignSpec(kind="world", grid_points=120, sample_every_days=365)
        coarse_keys = {task_cache_key(t) for t in coarse.expand()}
        dense_keys = {task_cache_key(t) for t in dense.expand()}
        shared_names = {c.name for c in world_grid(24)} & {
            c.name for c in world_grid(120)
        }
        # Two cells (baseline + CoolAir) per shared coordinate.
        assert len(coarse_keys & dense_keys) == 2 * len(shared_names)
        assert coarse_keys != dense_keys


class TestPlantField:
    def test_default_plant_omitted_from_wire_form(self):
        spec = CampaignSpec(kind="world", grid_points=24)
        assert "plant" not in spec.to_json()
        assert all(t.plant == "parasol" for t in spec.expand())

    def test_unknown_plant_rejected(self):
        with pytest.raises(SpecError, match="unknown cooling plant"):
            CampaignSpec(kind="world", plant="swamp_cooler")

    def test_plant_stamped_on_every_cell(self):
        spec = CampaignSpec(
            kind="matrix", systems=("baseline", "All-ND"), plant="chiller"
        )
        assert all(t.plant == "chiller" for t in spec.expand())

    def test_plant_roundtrip_and_describe(self):
        spec = CampaignSpec(kind="world", grid_points=24, plant="cooling_tower")
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone == spec
        assert "cooling_tower" in spec.describe()
        assert "parasol" not in CampaignSpec(kind="world").describe()

    def test_plant_changes_cache_keys(self):
        base = CampaignSpec(kind="world", grid_points=24, sample_every_days=365)
        chiller = CampaignSpec(
            kind="world", grid_points=24, sample_every_days=365, plant="chiller"
        )
        base_keys = {task_cache_key(t) for t in base.expand()}
        chiller_keys = {task_cache_key(t) for t in chiller.expand()}
        assert base_keys.isdisjoint(chiller_keys)
        assert all("-pchiller-" in key for key in chiller_keys)

    def test_descriptor_reports_plant(self):
        spec = CampaignSpec(
            kind="matrix", systems=("baseline",), plant="hybrid"
        )
        assert task_descriptor(spec.expand()[0])["plant"] == "hybrid"
