"""Psychrometric conversion tests, including round-trip properties."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.physics.psychrometrics import (
    absolute_to_relative_humidity,
    absolute_to_relative_humidity_array,
    dew_point_c,
    mixing_ratio_from_relative_humidity,
    relative_to_absolute_humidity,
    relative_to_absolute_humidity_array,
    saturation_mixing_ratio,
    saturation_pressure_pa,
    saturation_pressure_pa_array,
    wet_bulb_c,
    wet_bulb_c_array,
)


class TestSaturationPressure:
    def test_reference_point_20c(self):
        # ~2339 Pa at 20C (standard tables).
        assert saturation_pressure_pa(20.0) == pytest.approx(2339, rel=0.01)

    def test_reference_point_0c(self):
        # ~611 Pa at 0C.
        assert saturation_pressure_pa(0.0) == pytest.approx(611, rel=0.01)

    def test_monotonic_in_temperature(self):
        temps = [-20.0, 0.0, 10.0, 25.0, 40.0, 55.0]
        pressures = [saturation_pressure_pa(t) for t in temps]
        assert pressures == sorted(pressures)

    def test_rejects_extreme_cold(self):
        with pytest.raises(ConfigError):
            saturation_pressure_pa(-80.0)


class TestConversions:
    def test_50pct_at_25c_reference(self):
        # 50% RH at 25C is about 9.9 g/kg.
        w = relative_to_absolute_humidity(50.0, 25.0)
        assert w == pytest.approx(0.0099, rel=0.03)

    def test_zero_humidity(self):
        assert relative_to_absolute_humidity(0.0, 20.0) == 0.0
        assert absolute_to_relative_humidity(0.0, 20.0) == 0.0

    def test_roundtrip_at_fixed_conditions(self):
        w = relative_to_absolute_humidity(65.0, 18.0)
        assert absolute_to_relative_humidity(w, 18.0) == pytest.approx(65.0, abs=1e-6)

    @given(
        rh=st.floats(min_value=1.0, max_value=99.0),
        temp=st.floats(min_value=-30.0, max_value=50.0),
    )
    def test_roundtrip_property(self, rh, temp):
        w = relative_to_absolute_humidity(rh, temp)
        back = absolute_to_relative_humidity(w, temp)
        assert back == pytest.approx(rh, rel=1e-6)

    @given(
        w=st.floats(min_value=1e-5, max_value=0.03),
        t_low=st.floats(min_value=-10.0, max_value=20.0),
        delta=st.floats(min_value=1.0, max_value=25.0),
    )
    def test_warming_air_lowers_relative_humidity(self, w, t_low, delta):
        rh_cold = absolute_to_relative_humidity(w, t_low)
        rh_warm = absolute_to_relative_humidity(w, t_low + delta)
        assert rh_warm <= rh_cold

    def test_supersaturation_clamps_to_100(self):
        w = relative_to_absolute_humidity(95.0, 30.0)
        assert absolute_to_relative_humidity(w, 10.0) == 100.0

    def test_rejects_out_of_range_rh(self):
        with pytest.raises(ConfigError):
            relative_to_absolute_humidity(101.0, 20.0)
        with pytest.raises(ConfigError):
            relative_to_absolute_humidity(-1.0, 20.0)

    def test_rejects_negative_mixing_ratio(self):
        with pytest.raises(ConfigError):
            absolute_to_relative_humidity(-0.001, 20.0)

    def test_alias_matches(self):
        assert mixing_ratio_from_relative_humidity(40.0, 22.0) == pytest.approx(
            relative_to_absolute_humidity(40.0, 22.0)
        )


class TestDewPoint:
    def test_saturated_air_dew_point_equals_temperature(self):
        w = relative_to_absolute_humidity(100.0, 15.0)
        assert dew_point_c(w) == pytest.approx(15.0, abs=0.05)

    def test_dry_air_has_low_dew_point(self):
        w = relative_to_absolute_humidity(20.0, 25.0)
        assert dew_point_c(w) < 5.0

    def test_zero_mixing_ratio(self):
        assert dew_point_c(0.0) < -200.0

    @given(
        rh=st.floats(min_value=5.0, max_value=99.0),
        temp=st.floats(min_value=-10.0, max_value=40.0),
    )
    def test_dew_point_below_air_temperature(self, rh, temp):
        w = relative_to_absolute_humidity(rh, temp)
        assert dew_point_c(w) <= temp + 1e-6


class TestSaturationMixingRatio:
    def test_monotonic(self):
        assert saturation_mixing_ratio(30.0) > saturation_mixing_ratio(10.0)

    def test_boiling_clamp(self):
        # At 110C the saturation pressure exceeds ambient; clamps huge.
        assert saturation_mixing_ratio(110.0) == 10.0


class TestArrayVariants:
    """The vectorized paths promise *bit-identical* results to the scalar
    functions (the TMY grid and the batched predictor are built on them)."""

    # A dense datacenter-relevant grid: -20..45C at varied humidities.
    TEMPS = np.linspace(-20.0, 45.0, 131)
    RH = np.linspace(1.0, 99.0, 131)

    def test_saturation_pressure_bit_identical(self):
        vector = saturation_pressure_pa_array(self.TEMPS)
        scalar = [saturation_pressure_pa(t) for t in self.TEMPS]
        assert vector.tolist() == scalar

    def test_relative_to_absolute_bit_identical(self):
        vector = relative_to_absolute_humidity_array(self.RH, self.TEMPS)
        scalar = [
            relative_to_absolute_humidity(rh, t)
            for rh, t in zip(self.RH, self.TEMPS)
        ]
        assert vector.tolist() == scalar

    def test_absolute_to_relative_bit_identical(self):
        w = relative_to_absolute_humidity_array(self.RH, self.TEMPS)
        vector = absolute_to_relative_humidity_array(w, self.TEMPS)
        scalar = [
            absolute_to_relative_humidity(wi, t) for wi, t in zip(w, self.TEMPS)
        ]
        assert vector.tolist() == scalar

    def test_wet_bulb_bit_identical(self):
        vector = wet_bulb_c_array(self.TEMPS, self.RH)
        scalar = [wet_bulb_c(t, rh) for t, rh in zip(self.TEMPS, self.RH)]
        assert vector.tolist() == scalar

    @given(
        rh=st.floats(min_value=0.0, max_value=100.0),
        temp=st.floats(min_value=-20.0, max_value=45.0),
    )
    def test_wet_bulb_property_matches_scalar(self, rh, temp):
        vector = wet_bulb_c_array(np.array([temp]), np.array([rh]))
        assert float(vector[0]) == wet_bulb_c(temp, rh)

    def test_wet_bulb_validation_matches_scalar(self):
        with pytest.raises(ConfigError):
            wet_bulb_c_array(np.array([20.0]), np.array([101.0]))
        with pytest.raises(ConfigError):
            wet_bulb_c_array(np.array([20.0]), np.array([-1.0]))

    @given(
        rh=st.floats(min_value=1.0, max_value=99.0),
        temp=st.floats(min_value=-20.0, max_value=45.0),
    )
    def test_roundtrip_property_matches_scalar(self, rh, temp):
        w = relative_to_absolute_humidity_array(
            np.array([rh]), np.array([temp])
        )
        back = absolute_to_relative_humidity_array(w, np.array([temp]))
        assert float(w[0]) == relative_to_absolute_humidity(rh, temp)
        assert float(back[0]) == absolute_to_relative_humidity(float(w[0]), temp)
        assert float(back[0]) == pytest.approx(rh, rel=1e-6)

    def test_preserves_shape(self):
        temps = self.TEMPS.reshape(-1, 1)
        assert saturation_pressure_pa_array(temps).shape == temps.shape

    def test_validation_matches_scalar(self):
        with pytest.raises(ConfigError):
            saturation_pressure_pa_array(np.array([20.0, -70.0]))
        with pytest.raises(ConfigError):
            relative_to_absolute_humidity_array(
                np.array([101.0]), np.array([20.0])
            )
        with pytest.raises(ConfigError):
            absolute_to_relative_humidity_array(
                np.array([-0.001]), np.array([20.0])
            )
