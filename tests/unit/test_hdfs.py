"""HDFS namespace and block-level covering subset tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datacenter.server import Server
from repro.errors import WorkloadError
from repro.workload.hdfs import Block, HDFSNamespace, place_dataset


class TestBlock:
    def test_requires_replicas(self):
        with pytest.raises(WorkloadError):
            Block(0, ())

    def test_rejects_duplicate_placement(self):
        with pytest.raises(WorkloadError):
            Block(0, (1, 1))


class TestNamespaceValidation:
    def test_rejects_unknown_servers(self):
        with pytest.raises(WorkloadError):
            HDFSNamespace([Block(0, (99,))], num_servers=10)

    def test_rejects_zero_servers(self):
        with pytest.raises(WorkloadError):
            HDFSNamespace([], num_servers=0)


class TestPlacement:
    def test_block_count_from_dataset_size(self):
        namespace = place_dataset(dataset_gb=10.0, num_servers=64, block_mb=64.0)
        assert namespace.num_blocks == 160

    def test_replicas_span_pods(self):
        namespace = place_dataset(dataset_gb=5.0, num_servers=64,
                                  servers_per_pod=16, replication=3)
        for block in namespace.blocks:
            pods = {s // 16 for s in block.replica_servers}
            assert len(pods) == 3  # off-rack rule: all replicas on
            # distinct pods

    def test_replication_capped_by_pod_count(self):
        namespace = place_dataset(dataset_gb=1.0, num_servers=16,
                                  servers_per_pod=16, replication=3)
        assert all(len(b.replica_servers) == 1 for b in namespace.blocks)

    def test_deterministic(self):
        a = place_dataset(2.0, 64, seed=5)
        b = place_dataset(2.0, 64, seed=5)
        assert [t.replica_servers for t in a.blocks] == [
            t.replica_servers for t in b.blocks
        ]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            place_dataset(0.0, 64)
        with pytest.raises(WorkloadError):
            place_dataset(1.0, 64, replication=0)


class TestAvailability:
    def test_available_with_all_servers(self):
        namespace = place_dataset(2.0, 64)
        assert namespace.available(set(range(64)))
        assert namespace.missing_blocks(set(range(64))) == []

    def test_unavailable_with_no_servers(self):
        namespace = place_dataset(2.0, 64)
        assert not namespace.available(set())
        assert len(namespace.missing_blocks(set())) == namespace.num_blocks

    def test_single_replica_loss(self):
        namespace = HDFSNamespace(
            [Block(0, (0, 1)), Block(1, (2,))], num_servers=4
        )
        assert namespace.available({0, 2})
        assert not namespace.available({0, 1})
        assert namespace.missing_blocks({0, 1}) == [1]


class TestCoveringSubset:
    def test_subset_covers_everything(self):
        namespace = place_dataset(10.0, 64)
        subset = namespace.covering_subset_ids()
        assert namespace.available(subset)

    def test_subset_is_small(self):
        # With 3x replication and even spread, the cover should need far
        # fewer servers than the cluster holds.
        namespace = place_dataset(5.0, 64)
        subset = namespace.covering_subset_ids()
        assert len(subset) < 30

    def test_subset_minimal_on_handcrafted_layout(self):
        # Server 0 holds every block: the greedy cover must find just it.
        blocks = [Block(i, (0, i + 1)) for i in range(5)]
        namespace = HDFSNamespace(blocks, num_servers=10)
        assert namespace.covering_subset_ids() == {0}

    def test_mark_covering_subset(self):
        namespace = place_dataset(5.0, 16, servers_per_pod=4)
        servers = [Server(i, i // 4) for i in range(16)]
        for s in servers:
            s.sleep()
        subset = namespace.mark_covering_subset(servers)
        assert all(s.in_covering_subset and s.is_on for s in subset)
        marked = {s.server_id for s in servers if s.in_covering_subset}
        assert namespace.available(marked)

    def test_blocks_on(self):
        namespace = HDFSNamespace([Block(0, (3, 5))], num_servers=8)
        assert [b.block_id for b in namespace.blocks_on(3)] == [0]
        assert namespace.blocks_on(4) == []

    @settings(max_examples=20, deadline=None)
    @given(
        dataset_gb=st.floats(min_value=0.5, max_value=30.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_cover_always_valid(self, dataset_gb, seed):
        namespace = place_dataset(dataset_gb, 64, seed=seed)
        subset = namespace.covering_subset_ids()
        assert namespace.available(subset)
        # Sleeping everything outside the subset keeps data available —
        # the paper's invariant.
        assert not namespace.missing_blocks(subset)
