"""ML substrate tests: dataset, OLS, LMS, M5P, and model selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, ModelNotTrainedError
from repro.ml.dataset import Dataset
from repro.ml.linreg import LinearRegression
from repro.ml.lms import LeastMedianSquares
from repro.ml.m5p import M5PModelTree
from repro.ml.selection import fit_best_linear


def make_linear_dataset(slope=2.0, intercept=1.0, n=50, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    data = Dataset(("x",))
    for _ in range(n):
        x = rng.uniform(-10, 10)
        data.add([x], slope * x + intercept + rng.normal(0, noise))
    return data


class TestDataset:
    def test_requires_feature_names(self):
        with pytest.raises(ConfigError):
            Dataset(())

    def test_unique_names(self):
        with pytest.raises(ConfigError):
            Dataset(("a", "a"))

    def test_add_checks_width(self):
        data = Dataset(("a", "b"))
        with pytest.raises(ConfigError):
            data.add([1.0], 2.0)

    def test_matrix_and_targets(self):
        data = Dataset(("a",))
        data.add([1.0], 2.0)
        data.add([3.0], 4.0)
        assert data.matrix().shape == (2, 1)
        assert data.targets().tolist() == [2.0, 4.0]

    def test_empty_matrix_shape(self):
        assert Dataset(("a", "b")).matrix().shape == (0, 2)

    def test_chronological_split(self):
        data = make_linear_dataset(n=10)
        train, valid = data.split(0.8)
        assert len(train) == 8
        assert len(valid) == 2
        # Order preserved: train rows are the first 8.
        assert np.array_equal(train.matrix(), data.matrix()[:8])

    def test_split_validation(self):
        with pytest.raises(ConfigError):
            make_linear_dataset().split(1.0)


class TestLinearRegression:
    def test_recovers_exact_line(self):
        model = LinearRegression().fit(make_linear_dataset(slope=3.0, intercept=-2.0))
        assert model.coefficients[0] == pytest.approx(3.0, abs=1e-9)
        assert model.intercept == pytest.approx(-2.0, abs=1e-9)

    def test_predict_one_and_batch_agree(self):
        model = LinearRegression().fit(make_linear_dataset())
        single = model.predict_one([2.5])
        batch = model.predict(np.array([[2.5]]))
        assert single == pytest.approx(float(batch[0]))

    def test_rmse_zero_on_noiseless_data(self):
        data = make_linear_dataset(noise=0.0)
        model = LinearRegression().fit(data)
        assert model.rmse(data) < 1e-9

    def test_untrained_raises(self):
        with pytest.raises(ModelNotTrainedError):
            LinearRegression().predict_one([1.0])

    def test_empty_dataset_raises(self):
        with pytest.raises(ModelNotTrainedError):
            LinearRegression().fit(Dataset(("x",)))

    @settings(max_examples=20, deadline=None)
    @given(
        slope=st.floats(min_value=-5, max_value=5),
        intercept=st.floats(min_value=-5, max_value=5),
    )
    def test_recovers_arbitrary_lines(self, slope, intercept):
        model = LinearRegression().fit(
            make_linear_dataset(slope=slope, intercept=intercept)
        )
        assert model.predict_one([1.0]) == pytest.approx(slope + intercept, abs=1e-6)

    def test_multivariate(self):
        rng = np.random.default_rng(1)
        data = Dataset(("a", "b", "c"))
        for _ in range(100):
            a, b, c = rng.uniform(-5, 5, 3)
            data.add([a, b, c], 1.0 * a - 2.0 * b + 0.5 * c + 4.0)
        model = LinearRegression().fit(data)
        assert model.coefficients == pytest.approx([1.0, -2.0, 0.5], abs=1e-9)


class TestLeastMedianSquares:
    def test_matches_ols_on_clean_data(self):
        data = make_linear_dataset(slope=2.0, intercept=0.0, noise=0.05)
        lms = LeastMedianSquares().fit(data)
        assert lms.predict_one([5.0]) == pytest.approx(10.0, abs=0.5)

    def test_robust_to_outliers(self):
        """A quarter of wildly corrupted points should not move LMS much,
        while OLS gets dragged."""
        rng = np.random.default_rng(3)
        data = Dataset(("x",))
        for i in range(80):
            x = rng.uniform(-10, 10)
            y = 2.0 * x + 1.0
            if i % 4 == 0:
                y += 200.0  # gross outlier
            data.add([x], y)
        ols = LinearRegression().fit(data)
        lms = LeastMedianSquares(num_samples=60, seed=7).fit(data)
        true_at_5 = 11.0
        assert abs(lms.predict_one([5.0]) - true_at_5) < abs(
            ols.predict_one([5.0]) - true_at_5
        )
        assert abs(lms.predict_one([5.0]) - true_at_5) < 5.0

    def test_untrained_accessors_raise(self):
        lms = LeastMedianSquares()
        with pytest.raises(ModelNotTrainedError):
            lms.predict_one([1.0])
        with pytest.raises(ModelNotTrainedError):
            _ = lms.coefficients

    def test_deterministic_given_seed(self):
        data = make_linear_dataset(noise=1.0)
        a = LeastMedianSquares(seed=5).fit(data).predict_one([3.0])
        b = LeastMedianSquares(seed=5).fit(data).predict_one([3.0])
        assert a == b


class TestM5P:
    def test_fits_piecewise_linear_function(self):
        data = Dataset(("x",))
        for x in np.linspace(-10, 10, 200):
            y = 0.0 if x < 0 else 3.0 * x
            data.add([x], y)
        tree = M5PModelTree(min_leaf_size=8).fit(data)
        assert tree.num_leaves() >= 2
        assert tree.predict_one([-5.0]) == pytest.approx(0.0, abs=0.5)
        assert tree.predict_one([5.0]) == pytest.approx(15.0, abs=1.0)

    def test_beats_single_line_on_cubic_power_curve(self):
        """The paper's use case: FC power is cubic in fan speed."""
        data = Dataset(("speed",))
        for s in np.linspace(0.15, 1.0, 120):
            data.add([s], 8.0 + 417.0 * s**3)
        tree = M5PModelTree().fit(data)
        line = LinearRegression().fit(data)
        assert tree.rmse(data) < 0.5 * line.rmse(data)

    def test_constant_target_yields_single_leaf(self):
        data = Dataset(("x",))
        for x in range(40):
            data.add([float(x)], 7.0)
        tree = M5PModelTree().fit(data)
        assert tree.num_leaves() == 1
        assert tree.predict_one([100.0]) == pytest.approx(7.0)

    def test_respects_max_depth(self):
        data = Dataset(("x",))
        rng = np.random.default_rng(0)
        for _ in range(500):
            x = rng.uniform(0, 1)
            data.add([x], np.sin(8 * x))
        tree = M5PModelTree(max_depth=2).fit(data)
        assert tree.num_leaves() <= 4

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            M5PModelTree(min_leaf_size=1)
        with pytest.raises(ConfigError):
            M5PModelTree(max_depth=-1)

    def test_untrained_raises(self):
        with pytest.raises(ModelNotTrainedError):
            M5PModelTree().predict_one([1.0])


class TestModelSelection:
    def test_prefers_ols_on_clean_data(self):
        data = make_linear_dataset(n=100, noise=0.01)
        model = fit_best_linear(data)
        assert model.rmse(data) < 0.1

    def test_small_dataset_falls_back_to_ols(self):
        data = make_linear_dataset(n=3)
        model = fit_best_linear(data)
        assert isinstance(model, LinearRegression)

    def test_prefers_robust_fit_with_outliers(self):
        rng = np.random.default_rng(9)
        data = Dataset(("x",))
        for i in range(200):
            x = rng.uniform(-10, 10)
            y = 2.0 * x + rng.normal(0, 0.1)
            # Corrupt a block late in the series (hits the validation split).
            if 100 <= i < 125:
                y += 300.0
            data.add([x], y)
        model = fit_best_linear(data)
        assert model.predict_one([5.0]) == pytest.approx(10.0, abs=4.0)

    def test_validation_split_is_deterministic(self):
        # Two fits on the same data must make the same OLS-vs-LMS choice
        # and predict identically — the screening surrogate leans on
        # this when it refits between phases.
        data = make_linear_dataset(n=80, noise=1.5, seed=21)
        first = fit_best_linear(data)
        second = fit_best_linear(data)
        assert type(first) is type(second)
        probes = [[-7.5], [0.0], [3.25], [9.9]]
        for probe in probes:
            assert first.predict_one(probe) == second.predict_one(probe)

    def test_degenerate_single_feature(self):
        # A constant feature column (rank-deficient design): selection
        # still produces a finite model rather than raising, and the
        # prediction stays inside the observed target range.
        data = Dataset(("x",))
        for target in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            data.add([4.2], target)
        model = fit_best_linear(data)
        prediction = model.predict_one([4.2])
        assert np.isfinite(prediction)
        assert 1.0 <= prediction <= 6.0
