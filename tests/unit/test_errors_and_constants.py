"""Error hierarchy and paper-constant sanity checks."""

import pytest

from repro import constants
from repro.errors import (
    ConfigError,
    ModelNotTrainedError,
    RegimeError,
    ReproError,
    SchedulingError,
    SensorError,
    SimulationError,
    WeatherError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            ConfigError,
            ModelNotTrainedError,
            RegimeError,
            SensorError,
            WorkloadError,
            SchedulingError,
            SimulationError,
            WeatherError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)
        with pytest.raises(ReproError):
            raise error_cls("boom")

    def test_catching_base_does_not_mask_type(self):
        try:
            raise SensorError("x")
        except ReproError as err:
            assert isinstance(err, SensorError)


class TestPaperConstants:
    """Values printed in the paper must not drift."""

    def test_cooling_power_figures(self):
        assert constants.AC_FAN_ONLY_W == 135.0
        assert constants.AC_COMPRESSOR_W == 2200.0
        assert constants.FC_MIN_POWER_W == 8.0
        assert constants.FC_MAX_POWER_W == 425.0
        assert constants.FC_MIN_SPEED == 0.15

    def test_server_figures(self):
        assert constants.SERVER_IDLE_W == 22.0
        assert constants.SERVER_PEAK_W == 30.0
        assert constants.NUM_SERVERS == 64

    def test_coolair_defaults(self):
        assert constants.DEFAULT_OFFSET_C == 8.0
        assert constants.DEFAULT_WIDTH_C == 5.0
        assert constants.DEFAULT_MIN_C == 10.0
        assert constants.DEFAULT_MAX_C == 30.0
        assert constants.DEFAULT_MAX_RH_PCT == 80.0
        assert constants.DEFAULT_MAX_RATE_C_PER_HOUR == 20.0

    def test_control_cadence(self):
        assert constants.CONTROL_PERIOD_S == 600
        assert constants.MODEL_STEP_S == 120
        assert constants.CONTROL_PERIOD_S % constants.MODEL_STEP_S == 0

    def test_tks_defaults(self):
        assert constants.TKS_DEFAULT_SETPOINT_C == 25.0
        assert constants.TKS_DEFAULT_BAND_C == 5.0
        assert constants.TKS_HYSTERESIS_C == 1.0

    def test_disk_cycle_budget(self):
        # 300,000 cycles over 4 years = 8.5 cycles/hour on average.
        per_hour = constants.DISK_LOAD_UNLOAD_CYCLES / (
            constants.DISK_LIFETIME_YEARS * 365.25 * 24
        )
        assert per_hour == pytest.approx(
            constants.MAX_AVG_POWER_CYCLES_PER_HOUR, rel=0.01
        )

    def test_delivery_overhead(self):
        assert constants.POWER_DELIVERY_PUE_OVERHEAD == 0.08
