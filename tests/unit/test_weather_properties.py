"""Property-based weather-path equivalence (hypothesis).

The data plane serves TMY series as read-only mmaps and the simulation
engines read them through :class:`SampledWeather` grids and
:class:`LaneWeather` batches.  These properties pin the bit-identity
contract that makes all of that safe: every fast path must reproduce
``TMYSeries._interp`` exactly — on-grid, off-grid, negative (warmup)
times, and times wrapping past the end of the year alike — whether the
series came from :func:`generate_tmy` or from the artifact store.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import artifacts
from repro.weather.locations import NAMED_LOCATIONS
from repro.weather.tmy import LaneWeather, generate_tmy

YEAR_S = 365 * 24 * 3600.0
STEP_S = 120.0

# Arbitrary times, including negatives (warmup reaches before midnight)
# and times beyond one year (the series wraps).
times = st.floats(
    min_value=-2.0 * YEAR_S,
    max_value=2.0 * YEAR_S,
    allow_nan=False,
    allow_infinity=False,
)


@pytest.fixture(scope="module")
def series():
    return generate_tmy(NAMED_LOCATIONS["Newark"])


@pytest.fixture(scope="module")
def sampled(series):
    return series.sampled(STEP_S)


class TestSampledWeather:
    @given(time_s=times)
    @settings(max_examples=200, deadline=None)
    def test_matches_interp_everywhere(self, series, sampled, time_s):
        assert sampled.temperature_c(time_s) == series.temperature_c(time_s)
        assert sampled.mixing_ratio(time_s) == series.mixing_ratio(time_s)
        assert sampled.relative_humidity_pct(
            time_s
        ) == series.relative_humidity_pct(time_s)

    @given(step=st.integers(min_value=-1000, max_value=2 * 262800))
    @settings(max_examples=200, deadline=None)
    def test_on_grid_times_bit_identical(self, series, sampled, step):
        time_s = step * STEP_S
        assert sampled.temperature_c(time_s) == series.temperature_c(time_s)


class TestLaneWeather:
    @given(
        day=st.integers(min_value=0, max_value=364),
        first_step=st.integers(min_value=-60, max_value=720),
    )
    @settings(max_examples=100, deadline=None)
    def test_day_grid_matches_scalar_queries(self, series, day, first_step):
        lanes = LaneWeather([series, series], STEP_S)
        temps, mixing, rh = lanes.day_grid(day, first_step, 8)
        for j in range(8):
            time_s = (day * 86400.0 + (first_step + j) * STEP_S) % YEAR_S
            assert temps[0, j] == series.temperature_c(time_s)
            assert mixing[1, j] == series.mixing_ratio(time_s)
            assert rh[0, j] == series.relative_humidity_pct(time_s)


class TestStoreServedSeries:
    """The same properties hold for a series read back from the store."""

    @pytest.fixture()
    def stored(self, tmp_path, monkeypatch, series):
        monkeypatch.setenv("REPRO_ARTIFACTS_DIR", str(tmp_path / "store"))
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        monkeypatch.setattr(artifacts, "_tmy_cache", {})
        monkeypatch.setattr(artifacts, "_swept_dirs", set())
        artifacts.tmy_series(NAMED_LOCATIONS["Newark"])  # materialize
        artifacts._tmy_cache.clear()
        served = artifacts.tmy_series(NAMED_LOCATIONS["Newark"])
        assert isinstance(served._temps_c.base, np.memmap)
        return served

    def test_interp_and_grids_bit_identical(self, series, stored):
        probe_times = np.linspace(-YEAR_S, 2 * YEAR_S, 997)
        for time_s in probe_times:
            assert stored.temperature_c(time_s) == series.temperature_c(time_s)
        grid = stored.sampled(STEP_S)
        reference = series.sampled(STEP_S)
        assert np.array_equal(grid.temps_c, reference.temps_c)
        assert np.array_equal(grid.mixing_ratios, reference.mixing_ratios)
        assert np.array_equal(grid.rh_pct, reference.rh_pct)
        lanes = LaneWeather([stored], STEP_S)
        ref_lanes = LaneWeather([series], STEP_S)
        got = lanes.day_grid(100, -30, 100)
        want = ref_lanes.day_grid(100, -30, 100)
        for a, b in zip(got, want):
            assert np.array_equal(a, b)
