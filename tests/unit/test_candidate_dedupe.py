"""Candidate-list dedupe and caching (Cooling Optimizer fast path)."""

from __future__ import annotations

from repro.cooling.regimes import CoolingMode
from repro.core.optimizer import (
    SPEED_DEDUPE_TOLERANCE,
    _dedupe_speeds,
    abrupt_candidates,
    smooth_candidates,
)


class TestDedupeSpeeds:
    def test_collapses_near_duplicates_to_lowest(self):
        # 0.2001 and 0.2049 are within tolerance of 0.20; 0.35 is not.
        assert _dedupe_speeds([0.35, 0.2049, 0.20, 0.2001]) == [0.20, 0.35]

    def test_keeps_speeds_at_tolerance(self):
        speeds = [0.20, 0.20 + SPEED_DEDUPE_TOLERANCE]
        assert _dedupe_speeds(speeds) == speeds

    def test_sorts_input(self):
        assert _dedupe_speeds([1.0, 0.01, 0.5]) == [0.01, 0.5, 1.0]

    def test_empty(self):
        assert _dedupe_speeds([]) == []

    def test_deterministic_representative(self):
        # Whichever order near-duplicates arrive in, the survivor is the
        # lowest of the run — candidate lists must not depend on float
        # drift in the caller.
        assert _dedupe_speeds([0.352, 0.35]) == _dedupe_speeds([0.35, 0.352])


class TestSmoothCandidateDedupe:
    def test_no_near_duplicate_fan_speeds(self):
        # 0.2501 ramps to 0.2001 and 0.3501 — within tolerance of the grid
        # points 0.20 and 0.35.  Without dedupe the list would offer both of
        # each pair as separate regimes.
        commands = smooth_candidates(current_fc_speed=0.2501)
        speeds = sorted(
            c.fc_fan_speed
            for c in commands
            if c.mode is CoolingMode.FREE_COOLING
        )
        gaps = [b - a for a, b in zip(speeds, speeds[1:])]
        assert all(gap >= SPEED_DEDUPE_TOLERANCE for gap in gaps)

    def test_exact_grid_speed_unaffected(self):
        speeds = [
            c.fc_fan_speed
            for c in smooth_candidates(current_fc_speed=0.0)
            if c.mode is CoolingMode.FREE_COOLING
        ]
        assert speeds == sorted({0.01, 0.05, 0.10, 0.20, 0.35, 0.5, 0.75, 1.0})


class TestCandidateCaching:
    def test_callers_get_fresh_lists(self):
        first = smooth_candidates(current_fc_speed=0.35)
        second = smooth_candidates(current_fc_speed=0.35)
        assert first == second
        assert first is not second
        # Mutating a returned list (the optimizer filters candidates on
        # cold days) must not corrupt the cache.
        first.clear()
        assert smooth_candidates(current_fc_speed=0.35) == second

    def test_abrupt_fresh_lists(self):
        first = abrupt_candidates()
        second = abrupt_candidates()
        assert first == second and first is not second
        first.pop()
        assert abrupt_candidates() == second
