"""Task-level Hadoop cluster simulator tests."""

import numpy as np
import pytest

from repro.datacenter.server import PowerState, Server
from repro.errors import WorkloadError
from repro.workload.hadoop import HadoopCluster
from repro.workload.job import Job
from repro.workload.traces import Trace


def job(job_id=0, arrival=0.0, maps=4, map_s=100.0, reduces=1, red_s=50.0, **kw):
    return Job(job_id, arrival, maps, map_s, reduces, red_s, **kw)


def make_cluster(jobs, num_servers=8):
    servers = [Server(i, 0) for i in range(num_servers)]
    return HadoopCluster(servers, Trace("t", jobs)), servers


class TestExecution:
    def test_small_job_completes(self):
        cluster, _ = make_cluster([job(maps=2, map_s=100.0, reduces=1, red_s=50.0)])
        while not cluster.all_done() and cluster.now_s < 3600:
            cluster.step(60.0)
        assert cluster.all_done()
        assert cluster.finish_times()[0] <= 600.0

    def test_work_conservation(self):
        jobs = [job(i, arrival=i * 100.0, maps=3, map_s=60.0) for i in range(5)]
        cluster, _ = make_cluster(jobs)
        total = 0.0
        while not cluster.all_done() and cluster.now_s < 7200:
            total += cluster.step(60.0)
        expected = sum(j.total_work_s for j in jobs)
        assert total == pytest.approx(expected, rel=1e-6)

    def test_job_not_started_before_arrival(self):
        cluster, servers = make_cluster([job(arrival=1000.0)])
        cluster.step(500.0)
        assert all(s.utilization == 0.0 for s in servers)
        assert cluster.jobs_finished == 0

    def test_deferred_job_waits_for_scheduled_start(self):
        j = job(arrival=0.0, deadline_s=7200.0)
        j.defer_to(3600.0)
        cluster, servers = make_cluster([j])
        cluster.step(1800.0)
        assert cluster.jobs_finished == 0
        for _ in range(40):
            cluster.step(120.0)
        assert cluster.jobs_finished == 1

    def test_parallelism_cap_slows_narrow_jobs(self):
        # 1 map task of 1000s cannot finish faster than 1000s even with
        # 16 free slots.
        cluster, _ = make_cluster([job(maps=1, map_s=1000.0, reduces=0, red_s=0.0)])
        while not cluster.all_done() and cluster.now_s < 4000:
            cluster.step(100.0)
        assert cluster.finish_times()[0] >= 1000.0

    def test_reduce_after_map(self):
        """Executed slot-seconds never exceed map work until maps finish."""
        j = job(maps=16, map_s=100.0, reduces=16, red_s=100.0)
        cluster, _ = make_cluster([j], num_servers=8)
        executed = cluster.step(50.0)
        assert executed <= j.map_work_s + 1e-9


class TestPlacement:
    def test_placement_order_fills_first_servers(self):
        cluster, servers = make_cluster([job(maps=4, map_s=500.0)], num_servers=8)
        order = list(reversed(servers))
        cluster.step(60.0, placement_order=order)
        # Work (4 slots = 2 servers) lands on the tail servers.
        assert servers[-1].utilization > 0.0
        assert servers[0].utilization == 0.0

    def test_sleeping_servers_excluded(self):
        cluster, servers = make_cluster([job(maps=64, map_s=500.0)], num_servers=8)
        for s in servers[4:]:
            s.sleep()
        cluster.step(60.0)
        assert all(s.utilization == 0.0 for s in servers[4:])
        assert all(s.utilization > 0.0 for s in servers[:4])

    def test_decommissioned_servers_get_no_new_work(self):
        cluster, servers = make_cluster([job(maps=64, map_s=500.0)], num_servers=8)
        servers[0].decommission()
        cluster.step(60.0)
        assert servers[0].utilization == 0.0


class TestDataFlags:
    def test_busy_servers_hold_job_data_until_done(self):
        cluster, servers = make_cluster([job(maps=16, map_s=300.0)], num_servers=4)
        cluster.step(60.0)
        assert any(s.holds_job_data for s in servers)
        while not cluster.all_done() and cluster.now_s < 7200:
            cluster.step(60.0)
        assert not any(s.holds_job_data for s in servers)

    def test_server_holds_data_query(self):
        cluster, servers = make_cluster([job(maps=16, map_s=300.0)], num_servers=4)
        cluster.step(60.0)
        assert cluster.server_holds_data(servers[0].server_id)


class TestQueries:
    def test_demanded_servers_reflects_eligible_load(self):
        cluster, _ = make_cluster([job(maps=8, map_s=600.0)], num_servers=8)
        assert cluster.demanded_servers() == 0  # nothing admitted yet
        cluster.step(1.0)
        assert cluster.demanded_servers() == 4  # 8 maps / 2 slots

    def test_demanded_capped_by_cluster(self):
        cluster, _ = make_cluster([job(maps=1000, map_s=60.0)], num_servers=8)
        cluster.step(1.0)
        assert cluster.demanded_servers() == 8

    def test_step_validation(self):
        cluster, _ = make_cluster([job()])
        with pytest.raises(WorkloadError):
            cluster.step(0.0)

    def test_requires_servers(self):
        with pytest.raises(WorkloadError):
            HadoopCluster([], Trace("t", []))
