"""Batched prediction/scoring must equal the scalar reference, bit for bit.

PR-2's fast control path (:meth:`CoolingPredictor.predict_batch`,
:meth:`UtilityFunction.score_batch`, ``CoolingOptimizer(use_batched=True)``)
is a pure performance refactor: every test here pins it to the sequential
path with exact floating-point equality, across a deterministic spread of
control-period states covering both hardware candidate sets, blended AC
duties, and active-sensor restriction.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.profiling import _decision_states
from repro.core.band import TemperatureBand
from repro.core.optimizer import (
    CoolingOptimizer,
    abrupt_candidates,
    smooth_candidates,
)
from repro.core.predictor import CoolingPredictor
from repro.core.utility import UtilityFunction
from repro.core.versions import all_nd

STEPS = 5
BAND = TemperatureBand(25.0, 30.0)


def assert_predictions_equal(batched, sequential):
    assert len(batched) == len(sequential)
    for got, want in zip(batched, sequential):
        assert np.array_equal(got.sensor_temps_c, want.sensor_temps_c)
        assert np.array_equal(got.rh_pct, want.rh_pct)
        assert got.cooling_energy_kwh == want.cooling_energy_kwh
        assert got.ac_at_full_speed == want.ac_at_full_speed


class TestPredictBatch:
    def test_matches_sequential_predict_both_candidate_sets(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        for state in _decision_states(cooling_model, 12):
            for commands in (
                abrupt_candidates(),
                smooth_candidates(current_fc_speed=state.fan_speed),
            ):
                batched = predictor.predict_batch(state, commands, STEPS)
                sequential = [
                    predictor.predict(state, command, STEPS)
                    for command in commands
                ]
                assert_predictions_equal(batched, sequential)

    def test_batch_results_are_independent_copies(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        state = _decision_states(cooling_model, 1)[0]
        commands = abrupt_candidates()
        batched = predictor.predict_batch(state, commands, STEPS)
        # Mutating one prediction must not alias another (the batch rollout
        # slices a shared trajectory array; each result must own its data).
        batched[0].sensor_temps_c[:] = -99.0
        assert not np.any(batched[1].sensor_temps_c == -99.0)


class TestScoreBatch:
    def test_matches_sequential_score(self, cooling_model):
        predictor = CoolingPredictor(cooling_model)
        config = all_nd()
        utility = UtilityFunction(config)
        horizon_s = float(config.control_period_s)
        for state in _decision_states(cooling_model, 8):
            commands = smooth_candidates(current_fc_speed=state.fan_speed)
            predictions = predictor.predict_batch(state, commands, STEPS)
            current = list(state.sensor_temps_c)
            batched = utility.score_batch(predictions, BAND, current, horizon_s)
            sequential = [
                utility.score(p, BAND, current, horizon_s) for p in predictions
            ]
            assert batched == sequential


class TestOptimizerEquivalence:
    def make(self, cooling_model, smooth, use_batched):
        config = all_nd()
        predictor = CoolingPredictor(cooling_model)
        return CoolingOptimizer(
            config,
            predictor,
            UtilityFunction(config),
            smooth_hardware=smooth,
            use_batched=use_batched,
        )

    def assert_same_decisions(self, cooling_model, smooth, active=None):
        batched = self.make(cooling_model, smooth, use_batched=True)
        reference = self.make(cooling_model, smooth, use_batched=False)
        for state in _decision_states(cooling_model, 10):
            got = batched.decide(state, BAND, active_sensor_indices=active)
            want = reference.decide(state, BAND, active_sensor_indices=active)
            assert got == want
            assert batched.last_scores == reference.last_scores

    def test_smooth_hardware(self, cooling_model):
        self.assert_same_decisions(cooling_model, smooth=True)

    def test_abrupt_hardware(self, cooling_model):
        self.assert_same_decisions(cooling_model, smooth=False)

    def test_active_sensor_restriction(self, cooling_model):
        self.assert_same_decisions(cooling_model, smooth=True, active=[0, 2])
