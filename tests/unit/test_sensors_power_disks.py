"""Sensors, energy accounting, and disk-fleet tests."""

import numpy as np
import pytest

from repro.datacenter.disks import DiskFleet
from repro.datacenter.power import EnergyAccountant
from repro.datacenter.sensors import HumiditySensor, TemperatureSensor
from repro.datacenter.server import Server
from repro.errors import ConfigError, SensorError


class TestTemperatureSensor:
    def test_quantizes_to_half_degree(self):
        sensor = TemperatureSensor("t")
        assert sensor.observe(21.26) == pytest.approx(21.5)
        assert sensor.observe(21.24) == pytest.approx(21.0)

    def test_read_returns_last_observation(self):
        sensor = TemperatureSensor("t")
        sensor.observe(18.0)
        sensor.observe(19.0)
        assert sensor.read() == 19.0

    def test_read_before_observe_raises(self):
        with pytest.raises(SensorError):
            TemperatureSensor("t").read()

    def test_rejects_bad_resolution(self):
        with pytest.raises(SensorError):
            TemperatureSensor("t", resolution_c=0.0)


class TestHumiditySensor:
    def test_clamps_to_0_100(self):
        sensor = HumiditySensor("h")
        assert sensor.observe(150.0) == 100.0
        assert sensor.observe(-5.0) == 0.0

    def test_quantizes_to_1pct(self):
        sensor = HumiditySensor("h")
        assert sensor.observe(54.4) == 54.0
        assert sensor.observe(54.6) == 55.0

    def test_has_reading_flag(self):
        sensor = HumiditySensor("h")
        assert not sensor.has_reading
        sensor.observe(50.0)
        assert sensor.has_reading


class TestEnergyAccountant:
    def test_pue_includes_delivery_overhead(self):
        acc = EnergyAccountant()
        acc.record(it_power_w=1000.0, cooling_power_w=100.0, dt_s=3600)
        assert acc.pue() == pytest.approx(1.0 + 0.1 + 0.08)

    def test_kwh_conversion(self):
        acc = EnergyAccountant()
        acc.record(1000.0, 500.0, 3600)
        assert acc.it_energy_kwh == pytest.approx(1.0)
        assert acc.cooling_energy_kwh == pytest.approx(0.5)

    def test_pue_undefined_without_it_energy(self):
        with pytest.raises(ConfigError):
            EnergyAccountant().pue()

    def test_rejects_invalid_records(self):
        acc = EnergyAccountant()
        with pytest.raises(ConfigError):
            acc.record(-1.0, 0.0, 60)
        with pytest.raises(ConfigError):
            acc.record(1.0, 0.0, 0)

    def test_merge_accumulates(self):
        a = EnergyAccountant()
        b = EnergyAccountant()
        a.record(100.0, 10.0, 3600)
        b.record(300.0, 30.0, 3600)
        a.merge(b)
        assert a.it_energy_kwh == pytest.approx(0.4)
        assert a.elapsed_s == 7200


class TestDiskFleet:
    def test_power_cycle_rate_accounting(self):
        servers = [Server(i, 0) for i in range(4)]
        fleet = DiskFleet(servers, num_pods=1)
        inlets = np.array([22.0])
        # One hour with one server cycling twice.
        for minute in range(30):
            fleet.step(inlets, 0.5, 120)
        servers[0].sleep()
        servers[0].activate()
        servers[0].sleep()
        servers[0].activate()
        for minute in range(30):
            fleet.step(inlets, 0.5, 120)
        # 2 cycles over 4 servers over 2 hours = 0.25 cycles/server/hour.
        assert fleet.power_cycles_per_hour() == pytest.approx(0.25)
        assert fleet.within_cycle_budget()

    def test_budget_violation_detected(self):
        servers = [Server(0, 0)]
        fleet = DiskFleet(servers, num_pods=1)
        fleet.step(np.array([22.0]), 0.5, 3600)
        for _ in range(20):  # 20 cycles in one hour
            servers[0].sleep()
            servers[0].activate()
        assert not fleet.within_cycle_budget()

    def test_requires_servers(self):
        with pytest.raises(ConfigError):
            DiskFleet([], num_pods=1)

    def test_disk_temps_track_inlets(self):
        servers = [Server(i, 0) for i in range(2)]
        fleet = DiskFleet(servers, num_pods=1)
        for _ in range(100):
            fleet.step(np.array([25.0]), 0.5, 120)
        assert float(fleet.disk_temps_c[0]) == pytest.approx(
            25.0 + 8.0 + 4.5, abs=0.5
        )
