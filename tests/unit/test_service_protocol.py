"""Wire-protocol framing and request validation."""

import asyncio
import json

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode,
    encode,
    error_reply,
    ok_reply,
    read_message,
    validate_request,
)


class TestFraming:
    def test_encode_is_one_terminated_line(self):
        line = encode({"op": "ping"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert json.loads(line) == {"op": "ping"}

    def test_roundtrip(self):
        message = {"op": "submit", "spec": {"kind": "world"}, "priority": 3}
        assert decode(encode(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode(b"[1, 2]\n")


class TestValidation:
    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "explode"})

    @pytest.mark.parametrize("op", ["status", "result", "cancel"])
    def test_job_ops_need_job_id(self, op):
        with pytest.raises(ProtocolError, match="job_id"):
            validate_request({"op": op})
        assert validate_request({"op": op, "job_id": "job-0001"}) == op

    def test_submit_needs_spec_object(self):
        with pytest.raises(ProtocolError, match="spec object"):
            validate_request({"op": "submit"})
        with pytest.raises(ProtocolError, match="spec object"):
            validate_request({"op": "submit", "spec": "matrix"})

    def test_priority_must_be_integer(self):
        ok = {"op": "submit", "spec": {"kind": "world"}}
        assert validate_request({**ok, "priority": -2}) == "submit"
        with pytest.raises(ProtocolError, match="priority"):
            validate_request({**ok, "priority": 1.5})
        with pytest.raises(ProtocolError, match="priority"):
            validate_request({**ok, "priority": True})

    def test_reply_helpers(self):
        assert ok_reply(job_id="j")["ok"] is True
        reply = error_reply("nope")
        assert reply == {"ok": False, "error": "nope"}


class TestReadMessage:
    def _read(self, payload: bytes, limit: int = MAX_LINE_BYTES):
        async def run():
            reader = asyncio.StreamReader(limit=limit)
            reader.feed_data(payload)
            reader.feed_eof()
            return await read_message(reader)

        return asyncio.run(run())

    def test_reads_one_message(self):
        assert self._read(encode({"op": "ping"})) == {"op": "ping"}

    def test_clean_eof_is_none(self):
        assert self._read(b"") is None

    def test_oversize_line_is_protocol_error(self):
        big = encode({"blob": "x" * 4096})
        with pytest.raises(ProtocolError, match="line limit"):
            self._read(big, limit=64)
