"""Cooling Modeler tests: feature assembly, learning, fallbacks, ranking."""

import math

import numpy as np
import pytest

from repro.cooling.regimes import CoolingMode
from repro.core.modeler import (
    CoolingLearner,
    CoolingModel,
    HUMIDITY_FEATURES,
    MonitoringSample,
    TEMP_FEATURES,
    humidity_features,
    rank_pods_by_recirculation,
    temp_features,
)
from repro.errors import ModelNotTrainedError


def sample(t, temps, mode=CoolingMode.FREE_COOLING, fan=0.5, outside=15.0,
           util=0.5, w_in=0.008, w_out=0.006, power=50.0):
    return MonitoringSample(
        time_s=t,
        mode=mode,
        fan_speed=fan,
        sensor_temps_c=tuple(temps),
        outside_temp_c=outside,
        utilization=util,
        inside_mixing_ratio=w_in,
        outside_mixing_ratio=w_out,
        cooling_power_w=power,
    )


def synthetic_log(n=400, alpha=0.1):
    """A log whose dynamics are exactly linear: T' = T + alpha (T_out - T).

    The learner must recover this relation almost perfectly.
    """
    log = []
    temps = [25.0, 26.0]
    for i in range(n):
        # Alternate closed and free cooling in long blocks.
        if (i // 60) % 2 == 0:
            mode, fan, power = CoolingMode.FREE_COOLING, 0.4, 50.0
        else:
            mode, fan, power = CoolingMode.CLOSED, 0.0, 0.0
        outside = 12.0 + 5.0 * math.sin(i / 40.0)
        log.append(sample(i * 120.0, temps, mode=mode, fan=fan, outside=outside,
                          power=power))
        rate = alpha * fan + 0.01
        temps = [t + rate * (outside - t) + (0.05 if mode is CoolingMode.CLOSED else 0.0)
                 for t in temps]
    return log


class TestFeatureAssembly:
    def test_temp_features_order(self):
        prev = sample(0.0, [20.0, 21.0], fan=0.2, outside=10.0)
        cur = sample(120.0, [22.0, 23.0], fan=0.4, outside=12.0, util=0.7)
        features = temp_features(cur, prev, sensor=0)
        assert features == [22.0, 20.0, 12.0, 10.0, 0.4, 0.2, 0.7,
                            0.4 * 22.0, 0.4 * 12.0]
        assert len(features) == len(TEMP_FEATURES)

    def test_humidity_features_order(self):
        cur = sample(0.0, [20.0, 21.0], fan=0.3, w_in=0.010, w_out=0.004)
        features = humidity_features(cur)
        assert features == [0.010, 0.004, 0.3, 0.3 * 0.010, 0.3 * 0.004]
        assert len(features) == len(HUMIDITY_FEATURES)


class TestLearner:
    @pytest.fixture(scope="class")
    def model(self):
        return CoolingLearner(num_sensors=2).learn(synthetic_log())

    def test_learns_steady_regimes(self, model):
        assert "steady:free_cooling" in model.learned_regimes
        assert "steady:closed" in model.learned_regimes

    def test_predictions_track_synthetic_dynamics(self, model):
        prev = sample(0.0, [25.0, 25.0], fan=0.4, outside=10.0)
        cur = sample(120.0, [25.0, 25.0], fan=0.4, outside=10.0)
        predicted = model.predict_temp(
            "steady:free_cooling", 0, temp_features(cur, prev, 0)
        )
        expected = 25.0 + (0.1 * 0.4 + 0.01) * (10.0 - 25.0)
        assert predicted == pytest.approx(expected, abs=0.3)

    def test_vectorized_matches_scalar(self, model):
        prev = sample(0.0, [24.0, 26.0], fan=0.4, outside=12.0)
        cur = sample(120.0, [25.0, 27.0], fan=0.4, outside=12.0)
        matrix = np.array(
            [temp_features(cur, prev, s) for s in range(2)]
        )
        vector = model.predict_temps_vector("steady:free_cooling", matrix)
        scalar = [
            model.predict_temp("steady:free_cooling", s, matrix[s]) for s in range(2)
        ]
        assert vector == pytest.approx(scalar)

    def test_transition_fallback_to_steady(self, model):
        """An unseen transition falls back to the target's steady model."""
        prev = sample(0.0, [25.0, 25.0], fan=0.0, outside=10.0,
                      mode=CoolingMode.AC_ON)
        cur = sample(120.0, [25.0, 25.0], fan=0.4, outside=10.0)
        features = temp_features(cur, prev, 0)
        via_transition = model.predict_temp(
            "transition:ac_on->free_cooling", 0, features
        )
        via_steady = model.predict_temp("steady:free_cooling", 0, features)
        assert via_transition == via_steady

    def test_unknown_regime_raises(self, model):
        with pytest.raises(ModelNotTrainedError):
            model.predict_temp("steady:ac_on", 0, [0.0] * 9)

    def test_humidity_model_learned(self, model):
        features = [0.008, 0.006, 0.4, 0.4 * 0.008, 0.4 * 0.006]
        w = model.predict_humidity("steady:free_cooling", features)
        assert 0.0 < w < 0.05

    def test_power_constant_for_closed(self, model):
        assert model.predict_power_w("steady:closed", 0.0) == pytest.approx(
            0.0, abs=1.0
        )

    def test_too_little_data_raises(self):
        with pytest.raises(ModelNotTrainedError):
            CoolingLearner(num_sensors=2).learn(synthetic_log(n=2))

    def test_missing_required_regime_raises(self):
        # A log with only free cooling cannot produce a usable model.
        log = [sample(i * 120.0, [25.0, 25.0]) for i in range(100)]
        with pytest.raises(ModelNotTrainedError):
            CoolingLearner(num_sensors=2).learn(log)


class TestPowerModel:
    def test_fc_power_is_speed_dependent(self, cooling_model):
        low = cooling_model.predict_power_w("steady:free_cooling", 0.15)
        high = cooling_model.predict_power_w("steady:free_cooling", 1.0)
        assert high > low
        assert high == pytest.approx(425.0, rel=0.2)

    def test_ac_power_constant(self, cooling_model):
        power = cooling_model.predict_power_w("steady:ac_on", 0.0)
        assert power == pytest.approx(2200.0, rel=0.05)

    def test_ac_fan_only_power(self, cooling_model):
        power = cooling_model.predict_power_w("steady:ac_fan", 0.0)
        assert power == pytest.approx(135.0, rel=0.1)


class TestRecirculationRanking:
    def test_ranks_hottest_response_first(self):
        assert rank_pods_by_recirculation([1.0, 3.0, 2.0]) == [1, 2, 0]

    def test_empty(self):
        assert rank_pods_by_recirculation([]) == []
