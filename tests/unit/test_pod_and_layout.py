"""Pod and datacenter layout tests."""

import numpy as np
import pytest

from repro.datacenter.layout import DatacenterLayout, parasol_layout
from repro.datacenter.pod import Pod
from repro.datacenter.server import PowerState, Server
from repro.errors import ConfigError, SensorError


class TestPod:
    def test_requires_servers(self):
        with pytest.raises(ConfigError):
            Pod(0, [], recirculation=0.1)

    def test_rejects_foreign_servers(self):
        server = Server(0, pod_id=1)
        with pytest.raises(ConfigError):
            Pod(0, [server], recirculation=0.1)

    def test_rejects_bad_recirculation(self):
        with pytest.raises(ConfigError):
            Pod(0, [Server(0, 0)], recirculation=1.0)

    def test_it_power_sums_servers(self):
        servers = [Server(i, 0) for i in range(4)]
        pod = Pod(0, servers, 0.2)
        assert pod.it_power_w() == pytest.approx(4 * 22.0)
        servers[0].sleep()
        assert pod.it_power_w() == pytest.approx(3 * 22.0 + 2.0)

    def test_active_and_awake_counts(self):
        servers = [Server(i, 0) for i in range(4)]
        pod = Pod(0, servers, 0.2)
        servers[0].sleep()
        servers[1].decommission()
        assert pod.num_active() == 2
        assert len(pod.awake_servers()) == 3


class TestParasolLayout:
    def test_default_shape(self, layout):
        assert layout.num_pods == 4
        assert layout.num_servers == 64
        assert all(len(pod) == 16 for pod in layout.pods)

    def test_uneven_division_rejected(self):
        with pytest.raises(ConfigError):
            parasol_layout(num_servers=63)

    def test_server_lookup(self, layout):
        server = layout.server_by_id(17)
        assert server.server_id == 17
        assert server.pod_id == 1
        with pytest.raises(ConfigError):
            layout.server_by_id(999)

    def test_recirculation_ranking_orders(self, layout):
        high_first = layout.recirculation_ranking(high_first=True)
        assert [p.pod_id for p in high_first] == [3, 2, 1, 0]
        low_first = layout.recirculation_ranking(high_first=False)
        assert [p.pod_id for p in low_first] == [0, 1, 2, 3]

    def test_utilization_counts_active_fraction(self, layout):
        assert layout.utilization() == 1.0
        for pod in layout.pods[2:]:
            for server in pod.servers:
                server.sleep()
        assert layout.utilization() == pytest.approx(0.5)

    def test_observe_and_read(self, layout):
        readings = layout.observe(
            pod_inlet_temp_c=[20.1, 21.2, 22.3, 23.4],
            cold_aisle_rh_pct=55.0,
            outside_temp_c=14.9,
            outside_rh_pct=70.0,
        )
        # Quantized to 0.5C.
        assert readings["inlet_pod0"] == pytest.approx(20.0)
        assert layout.inlet_readings() == pytest.approx([20.0, 21.0, 22.5, 23.5])
        assert layout.outside_temp.read() == pytest.approx(15.0)

    def test_observe_requires_all_pods(self, layout):
        with pytest.raises(ConfigError):
            layout.observe([20.0], 50.0, 10.0, 60.0)

    def test_sensors_error_before_first_reading(self, layout):
        with pytest.raises(SensorError):
            layout.outside_temp.read()

    def test_pod_it_power_tracks_states(self, layout):
        powers = layout.pod_it_power_w()
        assert powers == pytest.approx([16 * 22.0] * 4)
        for server in layout.pods[0].servers:
            server.sleep()
        assert layout.pod_it_power_w()[0] == pytest.approx(16 * 2.0)
