"""Pin the thermal plant to its pre-refactor trajectory, bit for bit.

``tests/data/plant_golden_day.json`` records the exact floating-point
trajectory the scalar, pre-PR-2 :class:`~repro.physics.thermal.ThermalPlant`
produced on a scripted day that visits every cooling regime.  The fast
(allocation-free) stepping path must reproduce it exactly — JSON floats
round-trip losslessly, so plain ``==`` is a last-ulp comparison.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

DATA_DIR = Path(__file__).resolve().parents[1] / "data"


def load_generator(name: str):
    """Import a ``tests/data/make_*.py`` fixture generator by file path."""
    spec = importlib.util.spec_from_file_location(name, DATA_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPlantGolden:
    def test_replay_is_bit_identical(self):
        golden = json.loads((DATA_DIR / "plant_golden_day.json").read_text())
        generator = load_generator("make_plant_golden")
        replay = generator.generate()

        assert replay["steps"] == golden["steps"]
        assert replay["dt_s"] == golden["dt_s"]
        assert len(replay["trace"]) == len(golden["trace"])
        for step, (got, want) in enumerate(zip(replay["trace"], golden["trace"])):
            assert got["pod_inlet_temp_c"] == want["pod_inlet_temp_c"], step
            assert got["hot_aisle_temp_c"] == want["hot_aisle_temp_c"], step
            assert (
                got["cold_aisle_mixing_ratio"] == want["cold_aisle_mixing_ratio"]
            ), step
