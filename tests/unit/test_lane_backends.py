"""Property tests pinning the lane backend units to the scalar chain.

Each lane-vectorized backend (``Lane*Units`` in
``repro.cooling.backends``) promises *bit-identical* per-lane
``(power_w, water_l)`` to the scalar ``CoolingUnits.step_resources``
chain it replaces.  These tests drive both with random
(duty, fan, outside °C, RH) batches and compare element-wise with exact
equality — the optimizer's selection key amplifies any
least-significant-bit drift into a different trajectory.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cooling.backends import (
    LANE_REGIME_CODES,
    ChillerUnits,
    CoolingTowerUnits,
    HybridUnits,
    LaneChillerUnits,
    LaneCoolingTowerUnits,
    LaneHybridUnits,
    chiller_power_w,
    chiller_power_w_array,
    get_backend,
    tower_capacity_factor,
    tower_capacity_factor_array,
    tower_water_l,
    tower_water_l_array,
)
from repro.errors import ConfigError

DT_S = 120.0
IT_POWER_W = 1600.0

duties = st.floats(min_value=0.0, max_value=1.0)
fans = st.floats(min_value=0.0, max_value=1.0)
temps = st.floats(min_value=-20.0, max_value=45.0)
rhs = st.floats(min_value=0.0, max_value=100.0)

# One lane of reachable actuator/boundary state.  The smooth command
# application keeps the economizer and the AC path exclusive (FREE
# zeroes ac, AC modes zero fc), so batches respect that invariant.
mech_lanes = st.tuples(st.just(0.0), fans, duties, temps, rhs)
free_lanes = st.tuples(fans, st.just(0.0), st.just(0.0), temps, rhs)


def _columns(rows):
    fc, fan, duty, temp, rh = (np.array(col) for col in zip(*rows))
    return fc, fan, duty, temp, rh


def _scalar_resources(units, fc, fan, duty, temp, rh):
    """Force one reachable scalar state and step it."""
    units.fc_fan_speed = float(fc)
    units.ac_fan_speed = float(fan)
    units.ac_compressor_duty = float(duty)
    units.observe_boundary(float(temp), float(rh))
    if isinstance(units, HybridUnits):
        # Mirror HybridUnits._apply_command's regime refresh.
        if units.ac_compressor_duty > 0.0 or units.ac_fan_speed > 0.0:
            units._mech_regime = (
                "tower" if units._tower_viable() else "chiller"
            )
        else:
            units._mech_regime = None
    return units.step_resources(IT_POWER_W, DT_S)


def _lane_resources(lane_cls, scalar_cls, rows):
    fc, fan, duty, temp, rh = _columns(rows)
    regimes = None
    if lane_cls is LaneHybridUnits:
        codes = []
        for row in rows:
            probe = scalar_cls()
            _scalar_resources(probe, *row)
            codes.append(LANE_REGIME_CODES.get(probe.active_regime, 0))
        regimes = np.array(codes, dtype=np.int8)
    lunits = lane_cls(len(rows))
    lunits.observe_boundary(temp, rh)
    lunits.set_actuators(fc, fan, duty, regimes)
    return lunits.step_resources(np.full(len(rows), IT_POWER_W), DT_S)


class TestLaneBackendEquivalence:
    """Lane (power, water) == scalar step_resources, element-wise."""

    @given(rows=st.lists(mech_lanes, min_size=1, max_size=12))
    def test_chiller(self, rows):
        power, water = _lane_resources(LaneChillerUnits, ChillerUnits, rows)
        scalar = [_scalar_resources(ChillerUnits(), *row) for row in rows]
        assert power.tolist() == [p for p, _ in scalar]
        assert water.tolist() == [w for _, w in scalar]

    @given(rows=st.lists(mech_lanes, min_size=1, max_size=12))
    def test_cooling_tower(self, rows):
        power, water = _lane_resources(
            LaneCoolingTowerUnits, CoolingTowerUnits, rows
        )
        scalar = [
            _scalar_resources(CoolingTowerUnits(), *row) for row in rows
        ]
        assert power.tolist() == [p for p, _ in scalar]
        assert water.tolist() == [w for _, w in scalar]

    @given(
        rows=st.lists(
            st.one_of(mech_lanes, free_lanes), min_size=1, max_size=12
        )
    )
    def test_hybrid(self, rows):
        power, water = _lane_resources(LaneHybridUnits, HybridUnits, rows)
        scalar = [_scalar_resources(HybridUnits(), *row) for row in rows]
        assert power.tolist() == [p for p, _ in scalar]
        assert water.tolist() == [w for _, w in scalar]

    @given(
        rows=st.lists(
            st.one_of(mech_lanes, free_lanes), min_size=2, max_size=12
        )
    )
    def test_hybrid_mixed_regimes_stay_per_lane(self, rows):
        """A tower lane next to a chiller lane must not leak masks."""
        power, water = _lane_resources(LaneHybridUnits, HybridUnits, rows)
        for i, row in enumerate(rows):
            p, w = _scalar_resources(HybridUnits(), *row)
            assert float(power[i]) == p
            assert float(water[i]) == w

    def test_effective_duty_mirrors_plant_inputs(self):
        """The duty the thermal plant sees matches plant_inputs()."""
        rows = [
            (0.0, 1.0, 0.8, 30.0, 40.0),
            (0.0, 1.0, 0.5, 12.0, 90.0),
            (0.0, 0.6, 0.3, 26.0, 70.0),
        ]
        fc, fan, duty, temp, rh = _columns(rows)
        for lane_cls, scalar_cls in (
            (LaneChillerUnits, ChillerUnits),
            (LaneCoolingTowerUnits, CoolingTowerUnits),
            (LaneHybridUnits, HybridUnits),
        ):
            regimes = None
            if lane_cls is LaneHybridUnits:
                codes = []
                for row in rows:
                    probe = scalar_cls()
                    _scalar_resources(probe, *row)
                    codes.append(LANE_REGIME_CODES.get(probe.active_regime, 0))
                regimes = np.array(codes, dtype=np.int8)
            lunits = lane_cls(len(rows))
            lunits.observe_boundary(temp, rh)
            lunits.set_actuators(fc, fan, duty, regimes)
            expected = []
            for row in rows:
                units = scalar_cls()
                _scalar_resources(units, *row)
                expected.append(units.plant_inputs().ac_compressor_duty)
            assert lunits.effective_duty().tolist() == expected


class TestArrayCurves:
    """The array twins of the scalar plant curves, on a dense grid."""

    DUTIES = np.linspace(0.0, 1.0, 101)
    TEMPS = np.linspace(-20.0, 45.0, 101)
    WET_BULBS = np.linspace(-15.0, 30.0, 101)

    def test_chiller_power_bit_identical(self):
        vector = chiller_power_w_array(self.DUTIES, self.TEMPS)
        scalar = [
            chiller_power_w(d, t) for d, t in zip(self.DUTIES, self.TEMPS)
        ]
        assert vector.tolist() == scalar

    def test_tower_capacity_bit_identical(self):
        vector = tower_capacity_factor_array(self.WET_BULBS)
        scalar = [tower_capacity_factor(wb) for wb in self.WET_BULBS]
        assert vector.tolist() == scalar

    def test_tower_water_bit_identical(self):
        heat = self.DUTIES * 5500.0
        vector = tower_water_l_array(heat, DT_S)
        scalar = [tower_water_l(h, DT_S) for h in heat]
        assert vector.tolist() == scalar


class TestLaneUnitsRegistry:
    def test_every_non_parasol_backend_has_lane_units(self):
        for plant, lane_cls in (
            ("chiller", LaneChillerUnits),
            ("cooling_tower", LaneCoolingTowerUnits),
            ("hybrid", LaneHybridUnits),
        ):
            lunits = get_backend(plant).make_lane_units(4)
            assert isinstance(lunits, lane_cls)
            assert lunits.num_lanes == 4

    def test_parasol_has_no_lane_units_class(self):
        """Parasol's physics live in the lane engine itself, not here."""
        with pytest.raises(ConfigError):
            get_backend("parasol").make_lane_units(4)
