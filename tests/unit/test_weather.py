"""Weather substrate tests: climates, TMY generation, locations, forecasts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, WeatherError
from repro.weather.climate import Climate
from repro.weather.forecast import ForecastService
from repro.weather.locations import (
    CHAD,
    ICELAND,
    NEWARK,
    SANTIAGO,
    SINGAPORE,
    NAMED_LOCATIONS,
    climate_for_coordinates,
    world_grid,
)
from repro.weather.tmy import HOURS_PER_YEAR, generate_tmy


class TestClimate:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Climate("x", 95.0, 0.0, 10.0, 5.0, 5.0)
        with pytest.raises(ConfigError):
            Climate("x", 0.0, 0.0, 10.0, -1.0, 5.0)

    def test_hemisphere_and_season_phase(self):
        assert SANTIAGO.southern_hemisphere
        assert not NEWARK.southern_hemisphere
        assert SANTIAGO.warmest_day_of_year != NEWARK.warmest_day_of_year

    def test_seed_deterministic_and_distinct(self):
        assert NEWARK.seed() == NEWARK.seed()
        assert NEWARK.seed() != SINGAPORE.seed()


class TestTMYGeneration:
    @pytest.fixture(scope="class")
    def newark(self):
        return generate_tmy(NEWARK)

    def test_shape(self, newark):
        assert newark.hourly_temps.shape == (HOURS_PER_YEAR,)

    def test_deterministic(self):
        a = generate_tmy(ICELAND)
        b = generate_tmy(ICELAND)
        assert np.array_equal(a.hourly_temps, b.hourly_temps)

    def test_yearly_mean_close_to_climate(self, newark):
        mean, _, _ = newark.yearly_stats()
        assert mean == pytest.approx(NEWARK.mean_temp_c, abs=1.5)

    def test_summer_warmer_than_winter(self, newark):
        july = newark.daily_mean_temp_c(196)
        january = newark.daily_mean_temp_c(15)
        assert july - january > 12.0

    def test_southern_hemisphere_flips_seasons(self):
        santiago = generate_tmy(SANTIAGO)
        january = santiago.daily_mean_temp_c(15)
        july = santiago.daily_mean_temp_c(196)
        assert january > july

    def test_diurnal_cycle_peaks_afternoon(self, newark):
        day = newark.hourly_temps_for_day(180)
        assert 12 <= int(np.argmax(day)) <= 18

    def test_interpolation_continuous(self, newark):
        t1 = newark.temperature_c(1000_000.0)
        t2 = newark.temperature_c(1000_060.0)
        assert abs(t1 - t2) < 1.0

    def test_relative_humidity_in_range(self, newark):
        for t in np.linspace(0, 364 * 86400, 50):
            rh = newark.relative_humidity_pct(float(t))
            assert 0.0 <= rh <= 100.0

    def test_singapore_is_humid_and_stable(self):
        singapore = generate_tmy(SINGAPORE)
        mean, low, high = singapore.yearly_stats()
        assert high - low < 15.0  # tiny seasonal+diurnal span
        rh = [singapore.relative_humidity_pct(d * 86400.0) for d in range(0, 360, 10)]
        assert np.mean(rh) > 70.0

    def test_daily_range_positive(self, newark):
        assert newark.daily_range_c(100) > 0.0


class TestNamedLocations:
    def test_five_locations_present(self):
        assert set(NAMED_LOCATIONS) == {
            "Newark",
            "Chad",
            "Santiago",
            "Iceland",
            "Singapore",
        }

    def test_climate_ordering(self):
        # Chad hot, Iceland cold, the rest in between.
        assert CHAD.mean_temp_c > SINGAPORE.mean_temp_c - 2.0
        assert ICELAND.mean_temp_c < NEWARK.mean_temp_c < CHAD.mean_temp_c


class TestWorldGrid:
    def test_default_count_is_1520(self):
        assert len(world_grid()) == 1520

    def test_subsample_count(self):
        assert len(world_grid(24)) == 24

    def test_unique_names(self):
        grid = world_grid(100)
        assert len({c.name for c in grid}) == 100

    def test_latitude_gradient(self):
        polar = climate_for_coordinates(65.0, 10.0)
        tropical = climate_for_coordinates(2.0, 10.0)
        assert tropical.mean_temp_c > polar.mean_temp_c + 10.0
        assert polar.seasonal_amplitude_c > tropical.seasonal_amplitude_c

    @settings(max_examples=30, deadline=None)
    @given(
        lat=st.floats(min_value=-56.0, max_value=68.0),
        lon=st.floats(min_value=-180.0, max_value=180.0),
    )
    def test_every_coordinate_yields_valid_climate(self, lat, lon):
        climate = climate_for_coordinates(lat, lon)
        assert -90 <= climate.latitude <= 90
        assert 2.0 <= climate.mean_rh_pct <= 98.0
        assert climate.seasonal_amplitude_c >= 0

    def test_rejects_zero_locations(self):
        with pytest.raises(ValueError):
            world_grid(0)


class TestForecastService:
    @pytest.fixture(scope="class")
    def service(self):
        return ForecastService(generate_tmy(NEWARK))

    def test_perfect_forecast_matches_tmy(self, service):
        tmy = generate_tmy(NEWARK)
        forecast = service.forecast_for_day(100)
        assert forecast.hourly_temps_c == pytest.approx(
            tmy.hourly_temps_for_day(100)
        )

    def test_bias_shifts_everything(self):
        tmy = generate_tmy(NEWARK)
        biased = ForecastService(tmy, bias_c=5.0)
        plain = ForecastService(tmy)
        assert biased.average_for_day(50) == pytest.approx(
            plain.average_for_day(50) + 5.0
        )

    def test_noise_is_deterministic_per_day(self):
        tmy = generate_tmy(NEWARK)
        noisy = ForecastService(tmy, noise_std_c=2.0)
        a = noisy.forecast_for_day(10)
        b = noisy.forecast_for_day(10)
        assert np.array_equal(a.hourly_temps_c, b.hourly_temps_c)
        c = noisy.forecast_for_day(11)
        assert not np.array_equal(a.hourly_temps_c[:5], c.hourly_temps_c[:5])

    def test_partial_day_window(self, service):
        forecast = service.forecast_for_day(10, issued_hour=12)
        assert forecast.hourly_temps_c.shape == (12,)
        assert forecast.temp_at_hour(12) == forecast.hourly_temps_c[0]
        with pytest.raises(WeatherError):
            forecast.temp_at_hour(11)

    def test_rejects_bad_hour(self, service):
        with pytest.raises(WeatherError):
            service.forecast_for_day(10, issued_hour=24)

    def test_rejects_negative_day(self, service):
        # -1 must not silently wrap to day 364 (a December forecast
        # handed to a caller with an off-by-one).
        with pytest.raises(WeatherError, match="non-negative"):
            service.forecast_for_day(-1)

    def test_days_past_year_end_wrap_on_purpose(self, service):
        # Year simulations index days past the boundary; the TMY series
        # repeats, so day 365 is day 0 of the following typical year.
        wrapped = service.forecast_for_day(365)
        assert wrapped.day_of_year == 0
        assert np.array_equal(
            wrapped.hourly_temps_c, service.forecast_for_day(0).hourly_temps_c
        )

    def test_min_max_consistent(self, service):
        forecast = service.forecast_for_day(200)
        assert forecast.min_temp_c <= forecast.average_temp_c <= forecast.max_temp_c
