"""Failure injection: CoolAir's behavior when dependencies misbehave."""

import numpy as np
import pytest

from repro.core.coolair import CoolAir
from repro.core.versions import all_nd
from repro.errors import WeatherError
from repro.sim.engine import make_smoothsim
from repro.weather.forecast import ForecastService
from repro.weather.locations import NEWARK
from repro.weather.tmy import generate_tmy


class FlakyForecastService(ForecastService):
    """A forecast service that fails on configured days."""

    def __init__(self, tmy, outage_days):
        super().__init__(tmy)
        self.outage_days = set(outage_days)
        self.calls = 0

    def forecast_for_day(self, day_of_year, issued_hour=0):
        self.calls += 1
        if day_of_year in self.outage_days:
            raise WeatherError(f"forecast service unreachable (day {day_of_year})")
        return super().forecast_for_day(day_of_year, issued_hour)


@pytest.fixture()
def flaky_coolair(cooling_model):
    setup = make_smoothsim(NEWARK)
    service = FlakyForecastService(generate_tmy(NEWARK), outage_days={101})
    coolair = CoolAir(
        all_nd(), cooling_model, setup.layout, service, smooth_hardware=True
    )
    return coolair, service


class TestForecastOutage:
    def test_keeps_yesterdays_band_during_outage(self, flaky_coolair):
        coolair, service = flaky_coolair
        band_before = coolair.start_day(100)
        band_during = coolair.start_day(101)  # outage
        assert band_during == band_before  # yesterday's band reused
        assert coolair.forecast is None

    def test_first_day_outage_uses_safe_default(self, cooling_model):
        setup = make_smoothsim(NEWARK)
        service = FlakyForecastService(generate_tmy(NEWARK), outage_days={50})
        coolair = CoolAir(
            all_nd(), cooling_model, setup.layout, service, smooth_hardware=True
        )
        band = coolair.start_day(50)
        config = coolair.config
        assert config.min_c <= band.low_c
        assert band.high_c <= config.max_c
        assert band.width_c == config.width_c

    def test_recovers_after_outage(self, flaky_coolair):
        coolair, service = flaky_coolair
        coolair.start_day(100)
        coolair.start_day(101)  # outage
        band_after = coolair.start_day(102)
        assert coolair.forecast is not None
        assert band_after.width_c == coolair.config.width_c

    def test_control_still_works_during_outage(self, flaky_coolair):
        coolair, service = flaky_coolair
        coolair.start_day(101)  # outage from day one -> default band
        from repro.cooling.regimes import CoolingMode
        from repro.core.predictor import PredictorState

        state = PredictorState(
            mode=CoolingMode.CLOSED,
            fan_speed=0.0,
            sensor_temps_c=[26.0] * 4,
            prev_sensor_temps_c=[26.0] * 4,
            outside_temp_c=15.0,
            prev_outside_temp_c=15.0,
            prev_fan_speed=0.0,
            utilization=0.5,
            inside_mixing_ratio=0.008,
            outside_mixing_ratio=0.006,
        )
        command = coolair.decide_cooling(state)
        assert command is not None

    def test_no_temporal_scheduling_without_forecast(self, cooling_model):
        from repro.core.versions import all_def
        from repro.workload.traces import FacebookTraceGenerator

        setup = make_smoothsim(NEWARK)
        service = FlakyForecastService(generate_tmy(NEWARK), outage_days={60})
        coolair = CoolAir(
            all_def(), cooling_model, setup.layout, service, smooth_hardware=True
        )
        jobs = FacebookTraceGenerator(num_jobs=30).generate(deferrable=True).jobs
        coolair.start_day(60, jobs)
        assert all(job.scheduled_start_s is None for job in jobs)
