"""DayTrace metrics, validation harness, and analysis-module tests."""

import numpy as np
import pytest

from repro.analysis.costs import energy_cost_per_degree, management_costs
from repro.analysis.report import format_table
from repro.analysis.worldmap import (
    PUE_BINS,
    RANGE_BINS,
    bucket_counts,
    summarize_world,
)
from repro.cooling.regimes import CoolingMode
from repro.errors import SimulationError
from repro.sim.trace import DayTrace, StepRecord
from repro.sim.validation import TraceAgreement, fraction_within, trace_agreement
from repro.sim.yearsim import YearResult


def record(t, temps, outside=15.0, mode=CoolingMode.FREE_COOLING,
           cooling_w=100.0, it_w=1500.0, rh=50.0):
    return StepRecord(
        time_s=t,
        outside_temp_c=outside,
        sensor_temps_c=tuple(temps),
        mode=mode,
        fc_fan_speed=0.5,
        ac_compressor_duty=0.0,
        cooling_power_w=cooling_w,
        it_power_w=it_w,
        inside_rh_pct=rh,
        outside_rh_pct=60.0,
        utilization=0.5,
    )


def make_trace(temp_series, **kwargs):
    trace = DayTrace(day_of_year=0)
    for i, temps in enumerate(temp_series):
        trace.append(record(i * 120.0, temps, **kwargs))
    return trace


class TestDayTraceMetrics:
    def test_worst_sensor_range(self):
        trace = make_trace([(20.0, 25.0), (22.0, 31.0), (21.0, 27.0)])
        # Sensor 1 spans 25..31 = 6, sensor 0 spans 2.
        assert trace.worst_sensor_range_c() == pytest.approx(6.0)

    def test_violations_average(self):
        trace = make_trace([(29.0, 31.0), (30.0, 32.0)])
        # Readings over 30: 31 (1 over), 32 (2 over); 4 readings total.
        assert trace.avg_violation_c(30.0) == pytest.approx(3.0 / 4.0)

    def test_max_rate(self):
        trace = make_trace([(20.0, 20.0), (22.0, 20.0)])
        # 2C in 2 minutes = 60C/h.
        assert trace.max_rate_c_per_hour() == pytest.approx(60.0)

    def test_energy_and_pue(self):
        trace = make_trace([(25.0, 25.0)] * 30, cooling_w=150.0, it_w=1500.0)
        assert trace.pue() == pytest.approx(1.0 + 0.1 + 0.08)

    def test_time_in_mode(self):
        trace = DayTrace(0)
        trace.append(record(0.0, (25.0,), mode=CoolingMode.CLOSED))
        trace.append(record(120.0, (25.0,), mode=CoolingMode.FREE_COOLING))
        assert trace.time_in_mode(CoolingMode.CLOSED) == 0.5

    def test_rh_violation_fraction(self):
        trace = DayTrace(0)
        trace.append(record(0.0, (25.0,), rh=85.0))
        trace.append(record(120.0, (25.0,), rh=60.0))
        assert trace.rh_violation_fraction(80.0) == 0.5

    def test_records_must_advance(self):
        trace = make_trace([(25.0, 25.0)])
        with pytest.raises(SimulationError):
            trace.append(record(0.0, (25.0, 25.0)))

    def test_empty_trace_errors(self):
        with pytest.raises(SimulationError):
            DayTrace(0).worst_sensor_range_c()


class TestTraceAgreement:
    def test_identical_traces_agree_perfectly(self):
        a = make_trace([(25.0, 26.0)] * 10)
        b = make_trace([(25.0, 26.0)] * 10)
        agreement = trace_agreement(a, b)
        assert agreement.fraction_within_2c == 1.0
        assert agreement.overall_rel_error == 0.0

    def test_offset_traces_detected(self):
        a = make_trace([(25.0, 25.0)] * 10)
        b = make_trace([(28.5, 28.5)] * 10)
        agreement = trace_agreement(a, b)
        assert agreement.fraction_within_2c == 0.0

    def test_fraction_within(self):
        errors = np.array([0.2, 0.8, 1.5, 3.0])
        assert fraction_within(errors, 1.0) == 0.5


class TestCosts:
    def result(self, label, cooling_kwh, max_range=10.0):
        return YearResult(
            label=label,
            climate_name="X",
            sampled_days=[0],
            daily_worst_range_c=[max_range],
            daily_outside_range_c=[12.0],
            daily_avg_violation_c=[0.0],
            daily_max_rate_c_per_hour=[5.0],
            cooling_kwh=cooling_kwh,
            it_kwh=1000.0,
        )

    def test_cost_per_degree(self):
        cheap = self.result("Energy", 100.0)
        costly = self.result("Temperature", 300.0)
        assert energy_cost_per_degree(cheap, costly, 1.0) == 200.0

    def test_cost_clamped_at_zero(self):
        cheap = self.result("A", 300.0)
        costly = self.result("B", 100.0)
        assert energy_cost_per_degree(cheap, costly, 1.0) == 0.0

    def test_invalid_degrees(self):
        with pytest.raises(SimulationError):
            energy_cost_per_degree(self.result("A", 1.0), self.result("B", 2.0), 0.0)

    def test_management_costs_direction(self):
        energy = self.result("Energy", 100.0, max_range=12.0)
        temperature = self.result("Temperature", 400.0, max_range=12.0)
        variation = self.result("Variation", 200.0, max_range=6.0)
        costs = management_costs("X", energy, temperature, variation)
        assert costs.temperature_kwh_per_c == pytest.approx(300.0)
        assert costs.variation_kwh_per_c == pytest.approx(100.0 / 6.0)
        assert costs.temperature_costs_more


class TestWorldMap:
    def result(self, label, max_range, cooling=100.0):
        return YearResult(
            label=label,
            climate_name="loc",
            sampled_days=[0],
            daily_worst_range_c=[max_range],
            daily_outside_range_c=[12.0],
            daily_avg_violation_c=[0.0],
            daily_max_rate_c_per_hour=[5.0],
            cooling_kwh=cooling,
            it_kwh=1000.0,
        )

    def test_summary_aggregates(self):
        pairs = [
            (self.result("Baseline", 18.0, 80.0), self.result("All-ND", 12.0, 90.0)),
            (self.result("Baseline", 10.0, 50.0), self.result("All-ND", 8.0, 60.0)),
        ]
        summary = summarize_world(pairs, [(40.0, -74.0), (1.0, 100.0)])
        assert summary.avg_baseline_max_range_c == pytest.approx(14.0)
        assert summary.avg_coolair_max_range_c == pytest.approx(10.0)
        assert summary.fraction_range_worsened == 0.0

    def test_worsened_fraction(self):
        pairs = [
            (self.result("Baseline", 10.0), self.result("All-ND", 10.5)),
        ]
        summary = summarize_world(pairs, [(0.0, 0.0)])
        assert summary.fraction_range_worsened == 1.0
        assert summary.worst_range_increase_c == pytest.approx(0.5)

    def test_bucket_counts(self):
        counts = bucket_counts([1.0, 3.0, 5.0, 12.0, 20.0], RANGE_BINS)
        assert counts["0..2"] == 1
        assert counts["2..4"] == 1
        assert counts["4..6"] == 1
        assert counts["10..14"] == 1
        assert counts[">=14"] == 1

    def test_mismatched_coordinates_rejected(self):
        with pytest.raises(SimulationError):
            summarize_world([], [])


class TestReportTable:
    def test_format_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 22.25]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.50" in table and "22.25" in table
