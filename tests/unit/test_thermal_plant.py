"""Thermal plant tests: the paper's calibration targets and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.physics.thermal import (
    DiskThermalModel,
    PlantInputs,
    ThermalPlant,
    ThermalPlantConfig,
)


def uniform_inputs(**kwargs):
    defaults = dict(
        pod_it_power_w=[400.0] * 4,
        outside_temp_c=15.0,
        outside_mixing_ratio=0.006,
    )
    defaults.update(kwargs)
    return PlantInputs(**defaults)


class TestConfigValidation:
    def test_recirculation_count_must_match_pods(self):
        with pytest.raises(ConfigError):
            ThermalPlantConfig(num_pods=3)

    def test_recirculation_range(self):
        with pytest.raises(ConfigError):
            ThermalPlantConfig(num_pods=1, recirculation=(1.0,))

    def test_positive_heat_capacity(self):
        with pytest.raises(ConfigError):
            ThermalPlantConfig(pod_heat_capacity_j_k=0.0)

    def test_input_validation(self):
        plant = ThermalPlant()
        with pytest.raises(ConfigError):
            plant.step(uniform_inputs(fc_fan_speed=1.5), 120)
        with pytest.raises(ConfigError):
            plant.step(uniform_inputs(pod_it_power_w=[100.0]), 120)
        with pytest.raises(ConfigError):
            plant.step(uniform_inputs(), 0)


class TestCalibrationTargets:
    """The transient magnitudes reported in the paper (Section 5.1)."""

    def test_fc_at_15pct_drops_about_9c_in_12_minutes(self):
        plant = ThermalPlant()
        plant.reset(28.0, 0.008)
        plant.step(
            uniform_inputs(fc_fan_speed=0.15, outside_temp_c=10.0), 720
        )
        drop = 28.0 - float(plant.state.pod_inlet_temp_c[0])
        assert 7.0 <= drop <= 11.0

    def test_ac_full_blast_drops_about_7c_in_10_minutes(self):
        plant = ThermalPlant()
        plant.reset(28.0, 0.010)
        plant.step(
            uniform_inputs(
                ac_fan_speed=1.0, ac_compressor_duty=1.0, outside_temp_c=30.0
            ),
            600,
        )
        drop = 28.0 - float(plant.state.pod_inlet_temp_c[0])
        assert 4.0 <= drop <= 9.0

    def test_closed_container_warms_up(self):
        plant = ThermalPlant()
        plant.reset(20.0, 0.008)
        plant.step(uniform_inputs(outside_temp_c=5.0), 3600)
        assert float(plant.state.pod_inlet_temp_c.min()) > 20.0

    def test_closed_equilibrium_bounded(self):
        # A sealed 1.6kW container must not run away unboundedly.
        plant = ThermalPlant()
        plant.reset(25.0, 0.008)
        for _ in range(240):  # 8 hours
            plant.step(uniform_inputs(outside_temp_c=10.0), 120)
        assert float(plant.state.pod_inlet_temp_c.max()) < 45.0

    def test_fc_steady_state_tracks_outside_with_small_offset(self):
        plant = ThermalPlant()
        plant.reset(30.0, 0.008)
        for _ in range(120):
            plant.step(uniform_inputs(fc_fan_speed=0.5, outside_temp_c=15.0), 120)
        offsets = plant.state.pod_inlet_temp_c - 15.0
        assert 0.0 < float(offsets.min()) < 5.0
        assert float(offsets.max()) < 8.0


class TestRecirculationStructure:
    def test_higher_recirculation_pods_run_warmer_under_fc(self):
        plant = ThermalPlant()
        plant.reset(25.0, 0.008)
        for _ in range(60):
            plant.step(uniform_inputs(fc_fan_speed=0.3, outside_temp_c=12.0), 120)
        temps = plant.state.pod_inlet_temp_c
        # Default config orders pods by increasing recirculation.
        assert np.all(np.diff(temps) > 0)

    def test_higher_recirculation_pods_swing_less(self):
        """Low-recirculation pods are more exposed to the cooling
        infrastructure — the physical basis of CoolAir's placement."""
        plant = ThermalPlant()
        plant.reset(30.0, 0.008)
        before = plant.state.pod_inlet_temp_c.copy()
        plant.step(uniform_inputs(fc_fan_speed=0.5, outside_temp_c=10.0), 600)
        drops = before - plant.state.pod_inlet_temp_c
        assert np.all(np.diff(drops) < 0)  # pod 0 (low recirc) drops most


class TestHumidity:
    def test_fc_pulls_inside_humidity_toward_outside(self):
        plant = ThermalPlant()
        plant.reset(22.0, 0.005)
        plant.step(
            uniform_inputs(fc_fan_speed=1.0, outside_mixing_ratio=0.015), 3600
        )
        assert plant.state.cold_aisle_mixing_ratio > 0.010

    def test_ac_dehumidifies_humid_air(self):
        plant = ThermalPlant()
        plant.reset(28.0, 0.016)
        plant.step(
            uniform_inputs(
                ac_fan_speed=1.0, ac_compressor_duty=1.0, outside_temp_c=32.0
            ),
            1800,
        )
        assert plant.state.cold_aisle_mixing_ratio < 0.016

    def test_closed_humidity_drifts_slowly(self):
        plant = ThermalPlant()
        plant.reset(22.0, 0.005)
        plant.step(uniform_inputs(outside_mixing_ratio=0.015), 600)
        # Leak rate is tiny: 10 minutes moves humidity barely at all.
        assert plant.state.cold_aisle_mixing_ratio < 0.006

    def test_mixing_ratio_never_goes_negative(self):
        plant = ThermalPlant()
        plant.reset(30.0, 0.0001)
        for _ in range(100):
            plant.step(
                uniform_inputs(
                    ac_fan_speed=1.0, ac_compressor_duty=1.0, outside_temp_c=35.0
                ),
                120,
            )
        assert plant.state.cold_aisle_mixing_ratio > 0.0


class TestDeterminismAndStability:
    def test_deterministic_without_noise(self):
        results = []
        for _ in range(2):
            plant = ThermalPlant()
            plant.reset(24.0, 0.008)
            for _ in range(30):
                plant.step(uniform_inputs(fc_fan_speed=0.4), 120)
            results.append(plant.state.pod_inlet_temp_c.copy())
        assert np.array_equal(results[0], results[1])

    def test_substepping_matches_fine_stepping(self):
        coarse = ThermalPlant()
        fine = ThermalPlant()
        coarse.reset(28.0, 0.008)
        fine.reset(28.0, 0.008)
        inputs = uniform_inputs(fc_fan_speed=0.6, outside_temp_c=10.0)
        coarse.step(inputs, 600)
        for _ in range(20):
            fine.step(inputs, 30)
        assert coarse.state.pod_inlet_temp_c == pytest.approx(
            fine.state.pod_inlet_temp_c, abs=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(
        fan=st.floats(min_value=0.0, max_value=1.0),
        duty=st.floats(min_value=0.0, max_value=1.0),
        outside=st.floats(min_value=-30.0, max_value=45.0),
        power=st.floats(min_value=0.0, max_value=600.0),
    )
    def test_temperatures_stay_physical(self, fan, duty, outside, power):
        """No actuator combination may produce runaway temperatures."""
        plant = ThermalPlant()
        plant.reset(25.0, 0.008)
        inputs = PlantInputs(
            fc_fan_speed=fan,
            ac_fan_speed=1.0 if duty > 0 else 0.0,
            ac_compressor_duty=duty,
            pod_it_power_w=[power] * 4,
            outside_temp_c=outside,
            outside_mixing_ratio=0.006,
        )
        for _ in range(30):
            plant.step(inputs, 120)
        temps = plant.state.pod_inlet_temp_c
        assert np.all(temps > -50.0)
        assert np.all(temps < 70.0)

    def test_state_copy_is_independent(self):
        plant = ThermalPlant()
        snapshot = plant.state.copy()
        plant.step(uniform_inputs(fc_fan_speed=1.0, outside_temp_c=0.0), 600)
        assert not np.array_equal(
            snapshot.pod_inlet_temp_c, plant.state.pod_inlet_temp_c
        )


class TestDiskThermalModel:
    def test_disk_tracks_inlet_plus_rise(self):
        disks = DiskThermalModel(num_pods=4, initial_temp_c=30.0)
        inlets = np.full(4, 25.0)
        for _ in range(50):
            disks.step(inlets, disk_utilization=0.5, dt_s=120)
        expected = 25.0 + disks.base_rise_c + 0.5 * disks.utilization_rise_c
        assert disks.temps_c == pytest.approx(np.full(4, expected), abs=0.2)

    def test_disk_smooths_inlet_swings(self):
        disks = DiskThermalModel(num_pods=1, initial_temp_c=40.0)
        cold = np.array([15.0])
        disks.step(cold, 0.5, 120)
        # After 2 minutes the disk has moved only a fraction of the way.
        assert float(disks.temps_c[0]) > 35.0

    def test_rejects_bad_utilization(self):
        disks = DiskThermalModel(num_pods=1)
        with pytest.raises(ConfigError):
            disks.step(np.array([20.0]), 1.5, 120)

    def test_rejects_zero_pods(self):
        with pytest.raises(ConfigError):
            DiskThermalModel(num_pods=0)
